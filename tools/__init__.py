"""Repository tooling that is not part of the shipped ``repro`` package.

``tools.lint`` — the AST determinism linter (layer 2 of the static
verification suite; see docs/STATIC_ANALYSIS.md).
"""
