"""AST determinism lint for the simulator (layer 2 of the static suite).

The simulator's correctness argument — byte-identical routing tables,
replayable SMP timelines, property-tested reconfiguration — only holds if
the code base is *deterministic*: no wall-clock reads outside the
observability layer, no hidden global RNG state, no iteration order
leaking out of hash-randomized ``set``\\ s in routing/SMP-ordering code,
and no exact ``==`` on floats in the cost model. These rules are enforced
syntactically over the AST; see docs/STATIC_ANALYSIS.md for the rationale
behind each rule and how to suppress one.

Rules:

========  ==============================================================
DET001    wall-clock read (``time.time``, ``datetime.now``, ...) outside
          the allowed modules — sim results must not depend on when the
          process runs; use the sim clock or ``time.perf_counter`` for
          duration measurement
DET002    unseeded RNG (``random.random()``, ``np.random.rand()``, ...)
          — only explicitly seeded ``random.Random(seed)`` /
          ``np.random.default_rng(seed)`` instances are allowed
DET003    iteration over an unordered ``set``/``frozenset`` expression in
          a routing- or SMP-ordering-critical module without ``sorted()``
          — hash randomization would reorder SMPs between runs
DET004    ``==`` / ``!=`` against a float literal in cost-model code —
          accumulated float error makes exact comparison flaky
DET005    iteration over a tuple-keyed dict (``for (a, b), v in
          d.items()`` / ``for (a, b) in d.keys()``) without ``sorted()``
          in ordering-critical routing/analysis modules — LASH's
          ``pair_to_vl`` and friends feed SMP streams and findings, and
          plain dict order follows insertion order, which differs
          between the serial and sharded construction paths
========  ==============================================================

Suppress a finding with a trailing ``# noqa: DET00x`` comment (blanket
``# noqa`` also works but is discouraged).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Tuple

__all__ = [
    "LintViolation",
    "RULES",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: rule id -> one-line description (printed by ``--list-rules``).
RULES = {
    "DET001": "wall-clock read outside the observability layer",
    "DET002": "unseeded global RNG call",
    "DET003": "unordered set iteration in ordering-critical module",
    "DET004": "exact float-literal equality in cost-model code",
    "DET005": "unsorted tuple-keyed dict iteration in ordering-critical module",
}

#: Wall-clock calls banned by DET001 (dotted-name suffixes).
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: Module-path prefixes (relative, posix) where DET001 is allowed: the
#: observability layer may timestamp exported artifacts with real time.
_WALL_CLOCK_ALLOWED = ("repro/obs/",)

#: Seeded RNG constructors exempt from DET002.
_SEEDED_RNG = {
    "random.Random",
    "random.SystemRandom",
    "np.random.default_rng",
    "numpy.random.default_rng",
    "np.random.Generator",
    "numpy.random.Generator",
    "np.random.SeedSequence",
    "numpy.random.SeedSequence",
    "np.random.PCG64",
    "numpy.random.PCG64",
}

#: Module-path prefixes where set-iteration order can reorder routing
#: decisions or SMP streams (DET003).
_ORDERING_CRITICAL = (
    "repro/sm/",
    "repro/core/",
    "repro/mad/",
    "repro/fabric/",
    "repro/virt/",
    "repro/sriov/",
    # Sweep order and analytics sort order feed SMP streams and reports.
    "repro/telemetry/",
)

#: Module-path prefixes holding cost-model / calibration float math (DET004).
_FLOAT_EQ_CRITICAL = (
    "repro/core/",
    "repro/analysis/",
    "repro/sim/",
)

#: Module-path prefixes where tuple-keyed dict iteration order can leak
#: into routing tables, SMP streams or findings (DET005): the DET003
#: scope plus the analysis layer, whose reports must be stable.
_TUPLE_KEY_CRITICAL = _ORDERING_CRITICAL + ("repro/analysis/",)

#: Set-returning method names whose result order is unordered (DET003).
_SET_METHODS = {
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
}


@dataclass(frozen=True)
class LintViolation:
    """One determinism-rule violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """``path:line:col: RULE message`` (editor-clickable)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _module_rel(path: Path) -> str:
    """Posix path relative to the package root (starts at ``repro/`` or
    ``tools/`` when possible), used to match the per-rule module scopes."""
    parts = path.as_posix().split("/")
    for anchor in ("repro", "tools"):
        if anchor in parts:
            return "/".join(parts[parts.index(anchor):])
    return path.name


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of a call target (``""`` when dynamic)."""
    parts: List[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return ""


def _is_unordered(node: ast.AST) -> bool:
    """True for expressions that evaluate to a hash-ordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name in ("set", "frozenset"):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_unordered(node.left) or _is_unordered(node.right)
    return False


def _is_tuple_keyed_iter(iter_node: ast.AST, target: "ast.AST | None") -> bool:
    """True when *iter_node* is a bare ``.items()``/``.keys()`` call whose
    unpacking *target* reveals tuple keys (DET005).

    A ``sorted(...)`` wrapper never matches (the call target is ``sorted``,
    not the dict method), and a flat ``for k, v in d.items()`` is fine —
    only a tuple in the *key* slot of the items target (``for (a, b), v
    in ...``) or a tuple target over ``.keys()`` (``for a, b in
    d.keys()``) betrays tuple keys whose order the module then depends
    on. A tuple-valued dict (``for k, (x, y) in d.items()``) is not
    implicated: its key order is whatever DET003-clean code inserted.
    """
    if target is None or not isinstance(iter_node, ast.Call):
        return False
    if iter_node.args or iter_node.keywords:
        return False
    if not isinstance(iter_node.func, ast.Attribute):
        return False
    method = iter_node.func.attr
    if method == "items":
        return (
            isinstance(target, (ast.Tuple, ast.List))
            and len(target.elts) == 2
            and isinstance(target.elts[0], (ast.Tuple, ast.List))
        )
    if method == "keys":
        return isinstance(target, (ast.Tuple, ast.List))
    return False


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_float_literal(node.operand)
    return False


class _DeterminismVisitor(ast.NodeVisitor):
    """Collects rule violations over one module's AST."""

    def __init__(self, rel: str) -> None:
        self.rel = rel
        self.violations: List[Tuple[int, int, str, str]] = []
        self._wall_clock_ok = rel.startswith(_WALL_CLOCK_ALLOWED)
        self._ordering_critical = rel.startswith(_ORDERING_CRITICAL)
        self._float_eq_critical = rel.startswith(_FLOAT_EQ_CRITICAL)
        self._tuple_key_critical = rel.startswith(_TUPLE_KEY_CRITICAL)

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.violations.append(
            (node.lineno, node.col_offset, rule, message)
        )

    # -- DET001 / DET002 -----------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name:
            if not self._wall_clock_ok and name in _WALL_CLOCK:
                self._add(
                    node,
                    "DET001",
                    f"wall-clock call {name}() makes runs irreproducible;"
                    " use the sim clock (obs hub) or time.perf_counter for"
                    " durations",
                )
            elif name not in _SEEDED_RNG and (
                name.startswith("random.")
                or name.startswith("np.random.")
                or name.startswith("numpy.random.")
            ):
                self._add(
                    node,
                    "DET002",
                    f"global RNG call {name}() depends on interpreter-wide"
                    " state; use an explicitly seeded random.Random(seed)"
                    " or np.random.default_rng(seed) instance",
                )
        self.generic_visit(node)

    # -- DET003 / DET005 -----------------------------------------------------

    def _check_iter(
        self, iter_node: ast.AST, target: "ast.AST | None" = None
    ) -> None:
        if self._ordering_critical and _is_unordered(iter_node):
            self._add(
                iter_node,
                "DET003",
                "iterating an unordered set in an ordering-critical module;"
                " wrap the expression in sorted() to pin SMP/routing order",
            )
        if self._tuple_key_critical and _is_tuple_keyed_iter(
            iter_node, target
        ):
            self._add(
                iter_node,
                "DET005",
                "iterating a tuple-keyed dict follows insertion order, which"
                " differs between construction paths (serial vs sharded);"
                " wrap the .items()/.keys() call in sorted() to pin the"
                " routing/report order",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, node.target)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in node.generators:  # type: ignore[attr-defined]
            self._check_iter(comp.iter, comp.target)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- DET004 --------------------------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self._float_eq_critical and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            operands = [node.left, *node.comparators]
            if any(_is_float_literal(o) for o in operands):
                self._add(
                    node,
                    "DET004",
                    "exact ==/!= against a float literal is brittle under"
                    " accumulated rounding; compare with math.isclose or an"
                    " explicit tolerance",
                )
        self.generic_visit(node)


def _suppressed(source_line: str, rule: str) -> bool:
    """True when the line carries a matching ``# noqa`` marker."""
    if "# noqa" not in source_line:
        return False
    marker = source_line.split("# noqa", 1)[1].strip()
    if not marker.startswith(":"):
        return True  # blanket "# noqa"
    listed = {r.strip() for r in marker[1:].split("#")[0].split(",")}
    return rule in listed


def lint_source(source: str, path: str) -> List[LintViolation]:
    """Lint one module's source text (entry point for tests)."""
    rel = _module_rel(Path(path))
    tree = ast.parse(source, filename=path)
    visitor = _DeterminismVisitor(rel)
    visitor.visit(tree)
    lines = source.splitlines()
    out: List[LintViolation] = []
    for line, col, rule, message in visitor.violations:
        text = lines[line - 1] if 0 < line <= len(lines) else ""
        if _suppressed(text, rule):
            continue
        out.append(
            LintViolation(
                path=path, line=line, col=col, rule=rule, message=message
            )
        )
    return out


def lint_file(path: Path) -> List[LintViolation]:
    """Lint one file on disk."""
    return lint_source(
        path.read_text(encoding="utf-8"), path.as_posix()
    )


def lint_paths(paths: Iterable[Path]) -> List[LintViolation]:
    """Lint files and/or directory trees; results sorted by location."""
    files: List[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    out: List[LintViolation] = []
    for f in files:
        out.extend(lint_file(f))
    return sorted(out, key=lambda v: (v.path, v.line, v.col, v.rule))


def main(argv: Sequence[str] = ()) -> int:
    """CLI body (``python -m tools.lint``); returns the exit code."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="tools.lint",
        description="AST determinism lint (DET001-DET005) for src/repro",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table"
    )
    args = parser.parse_args(list(argv) or None)
    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}  {desc}")
        return 0
    violations = lint_paths(Path(p) for p in args.paths)
    for v in violations:
        print(v.render())
    if violations:
        print(f"{len(violations)} violation(s)")
        return 1
    print("determinism lint: clean")
    return 0
