"""``python -m tools.lint [paths...]`` — run the determinism lint."""

import sys

from tools.lint import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
