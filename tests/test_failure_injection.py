"""Failure-injection integration tests: cables die while the cloud runs.

Combines the SM's link-failure handling with live migration and the
data-plane simulator: after each injected fault the subnet must reroute,
every VM must remain reachable, and migrations must keep working.
"""

import random

import pytest

from repro.errors import TopologyError
from repro.fabric.node import Switch
from repro.fabric.presets import scaled_fattree
from repro.sim.dataplane import DataPlaneSimulator
from repro.workloads.migration_patterns import ANY, MigrationPlanner
from tests.conftest import make_cloud


def inter_switch_links(topology):
    return [
        link
        for link in topology.links
        if isinstance(link.a.node, Switch) and isinstance(link.b.node, Switch)
    ]


def all_vms_deliverable(cloud):
    topo = cloud.topology
    sim = DataPlaneSimulator(topo)
    src = topo.hcas[0].lid
    count = 0
    for vm in cloud.vms.values():
        if vm.is_running and vm.lid != src:
            sim.inject(src, vm.lid)
            count += 1
    stats = sim.run()
    return stats.delivered == count


class TestFailuresDuringOperation:
    def test_single_failure_then_migration(self):
        built = scaled_fattree("2l-small")
        cloud = make_cloud(built, num_vfs=3, routing_engine="minhop")
        vm = cloud.boot_vm(on="l0h0")
        link = inter_switch_links(cloud.topology)[0]
        report = cloud.sm.handle_link_failure(link)
        assert report.lft_smps > 0
        # Migration still works on the degraded fabric.
        mig = cloud.live_migrate(vm.name, "l4h4")
        assert mig.reconfig.lft_smps >= 1
        assert all_vms_deliverable(cloud)

    def test_sequential_failures_until_margin(self):
        # A 2-level fat-tree with 6 spines tolerates many cable cuts; keep
        # cutting random spine links and verify reachability after each.
        built = scaled_fattree("2l-small")
        cloud = make_cloud(built, num_vfs=2, routing_engine="minhop")
        for _ in range(8):
            cloud.boot_vm()
        rng = random.Random(7)
        cut = 0
        for _ in range(6):
            links = inter_switch_links(cloud.topology)
            link = rng.choice(links)
            try:
                cloud.sm.handle_link_failure(link)
            except TopologyError:
                break  # would partition: stop injecting
            cut += 1
            assert all_vms_deliverable(cloud)
        assert cut >= 3

    def test_failure_between_migrations(self):
        built = scaled_fattree("2l-small")
        cloud = make_cloud(built, num_vfs=3, routing_engine="minhop")
        planner = MigrationPlanner(cloud, built, seed=5)
        for _ in range(10):
            cloud.boot_vm()
        plan = planner.plan_one(ANY)
        cloud.live_migrate(*plan)
        link = inter_switch_links(cloud.topology)[3]
        cloud.sm.handle_link_failure(link)
        plan = planner.plan_one(ANY)
        report = cloud.live_migrate(*plan)
        assert report.reconfig.path_compute_seconds == 0.0
        assert all_vms_deliverable(cloud)

    def test_failure_reroute_preserves_vm_lids(self):
        # Rerouting recomputes paths but must not touch LID ownership: the
        # VMs keep their addresses through infrastructure failures too.
        built = scaled_fattree("2l-small")
        cloud = make_cloud(built, num_vfs=3, routing_engine="minhop")
        vms = [cloud.boot_vm() for _ in range(6)]
        lids = {vm.name: vm.lid for vm in vms}
        link = inter_switch_links(cloud.topology)[1]
        cloud.sm.handle_link_failure(link)
        for vm in vms:
            assert vm.lid == lids[vm.name]
