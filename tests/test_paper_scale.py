"""Paper-scale smoke tests (marked slow; a few seconds each).

These construct the true Table I instances and verify the counted
quantities at full size — the reproduction's strongest claims are checked
at the paper's own scale, not only on the twins.
"""

import pytest

from repro.core.cost_model import table1_row
from repro.fabric.lft import min_blocks_for_lid_count
from repro.fabric.presets import paper_fattree
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager

pytestmark = pytest.mark.slow


class TestPaperScale324:
    @pytest.fixture(scope="class")
    def routed_324(self):
        built = paper_fattree(324)
        sm = SubnetManager(built.topology, built=built, engine="ftree")
        sm.initial_configure(with_discovery=False)
        return built, sm

    def test_table1_row_from_real_subnet(self, routed_324):
        built, sm = routed_324
        assert sm.lids_consumed == 360
        assert min_blocks_for_lid_count(sm.lids_consumed) == 6
        assert sm.full_reconfigure().lft_smps == 216

    def test_migration_smps_within_bounds(self, routed_324):
        from repro.core.reconfig import VSwitchReconfigurer

        built, sm = routed_324
        topo = built.topology
        lid_a = sm.lid_manager.assign_extra_lid(topo.hcas[0].port(1))
        lid_b = sm.lid_manager.assign_extra_lid(topo.hcas[-1].port(1))
        sm.compute_routing()
        sm.distribute()
        report = VSwitchReconfigurer(sm).swap_lids(lid_a, lid_b)
        assert 1 <= report.lft_smps <= 2 * 36
        assert report.path_compute_seconds == 0.0

    def test_routing_spot_validated(self, routed_324):
        built, sm = routed_324
        request = RoutingRequest.from_topology(built.topology, built=built)
        tables = sm.current_tables
        for src in range(0, request.num_switches, 5):
            for t in request.terminals[::37]:
                tables.trace_path(request, src, t.lid)


class TestPaperScale5832:
    def test_construction_and_counts(self):
        built = paper_fattree(5832)
        topo = built.topology
        assert topo.num_switches == 972
        assert topo.num_hcas == 5832
        sm = SubnetManager(topo, built=built)
        sm.assign_lids()
        assert sm.lids_consumed == 6804
        row = table1_row(5832, 972)
        assert row.min_smps_full_reconfig == 104004
        assert row.max_smps_swap == 1944

    def test_ftree_routes_at_scale(self):
        built = paper_fattree(5832)
        sm = SubnetManager(built.topology, built=built, engine="ftree")
        sm.assign_lids()
        request = RoutingRequest.from_topology(built.topology, built=built)
        tables = create_engine("ftree").timed_compute(request)
        # Spot-check deliveries from every layer of the tree.
        for src in (0, 400, 900):
            for t in request.terminals[::977]:
                tables.trace_path(request, src, t.lid)
        # PCt at this scale stays interactive for the structured engine.
        assert tables.compute_seconds < 30


class TestPaperScale11664Counts:
    def test_arithmetic_only(self):
        # Construction of the largest instance is cheap enough to verify
        # the node/switch counts directly.
        built = paper_fattree(11664, attach_hosts=False)
        assert built.topology.num_switches == 1620
        free_host_ports = sum(
            1
            for sw in built.leaves
            for p in sw.free_ports()
        )
        assert free_host_ports == 11664
