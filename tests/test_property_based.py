"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import LFT_BLOCK_SIZE, LFT_UNSET, MAX_UNICAST_LID
from repro.fabric.addressing import LidAllocator
from repro.fabric.lft import (
    LinearForwardingTable,
    lft_block_of,
    min_blocks_for_lid_count,
)
from repro.sim.engine import replay_smp_pipeline
from repro.sm.deadlock import ChannelDependencyGraph

lids = st.integers(min_value=1, max_value=2000)
ports = st.integers(min_value=0, max_value=254)


class TestLftProperties:
    @given(a=lids, b=lids, pa=ports, pb=ports)
    def test_swap_is_involution(self, a, b, pa, pb):
        if a == b:
            return
        lft = LinearForwardingTable(top_lid=2048)
        lft.set(a, pa)
        lft.set(b, pb)
        lft.swap(a, b)
        lft.swap(a, b)
        assert lft.get(a) == pa and lft.get(b) == pb

    @given(a=lids, b=lids, pa=ports, pb=ports)
    def test_swap_changes_at_most_two_blocks(self, a, b, pa, pb):
        if a == b:
            return
        lft = LinearForwardingTable(top_lid=2048)
        lft.set(a, pa)
        lft.set(b, pb)
        before = lft.clone()
        lft.swap(a, b)
        changed = before.diff_blocks(lft)
        assert len(changed) <= 2
        for blk in changed:
            assert blk in (lft_block_of(a), lft_block_of(b))

    @given(a=lids, b=lids, pa=ports)
    def test_copy_changes_at_most_one_block(self, a, b, pa):
        if a == b:
            return
        lft = LinearForwardingTable(top_lid=2048)
        lft.set(a, pa)
        before = lft.clone()
        lft.copy_entry(a, b)
        changed = before.diff_blocks(lft)
        assert len(changed) <= 1
        assert lft.get(b) == pa

    @given(st.dictionaries(lids, ports, max_size=50))
    def test_diff_blocks_equals_block_cover_of_changes(self, entries):
        base = LinearForwardingTable(top_lid=2048)
        other = base.clone()
        for lid, port in entries.items():
            other.set(lid, port)
        real_changes = {
            lft_block_of(lid)
            for lid, port in entries.items()
            if port != LFT_UNSET
        }
        assert set(base.diff_blocks(other)) == real_changes

    @given(st.integers(min_value=0, max_value=49151))
    def test_min_blocks_monotone_and_tight(self, n):
        m = min_blocks_for_lid_count(n)
        assert m * LFT_BLOCK_SIZE >= n
        if n:
            assert (m - 1) * LFT_BLOCK_SIZE <= n  # no slack of a full block
            assert min_blocks_for_lid_count(n - 1) <= m

    @given(
        block=st.integers(min_value=0, max_value=30),
        values=st.lists(ports, min_size=64, max_size=64),
    )
    def test_load_get_block_roundtrip(self, block, values):
        lft = LinearForwardingTable(top_lid=2048)
        payload = np.asarray(values, dtype=np.int16)
        lft.load_block(block, payload)
        assert np.array_equal(lft.get_block(block), payload)


class TestLidAllocatorProperties:
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=30)),
            max_size=60,
        )
    )
    def test_never_double_allocates(self, ops):
        alloc = LidAllocator(first=1, last=200)
        held = []
        for is_alloc, idx in ops:
            if is_alloc or not held:
                lid = alloc.allocate()
                assert lid not in held
                held.append(lid)
            else:
                lid = held.pop(idx % len(held))
                alloc.release(lid)
        assert alloc.allocated_count == len(held)
        assert sorted(held) == list(alloc.allocated())

    @given(st.sets(st.integers(min_value=1, max_value=500), max_size=40))
    def test_assign_then_allocate_avoids_collisions(self, fixed):
        alloc = LidAllocator(first=1, last=1000)
        for lid in fixed:
            alloc.assign(lid)
        fresh = {alloc.allocate() for _ in range(40)}
        assert not fresh & fixed


class TestCdgProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
                st.integers(min_value=0, max_value=6),
            ),
            max_size=40,
        )
    )
    def test_try_add_preserves_acyclicity(self, triples):
        cdg = ChannelDependencyGraph()
        for a, b, c in triples:
            if a == b or b == c:
                continue
            cdg.try_add_dependencies([(((a, b)), ((b, c)))])
            assert cdg.is_acyclic()

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=30,
        )
    )
    def test_find_cycle_returns_real_cycle(self, triples):
        cdg = ChannelDependencyGraph()
        for a, b, c in triples:
            if a == b or b == c:
                continue
            cdg.add_dependency(((a, b), (b, c)))
        cycle = cdg.find_cycle()
        if cycle is not None:
            # Consecutive channels must chain, and the loop must close.
            n = len(cycle)
            assert n >= 1
            for i in range(n):
                cur, nxt = cycle[i], cycle[(i + 1) % n]
                assert cur[1] == nxt[0]


class TestPipelineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=16),
    )
    def test_pipeline_bounds(self, lats, window):
        t = replay_smp_pipeline(lats, window)
        assert t <= sum(lats) + 1e-9
        assert t >= max(lats) - 1e-9
        assert t >= sum(lats) / window - 1e-9

    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    def test_window_one_is_serial(self, lats):
        assert replay_smp_pipeline(lats, 1) == sum(lats)

    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_wider_window_never_slower(self, lats, window):
        assert (
            replay_smp_pipeline(lats, window + 1)
            <= replay_smp_pipeline(lats, window) + 1e-9
        )
