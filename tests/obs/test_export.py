"""Tests for run export/replay: JSONL round trips and renderers."""

import pytest

from repro.errors import ReproError
from repro.obs import (
    export_run,
    get_hub,
    load_run,
    render_span_tree,
    render_timeline,
    span,
)
from tests.conftest import make_cloud


class TestRoundTrip:
    def test_recorded_migration_round_trips(self, small_fattree, tmp_path):
        cloud = make_cloud(small_fattree, lid_scheme="dynamic")
        vm = cloud.boot_vm()
        dest = next(
            name
            for name, h in cloud.hypervisors.items()
            if name != vm.hypervisor_name and h.has_capacity()
        )
        report = cloud.live_migrate(vm.name, dest)

        path = tmp_path / "trace.jsonl"
        lines = export_run(get_hub(), path)
        assert lines > 0

        loaded = load_run(path)
        migration = loaded.find_root("migration")
        assert migration is not None
        assert migration.attributes["vm"] == vm.name
        assert migration.attributes["mode"] == "copy"
        # The n'·m' witness survives the round trip exactly.
        assert migration.total_lft_smp_count() == report.reconfig.lft_smps
        assert (
            migration.total_lft_smp_count()
            == report.switches_updated
            * report.reconfig.max_blocks_on_one_switch
        )
        # The flight recorder's LFT events for the migration window match.
        # Event times stamp the clock *after* delivery, so the window is
        # half-open at the start.
        lft_events = [e for e in loaded.smp_events if e.lft_update]
        in_window = [
            e
            for e in lft_events
            if migration.start_time < e.time <= migration.end_time
        ]
        assert len(in_window) == report.reconfig.lft_smps

    def test_header_counts(self, tmp_path):
        hub = get_hub()
        with span("a"):
            with span("b"):
                pass
        path = tmp_path / "run.jsonl"
        export_run(hub, path)
        loaded = load_run(path)
        assert loaded.header["spans"] == 2
        assert loaded.header["smp_events"] == 0
        assert [r.name for r in loaded.roots] == ["a"]
        assert [c.name for c in loaded.roots[0].children] == ["b"]

    def test_open_span_survives(self, tmp_path):
        hub = get_hub()
        hub.start_span("unfinished")
        path = tmp_path / "run.jsonl"
        export_run(hub, path)
        loaded = load_run(path)
        assert loaded.roots[0].is_open

    def test_invalid_json_reports_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "run"}\nnot json\n', encoding="utf-8")
        with pytest.raises(ReproError, match="bad.jsonl:2"):
            load_run(path)


class TestRenderers:
    def test_span_tree_indents_and_counts(self):
        with span("root", phase="demo") as root:
            with span("leaf") as leaf:
                leaf.record_smp(0.0, lft_update=True)
        text = render_span_tree([root])
        lines = text.splitlines()
        assert lines[0].startswith("root @")
        assert "phase=demo" in lines[0]
        assert lines[1].startswith("  leaf @")
        assert "lft_smps=1" in lines[1]

    def test_timeline_merges_and_caps(self):
        from tests.obs.test_obs import _event

        with span("op") as sp:
            get_hub().advance(1.0)
        events = [_event(i) for i in range(5)]
        text = render_timeline([sp], events, max_smp_lines=2)
        assert "> start op" in text
        assert "< end   op" in text
        assert text.count("| smp") == 2
        assert "3 more SMP events" in text
