"""Tests for the observability core: spans, hub, flight recorder."""

import pytest

from repro.mad.smp import Smp, SmpKind, SmpMethod
from repro.mad.transport import SmpTransport
from repro.obs import (
    MAX_EVENTS_PER_SPAN,
    FlightRecorder,
    SmpFlightEvent,
    current_span,
    get_hub,
    reset_hub,
    span,
)


def _event(i, **overrides):
    base = dict(
        time=float(i),
        kind="lft_block",
        method="set",
        target=f"s{i}",
        hops=2,
        directed=True,
        latency=1e-6,
        lft_update=True,
    )
    base.update(overrides)
    return SmpFlightEvent(**base)


class TestSpans:
    def test_nesting_via_context(self):
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert current_span() is inner
                assert inner.parent_id == outer.span_id
            assert current_span() is outer
        assert current_span() is None
        assert outer.children == [inner]
        assert get_hub().roots[-1] is outer

    def test_siblings_share_parent(self):
        with span("parent") as parent:
            with span("a"):
                pass
            with span("b"):
                pass
        assert [c.name for c in parent.children] == ["a", "b"]

    def test_span_times_follow_sim_clock(self):
        hub = get_hub()
        with span("timed") as sp:
            hub.advance(2.5)
        assert sp.start_time == 0.0
        assert sp.end_time == 2.5
        assert sp.duration == 2.5
        assert not sp.is_open

    def test_exception_recorded_and_reraised(self):
        with pytest.raises(ValueError):
            with span("doomed") as sp:
                raise ValueError("boom")
        assert sp.attributes["error"] == "ValueError"
        assert not sp.is_open  # ended despite the exception

    def test_smp_counters_exact_past_event_cap(self):
        with span("big") as sp:
            for i in range(MAX_EVENTS_PER_SPAN + 5):
                sp.record_smp(float(i), lft_update=(i % 2 == 0))
        assert sp.smp_count == MAX_EVENTS_PER_SPAN + 5
        assert len(sp.events) == MAX_EVENTS_PER_SPAN
        assert sp.events_dropped == 5
        assert sp.lft_smp_count == (MAX_EVENTS_PER_SPAN + 5 + 1) // 2

    def test_subtree_totals(self):
        with span("root") as root:
            root.record_smp(0.0, lft_update=False)
            with span("child") as child:
                child.record_smp(0.0, lft_update=True)
                child.record_smp(0.0, lft_update=True)
        assert root.total_smp_count() == 3
        assert root.total_lft_smp_count() == 2
        assert root.find("child") is child
        assert root.find_all("child") == [child]

    def test_reset_hub_clears_everything(self):
        with span("stale"):
            get_hub().advance(1.0)
            get_hub().metrics.counter("stale_total").add(1)
        reset_hub()
        hub = get_hub()
        assert hub.roots == []
        assert hub.now() == 0.0
        assert len(hub.flight) == 0
        assert len(hub.metrics) == 0


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record(_event(i))
        assert len(rec) == 3
        assert rec.seen == 5
        assert rec.dropped == 2
        assert [e.target for e in rec] == ["s2", "s3", "s4"]

    def test_capacity_zero_disables(self):
        rec = FlightRecorder(capacity=0)
        rec.record(_event(0))
        assert not rec.enabled
        assert len(rec) == 0
        assert rec.seen == 0
        assert rec.dropped == 0

    def test_filters(self):
        rec = FlightRecorder(capacity=16)
        rec.record(_event(0, kind="node_info", lft_update=False))
        rec.record(_event(1))
        assert [e.target for e in rec.of_kind("lft_block")] == ["s1"]
        assert [e.target for e in rec.lft_updates()] == ["s1"]
        assert rec.by_kind() == {"node_info": 1, "lft_block": 1}

    def test_jsonl_round_trip(self, tmp_path):
        rec = FlightRecorder(capacity=8)
        for i in range(3):
            rec.record(_event(i))
        path = tmp_path / "flight.jsonl"
        assert rec.to_jsonl(path) == 3
        back = FlightRecorder.from_jsonl(path)
        assert list(back) == list(rec)


class TestTransportIntegration:
    def test_send_feeds_hub_span_and_metrics(self):
        from repro.constants import LFT_BLOCK_SIZE
        from repro.mad.smp import make_set_lft_block

        import numpy as np

        topo = _line_topology()
        tr = SmpTransport(topo, hop_latency=1.0, dr_overhead=0.0)
        with span("op") as sp:
            tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s1"))
            tr.send(make_set_lft_block("s0", 0, np.zeros(LFT_BLOCK_SIZE)))
        hub = get_hub()
        assert sp.smp_count == 2
        assert sp.lft_smp_count == 1
        assert len(hub.flight) == 2
        # The sim clock advanced by the serial latency of both sends.
        assert hub.now() == pytest.approx(tr.stats.serial_time)
        assert (
            hub.metrics.counter(
                "repro_smp_total", kind="lft_block", routed="directed"
            ).value
            == 1
        )

    def test_send_outside_any_span_still_flies(self):
        topo = _line_topology()
        tr = SmpTransport(topo)
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s0"))
        assert current_span() is None
        assert len(get_hub().flight) == 1


def _line_topology():
    from repro.fabric.topology import Topology

    topo = Topology("line")
    s0, s1 = topo.add_switch("s0", 4), topo.add_switch("s1", 4)
    h0 = topo.add_hca("h0")
    topo.connect(h0, 1, s0, 1)
    topo.connect(s0, 2, s1, 1)
    return topo
