"""Flight-recorder bounds and JSONL round-trip under telemetry load.

The issue's satellite: drive a 10k-packet data-plane run with PerfManager
sweeps interleaved, with a deliberately small flight ring, and prove the
recorder (a) stays bounded while counting evictions and (b) round-trips
its retained telemetry events (``port_counters`` kind included) through
JSONL losslessly.
"""

from repro.fabric.builders.generic import build_single_switch
from repro.obs import get_hub, reset_hub
from repro.sm.subnet_manager import SubnetManager
from repro.telemetry import TelemetryHarness

#: Small enough that a run's MAD traffic (bring-up + 4 sweeps over the
#: single-switch fabric) overflows it, proving eviction accounting.
RING_CAPACITY = 24


def telemetry_run(packets: int = 10_000):
    """Single-switch fabric: *packets* data-plane packets + 4 sweeps."""
    reset_hub(flight_capacity=RING_CAPACITY)
    built = build_single_switch(8)
    sm = SubnetManager(built.topology, engine="minhop", built=built)
    sm.initial_configure(with_discovery=False)
    harness = TelemetryHarness(sm, max_endpoints=8)
    eps = harness.endpoints()
    flows = [
        (eps[i % len(eps)], eps[(i + 1 + i // len(eps)) % len(eps)])
        for i in range(packets)
    ]
    # Drop self-flows introduced by the modular stride.
    flows = [(s, d) if s != d else (s, eps[0] if s != eps[0] else eps[1]) for s, d in flows]
    per_burst = packets // 4
    for i in range(4):
        harness.burst(flows[i * per_burst : (i + 1) * per_burst])
        harness.sweep()
    return sm, harness


class TestFlightBoundsUnderTelemetry:
    def test_ring_stays_bounded_and_counts_evictions(self):
        sm, harness = telemetry_run()
        flight = get_hub().flight
        assert harness.injected == 10_000
        assert len(flight) == RING_CAPACITY
        assert flight.seen > RING_CAPACITY
        assert flight.dropped == flight.seen - len(flight)
        # Sweep MADs (PortCounters GETs) are what filled the ring: the
        # run's tail is all telemetry traffic.
        assert flight.by_kind()["port_counters"] > 0
        assert len(flight.of_kind("port_counters")) == (
            flight.by_kind()["port_counters"]
        )

    def test_jsonl_round_trip_is_lossless(self, tmp_path):
        telemetry_run(packets=2_000)
        flight = get_hub().flight
        path = tmp_path / "flight.jsonl"
        written = flight.to_jsonl(path)
        assert written == len(flight)
        loaded = type(flight).from_jsonl(path, capacity=RING_CAPACITY)
        assert loaded.events() == flight.events()
        assert loaded.by_kind() == flight.by_kind()
        assert "port_counters" in loaded.by_kind()
