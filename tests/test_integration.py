"""End-to-end integration tests across the whole stack.

These exercise the exact claims of the paper on a running simulated cloud:
zero path computation per migration, bounded SMP counts, address
persistence, routing validity after long churn+migration histories, and the
traditional-baseline comparison.
"""

import numpy as np
import pytest

from repro.constants import LFT_UNSET
from repro.core.cost_model import table1_row
from repro.fabric.presets import scaled_fattree
from repro.sm.routing.base import RoutingRequest
from repro.analysis.verification import verify_subnet
from repro.workloads.churn import ChurnWorkload
from repro.workloads.migration_patterns import ANY, MigrationPlanner
from tests.conftest import make_cloud


def assert_all_routable(cloud):
    """Every bound LID is deliverable from every switch per the hardware
    LFTs (not the SM's recollection)."""
    topo = cloud.topology
    lid_to_leafport = {}
    for lid in topo.bound_lids():
        port = topo.port_of_lid(lid)
        attach = port.remote
        if attach is None:  # switch self-LID
            lid_to_leafport[lid] = (port.node.index, 0)
        else:
            lid_to_leafport[lid] = (attach.node.index, attach.num)
    switches = topo.switches
    for lid, (dest_sw, dest_port) in lid_to_leafport.items():
        for start in switches:
            cur = start
            hops = 0
            while True:
                if cur.index == dest_sw:
                    if dest_port == 0:
                        break
                    assert cur.lft.get(lid) == dest_port, (
                        f"LID {lid} misdelivered at destination leaf"
                    )
                    break
                out = cur.lft.get(lid)
                assert out != LFT_UNSET, f"LID {lid} unroutable at {cur.name}"
                nxt = None
                for p in cur.connected_ports():
                    if p.num == out:
                        nxt = p.remote.node
                assert nxt is not None and nxt.is_switch
                cur = nxt
                hops += 1
                assert hops <= len(switches), f"loop for LID {lid}"


class TestLongRunningCloud:
    @pytest.mark.parametrize("scheme", ["prepopulated", "dynamic"])
    def test_churn_then_migrations_keep_subnet_consistent(self, scheme):
        built = scaled_fattree("2l-small")
        cloud = make_cloud(built, lid_scheme=scheme, num_vfs=3)
        # Static analysis (CDG, reachability) before any reconfiguration...
        verify_subnet(cloud.sm).raise_if_failed()
        churn = ChurnWorkload(cloud, seed=11, target_utilization=0.5)
        churn.run(80)
        planner = MigrationPlanner(cloud, built, seed=11)
        executed = 0
        for _ in range(15):
            plan = planner.plan_one(ANY)
            if plan is None:
                break
            cloud.live_migrate(*plan)
            executed += 1
        assert executed >= 10
        assert_all_routable(cloud)
        # ...and after the full churn + migration history.
        verify_subnet(cloud.sm).raise_if_failed()

    @pytest.mark.parametrize("scheme", ["prepopulated", "dynamic"])
    def test_no_path_computation_during_operations(self, scheme):
        built = scaled_fattree("2l-small")
        cloud = make_cloud(built, lid_scheme=scheme, num_vfs=3)
        tables_obj = cloud.sm.current_tables
        ChurnWorkload(cloud, seed=2).run(40)
        planner = MigrationPlanner(cloud, built, seed=2)
        for _ in range(5):
            plan = planner.plan_one(ANY)
            if plan:
                cloud.live_migrate(*plan)
        # The SM never recomputed routing: same tables object, and PCt
        # was only ever charged once (at bring-up).
        assert cloud.sm.current_tables is tables_obj

    def test_migration_smps_within_table1_bounds(self):
        built = scaled_fattree("2l-small")
        cloud = make_cloud(built, lid_scheme="prepopulated", num_vfs=3)
        topo = cloud.topology
        row = table1_row(
            topo.num_hcas,
            topo.num_switches,
            extra_lids=3 * topo.num_hcas,
        )
        planner = MigrationPlanner(cloud, built, seed=5)
        ChurnWorkload(cloud, seed=5).run(40)
        for _ in range(10):
            plan = planner.plan_one(ANY)
            if plan is None:
                break
            report = cloud.live_migrate(*plan)
            assert 1 <= report.reconfig.lft_smps <= row.max_smps_swap

    def test_migrated_vm_round_trip_restores_lfts(self):
        built = scaled_fattree("2l-small")
        cloud = make_cloud(built, lid_scheme="prepopulated", num_vfs=3)
        vm = cloud.boot_vm(on="l0h0")
        snapshot = {
            sw.name: sw.lft.as_array().copy() for sw in cloud.topology.switches
        }
        cloud.live_migrate(vm.name, "l4h2")
        cloud.live_migrate(vm.name, "l0h0")
        # Swap-based migration is an involution: the original VF at the
        # destination got its LID back, so all LFTs are restored exactly.
        for sw in cloud.topology.switches:
            assert (sw.lft.as_array() == snapshot[sw.name]).all()

    def test_many_vms_one_hypervisor_distinct_paths(self):
        # The LMC-like property (section V-A): VMs on one hypervisor are
        # reachable through different spines under prepopulation.
        built = scaled_fattree("2l-small")
        cloud = make_cloud(built, lid_scheme="prepopulated", num_vfs=4)
        vms = [cloud.boot_vm(on="l0h0") for _ in range(4)]
        remote_leaf = cloud.hypervisors["l5h0"].uplink_port.remote.node
        up_ports = {remote_leaf.lft.get(vm.lid) for vm in vms}
        assert len(up_ports) > 1


class TestBaselineComparison:
    def test_vswitch_vs_traditional_smps(self):
        # The headline comparison: per-migration SMPs under the vSwitch
        # reconfiguration vs a traditional full reconfiguration.
        built = scaled_fattree("2l-small")
        cloud = make_cloud(built, lid_scheme="prepopulated", num_vfs=3)
        vm = cloud.boot_vm(on="l0h0")
        report = cloud.live_migrate(vm.name, "l5h5")
        full = cloud.sm.full_reconfigure()
        assert report.reconfig.lft_smps < full.lft_smps
        # And a full reconfiguration pays PCt again, the migration did not.
        assert full.path_compute_seconds > 0
        assert report.reconfig.path_compute_seconds == 0

    def test_traditional_full_rc_matches_cost_model(self):
        built = scaled_fattree("2l-small")
        cloud = make_cloud(built, lid_scheme="dynamic", num_vfs=3)
        full = cloud.sm.full_reconfigure()
        topo = cloud.topology
        row = table1_row(topo.num_hcas, topo.num_switches)
        assert full.lft_smps == row.min_smps_full_reconfig


class TestRoutingEnginesInTheCloud:
    @pytest.mark.parametrize("engine", ["minhop", "ftree", "updn"])
    def test_cloud_on_each_engine(self, engine):
        built = scaled_fattree("2l-small")
        cloud = make_cloud(
            built, lid_scheme="prepopulated", num_vfs=2, routing_engine=engine
        )
        vm = cloud.boot_vm(on="l0h0")
        report = cloud.live_migrate(vm.name, "l3h3")
        assert report.reconfig.lft_smps >= 1
        assert_all_routable(cloud)
