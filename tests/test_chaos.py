"""Chaos runs: end-to-end fault injection, the no-third-state property,
deterministic replay, and the ``repro chaos`` CLI."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.fabric.builders import build_two_level_fattree
from repro.fabric.presets import scaled_fattree
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mad.reliable import RetryPolicy
from repro.obs import reset_hub
from repro.virt.cloud import CloudManager
from repro.workloads.chaos import ChaosReport, ChaosRunner
from repro.workloads.churn import ChurnWorkload
from tests.conftest import make_cloud


def tiny_cloud(lid_scheme="prepopulated"):
    """4-leaf fat-tree: big enough to migrate, small enough for loops."""
    built = build_two_level_fattree(4, 2, 2, switch_radix=8)
    cloud = CloudManager(
        built.topology, built=built, lid_scheme=lid_scheme, num_vfs=2
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    return cloud


def lft_snapshot(cloud):
    return {
        sw.name: np.array(sw.lft.as_array(), copy=True)
        for sw in cloud.topology.switches
    }


def lfts_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(a[k], b[k]) for k in a
    )


class TestChaosRunner:
    def test_quiet_plan_run_is_clean(self):
        cloud = tiny_cloud()
        runner = ChaosRunner(cloud, FaultPlan(seed=1))
        report = runner.run(10)
        assert report.ok
        assert report.smp_retries == 0
        assert report.fault_summary["drop"] == 0

    def test_lossy_run_verifies_clean(self):
        cloud = tiny_cloud()
        runner = ChaosRunner(
            cloud,
            FaultPlan(seed=2, smp_drop_rate=0.15),
            retry_policy=RetryPolicy(retries=8),
        )
        report = runner.run(15)
        assert report.verified
        assert not report.verification_failures
        assert report.smp_retries > 0
        assert report.fault_summary["drop"] > 0

    def test_fabric_events_fire_and_fabric_survives(self):
        cloud = make_cloud(scaled_fattree("2l-small"))
        runner = ChaosRunner(
            cloud,
            FaultPlan(seed=3, link_flap_rate=0.4, switch_failure_rate=0.2),
        )
        report = runner.run(8)
        assert report.link_flaps + report.switch_failures > 0
        assert report.reroute_smps > 0
        assert report.ok

    def test_sm_death_elects_successor_that_finishes(self):
        cloud = make_cloud(scaled_fattree("2l-small"))
        runner = ChaosRunner(cloud, FaultPlan(seed=4, sm_death_step=2))
        old_master = runner.redundancy.master.node_name
        report = runner.run(6)
        assert report.sm_failovers == 1
        new_master = runner.redundancy.master
        assert new_master is not None
        assert new_master.node_name != old_master
        assert cloud.sm.transport.sm_node.name == new_master.node_name
        assert report.ok

    def test_migration_overhead_ledger(self):
        cloud = tiny_cloud()
        runner = ChaosRunner(
            cloud,
            FaultPlan(seed=5, smp_drop_rate=0.2),
            retry_policy=RetryPolicy(retries=10),
            migrate_probability=0.8,
        )
        report = runner.run(20)
        assert report.churn.migrations > 0
        assert report.ideal_migration_smps > 0
        assert report.achieved_migration_smps >= report.ideal_migration_smps
        assert report.smp_overhead_ratio >= 1.0
        assert 0.0 <= report.downtime_inflation <= 1.0

    def test_rewire_run_is_clean_and_cold_identical(self):
        cloud = make_cloud(scaled_fattree("2l-small"))
        runner = ChaosRunner(
            cloud, FaultPlan(seed=3, rewire_ops=6, link_flap_rate=0.05)
        )
        report = runner.run(30)
        assert report.ok
        assert report.rewires == 6
        assert report.rewire_kinds  # at least one mutation kind exercised
        # Every mutation passed its post-apply subnet audit, and the
        # final warm tables match a cold recompute byte-for-byte.
        assert not report.rewire_audit_failures
        assert report.final_routing_cold_identical is True
        assert report.rewire_repair_incremental > 0
        text = report.render()
        assert "rewires: 6 performed" in text
        assert "byte-identical" in text

    def test_rewire_repairs_fewer_sources_than_full_sweeps(self):
        cloud = make_cloud(scaled_fattree("2l-small"))
        sm = cloud.sm
        n = cloud.topology.num_switches
        before = sm.routing_state.stats.snapshot()
        runner = ChaosRunner(cloud, FaultPlan(seed=3, rewire_ops=6))
        report = runner.run(30)
        delta = sm.routing_state.stats.delta_since(before)
        assert report.rewires > 0
        assert delta["repairs"] > 0
        # The point of incremental repair: strictly fewer BFS source
        # sweeps than recomputing every source per mutation.
        assert report.rewire_sources_repaired == delta["sources_repaired"]
        assert delta["sources_repaired"] < delta["repairs"] * n

    def test_flap_heal_repairs_incrementally(self):
        """Satellite: a chaos flap's heal rides the addition-repair path —
        no full recompute, and fewer sources reswept than a full sweep."""
        cloud = make_cloud(scaled_fattree("2l-small"))
        sm = cloud.sm
        n = cloud.topology.num_switches
        before = sm.routing_state.stats.snapshot()
        runner = ChaosRunner(cloud, FaultPlan(seed=7, link_flap_rate=0.5))
        report = runner.run(10)
        delta = sm.routing_state.stats.delta_since(before)
        assert report.link_flaps > 0
        assert report.ok
        assert delta["full_recomputes"] == 0
        # Each flap costs two repairs (down + heal), each resweeping a
        # strict subset of the fabric's sources.
        assert delta["repairs"] >= 2 * report.link_flaps
        assert 0 < delta["sources_repaired"] < delta["repairs"] * n

    def test_render_is_complete(self):
        report = ChaosReport(steps=5, plan="seed=1")
        report.verified = True
        text = report.render()
        assert "verification: clean" in text
        report.verification_failures = ["LID 7 at s0: wrong port"]
        assert "FAILED" in report.render()
        assert not report.ok


class TestDeterminism:
    def test_identical_seeds_replay_bit_identically(self):
        def one_run():
            reset_hub()
            cloud = tiny_cloud()
            runner = ChaosRunner(
                cloud,
                FaultPlan(
                    seed=11, smp_drop_rate=0.2, link_flap_rate=0.1
                ),
                retry_policy=RetryPolicy(retries=8),
                migrate_probability=0.3,
            )
            report = runner.run(15)
            return report.render(), lft_snapshot(cloud)

        text_a, lfts_a = one_run()
        text_b, lfts_b = one_run()
        assert text_a == text_b
        assert lfts_equal(lfts_a, lfts_b)

    def test_quiet_injector_is_zero_cost(self):
        """With no faults configured, attaching the machinery changes
        nothing: churn reports are bit-identical to a bare run."""

        def churn_report(attach_quiet_injector):
            reset_hub()
            cloud = tiny_cloud()
            if attach_quiet_injector:
                cloud.sm.transport.set_fault_injector(
                    FaultInjector(FaultPlan(seed=0))
                )
            report = ChurnWorkload(cloud, seed=6).run(25)
            return report, cloud.sm.transport.stats.snapshot()

        bare, bare_stats = churn_report(False)
        wired, wired_stats = churn_report(True)
        assert bare == wired
        assert bare_stats == wired_stats


class TestNoThirdState:
    """The headline robustness property: a migration under SMP loss with
    retries either completes with the exact fault-free forwarding state
    or rolls back to the exact pre-migration state — never in between."""

    _reference = None

    @classmethod
    def reference_lfts(cls):
        if cls._reference is None:
            cloud = tiny_cloud()
            pre = lft_snapshot(cloud)
            for _ in range(2):
                cloud.boot_vm()
            vm = cloud.vms["vm1"]
            dest = next(
                h.name
                for h in cloud.hypervisors.values()
                if h.name != vm.hypervisor_name and h.has_capacity()
            )
            pre = lft_snapshot(cloud)
            cloud.live_migrate("vm1", dest)
            cls._reference = (dest, pre, lft_snapshot(cloud))
        return cls._reference

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        drop=st.floats(min_value=0.0, max_value=0.3),
        corrupt=st.floats(min_value=0.0, max_value=0.15),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_lossy_migration_has_no_third_state(self, drop, corrupt, seed):
        reset_hub()
        dest, pre_lfts, completed_lfts = self.reference_lfts()
        cloud = tiny_cloud()
        cloud.sm.enable_resilience(RetryPolicy(retries=16))
        for _ in range(2):
            cloud.boot_vm()
        cloud.sm.transport.set_fault_injector(
            FaultInjector(
                FaultPlan(
                    seed=seed,
                    smp_drop_rate=drop,
                    smp_corrupt_rate=corrupt,
                )
            )
        )
        report = cloud.live_migrate("vm1", dest)
        cloud.sm.transport.set_fault_injector(None)
        final = lft_snapshot(cloud)
        assert report.outcome in ("completed", "rolled_back")
        if report.outcome == "completed":
            assert lfts_equal(final, completed_lfts)
        else:
            assert lfts_equal(final, pre_lfts)


class TestChaosCli:
    def test_chaos_smoke_exits_zero(self, capsys):
        rc = main(
            [
                "chaos",
                "--inject",
                "smp-drop=0.1",
                "--steps",
                "10",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "verification: clean" in out

    def test_bad_spec_exits_two(self, capsys):
        rc = main(["chaos", "--inject", "gremlins=1"])
        assert rc == 2

    def test_bad_profile_exits_two(self, capsys):
        rc = main(["chaos", "--profile", "moebius"])
        assert rc == 2
