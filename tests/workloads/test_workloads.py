"""Tests for the workload generators: churn, migration patterns, traffic."""

import pytest

from repro.errors import VirtError
from repro.sm.routing.base import RoutingRequest
from repro.workloads.churn import ChurnWorkload
from repro.workloads.migration_patterns import (
    ANY,
    INTER_POD,
    INTRA_LEAF,
    INTRA_POD,
    MigrationPlanner,
)
from repro.workloads.traffic import all_to_all_flows, link_loads
from tests.conftest import make_cloud


class TestChurn:
    def test_prepopulated_boots_cost_zero_smps(self, small_fattree):
        cloud = make_cloud(small_fattree, lid_scheme="prepopulated")
        churn = ChurnWorkload(cloud, seed=1, target_utilization=0.4)
        report = churn.run(60)
        assert report.boots > 0
        assert report.total_boot_smps == 0

    def test_dynamic_boots_cost_smps(self, small_fattree):
        cloud = make_cloud(small_fattree, lid_scheme="dynamic")
        churn = ChurnWorkload(cloud, seed=1, target_utilization=0.4)
        report = churn.run(60)
        assert report.boots > 0
        assert report.mean_boot_smps > 0
        # Section V-B: at most one SMP per switch per boot.
        n = cloud.topology.num_switches
        assert all(s <= n for s in report.boot_lft_smps)

    def test_hovers_near_target(self, small_fattree):
        cloud = make_cloud(small_fattree, lid_scheme="prepopulated")
        churn = ChurnWorkload(cloud, seed=3, target_utilization=0.5)
        churn.run(200)
        utilization = cloud.running_vm_count / cloud.total_capacity
        assert 0.2 < utilization < 0.8

    def test_reproducible(self, small_fattree):
        a = make_cloud(small_fattree, lid_scheme="prepopulated")
        r1 = ChurnWorkload(a, seed=9).run(50)
        from repro.fabric.presets import scaled_fattree

        b = make_cloud(scaled_fattree("2l-small"), lid_scheme="prepopulated")
        r2 = ChurnWorkload(b, seed=9).run(50)
        assert (r1.boots, r1.stops) == (r2.boots, r2.stops)

    def test_bad_utilization_rejected(self, prepopulated_cloud):
        with pytest.raises(VirtError):
            ChurnWorkload(prepopulated_cloud, target_utilization=0.0)


class TestMigrationPlanner:
    @pytest.fixture
    def planned(self, small_3l_fattree):
        cloud = make_cloud(small_3l_fattree, lid_scheme="prepopulated", num_vfs=2)
        planner = MigrationPlanner(cloud, small_3l_fattree, seed=4)
        for _ in range(20):
            cloud.boot_vm()
        return cloud, planner

    def test_classification(self, planned):
        cloud, planner = planned
        h = list(cloud.hypervisors.values())
        same_leaf = [
            x
            for x in h
            if x is not h[0] and planner.leaf_of(x) is planner.leaf_of(h[0])
        ]
        assert same_leaf, "siblings must exist in a fat-tree"
        assert planner.classify(h[0], same_leaf[0]) == INTRA_LEAF

    def test_plan_one_per_class(self, planned):
        cloud, planner = planned
        for klass in (INTRA_LEAF, INTRA_POD, INTER_POD, ANY):
            plan = planner.plan_one(klass)
            assert plan is not None
            vm_name, dest = plan
            src = cloud.hypervisors[cloud.vms[vm_name].hypervisor_name]
            if klass != ANY:
                assert planner.classify(src, cloud.hypervisors[dest]) == klass

    def test_intra_leaf_updates_fewer_switches(self, planned):
        # The section VI-D gradient: farther migrations touch more switches.
        cloud, planner = planned
        intra = planner.plan_batch(INTRA_LEAF, 5)
        inter = planner.plan_batch(INTER_POD, 5)
        obs_intra = planner.execute(intra)
        obs_inter = planner.execute(inter)
        mean = lambda xs: sum(xs) / len(xs)
        assert mean(obs_intra[INTRA_LEAF]) < mean(obs_inter[INTER_POD])

    def test_batch_uses_distinct_vms(self, planned):
        cloud, planner = planned
        batch = planner.plan_batch(ANY, 10)
        names = [vm for vm, _ in batch]
        assert len(names) == len(set(names))


class TestTraffic:
    def test_all_to_all_flow_count(self):
        flows = all_to_all_flows([1, 2, 3])
        assert len(flows) == 6
        assert (1, 1) not in flows

    def test_link_loads_balanced_fattree(self, routed_fattree):
        built, sm, request = routed_fattree
        lids = [t.lid for t in request.terminals]
        report = link_loads(sm.current_tables, request, all_to_all_flows(lids))
        assert report.max_load > 0
        # MinHop with lid-mod spreads uniform all-to-all quite evenly.
        assert report.imbalance < 2.0

    def test_dynamic_scheme_worsens_balance(self, small_fattree):
        # Section V-B: dynamic assignment "compromises on the traffic
        # balancing" — VM LIDs inherit their PF's path, so VM-to-VM traffic
        # concentrates on PF paths, unlike prepopulated VF LIDs.
        from repro.fabric.presets import scaled_fattree

        prep = make_cloud(scaled_fattree("2l-small"), lid_scheme="prepopulated")
        dyn = make_cloud(scaled_fattree("2l-small"), lid_scheme="dynamic")
        reports = {}
        for name, cloud in (("prep", prep), ("dyn", dyn)):
            for hyp in list(cloud.hypervisors.values()):
                for _ in range(2):
                    cloud.boot_vm(on=hyp.name)
            req = RoutingRequest.from_topology(cloud.topology)
            vm_lids = [vm.lid for vm in cloud.vms.values()]
            reports[name] = link_loads(
                cloud.sm.current_tables, req, all_to_all_flows(vm_lids)
            )
        assert reports["dyn"].imbalance >= reports["prep"].imbalance

    def test_unrouted_flow_rejected(self, routed_fattree):
        from repro.errors import RoutingError

        built, sm, request = routed_fattree
        with pytest.raises(RoutingError):
            link_loads(sm.current_tables, request, [(1, 40000)])
