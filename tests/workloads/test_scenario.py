"""Tests for the scripted scenario runner."""

import pytest

from repro.fabric.presets import scaled_fattree
from repro.workloads.scenario import Scenario
from tests.conftest import make_cloud


@pytest.fixture
def scenario():
    built = scaled_fattree("2l-small")
    cloud = make_cloud(built, num_vfs=3, routing_engine="minhop")
    return Scenario(cloud, built, seed=13)


class TestPrimitives:
    def test_boot_traced(self, scenario):
        scenario.boot(count=3)
        assert scenario.summary.boots == 3
        recs = scenario.trace.of_kind("boot")
        assert len(recs) == 3
        assert all("lid" in r.detail for r in recs)

    def test_stop_traced(self, scenario):
        scenario.boot(count=2)
        scenario.stop(count=1)
        assert scenario.summary.stops == 1
        assert scenario.trace.last("stop") is not None

    def test_migrate_records_costs(self, scenario):
        scenario.boot(count=4)
        scenario.migrate(count=2)
        assert scenario.summary.migrations == 2
        assert scenario.summary.migration_lft_smps > 0
        for rec in scenario.trace.of_kind("migrate"):
            assert rec.detail["smps"] >= 1
            assert rec.detail["n_prime"] >= 1

    def test_failure_and_repair(self, scenario):
        scenario.boot(count=2)
        assert scenario.fail_random_link()
        assert scenario.summary.failures == 1
        assert scenario.summary.failure_lft_smps > 0
        assert scenario.repair_links() == 1
        assert scenario.summary.repairs == 1

    def test_trace_times_monotone(self, scenario):
        scenario.boot(count=3)
        scenario.migrate(count=1)
        times = [r.time for r in scenario.trace]
        assert times == sorted(times)

    def test_boot_stops_when_full(self, scenario):
        scenario.boot(count=10_000)
        assert scenario.summary.boots == scenario.cloud.total_capacity


class TestBusinessDay:
    def test_full_script(self, scenario):
        summary = scenario.business_day()
        assert summary.boots > 0
        assert summary.migrations >= 5
        assert summary.failures <= 1
        # Migrations never pay path computation: PCt only for fabric events.
        assert summary.path_computations == summary.failures + summary.repairs
        kinds = scenario.trace.kinds()
        assert "boot" in kinds and "migrate" in kinds

    def test_reproducible(self):
        built_a = scaled_fattree("2l-small")
        a = Scenario(make_cloud(built_a, num_vfs=3), built_a, seed=99)
        built_b = scaled_fattree("2l-small")
        b = Scenario(make_cloud(built_b, num_vfs=3), built_b, seed=99)
        assert a.business_day().as_dict() == b.business_day().as_dict()

    def test_subnet_consistent_afterwards(self, scenario):
        scenario.business_day()
        cloud = scenario.cloud
        # Every running VM still reachable through the hardware LFTs.
        from repro.sim.dataplane import DataPlaneSimulator

        sim = DataPlaneSimulator(cloud.topology)
        src = cloud.topology.hcas[0].lid
        n = 0
        for vm in cloud.vms.values():
            if vm.is_running and vm.lid != src:
                sim.inject(src, vm.lid)
                n += 1
        stats = sim.run()
        assert stats.delivered == n
