"""Stateful property-based testing of the cloud (hypothesis state machines).

Random interleavings of VM boots, stops and live migrations must preserve
the subnet's core invariants at every step:

* every VM's LID is bound to its hypervisor's uplink port;
* the switches' hardware LFTs agree with the SM's recorded routing;
* every running VM is reachable from every leaf switch by walking the
  hardware LFTs;
* LID accounting never leaks or double-assigns.
"""

import pytest
from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.constants import LFT_UNSET
from repro.fabric.presets import scaled_fattree
from repro.virt.cloud import CloudManager


def _walk(topology, start_switch, lid, max_hops=32):
    """Follow hardware LFTs from *start_switch* to *lid*'s host port."""
    cur = start_switch
    for _ in range(max_hops):
        port = topology.port_of_lid(lid)
        attach = port.remote
        if attach is not None and attach.node is cur:
            return cur.lft.get(lid) == attach.num
        out = cur.lft.get(lid)
        if out == LFT_UNSET:
            return False
        nxt = None
        for p in cur.connected_ports():
            if p.num == out:
                nxt = p.remote.node
        if nxt is None or not nxt.is_switch:
            return False
        cur = nxt
    return False


class CloudMachine(RuleBasedStateMachine):
    """Drives one cloud with random lifecycle operations."""

    scheme = "prepopulated"

    @initialize()
    def setup(self):
        built = scaled_fattree("2l-small")
        self.cloud = CloudManager(
            built.topology, built=built, lid_scheme=self.scheme, num_vfs=2
        )
        self.cloud.adopt_all_hcas()
        self.cloud.bring_up_subnet()
        self.hyp_names = sorted(self.cloud.hypervisors)

    # -- rules ---------------------------------------------------------------

    @rule(pick=st.integers(min_value=0, max_value=10 ** 6))
    def boot(self, pick):
        candidates = [
            n
            for n in self.hyp_names
            if self.cloud.hypervisors[n].has_capacity()
        ]
        if candidates:
            self.cloud.boot_vm(on=candidates[pick % len(candidates)])

    @rule(pick=st.integers(min_value=0, max_value=10 ** 6))
    def stop(self, pick):
        names = sorted(
            n for n, vm in self.cloud.vms.items() if vm.is_running
        )
        if names:
            self.cloud.stop_vm(names[pick % len(names)])

    @rule(
        pick_vm=st.integers(min_value=0, max_value=10 ** 6),
        pick_dest=st.integers(min_value=0, max_value=10 ** 6),
    )
    def migrate(self, pick_vm, pick_dest):
        names = sorted(
            n for n, vm in self.cloud.vms.items() if vm.is_running
        )
        if not names:
            return
        vm = self.cloud.vms[names[pick_vm % len(names)]]
        dests = [
            n
            for n in self.hyp_names
            if n != vm.hypervisor_name
            and self.cloud.hypervisors[n].has_capacity()
        ]
        if dests:
            self.cloud.live_migrate(vm.name, dests[pick_dest % len(dests)])

    # -- invariants -------------------------------------------------------------

    @invariant()
    def vm_lids_bound_to_their_hypervisors(self):
        if not hasattr(self, "cloud"):
            return
        for vm in self.cloud.vms.values():
            if not vm.is_running:
                continue
            hyp = self.cloud.hypervisors[vm.hypervisor_name]
            assert self.cloud.topology.port_of_lid(vm.lid) is hyp.uplink_port

    @invariant()
    def hardware_matches_recorded_routing(self):
        if not hasattr(self, "cloud"):
            return
        tables = self.cloud.sm.current_tables
        for sw in self.cloud.topology.switches:
            for vm in self.cloud.vms.values():
                if vm.lid is not None:
                    assert sw.lft.get(vm.lid) == tables.port_for(
                        sw.index, vm.lid
                    )

    @invariant()
    def running_vms_reachable_from_every_leaf(self):
        if not hasattr(self, "cloud"):
            return
        topo = self.cloud.topology
        leaves = topo.leaf_switches()
        for vm in self.cloud.vms.values():
            if not vm.is_running:
                continue
            for leaf in leaves[::2]:  # sample every other leaf for speed
                assert _walk(topo, leaf, vm.lid), (
                    f"{vm.name} (LID {vm.lid}) unreachable from {leaf.name}"
                )

    @invariant()
    def lid_accounting_consistent(self):
        if not hasattr(self, "cloud"):
            return
        allocator = self.cloud.sm.lid_manager.allocator
        bound = set(self.cloud.topology.bound_lids())
        held = set(allocator.allocated())
        assert bound <= held  # every bound LID is owned


class PrepopulatedCloudMachine(CloudMachine):
    scheme = "prepopulated"


class DynamicCloudMachine(CloudMachine):
    scheme = "dynamic"


_settings = settings(
    max_examples=12,
    stateful_step_count=16,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestPrepopulatedCloud = PrepopulatedCloudMachine.TestCase
TestPrepopulatedCloud.settings = _settings
TestDynamicCloud = DynamicCloudMachine.TestCase
TestDynamicCloud.settings = _settings
