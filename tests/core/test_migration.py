"""Tests for the live migration orchestrator (Algorithm 1 / section VII-B)."""

import pytest

from repro.core.migration import MigrationTimingModel
from repro.errors import MigrationError
from repro.virt.vm import VmState


class TestMigrationFlow:
    def test_vm_keeps_all_addresses(self, prepopulated_cloud):
        # The whole point of vSwitch: LID, vGUID and GID travel with the VM.
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        lid, vguid, gid = vm.lid, vm.vguid, vm.gid
        cloud.live_migrate(vm.name, "l3h3")
        assert (vm.lid, vm.vguid, vm.gid) == (lid, vguid, gid)

    def test_vm_relocates(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        report = cloud.live_migrate(vm.name, "l3h3")
        assert vm.hypervisor_name == "l3h3"
        assert vm.name in cloud.hypervisors["l3h3"].vms
        assert vm.name not in cloud.hypervisors["l0h0"].vms
        assert vm.state is VmState.RUNNING
        assert vm.migrations == 1
        assert report.source == "l0h0" and report.destination == "l3h3"

    def test_dest_vf_carries_vm_vguid(self, prepopulated_cloud):
        # Section VII-B step 4: the attached VF holds the GUID the VM had.
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        cloud.live_migrate(vm.name, "l3h3")
        assert vm.vf.guid == vm.vguid
        assert vm.vf.hca.name == "l3h3"

    def test_source_vf_freed(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        src_vf = vm.vf
        cloud.live_migrate(vm.name, "l3h3")
        assert src_vf.is_free

    def test_address_update_smps_per_paper(self, prepopulated_cloud):
        # Step (a): one SMP per participating hypervisor (2) + the vGUID
        # transfer to the destination.
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        report = cloud.live_migrate(vm.name, "l3h3")
        assert report.address_update_smps == 3

    def test_total_smps_combines_steps(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        report = cloud.live_migrate(vm.name, "l3h3")
        assert report.total_smps == (
            report.address_update_smps + report.reconfig.lft_smps
        )

    def test_zero_path_computation(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        report = cloud.live_migrate(vm.name, "l3h3")
        assert report.reconfig.path_compute_seconds == 0.0

    def test_communication_survives_migration(self, prepopulated_cloud):
        # Traffic from a third node must reach the VM at its new location
        # using the same LID.
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        lid = vm.lid
        cloud.live_migrate(vm.name, "l3h3")
        dest_leaf = cloud.hypervisors["l3h3"].uplink_port.remote.node
        # Follow the hardware LFTs from a remote leaf.
        cur = cloud.hypervisors["l5h0"].uplink_port.remote.node
        hops = 0
        while cur is not dest_leaf:
            out = cur.lft.get(lid)
            nxt = None
            for port in cur.connected_ports():
                if port.num == out:
                    nxt = port.remote.node
            assert nxt is not None and nxt.is_switch
            cur = nxt
            hops += 1
            assert hops < 10
        assert dest_leaf.lft.get(lid) == cloud.hypervisors[
            "l3h3"
        ].uplink_port.remote.num


class TestValidation:
    def test_migrate_to_self_rejected(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        with pytest.raises(MigrationError):
            cloud.live_migrate(vm.name, "l0h0")

    def test_migrate_to_full_node_rejected(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        for _ in range(4):
            cloud.boot_vm(on="l1h1")
        vm = cloud.boot_vm(on="l0h0")
        with pytest.raises(MigrationError):
            cloud.live_migrate(vm.name, "l1h1")

    def test_unknown_vm_rejected(self, prepopulated_cloud):
        from repro.errors import VirtError

        with pytest.raises(VirtError):
            prepopulated_cloud.live_migrate("ghost", "l1h1")


class TestTiming:
    def test_copy_seconds_scales_with_memory(self):
        t = MigrationTimingModel(memory_copy_bandwidth=1e9)
        assert t.copy_seconds(2 * 10**9) == pytest.approx(2.0)
        with pytest.raises(MigrationError):
            t.copy_seconds(-1)

    def test_downtime_includes_reconfig_and_vf_penalty(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        report = cloud.live_migrate(vm.name, "l3h3")
        timing = cloud.orchestrator.timing
        floor = timing.vf_detach_seconds + timing.vf_attach_seconds
        assert report.downtime_seconds > floor
        assert report.copy_seconds > 0

    def test_reconfig_downtime_share_is_negligible(self, prepopulated_cloud):
        # The paper's point: the network reconfiguration is microseconds
        # while the VF detach/attach penalty is seconds.
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        report = cloud.live_migrate(vm.name, "l3h3")
        assert report.reconfig.total_seconds_serial < 0.001 * report.downtime_seconds


class TestMinimalIntraLeaf:
    def test_minimal_updates_single_switch(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        cloud.orchestrator.minimal_intra_leaf = True
        vm = cloud.boot_vm(on="l0h0")
        report = cloud.live_migrate(vm.name, "l0h1")
        assert report.switches_updated == 1
        assert report.reconfig.lft_smps == 1

    def test_minimal_does_not_apply_across_leaves(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        cloud.orchestrator.minimal_intra_leaf = True
        vm = cloud.boot_vm(on="l0h0")
        report = cloud.live_migrate(vm.name, "l4h4")
        assert report.switches_updated > 1

    def test_minimal_keeps_delivery_correct(self, dynamic_cloud):
        cloud = dynamic_cloud
        cloud.orchestrator.minimal_intra_leaf = True
        vm = cloud.boot_vm(on="l0h0")
        lid = vm.lid
        cloud.live_migrate(vm.name, "l0h1")
        leaf = cloud.hypervisors["l0h1"].uplink_port.remote.node
        assert leaf.lft.get(lid) == cloud.hypervisors["l0h1"].uplink_port.remote.num


class TestListeners:
    def test_listener_invoked(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        seen = []
        cloud.orchestrator.listeners.append(lambda r: seen.append(r.vm_name))
        vm = cloud.boot_vm(on="l0h0")
        cloud.live_migrate(vm.name, "l2h2")
        assert seen == [vm.name]
