"""Tests for the parallel migration executor (section VI-D concurrency)."""

import pytest

from repro.core.parallel import ParallelMigrationExecutor
from repro.errors import MigrationError
from repro.fabric.presets import scaled_fattree
from tests.conftest import make_cloud


@pytest.fixture
def busy_cloud():
    cloud = make_cloud(scaled_fattree("2l-small"), num_vfs=4)
    # Two VMs on the first host of every leaf.
    for leaf in range(6):
        for _ in range(2):
            cloud.boot_vm(on=f"l{leaf}h0")
    return cloud


class TestPlanning:
    def test_intra_leaf_moves_form_one_batch(self, busy_cloud):
        cloud = busy_cloud
        cloud.orchestrator.minimal_intra_leaf = True
        execu = ParallelMigrationExecutor(cloud)
        moves = []
        for leaf in range(6):
            vm = next(
                vm
                for vm in cloud.vms.values()
                if vm.hypervisor_name == f"l{leaf}h0"
            )
            moves.append((vm.name, f"l{leaf}h1"))
        batches = execu.plan(moves)
        # With the minimal (leaf-only) skylines all six are disjoint...
        # but planning happens against the *deterministic* predicted
        # skylines; inter-leaf spread may interleave. At minimum the plan
        # covers every move exactly once.
        flat = [m for b in batches for m in b]
        assert sorted(flat) == sorted(moves)

    def test_unknown_vm_rejected(self, busy_cloud):
        execu = ParallelMigrationExecutor(busy_cloud)
        with pytest.raises(MigrationError):
            execu.plan([("ghost", "l0h1")])

    def test_capacity_overflow_rejected(self, busy_cloud):
        cloud = busy_cloud
        execu = ParallelMigrationExecutor(cloud)
        vms = [vm.name for vm in cloud.vms.values()][:5]
        # 5 VMs into a node with 4 VFs cannot be planned.
        with pytest.raises(MigrationError):
            execu.plan([(name, "l5h5") for name in vms])


class TestExecution:
    def test_all_moves_execute(self, busy_cloud):
        cloud = busy_cloud
        execu = ParallelMigrationExecutor(cloud)
        moves = []
        for leaf in range(3):
            vm = next(
                vm
                for vm in cloud.vms.values()
                if vm.hypervisor_name == f"l{leaf}h0"
            )
            moves.append((vm.name, f"l{(leaf + 3)}h2"))
        report = execu.execute(moves)
        assert report.total_migrations == 3
        for vm_name, dest in moves:
            assert cloud.vms[vm_name].hypervisor_name == dest

    def test_speedup_at_least_one(self, busy_cloud):
        cloud = busy_cloud
        execu = ParallelMigrationExecutor(cloud)
        vm_names = [vm.name for vm in list(cloud.vms.values())[:4]]
        moves = [
            (name, f"l{(i + 2) % 6}h3") for i, name in enumerate(vm_names)
        ]
        report = execu.execute(moves)
        assert report.speedup >= 1.0
        assert report.total_lft_smps == sum(
            r.reconfig.lft_smps for r in report.migrations
        )
        assert (
            report.concurrent_reconfig_seconds
            <= report.serial_reconfig_seconds
        )

    def test_disjoint_minimal_migrations_parallelize(self, busy_cloud):
        # With minimal intra-leaf reconfiguration, one migration per leaf
        # forms disjoint single-switch skylines -> true concurrency.
        cloud = busy_cloud
        cloud.orchestrator.minimal_intra_leaf = True
        execu = ParallelMigrationExecutor(cloud)
        moves = []
        for leaf in range(6):
            vm = next(
                vm
                for vm in cloud.vms.values()
                if vm.hypervisor_name == f"l{leaf}h0"
            )
            moves.append((vm.name, f"l{leaf}h1"))
        # Predicted skylines are the deterministic ones; override by
        # checking execution results instead: every migration touched only
        # its own leaf, so any batching would have been safe.
        report = execu.execute(moves)
        assert report.total_migrations == 6
        for r in report.migrations:
            assert r.switches_updated == 1

    def test_empty_plan(self, busy_cloud):
        execu = ParallelMigrationExecutor(busy_cloud)
        report = execu.execute([])
        assert report.total_migrations == 0
        assert report.speedup == 1.0


class TestEvacuation:
    def test_evacuate_drains_node(self, busy_cloud):
        cloud = busy_cloud
        assert cloud.hypervisors["l0h0"].vm_count == 2
        reports = cloud.evacuate("l0h0")
        assert len(reports) == 2
        assert cloud.hypervisors["l0h0"].vm_count == 0
        for r in reports:
            assert r.source == "l0h0"
            assert cloud.vms[r.vm_name].is_running

    def test_evacuated_vms_keep_lids(self, busy_cloud):
        cloud = busy_cloud
        lids_before = {
            vm.name: vm.lid
            for vm in cloud.vms.values()
            if vm.hypervisor_name == "l1h0"
        }
        cloud.evacuate("l1h0")
        for name, lid in lids_before.items():
            assert cloud.vms[name].lid == lid
