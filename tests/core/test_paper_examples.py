"""Reproduction of the paper's worked examples (Figs. 3-5, section VI-B).

The scenario: three hypervisors with 3 VFs each, prepopulated LIDs 1-12
exactly as in Fig. 3; VM1 holds LID 2 on Hypervisor 1. Hypervisors 1 and 2
share a leaf switch; Hypervisor 3 lives behind the other leaf; two spine
switches on top.
"""

import pytest

from repro.core.lid_schemes import PrepopulatedLidScheme
from repro.core.reconfig import VSwitchReconfigurer
from repro.fabric.addressing import GuidAllocator
from repro.fabric.lft import lft_block_of
from repro.fabric.topology import Topology
from repro.sm.subnet_manager import SubnetManager
from repro.sriov.vswitch import VSwitchHCA


@pytest.fixture
def paper_scenario():
    topo = Topology("fig3")
    spine_a = topo.add_switch("spineA", 4)
    spine_b = topo.add_switch("spineB", 4)
    leaf_l = topo.add_switch("leafL", 4)
    leaf_r = topo.add_switch("leafR", 4)
    hyp1 = topo.add_hca("hyp1")
    hyp2 = topo.add_hca("hyp2")
    hyp3 = topo.add_hca("hyp3")
    topo.connect(leaf_l, 1, hyp1, 1)
    topo.connect(leaf_l, 2, hyp2, 1)
    topo.connect(leaf_r, 1, hyp3, 1)
    for p, spine in ((3, spine_a), (4, spine_b)):
        topo.connect(leaf_l, p, spine, 1)
        topo.connect(leaf_r, p, spine, 2)

    sm = SubnetManager(topo)
    guids = GuidAllocator()
    scheme = PrepopulatedLidScheme(sm)

    # Fig. 3 LID layout: PFs 1/5/9, VFs sequential behind each PF.
    vswitches = {}
    next_lid = 1
    for name in ("hyp1", "hyp2", "hyp3"):
        hca = topo.node(name)
        vsw = VSwitchHCA(hca, guids, num_vfs=3)
        hca.port(1).lid = next_lid
        topo.bind_lid(next_lid, hca.port(1))
        sm.lid_manager.allocator.assign(next_lid)
        vsw.pf.lid = next_lid
        next_lid += 1
        for vf in vsw.vfs:
            vf.lid = sm.lid_manager.assign_extra_lid(hca.port(1), lid=next_lid)
            next_lid += 1
        scheme.register_hypervisor(vsw)
        vswitches[name] = vsw

    # Switches take the LIDs after the hosts (13-16).
    for sw in topo.switches:
        lid = sm.lid_manager.allocator.allocate()
        sw.lid = lid
        topo.bind_lid(lid, sw.management_port)

    sm.compute_routing()
    sm.distribute()
    return topo, sm, scheme, vswitches


class TestFig3Layout:
    def test_lids_match_figure(self, paper_scenario):
        topo, sm, scheme, vs = paper_scenario
        assert vs["hyp1"].pf.lid == 1
        assert [vf.lid for vf in vs["hyp1"].vfs] == [2, 3, 4]
        assert vs["hyp2"].pf.lid == 5
        assert [vf.lid for vf in vs["hyp2"].vfs] == [6, 7, 8]
        assert vs["hyp3"].pf.lid == 9
        assert [vf.lid for vf in vs["hyp3"].vfs] == [10, 11, 12]

    def test_lids_2_and_12_share_a_block(self, paper_scenario):
        assert lft_block_of(2) == lft_block_of(12) == 0


class TestFig5Swap:
    """VM1 (LID 2, Hypervisor 1) migrates to VF3 (LID 12) on Hypervisor 3."""

    def test_single_smp_per_switch(self, paper_scenario):
        topo, sm, scheme, vs = paper_scenario
        report = VSwitchReconfigurer(sm).swap_lids(2, 12)
        # Both LIDs in block 0 -> exactly one SMP per updated switch.
        assert report.max_blocks_on_one_switch == 1
        assert report.lft_smps == report.switches_updated

    def test_entries_exchanged_everywhere(self, paper_scenario):
        topo, sm, scheme, vs = paper_scenario
        before = {
            sw.name: (sw.lft.get(2), sw.lft.get(12)) for sw in topo.switches
        }
        VSwitchReconfigurer(sm).swap_lids(2, 12)
        for sw in topo.switches:
            b2, b12 = before[sw.name]
            assert sw.lft.get(2) == b12
            assert sw.lft.get(12) == b2

    def test_cross_block_swap_needs_two_smps(self, paper_scenario):
        # "If the LID of VF3 on hypervisor 3 was 64 or greater, then two
        # SMPs would need to be sent" — emulate by parking a high LID on
        # hypervisor 3 first.
        topo, sm, scheme, vs = paper_scenario
        hi = sm.lid_manager.assign_extra_lid(
            topo.node("hyp3").port(1), lid=70
        )
        sm.compute_routing()
        sm.distribute()
        report = VSwitchReconfigurer(sm).swap_lids(2, hi)
        assert report.max_blocks_on_one_switch == 2


class TestSectionVIBExample:
    """Swapping LID 2 with a LID on the *same-leaf* hypervisor 2 leaves the
    spines untouched: they already forward 2 and 6/7/8 through one port."""

    def test_spines_not_updated(self, paper_scenario):
        topo, sm, scheme, vs = paper_scenario
        spine_a = topo.node("spineA")
        spine_b = topo.node("spineB")
        assert spine_a.lft.get(2) == spine_a.lft.get(6)
        assert spine_b.lft.get(2) == spine_b.lft.get(6)
        report = VSwitchReconfigurer(sm).swap_lids(2, 6)
        assert "spineA" not in report.blocks_per_switch
        assert "spineB" not in report.blocks_per_switch

    def test_only_shared_leaf_updated(self, paper_scenario):
        # n' = 1: only the leaf hosting both hypervisors changes.
        topo, sm, scheme, vs = paper_scenario
        report = VSwitchReconfigurer(sm).swap_lids(2, 6)
        assert report.switches_updated == 1
        assert list(report.blocks_per_switch) == ["leafL"]

    def test_full_migration_through_scheme(self, paper_scenario):
        topo, sm, scheme, vs = paper_scenario
        src, dest = vs["hyp1"], vs["hyp3"]
        src_vf = src.vf(1)  # holds LID 2
        src_vf.attach("VM1")
        dest_vf = dest.vf(3)  # holds LID 12
        report = scheme.migrate_lid(2, src, src_vf, dest, dest_vf)
        assert dest_vf.lid == 2
        assert src_vf.lid == 12
        assert topo.port_of_lid(2) is dest.uplink_port
