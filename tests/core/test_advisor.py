"""Tests for the migration advisor."""

import pytest

from repro.core.advisor import MigrationAdvisor
from repro.errors import ReproError
from repro.fabric.presets import scaled_fattree
from tests.conftest import make_cloud


@pytest.fixture
def lopsided_cloud():
    """All VMs crammed onto one hypervisor: an obvious hotspot."""
    cloud = make_cloud(scaled_fattree("2l-small"), num_vfs=4)
    for _ in range(4):
        cloud.boot_vm(on="l0h0")
    return cloud


class TestLoadView:
    def test_hotspot_visible(self, lopsided_cloud):
        advisor = MigrationAdvisor(lopsided_cloud)
        loads = advisor.uplink_load()
        assert loads["l0h0"] == max(loads.values())
        assert loads["l5h5"] == 0

    def test_empty_cloud(self, prepopulated_cloud):
        advisor = MigrationAdvisor(prepopulated_cloud)
        loads = advisor.uplink_load()
        assert all(v == 0 for v in loads.values())


class TestProposals:
    def test_proposal_moves_off_hotspot(self, lopsided_cloud):
        advisor = MigrationAdvisor(lopsided_cloud)
        (prop,) = advisor.propose()
        assert prop.source == "l0h0"
        assert prop.destination != "l0h0"
        assert prop.predicted_switches >= 0
        assert prop.predicted_max_smps >= prop.predicted_switches
        assert "hottest" in prop.reason

    def test_multiple_proposals_distinct_vms(self, lopsided_cloud):
        advisor = MigrationAdvisor(lopsided_cloud)
        props = advisor.propose(count=3)
        names = [p.vm_name for p in props]
        assert len(names) == len(set(names))

    def test_apply_executes_through_cloud(self, lopsided_cloud):
        cloud = lopsided_cloud
        advisor = MigrationAdvisor(cloud)
        (prop,) = advisor.propose()
        report = advisor.apply(prop)
        assert report.vm_name == prop.vm_name
        assert cloud.vms[prop.vm_name].hypervisor_name == prop.destination
        # Post-apply, the hotspot is cooler.
        assert advisor.uplink_load()["l0h0"] < 4 * 3 * 2

    def test_cooling_converges(self, lopsided_cloud):
        cloud = lopsided_cloud
        advisor = MigrationAdvisor(cloud)
        before = max(advisor.uplink_load().values())
        for _ in range(3):
            props = advisor.propose()
            if not props:
                break
            advisor.apply(props[0])
        after = max(advisor.uplink_load().values())
        assert after < before

    def test_count_validation(self, lopsided_cloud):
        with pytest.raises(ReproError):
            MigrationAdvisor(lopsided_cloud).propose(count=0)

    def test_no_proposals_without_traffic(self, prepopulated_cloud):
        advisor = MigrationAdvisor(prepopulated_cloud)
        assert advisor.propose() == []

    def test_dynamic_scheme_supported(self, small_fattree):
        cloud = make_cloud(small_fattree, lid_scheme="dynamic", num_vfs=4)
        for _ in range(3):
            cloud.boot_vm(on="l1h1")
        advisor = MigrationAdvisor(cloud)
        (prop,) = advisor.propose()
        report = advisor.apply(prop)
        assert report.mode == "copy"
