"""Tests for the analytic cost model — equations (1)-(5) and Table I."""

import pytest

from repro.core.cost_model import (
    PAPER_TABLE1_INPUTS,
    Table1Row,
    improvement_percent,
    lftd_time,
    paper_table1,
    table1_row,
    traditional_rc_time,
    vswitch_rc_time,
    worst_case_blocks_example,
)
from repro.errors import ReproError


class TestEquations:
    def test_eq2_lftd(self):
        # LFTDt = n * m * (k + r)
        assert lftd_time(10, 5, 2.0, 1.0) == pytest.approx(150.0)

    def test_eq3_traditional(self):
        assert traditional_rc_time(100.0, 10, 5, 2.0, 1.0) == pytest.approx(250.0)

    def test_eq4_vswitch_with_directed_routing(self):
        assert vswitch_rc_time(
            3, 2, 2.0, 1.0, destination_routed=False
        ) == pytest.approx(18.0)

    def test_eq5_destination_routing_drops_r(self):
        assert vswitch_rc_time(3, 2, 2.0, 1.0) == pytest.approx(12.0)

    def test_vswitch_far_cheaper_in_large_subnets(self):
        # vSwitch RCt << RCt (section VI-B).
        n, m, k, r = 1620, 208, 1e-4, 5e-5
        pct = 67.0  # ftree at 11664 nodes
        assert vswitch_rc_time(n, 2, k) < 0.01 * traditional_rc_time(
            pct, n, m, k, r
        )

    def test_m_prime_restricted(self):
        with pytest.raises(ReproError):
            vswitch_rc_time(1, 3, 1.0)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ReproError):
            lftd_time(-1, 1, 1.0, 1.0)
        with pytest.raises(ReproError):
            lftd_time(1, 1, -1.0, 1.0)
        with pytest.raises(ReproError):
            traditional_rc_time(-1.0, 1, 1, 1.0, 1.0)


class TestTable1:
    # The exact rows printed in the paper.
    PAPER_ROWS = {
        324: (36, 360, 6, 216, 1, 72),
        648: (54, 702, 11, 594, 1, 108),
        5832: (972, 6804, 107, 104004, 1, 1944),
        11664: (1620, 13284, 208, 336960, 1, 3240),
    }

    @pytest.mark.parametrize("nodes,switches", PAPER_TABLE1_INPUTS)
    def test_rows_match_paper_exactly(self, nodes, switches):
        row = table1_row(nodes, switches)
        exp_sw, exp_lids, exp_blocks, exp_full, exp_min, exp_max = (
            self.PAPER_ROWS[nodes]
        )
        assert row.switches == exp_sw
        assert row.lids == exp_lids
        assert row.min_lft_blocks_per_switch == exp_blocks
        assert row.min_smps_full_reconfig == exp_full
        assert row.min_smps_vswitch == exp_min
        assert row.max_smps_swap == exp_max

    def test_paper_table1_returns_all_rows(self):
        rows = paper_table1()
        assert [r.nodes for r in rows] == [324, 648, 5832, 11664]

    def test_copy_worst_case_half_of_swap(self):
        row = table1_row(324, 36)
        assert row.max_smps_copy == row.max_smps_swap // 2

    def test_best_case_is_subnet_size_agnostic(self):
        # "The best case scenario ... will only send one SMP."
        for nodes, switches in PAPER_TABLE1_INPUTS:
            assert table1_row(nodes, switches).min_smps_vswitch == 1

    def test_extra_lids_add_blocks(self):
        base = table1_row(324, 36)
        padded = table1_row(324, 36, extra_lids=5000)
        assert padded.lids == base.lids + 5000
        assert padded.min_lft_blocks_per_switch > base.min_lft_blocks_per_switch

    def test_lid_space_overflow_rejected(self):
        with pytest.raises(ReproError):
            table1_row(49000, 1000)

    def test_as_paper_columns(self):
        cols = table1_row(324, 36).as_paper_columns()
        assert cols["Min SMPs Full RC"] == 216
        assert cols["Max SMPs LID Swap/Copy"] == 72


class TestImprovements:
    def test_paper_improvement_quotes(self):
        # Section VII-C: 66.7% for 324 nodes, 99.04% for 11664 nodes.
        assert improvement_percent(216, 72) == pytest.approx(66.7, abs=0.05)
        assert improvement_percent(336960, 3240) == pytest.approx(99.04, abs=0.01)

    def test_validation(self):
        with pytest.raises(ReproError):
            improvement_percent(0, 1)
        with pytest.raises(ReproError):
            improvement_percent(10, -1)

    def test_worst_case_768_blocks(self):
        # Section VII-C: topmost unicast LID forces 768 SMPs on one switch.
        assert worst_case_blocks_example() == 768
