"""Tests for the section VI-D minimal-correctness update set.

The key soundness property: applying the *new* routing on exactly the
predicted switch set — and leaving every other switch's stale entry in
place — still delivers all traffic for the migrated LID. That is what makes
the set a valid "skyline" (minimum network region to reconfigure).
"""

import pytest

from repro.core.skyline import minimal_update_set
from repro.fabric.node import Switch
from repro.fabric.presets import scaled_fattree
from repro.sm.subnet_manager import SubnetManager
from repro.workloads.migration_patterns import (
    INTER_POD,
    INTRA_LEAF,
    INTRA_POD,
    MigrationPlanner,
)
from tests.conftest import make_cloud


def mixture_delivers(topology, vm_lid, template_lid, updates, dest_port):
    """Walk every switch under 'new entries on `updates`, stale elsewhere'."""
    attach = dest_port.remote
    dest_leaf, delivery_port = attach.node, attach.num
    p2p = {}
    for sw in topology.switches:
        for port in sw.connected_ports():
            if isinstance(port.remote.node, Switch):
                p2p[(sw.index, port.num)] = port.remote.node.index
    switches = topology.switches
    for start in switches:
        cur = start
        hops = 0
        while True:
            if cur.index in updates or cur is dest_leaf:
                # Updated switch: routes like the destination PF.
                out = (
                    delivery_port
                    if cur is dest_leaf
                    else cur.lft.get(template_lid)
                )
            else:
                out = cur.lft.get(vm_lid)  # stale entry
            if cur is dest_leaf and out == delivery_port:
                break  # delivered at the right host port
            nxt = p2p.get((cur.index, out))
            if nxt is None:
                return False  # delivered at a *wrong* host
            cur = switches[nxt]
            hops += 1
            if hops > len(switches):
                return False  # loop
    return True


@pytest.fixture
def pod_cloud():
    built = scaled_fattree("3l-small")
    cloud = make_cloud(built, lid_scheme="dynamic", num_vfs=2)
    planner = MigrationPlanner(cloud, built, seed=3)
    for _ in range(30):
        cloud.boot_vm()
    return cloud, planner


class TestSoundness:
    @pytest.mark.parametrize("klass", [INTRA_LEAF, INTRA_POD, INTER_POD])
    def test_mixture_delivery(self, pod_cloud, klass):
        cloud, planner = pod_cloud
        for _ in range(3):
            plan = planner.plan_one(klass)
            assert plan is not None
            vm = cloud.vms[plan[0]]
            dest = cloud.hypervisors[plan[1]]
            updates = minimal_update_set(
                cloud.topology, vm.lid, dest.uplink_port
            )
            assert mixture_delivers(
                cloud.topology,
                vm.lid,
                dest.pf_lid,
                updates,
                dest.uplink_port,
            )

    def test_intra_leaf_is_exactly_one(self, pod_cloud):
        cloud, planner = pod_cloud
        plan = planner.plan_one(INTRA_LEAF)
        vm = cloud.vms[plan[0]]
        dest = cloud.hypervisors[plan[1]]
        updates = minimal_update_set(cloud.topology, vm.lid, dest.uplink_port)
        leaf = dest.uplink_port.remote.node
        assert updates == {leaf.index}

    def test_gradient(self, pod_cloud):
        cloud, planner = pod_cloud
        sizes = {}
        for klass in (INTRA_LEAF, INTRA_POD, INTER_POD):
            plan = planner.plan_one(klass)
            vm = cloud.vms[plan[0]]
            dest = cloud.hypervisors[plan[1]]
            sizes[klass] = len(
                minimal_update_set(cloud.topology, vm.lid, dest.uplink_port)
            )
        assert sizes[INTRA_LEAF] < sizes[INTRA_POD] < sizes[INTER_POD]

    def test_self_migration_needs_nothing_extra(self, pod_cloud):
        # "Migrating" to the same hypervisor: the LID already delivers, so
        # the minimal set is empty.
        cloud, planner = pod_cloud
        vm = next(vm for vm in cloud.vms.values() if vm.is_running)
        src = cloud.hypervisors[vm.hypervisor_name]
        updates = minimal_update_set(cloud.topology, vm.lid, src.uplink_port)
        assert updates == set()

    def test_unattached_port_rejected(self, pod_cloud):
        from repro.errors import ReconfigError
        from repro.fabric.node import HCA

        cloud, _ = pod_cloud
        with pytest.raises(ReconfigError):
            minimal_update_set(cloud.topology, 1, HCA("stray").port(1))
