"""Tests for skyline prediction and concurrent-migration admission (VI-D)."""

import pytest

from repro.core.skyline import (
    MigrationSkyline,
    admit_concurrent,
    copy_update_set,
    is_intra_leaf,
    plan_skyline,
    swap_update_set,
)
from repro.errors import ReconfigError


class TestUpdateSets:
    def test_swap_update_set_matches_reconfig(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        dest = cloud.hypervisors["l5h5"]
        dest_vf = dest.vswitch.first_free_vf()
        predicted = swap_update_set(cloud.topology, vm.lid, dest_vf.lid)
        report = cloud.live_migrate(vm.name, "l5h5")
        assert report.switches_updated == len(predicted)

    def test_copy_update_set_matches_reconfig(self, dynamic_cloud):
        cloud = dynamic_cloud
        vm = cloud.boot_vm(on="l0h0")
        dest = cloud.hypervisors["l5h5"]
        predicted = copy_update_set(cloud.topology, dest.pf_lid, vm.lid)
        report = cloud.live_migrate(vm.name, "l5h5")
        assert report.switches_updated == len(predicted)

    def test_same_port_lids_need_no_update(self, prepopulated_cloud):
        # Two LIDs on the same hypervisor forward identically at the leaf
        # (same exit port): swapping them touches nothing at that leaf?
        # No — the leaf delivers them to the same HCA port, so entries are
        # equal on *every* switch and the update set is empty.
        cloud = prepopulated_cloud
        vsw = cloud.hypervisors["l0h0"].vswitch
        lid_a, lid_b = vsw.vf(1).lid, vsw.vf(2).lid
        # Under minhop lid-mod, two VF LIDs of one hypervisor may still use
        # different spine paths; assert only that the leaf itself agrees.
        leaf = cloud.hypervisors["l0h0"].uplink_port.remote.node
        assert leaf.lft.get(lid_a) == leaf.lft.get(lid_b)
        assert leaf.index not in swap_update_set(cloud.topology, lid_a, lid_b)


class TestIntraLeaf:
    def test_same_leaf_detected(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        a = cloud.hypervisors["l0h0"].uplink_port
        b = cloud.hypervisors["l0h1"].uplink_port
        c = cloud.hypervisors["l1h0"].uplink_port
        assert is_intra_leaf(a, b)
        assert not is_intra_leaf(a, c)

    def test_unattached_port_rejected(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        from repro.fabric.node import HCA

        stray = HCA("stray")
        with pytest.raises(ReconfigError):
            is_intra_leaf(stray.port(1), cloud.hypervisors["l0h0"].uplink_port)


class TestPlanSkyline:
    def test_plan_swap(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        dest = cloud.hypervisors["l0h1"]
        sky = plan_skyline(
            cloud.topology,
            vm_lid=vm.lid,
            other_lid=dest.vswitch.first_free_vf().lid,
            mode="swap",
            src_port=cloud.hypervisors["l0h0"].uplink_port,
            dest_port=dest.uplink_port,
        )
        assert sky.intra_leaf
        assert sky.n_prime >= 1

    def test_unknown_mode_rejected(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        with pytest.raises(ReconfigError):
            plan_skyline(
                cloud.topology,
                vm_lid=vm.lid,
                other_lid=1,
                mode="teleport",
                src_port=cloud.hypervisors["l0h0"].uplink_port,
                dest_port=cloud.hypervisors["l0h1"].uplink_port,
            )

    def test_max_smps_bound(self):
        sky = MigrationSkyline(
            vm_lid=2, other_lid=70, mode="swap", switches={0, 1, 2}
        )
        assert sky.max_smps == 6  # cross-block swap: 2 per switch
        sky2 = MigrationSkyline(
            vm_lid=2, other_lid=12, mode="swap", switches={0, 1, 2}
        )
        assert sky2.max_smps == 3  # same block
        sky3 = MigrationSkyline(
            vm_lid=2, other_lid=70, mode="copy", switches={0, 1}
        )
        assert sky3.max_smps == 2  # copy: always 1 per switch


class TestConcurrency:
    def test_disjointness(self):
        a = MigrationSkyline(1, 2, "swap", switches={0, 1})
        b = MigrationSkyline(3, 4, "swap", switches={2, 3})
        c = MigrationSkyline(5, 6, "swap", switches={1, 5})
        assert a.disjoint_from(b)
        assert not a.disjoint_from(c)

    def test_shared_lid_conflicts(self):
        a = MigrationSkyline(1, 2, "swap", switches={0})
        b = MigrationSkyline(2, 3, "swap", switches={9})
        assert not a.disjoint_from(b)

    def test_admit_concurrent_batches(self):
        skies = [
            MigrationSkyline(1, 2, "swap", switches={0}),
            MigrationSkyline(3, 4, "swap", switches={1}),
            MigrationSkyline(5, 6, "swap", switches={0, 2}),
        ]
        batches = admit_concurrent(skies)
        assert len(batches) == 2
        assert len(batches[0]) == 2  # the two disjoint ones run together
        assert batches[1][0].vm_lid == 5

    def test_intra_leaf_migrations_all_concurrent(self, prepopulated_cloud):
        # "We could have as many concurrent migrations as there exists leaf
        # switches" — one intra-leaf migration per distinct leaf, minimal
        # update sets, all admitted in one batch.
        cloud = prepopulated_cloud
        skies = []
        for leaf_idx in range(3):
            src = cloud.hypervisors[f"l{leaf_idx}h0"]
            dest = cloud.hypervisors[f"l{leaf_idx}h1"]
            vm = cloud.boot_vm(on=src.name)
            leaf = src.uplink_port.remote.node
            skies.append(
                MigrationSkyline(
                    vm_lid=vm.lid,
                    other_lid=dest.vswitch.first_free_vf().lid,
                    mode="swap",
                    switches={leaf.index},
                    intra_leaf=True,
                )
            )
        batches = admit_concurrent(skies)
        assert len(batches) == 1
        assert len(batches[0]) == 3

    def test_empty_input(self):
        assert admit_concurrent([]) == []
