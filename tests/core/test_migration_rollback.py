"""Migration failure state machine: completed / rolled_back / failed."""

import numpy as np
import pytest

from repro.errors import TransportError
from repro.fabric.presets import scaled_fattree
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, ScriptedFault
from repro.mad.reliable import RetryPolicy
from tests.conftest import make_cloud


def cloud_state(cloud):
    """Everything a rollback must restore, hashable for comparison."""
    lfts = {
        sw.name: np.array(sw.lft.as_array(), copy=True)
        for sw in cloud.topology.switches
    }
    vfs = {
        vf.name: (vf.state.name, vf.lid, vf.guid)
        for h in cloud.hypervisors.values()
        for vf in h.vswitch.vfs
    }
    vms = {
        name: (vm.state.name, vm.hypervisor_name, vm.vf.name if vm.vf else None)
        for name, vm in cloud.vms.items()
    }
    return lfts, vfs, vms


def states_equal(a, b):
    lfts_a, vfs_a, vms_a = a
    lfts_b, vfs_b, vms_b = b
    return (
        set(lfts_a) == set(lfts_b)
        and all(np.array_equal(lfts_a[k], lfts_b[k]) for k in lfts_a)
        and vfs_a == vfs_b
        and vms_a == vms_b
    )


def resilient_cloud(*, lid_scheme="prepopulated", retries=8, booted=3):
    cloud = make_cloud(scaled_fattree("2l-small"), lid_scheme=lid_scheme)
    cloud.sm.enable_resilience(RetryPolicy(retries=retries))
    for _ in range(booted):
        cloud.boot_vm()
    return cloud


def migration_pair(cloud, vm_name="vm1"):
    vm = cloud.vms[vm_name]
    src = vm.hypervisor_name
    dest = next(
        h.name
        for h in cloud.hypervisors.values()
        if h.name != src and h.has_capacity()
    )
    return src, dest


@pytest.mark.parametrize("scheme", ["prepopulated", "dynamic"])
class TestOutcomes:
    def test_fault_free_is_completed(self, scheme):
        cloud = resilient_cloud(lid_scheme=scheme)
        src, dest = migration_pair(cloud)
        report = cloud.live_migrate("vm1", dest)
        assert report.outcome == "completed"
        assert report.completed
        assert report.failure is None
        assert cloud.vms["vm1"].hypervisor_name == dest

    def test_lossy_with_retries_matches_fault_free(self, scheme):
        reference = resilient_cloud(lid_scheme=scheme, retries=16)
        src, dest = migration_pair(reference)
        reference.live_migrate("vm1", dest)

        lossy = resilient_cloud(lid_scheme=scheme, retries=16)
        lossy.sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=3, smp_drop_rate=0.1))
        )
        report = lossy.live_migrate("vm1", dest)
        lossy.sm.transport.set_fault_injector(None)
        assert report.outcome == "completed"
        assert report.smp_retries > 0 or report.smp_timeouts == 0
        assert states_equal(cloud_state(reference), cloud_state(lossy))

    def test_corrupted_lft_write_is_caught_and_resynced(self, scheme):
        """A silently corrupted SET on the migration fast path must be
        caught by the reconfigurer's read-back, not leak into hardware."""
        reference = resilient_cloud(lid_scheme=scheme, retries=16)
        src, dest = migration_pair(reference)
        reference.live_migrate("vm1", dest)

        corrupted = resilient_cloud(lid_scheme=scheme, retries=16)
        corrupted.sm.transport.set_fault_injector(
            FaultInjector(
                FaultPlan(
                    seed=4,
                    scripted=(
                        ScriptedFault(action="corrupt", kind="lft_block"),
                    ),
                )
            )
        )
        report = corrupted.live_migrate("vm1", dest)
        corrupted.sm.transport.set_fault_injector(None)
        assert report.outcome == "completed"
        assert states_equal(cloud_state(reference), cloud_state(corrupted))

    def test_dead_switch_rolls_back_to_exact_pre_state(self, scheme):
        cloud = resilient_cloud(lid_scheme=scheme, retries=2)
        src, dest = migration_pair(cloud)
        before = cloud_state(cloud)
        victim = cloud.topology.switches[0].name
        cloud.sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=1, per_target_drop={victim: 1.0}))
        )
        report = cloud.live_migrate("vm1", dest)
        cloud.sm.transport.set_fault_injector(None)
        assert report.outcome == "rolled_back"
        assert report.failure is not None
        assert states_equal(before, cloud_state(cloud))
        assert cloud.vms["vm1"].hypervisor_name == src
        # The rolled-back VM is alive and can migrate once the fault clears.
        retry = cloud.live_migrate("vm1", dest)
        assert retry.outcome == "completed"

    def test_total_loss_restores_vm_at_source(self, scheme):
        cloud = resilient_cloud(lid_scheme=scheme, retries=2)
        before = cloud_state(cloud)
        src, dest = migration_pair(cloud)
        cloud.sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=2, smp_drop_rate=1.0))
        )
        report = cloud.live_migrate("vm1", dest)
        cloud.sm.transport.set_fault_injector(None)
        # With the whole control plane dark even the compensation cannot
        # be confirmed: the outcome is failed, never a silent third state.
        assert report.outcome in ("rolled_back", "failed")
        assert cloud.vms["vm1"].hypervisor_name == src
        assert cloud.vms["vm1"].is_running
        # Drops never apply their effect, so the fabric state is in fact
        # untouched even though the SM could not prove it.
        assert states_equal(before, cloud_state(cloud))


class TestReportTelemetry:
    def test_retry_overhead_recorded(self):
        cloud = resilient_cloud(retries=16)
        _, dest = migration_pair(cloud)
        cloud.sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=5, smp_drop_rate=0.3))
        )
        report = cloud.live_migrate("vm1", dest)
        cloud.sm.transport.set_fault_injector(None)
        assert report.outcome == "completed"
        assert report.smp_retries > 0
        assert report.smp_timeouts > 0
        assert report.retry_wait_seconds > 0
        # Retry backoff inflates downtime.
        assert report.downtime_seconds > 0

    def test_failure_metric_emitted_on_rollback(self):
        from repro.obs import get_hub

        cloud = resilient_cloud(retries=1)
        _, dest = migration_pair(cloud)
        victim = cloud.topology.switches[0].name
        cloud.sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=6, per_target_drop={victim: 1.0}))
        )
        report = cloud.live_migrate("vm1", dest)
        cloud.sm.transport.set_fault_injector(None)
        assert report.outcome == "rolled_back"
        exposition = get_hub().metrics.render_prometheus()
        assert "repro_migration_failures_total" in exposition


class TestBootRollback:
    def test_dynamic_boot_failure_releases_lid_and_vf(self):
        cloud = make_cloud(scaled_fattree("2l-small"), lid_scheme="dynamic")
        cloud.sm.enable_resilience(RetryPolicy(retries=1))
        lids_before = cloud.sm.lids_consumed
        vms_before = set(cloud.vms)
        cloud.sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=9, smp_drop_rate=1.0))
        )
        with pytest.raises(TransportError):
            cloud.boot_vm()
        cloud.sm.transport.set_fault_injector(None)
        assert cloud.sm.lids_consumed == lids_before
        assert set(cloud.vms) == vms_before
        # The freed VF is reusable: the next boot succeeds.
        vm = cloud.boot_vm()
        assert vm.is_running
