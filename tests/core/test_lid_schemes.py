"""Tests for the two vSwitch LID schemes (paper sections V-A / V-B)."""

import pytest

from repro.errors import ReconfigError, SriovError
from repro.core.lid_schemes import DynamicLidScheme, PrepopulatedLidScheme
from repro.fabric.addressing import GuidAllocator
from repro.fabric.presets import scaled_fattree
from repro.sm.subnet_manager import SubnetManager
from repro.sriov.vswitch import VSwitchHCA


def build_scheme(scheme_cls, num_vfs=4):
    built = scaled_fattree("2l-small")
    sm = SubnetManager(built.topology, built=built)
    sm.assign_lids()
    guids = GuidAllocator()
    scheme = scheme_cls(sm)
    vswitches = []
    for hca in built.topology.hcas:
        vsw = VSwitchHCA(hca, guids, num_vfs=num_vfs)
        scheme.register_hypervisor(vsw)
        vswitches.append(vsw)
    scheme.initialize()
    sm.compute_routing()
    sm.distribute()
    return built, sm, scheme, vswitches


class TestPrepopulated:
    def test_all_vfs_have_lids_at_boot(self):
        built, sm, scheme, vswitches = build_scheme(PrepopulatedLidScheme)
        for vsw in vswitches:
            assert all(vf.lid is not None for vf in vsw.vfs)

    def test_lid_consumption_is_nodes_plus_vfs(self):
        built, sm, scheme, vswitches = build_scheme(PrepopulatedLidScheme)
        topo = built.topology
        expected = topo.num_switches + topo.num_hcas + 4 * topo.num_hcas
        assert sm.lids_consumed == expected

    def test_vm_boot_costs_zero_smps(self):
        built, sm, scheme, vswitches = build_scheme(PrepopulatedLidScheme)
        before = sm.transport.stats.lft_update_smps
        report = scheme.boot_vm(vswitches[0], "vm1")
        assert report.lft_smps == 0
        assert sm.transport.stats.lft_update_smps == before

    def test_vm_inherits_vf_lid(self):
        built, sm, scheme, vswitches = build_scheme(PrepopulatedLidScheme)
        vf_lid = vswitches[0].vf(1).lid
        report = scheme.boot_vm(vswitches[0], "vm1")
        assert report.lid == vf_lid

    def test_consecutive_vms_on_same_vf_reuse_lid(self):
        # Section V-B contrast: "in a network without live migrations, VMs
        # consecutively attached to a given VF will always get the same LID".
        built, sm, scheme, vswitches = build_scheme(PrepopulatedLidScheme)
        r1 = scheme.boot_vm(vswitches[0], "vm1")
        scheme.shutdown_vm(vswitches[0], vswitches[0].vf(1))
        r2 = scheme.boot_vm(vswitches[0], "vm2")
        assert r1.lid == r2.lid

    def test_migration_swaps_lids_between_vfs(self):
        built, sm, scheme, vswitches = build_scheme(PrepopulatedLidScheme)
        src, dest = vswitches[0], vswitches[-1]
        boot = scheme.boot_vm(src, "vm1")
        src_vf = src.vf(1)
        dest_vf = dest.first_free_vf()
        old_dest_lid = dest_vf.lid
        scheme.migrate_lid(boot.lid, src, src_vf, dest, dest_vf)
        assert dest_vf.lid == boot.lid
        assert src_vf.lid == old_dest_lid
        # Registry agrees.
        assert sm.topology.port_of_lid(boot.lid) is dest.uplink_port
        assert sm.topology.port_of_lid(old_dest_lid) is src.uplink_port

    def test_migration_preserves_total_lids(self):
        built, sm, scheme, vswitches = build_scheme(PrepopulatedLidScheme)
        boot = scheme.boot_vm(vswitches[0], "vm1")
        before = sm.lids_consumed
        scheme.migrate_lid(
            boot.lid,
            vswitches[0],
            vswitches[0].vf(1),
            vswitches[-1],
            vswitches[-1].first_free_vf(),
        )
        assert sm.lids_consumed == before

    def test_initialize_requires_base_lids(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        scheme = PrepopulatedLidScheme(sm)
        vsw = VSwitchHCA(small_fattree.topology.hcas[0], GuidAllocator(), num_vfs=2)
        scheme.register_hypervisor(vsw)
        with pytest.raises(ReconfigError):
            scheme.initialize()


class TestDynamic:
    def test_no_vf_lids_at_boot(self):
        built, sm, scheme, vswitches = build_scheme(DynamicLidScheme)
        for vsw in vswitches:
            assert all(vf.lid is None for vf in vsw.vfs)

    def test_lid_consumption_is_nodes_only(self):
        built, sm, scheme, vswitches = build_scheme(DynamicLidScheme)
        topo = built.topology
        assert sm.lids_consumed == topo.num_switches + topo.num_hcas

    def test_vm_boot_assigns_next_free_lid(self):
        built, sm, scheme, vswitches = build_scheme(DynamicLidScheme)
        r1 = scheme.boot_vm(vswitches[0], "vm1")
        r2 = scheme.boot_vm(vswitches[1], "vm2")
        assert r2.lid == r1.lid + 1

    def test_vm_boot_copies_pf_path(self):
        built, sm, scheme, vswitches = build_scheme(DynamicLidScheme)
        vsw = vswitches[0]
        report = scheme.boot_vm(vsw, "vm1")
        for sw in built.topology.switches:
            assert sw.lft.get(report.lid) == sw.lft.get(vsw.pf_lid)

    def test_vm_boot_costs_at_most_one_smp_per_switch(self):
        # Section V-B: "One SMP per switch is needed to be sent".
        built, sm, scheme, vswitches = build_scheme(DynamicLidScheme)
        report = scheme.boot_vm(vswitches[0], "vm1")
        assert 0 < report.lft_smps <= built.topology.num_switches

    def test_shutdown_releases_lid(self):
        built, sm, scheme, vswitches = build_scheme(DynamicLidScheme)
        report = scheme.boot_vm(vswitches[0], "vm1")
        scheme.shutdown_vm(vswitches[0], vswitches[0].vf(1))
        assert sm.topology.port_of_lid(report.lid) is None
        assert vswitches[0].vf(1).lid is None

    def test_lid_reuse_after_shutdown(self):
        built, sm, scheme, vswitches = build_scheme(DynamicLidScheme)
        r1 = scheme.boot_vm(vswitches[0], "vm1")
        scheme.shutdown_vm(vswitches[0], vswitches[0].vf(1))
        r2 = scheme.boot_vm(vswitches[1], "vm2")
        assert r2.lid == r1.lid  # lowest freed LID recycled

    def test_migration_copies_dest_pf_path(self):
        built, sm, scheme, vswitches = build_scheme(DynamicLidScheme)
        src, dest = vswitches[0], vswitches[-1]
        boot = scheme.boot_vm(src, "vm1")
        src_vf = src.vf(1)
        dest_vf = dest.first_free_vf()
        report = scheme.migrate_lid(boot.lid, src, src_vf, dest, dest_vf)
        assert report.mode == "copy"
        for sw in built.topology.switches:
            assert sw.lft.get(boot.lid) == sw.lft.get(dest.pf_lid)
        assert sm.topology.port_of_lid(boot.lid) is dest.uplink_port
        assert src_vf.lid is None

    def test_vf_count_can_exceed_lid_budget(self):
        # Section V-B: "no limitation on the total amount of VFs present".
        built, sm, scheme, vswitches = build_scheme(DynamicLidScheme, num_vfs=16)
        # 36 hypervisors x 16 VFs = 576 potential VMs; no LIDs consumed yet.
        assert scheme.total_vf_count() == 16 * len(vswitches)
        assert sm.lids_consumed == (
            built.topology.num_switches + built.topology.num_hcas
        )


class TestSchemeAccounting:
    def test_active_vm_count(self):
        built, sm, scheme, vswitches = build_scheme(PrepopulatedLidScheme)
        scheme.boot_vm(vswitches[0], "a")
        scheme.boot_vm(vswitches[0], "b")
        assert scheme.active_vm_count() == 2
        scheme.shutdown_vm(vswitches[0], vswitches[0].vf(1))
        assert scheme.active_vm_count() == 1

    def test_boot_beyond_capacity_raises(self):
        built, sm, scheme, vswitches = build_scheme(PrepopulatedLidScheme, num_vfs=1)
        scheme.boot_vm(vswitches[0], "a")
        with pytest.raises(SriovError):
            scheme.boot_vm(vswitches[0], "b")
