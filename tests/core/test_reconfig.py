"""Tests for the dynamic reconfigurer (Algorithm 1 primitives)."""

import pytest

from repro.constants import LFT_DROP_PORT
from repro.errors import ReconfigError
from repro.core.reconfig import VSwitchReconfigurer
from repro.fabric.presets import scaled_fattree
from repro.sm.subnet_manager import SubnetManager


@pytest.fixture
def configured():
    """Small fat-tree, routed; two extra vSwitch-style LIDs on two hosts."""
    built = scaled_fattree("2l-small")
    sm = SubnetManager(built.topology, built=built)
    sm.assign_lids()
    topo = built.topology
    # Two VF-style LIDs behind hosts on different leaves.
    h_a = topo.hcas[0]  # leaf 0
    h_b = topo.hcas[-1]  # leaf 5
    lid_a = sm.lid_manager.assign_extra_lid(h_a.port(1))
    lid_b = sm.lid_manager.assign_extra_lid(h_b.port(1))
    sm.compute_routing()
    sm.distribute()
    return built, sm, h_a, h_b, lid_a, lid_b


class TestSwap:
    def test_swap_moves_routing(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        leaf_a = h_a.uplink_switch()
        leaf_b = h_b.uplink_switch()
        port_before = leaf_a.lft.get(lid_a)
        rec = VSwitchReconfigurer(sm)
        report = rec.swap_lids(lid_a, lid_b)
        assert report.mode == "swap"
        # On leaf_a the entry for lid_a now points where lid_b used to go.
        assert leaf_a.lft.get(lid_b) == port_before

    def test_swap_smps_bounded_by_two_per_switch(self, configured):
        built, sm, *_, lid_a, lid_b = configured
        rec = VSwitchReconfigurer(sm)
        report = rec.swap_lids(lid_a, lid_b)
        n = built.topology.num_switches
        assert report.lft_smps <= 2 * n
        assert report.switches_updated <= n
        assert report.max_blocks_on_one_switch in (1, 2)

    def test_swap_same_block_single_smp_per_switch(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        # lid_a/lid_b are consecutive small LIDs: same 64-block.
        rec = VSwitchReconfigurer(sm)
        report = rec.swap_lids(lid_a, lid_b)
        assert report.max_blocks_on_one_switch == 1
        assert report.lft_smps == report.switches_updated

    def test_swap_is_balance_preserving_involution(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        snapshot = {
            sw.name: sw.lft.as_array().copy()
            for sw in built.topology.switches
        }
        rec = VSwitchReconfigurer(sm)
        rec.swap_lids(lid_a, lid_b)
        rec.swap_lids(lid_a, lid_b)
        for sw in built.topology.switches:
            assert (sw.lft.as_array() == snapshot[sw.name]).all()

    def test_swap_keeps_tables_in_sync(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        rec = VSwitchReconfigurer(sm)
        rec.swap_lids(lid_a, lid_b)
        for sw in built.topology.switches:
            assert sw.lft.get(lid_a) == sm.current_tables.port_for(sw.index, lid_a)
            assert sw.lft.get(lid_b) == sm.current_tables.port_for(sw.index, lid_b)

    def test_swap_self_rejected(self, configured):
        _, sm, *_, lid_a, _ = configured
        with pytest.raises(ReconfigError):
            VSwitchReconfigurer(sm).swap_lids(lid_a, lid_a)

    def test_swap_unknown_lid_rejected(self, configured):
        _, sm, *_, lid_a, _ = configured
        with pytest.raises(ReconfigError):
            VSwitchReconfigurer(sm).swap_lids(lid_a, 40000)

    def test_zero_path_computation(self, configured):
        _, sm, *_, lid_a, lid_b = configured
        report = VSwitchReconfigurer(sm).swap_lids(lid_a, lid_b)
        assert report.path_compute_seconds == 0.0

    def test_predict_matches_execution(self, configured):
        _, sm, *_, lid_a, lid_b = configured
        rec = VSwitchReconfigurer(sm)
        n_prime, smps = rec.predict_swap(lid_a, lid_b)
        report = rec.swap_lids(lid_a, lid_b)
        assert report.switches_updated == n_prime
        # Same-block swap: prediction smps == n' too.
        assert report.lft_smps == smps


class TestCopy:
    def test_copy_inherits_template_path(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        rec = VSwitchReconfigurer(sm)
        pf_lid = h_b.port(1).lid
        report = rec.copy_path(pf_lid, lid_a)
        assert report.mode == "copy"
        for sw in built.topology.switches:
            assert sw.lft.get(lid_a) == sw.lft.get(pf_lid)

    def test_copy_one_smp_per_switch_max(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        rec = VSwitchReconfigurer(sm)
        report = rec.copy_path(h_b.port(1).lid, lid_a)
        n = built.topology.num_switches
        assert report.lft_smps <= n
        assert report.max_blocks_on_one_switch <= 1
        assert report.lft_smps == report.switches_updated

    def test_copy_to_fresh_lid_grows_tables(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        fresh = sm.lid_manager.assign_extra_lid(h_b.port(1), lid=200)
        rec = VSwitchReconfigurer(sm)
        rec.copy_path(h_b.port(1).lid, fresh)
        assert sm.current_tables.port_for(0, fresh) == built.topology.switches[
            0
        ].lft.get(fresh)

    def test_copy_identical_is_free(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        rec = VSwitchReconfigurer(sm)
        pf_lid = h_b.port(1).lid
        rec.copy_path(pf_lid, lid_a)
        second = rec.copy_path(pf_lid, lid_a)
        assert second.lft_smps == 0
        assert second.switches_updated == 0

    def test_copy_self_rejected(self, configured):
        _, sm, *_, lid_a, _ = configured
        with pytest.raises(ReconfigError):
            VSwitchReconfigurer(sm).copy_path(lid_a, lid_a)

    def test_predict_copy(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        rec = VSwitchReconfigurer(sm)
        pf_lid = h_b.port(1).lid
        n_prime, smps = rec.predict_copy(pf_lid, lid_a)
        report = rec.copy_path(pf_lid, lid_a)
        assert (report.switches_updated, report.lft_smps) == (n_prime, smps)


class TestInvalidate:
    def test_invalidate_drops_traffic(self, configured):
        built, sm, *_, lid_a, _ = configured
        report = VSwitchReconfigurer(sm).invalidate_lid(lid_a)
        assert report.mode == "invalidate"
        for sw in built.topology.switches:
            assert sw.lft.get(lid_a) == LFT_DROP_PORT

    def test_invalidate_costs_one_smp_per_switch(self, configured):
        built, sm, *_, lid_a, _ = configured
        report = VSwitchReconfigurer(sm).invalidate_lid(lid_a)
        assert report.lft_smps == built.topology.num_switches


class TestDestinationRouting:
    def test_destination_routed_smps_cheaper(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        rec_dir = VSwitchReconfigurer(sm, destination_routed=False)
        r1 = rec_dir.swap_lids(lid_a, lid_b)
        rec_dst = VSwitchReconfigurer(sm, destination_routed=True)
        r2 = rec_dst.swap_lids(lid_a, lid_b)  # swap back
        # Same SMP counts, but the r term is gone (equation (5)).
        assert r1.lft_smps == r2.lft_smps
        assert r2.serial_time < r1.serial_time

    def test_routing_mode_accounted(self, configured):
        _, sm, *_, lid_a, lid_b = configured
        VSwitchReconfigurer(sm, destination_routed=True).swap_lids(lid_a, lid_b)
        assert sm.transport.stats.destination_routed_smps > 0


class TestLimitedSweep:
    def test_limit_requires_lids_inside_region(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        leaf_a = h_a.uplink_switch()
        rec = VSwitchReconfigurer(sm)
        # lid_b attaches at another leaf: restricting to leaf_a is unsafe.
        with pytest.raises(ReconfigError):
            rec.swap_lids(lid_a, lid_b, limit_switches={leaf_a.index})

    def test_intra_leaf_limited_swap(self, configured):
        built, sm, h_a, h_b, lid_a, lid_b = configured
        topo = built.topology
        # Put a second LID behind a *sibling* host on leaf 0.
        sibling = topo.hcas[1]
        assert sibling.uplink_switch() is h_a.uplink_switch()
        lid_c = sm.lid_manager.assign_extra_lid(sibling.port(1))
        sm.compute_routing()
        sm.distribute()
        leaf = h_a.uplink_switch()
        rec = VSwitchReconfigurer(sm)
        report = rec.swap_lids(lid_a, lid_c, limit_switches={leaf.index})
        assert report.switches_updated == 1
        assert report.lft_smps == 1
