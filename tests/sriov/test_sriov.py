"""Tests for the SR-IOV function models: Shared Port vs vSwitch semantics."""

import pytest

from repro.constants import MAX_NUM_VFS
from repro.errors import SriovError
from repro.fabric.addressing import GuidAllocator
from repro.fabric.node import HCA
from repro.sriov.base import FunctionState, VirtualFunction
from repro.sriov.shared_port import SharedPortHCA
from repro.sriov.vswitch import VSwitchHCA


@pytest.fixture
def guids():
    return GuidAllocator()


class TestFunctionLifecycle:
    def test_attach_detach_release(self, guids):
        vf = VirtualFunction(HCA("h"), 1, guids.allocate_virtual(), qp0_proxied=True)
        assert vf.is_free
        vf.attach("vm1")
        assert vf.state is FunctionState.ACTIVE
        assert vf.vm_name == "vm1"
        vf.detach()
        assert vf.state is FunctionState.DETACHED
        vf.release()
        assert vf.is_free and vf.vm_name is None

    def test_double_attach_rejected(self, guids):
        vf = VirtualFunction(HCA("h"), 1, guids.allocate_virtual(), qp0_proxied=True)
        vf.attach("vm1")
        with pytest.raises(SriovError):
            vf.attach("vm2")

    def test_detach_unattached_rejected(self, guids):
        vf = VirtualFunction(HCA("h"), 1, guids.allocate_virtual(), qp0_proxied=True)
        with pytest.raises(SriovError):
            vf.detach()

    def test_gid_follows_guid(self, guids):
        vf = VirtualFunction(HCA("h"), 1, guids.allocate_virtual(), qp0_proxied=False)
        old_gid = vf.gid
        vf.guid = guids.allocate_virtual()
        assert vf.gid != old_gid
        assert vf.gid.guid == vf.guid


class TestSharedPort:
    def test_one_lid_for_everyone(self, guids):
        sp = SharedPortHCA(HCA("h"), guids, num_vfs=4)
        sp.lid = 9
        lids = set(sp.function_lids().values())
        assert lids == {9}

    def test_distinct_gids(self, guids):
        # Fig. 1: shared LID but per-function GIDs.
        sp = SharedPortHCA(HCA("h"), guids, num_vfs=4)
        gids = [sp.pf.gid] + [vf.gid for vf in sp.vfs]
        assert len(set(gids)) == len(gids)

    def test_vf_cannot_run_sm(self, guids):
        # Section IV-A: SMPs from VFs toward QP0 are discarded.
        sp = SharedPortHCA(HCA("h"), guids, num_vfs=2)
        assert sp.pf.can_run_sm
        assert all(not vf.can_run_sm for vf in sp.vfs)

    def test_attach_uses_first_free(self, guids):
        sp = SharedPortHCA(HCA("h"), guids, num_vfs=2)
        vf1 = sp.attach_vm("vm1")
        vf2 = sp.attach_vm("vm2")
        assert vf1 is not vf2
        with pytest.raises(SriovError):
            sp.attach_vm("vm3")

    def test_lid_sharing_breaks_comigrants(self, guids):
        # The emulation constraint (section VII-B): migrating one VM's LID
        # breaks every other VM on the node.
        sp = SharedPortHCA(HCA("h"), guids, num_vfs=4)
        sp.lid = 5
        vf1 = sp.attach_vm("vm1")
        sp.attach_vm("vm2")
        sp.attach_vm("vm3")
        assert sorted(sp.vms_sharing_lid_with(vf1)) == ["vm2", "vm3"]

    def test_foreign_vf_rejected(self, guids):
        sp = SharedPortHCA(HCA("h"), guids, num_vfs=2)
        other = VirtualFunction(HCA("x"), 1, guids.allocate_virtual(), qp0_proxied=True)
        with pytest.raises(SriovError):
            sp.vms_sharing_lid_with(other)

    def test_vf_count_bounds(self, guids):
        with pytest.raises(SriovError):
            SharedPortHCA(HCA("h"), guids, num_vfs=0)
        with pytest.raises(SriovError):
            SharedPortHCA(HCA("h"), guids, num_vfs=MAX_NUM_VFS + 1)


class TestVSwitch:
    def test_vfs_have_distinct_identities(self, guids):
        # Fig. 2: each VF is a complete vHCA with its own addresses.
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=4)
        vsw.pf.lid = 1
        for i, vf in enumerate(vsw.vfs):
            vf.lid = 10 + i
        lids = list(vsw.function_lids().values())
        assert len(set(lids)) == len(lids)

    def test_vswitch_shares_pf_lid(self, guids):
        # Section V-A: the vSwitch does not occupy an extra LID.
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=2)
        vsw.pf.lid = 7
        assert vsw.pf_lid == 7
        assert 7 in vsw.lids_in_use()

    def test_vm_on_vf_can_run_sm(self, guids):
        # Section IV-B consequence: real QP0 per VF.
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=2)
        assert vsw.can_host_sm_in_vm()

    def test_first_free_vf_order(self, guids):
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=3)
        a = vsw.first_free_vf()
        a.attach("vm1")
        b = vsw.first_free_vf()
        assert b.index == a.index + 1

    def test_exhaustion(self, guids):
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=1)
        vsw.first_free_vf().attach("vm")
        with pytest.raises(SriovError):
            vsw.first_free_vf()

    def test_vf_lookup(self, guids):
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=3)
        assert vsw.vf(2).index == 2
        with pytest.raises(SriovError):
            vsw.vf(9)

    def test_set_vguid(self, guids):
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=2)
        target = vsw.vf(1)
        new_guid = guids.allocate_virtual()
        vsw.set_vguid(target, new_guid)
        assert target.guid == new_guid

    def test_set_vguid_foreign_rejected(self, guids):
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=2)
        other = VirtualFunction(HCA("x"), 1, guids.allocate_virtual(), qp0_proxied=False)
        with pytest.raises(SriovError):
            vsw.set_vguid(other, 123)

    def test_active_and_free_tracking(self, guids):
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=3)
        vsw.vf(1).attach("a")
        vsw.vf(3).attach("b")
        assert {vf.index for vf in vsw.active_vfs()} == {1, 3}
        assert {vf.index for vf in vsw.free_vfs()} == {2}
