"""Property-based tests: migration sequences and intermediate LFT states.

The paper's section VI-C argument is that the partially-static scheme —
invalidate the moving LIDs on every affected switch *before* programming
the swapped entries — makes reconfiguration safe while switches update
asynchronously. The key property: at **every** intermediate LFT state, a
moving LID's column mixes either {old, dropped} or {dropped, new}
entries, never {old, new}, so no forwarding loop can form (a packet
either follows one loop-free routing or is dropped). The test drives
real migrations, reconstructs the two phases' intermediate states for
hypothesis-chosen switch subsets, and proves loop-freedom of each.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import LFT_UNSET
from repro.fabric.presets import scaled_fattree
from repro.obs import reset_hub
from repro.virt.cloud import CloudManager
from repro.workloads.churn import ChurnWorkload
from repro.workloads.migration_patterns import ANY, MigrationPlanner
from repro.analysis.static import (
    analyze_transition,
    check_reachability,
)
from repro.analysis.static.checks import FabricSnapshot


def fresh_cloud(seed):
    reset_hub()
    built = scaled_fattree("2l-small")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme="prepopulated", num_vfs=3
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    ChurnWorkload(cloud, seed=seed, target_utilization=0.5).run(40)
    return built, cloud


def hardware_ports(built):
    return FabricSnapshot.from_topology(built.topology).ports.copy()


def loops_in(built, ports, lids):
    snap = FabricSnapshot.from_topology(built.topology, ports)
    return [
        f for f in check_reachability(snap, lids=lids) if f.rule == "LFT001"
    ]


class TestMigrationLoopFreedom:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_random_migrations_keep_every_intermediate_state_loop_free(
        self, data
    ):
        seed = data.draw(st.integers(min_value=0, max_value=2**16))
        built, cloud = fresh_cloud(seed)
        planner = MigrationPlanner(cloud, built, seed=seed)
        for _step in range(3):
            plan = planner.plan_one(ANY)
            if plan is None:
                break
            old = hardware_ports(built)
            cloud.live_migrate(*plan)
            new = hardware_ports(built)
            rows = np.where((old != new).any(axis=1))[0]
            cols = np.where((old != new).any(axis=0))[0]
            lids = [int(c) for c in cols]
            dropped = old.copy()
            dropped[np.ix_(rows, cols)] = LFT_UNSET
            # Phase 1 (invalidate) intermediates: {old, dropped} mixes.
            subset1 = data.draw(
                st.sets(st.sampled_from([int(r) for r in rows]))
            )
            state = old.copy()
            state[np.ix_(sorted(subset1), cols)] = LFT_UNSET
            assert loops_in(built, state, lids) == []
            # Phase 2 (program) intermediates: {dropped, new} mixes.
            subset2 = data.draw(
                st.sets(st.sampled_from([int(r) for r in rows]))
            )
            state = dropped.copy()
            sel = np.ix_(sorted(subset2), cols)
            state[sel] = new[sel]
            assert loops_in(built, state, lids) == []
            # Untouched LID columns stay fully clean throughout.
            others = [int(x) for x in np.setdiff1d(
                FabricSnapshot.from_topology(built.topology).terminal_lids,
                cols,
            )]
            assert check_reachability(
                FabricSnapshot.from_topology(built.topology, state),
                lids=others,
            ) == []
            # And the completed transition satisfies section VI-C's union
            # CDG condition.
            report = analyze_transition(
                built.topology, old, new, emit_metrics=False
            )
            assert report.ok, report.render()

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_final_state_after_migration_sequence_is_fully_clean(self, seed):
        from repro.analysis.verification import verify_subnet

        built, cloud = fresh_cloud(seed)
        planner = MigrationPlanner(cloud, built, seed=seed + 1)
        for _ in range(4):
            plan = planner.plan_one(ANY)
            if plan is None:
                break
            cloud.live_migrate(*plan)
        assert verify_subnet(cloud.sm).ok
