"""Tests for the per-VL channel-dependency checks (VLC001-VLC004).

LASH and DFSSSP are deadlock-free *per virtual lane*, not on the union
CDG, so PR 3's single-VL CDG001 check could not analyze them. These
tests cover the whole per-VL pipeline: the engines' VlAssignment export,
the per-lane dependency split (serial and sharded byte-identical), each
VLC rule positive and negative, the analyzer/matrix wiring including the
META002 notice semantics, and a hypothesis property: LASH on random
3-regular graphs is clean, and each corruption mode is caught by exactly
one rule.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import StaticAnalysisError
from repro.fabric.builders.generic import build_random_regular
from repro.obs import get_hub, reset_hub
from repro.sm.deadlock import is_deadlock_free
from repro.sm.routing.vl import MANAGEMENT_VL, VlAssignment, corrupt_assignment
from repro.sm.subnet_manager import SubnetManager
from repro.analysis.static import (
    VL_ENGINES,
    FabricCheckCase,
    analyze_subnet,
    analyze_transition,
    build_per_vl_dependencies,
    check_vl_capacity,
    check_vl_consistency,
    check_vl_deadlock_freedom,
    check_vl_transition_deadlock,
    corrupt_vl_assignment,
    run_case,
)
from repro.analysis.static.checks import FabricSnapshot
from repro.analysis.static.suite import preset_builders


def bring_up(preset, engine):
    built = preset_builders()[preset]()
    sm = SubnetManager(built.topology, engine=engine, built=built)
    sm.initial_configure()
    return sm


def snapshot(sm, vl=None):
    tables = sm.current_tables
    return FabricSnapshot.from_topology(
        sm.topology, vl=tables.vl if vl is None else vl
    )


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestVlExport:
    def test_lash_exports_pair_assignment(self):
        sm = bring_up("ring6", "lash")
        tables = sm.current_tables
        vl = tables.vl
        assert vl is not None and vl.kind == "pair"
        assert vl.num_vls >= 1 and vl.num_vls <= vl.max_vls
        # The raw dict older consumers read is still there and agrees.
        assert tables.metadata["pair_to_vl"] is vl.pair_to_vl
        summary = tables.vl_summary()
        assert summary["kind"] == "pair"
        assert summary["assignments"] == len(vl.pair_to_vl)
        assert sum(summary["pairs_per_vl"].values()) == summary["assignments"]

    def test_dfsssp_exports_dest_assignment(self):
        sm = bring_up("ring6", "dfsssp")
        vl = sm.current_tables.vl
        assert vl is not None and vl.kind == "dest"
        switch_lids = set(sm.topology.switch_lids())
        for lid in switch_lids:
            assert vl.lid_to_vl[lid] == MANAGEMENT_VL
        # data_items() excludes the management lane.
        assert all(v != MANAGEMENT_VL for _, v in vl.data_items())

    def test_single_vl_engine_exports_nothing(self):
        sm = bring_up("ring6", "updn")
        assert sm.current_tables.vl is None
        assert sm.current_tables.vl_summary()["kind"] == "single"

    def test_from_metadata_falls_back_to_raw_dicts(self):
        vl = VlAssignment.from_metadata({"pair_to_vl": {(0, 1): 0, (1, 0): 1}})
        assert vl.kind == "pair" and vl.num_vls == 2
        vl = VlAssignment.from_metadata({"lid_to_vl": {4: 0, 9: MANAGEMENT_VL}})
        assert vl.kind == "dest" and vl.num_vls == 1
        assert VlAssignment.from_metadata(None) is None
        assert VlAssignment.from_metadata({}) is None

    def test_corrupt_index_wraps_and_copy_isolates(self):
        vl = VlAssignment(
            kind="dest", num_vls=2, max_vls=8, lid_to_vl={1: 0, 2: 1}
        )
        clone = vl.copy()
        desc = corrupt_assignment(clone, "remap", index=7)
        assert "nonexistent" in desc
        assert vl.lid_to_vl == {1: 0, 2: 1}  # original untouched
        with pytest.raises(ValueError):
            corrupt_assignment(clone, "telepathy")


class TestBuildPerVlDependencies:
    def test_requires_vl_assignment(self):
        sm = bring_up("ring6", "updn")
        with pytest.raises(StaticAnalysisError):
            build_per_vl_dependencies(snapshot(sm))

    @pytest.mark.parametrize("engine", VL_ENGINES)
    def test_every_lane_acyclic_matches_oracle(self, engine):
        sm = bring_up("torus4x4", engine)
        snap = snapshot(sm)
        pv = build_per_vl_dependencies(snap)
        assert pv.num_vls == snap.vl.num_vls
        assert check_vl_deadlock_freedom(snap, deps=pv) == []
        if engine == "dfsssp":
            # The dynamic oracle agrees lane-by-lane splitting is what
            # makes this routing deadlock-free (scoped to terminal LIDs,
            # like the oracle's own tests: VL15 management delivery is
            # VLC002's concern, not a data-deadlock layer).
            term = snap.terminal_lids.tolist()
            assert is_deadlock_free(
                snap.ports,
                snap.view,
                lid_to_vl=snap.vl.lid_to_vl,
                lids=term,
            )
            assert not is_deadlock_free(snap.ports, snap.view, lids=term)

    @pytest.mark.parametrize("engine", VL_ENGINES)
    def test_sharded_build_is_byte_identical(self, engine):
        sm = bring_up("torus4x4", engine)
        snap = snapshot(sm)
        serial = build_per_vl_dependencies(snap, workers=1)
        sharded = build_per_vl_dependencies(snap, workers=4)
        assert serial.num_vls == sharded.num_vls
        for a, b in zip(serial.keys_by_vl, sharded.keys_by_vl):
            assert np.array_equal(a, b)
        assert np.array_equal(serial.port_lanes, sharded.port_lanes)

    def test_port_lanes_only_on_used_ports(self):
        sm = bring_up("ring6", "lash")
        pv = build_per_vl_dependencies(snapshot(sm))
        used = pv.port_lanes != 0
        # Every marked port is a real inter-switch or delivery port.
        switches = sm.topology.switches
        for s, p in zip(*np.nonzero(used)):
            assert switches[int(s)].port(int(p)).remote is not None


class TestVlc001DeadlockFreedom:
    @pytest.mark.parametrize("preset", ("ring6", "torus4x4"))
    @pytest.mark.parametrize("engine", VL_ENGINES)
    def test_clean_fabric_has_no_findings(self, preset, engine):
        sm = bring_up(preset, engine)
        assert check_vl_deadlock_freedom(snapshot(sm)) == []

    @pytest.mark.parametrize("engine", VL_ENGINES)
    def test_collapsed_lanes_deadlock_on_a_ring(self, engine):
        sm = bring_up("ring6", engine)
        vl = sm.current_tables.vl.copy()
        assert vl.num_vls >= 2, "a ring needs >= 2 lanes to break its cycle"
        corrupt_assignment(vl, "collapse")
        findings = check_vl_deadlock_freedom(snapshot(sm, vl=vl))
        assert rules_of(findings) == ["VLC001"]
        assert all(f.detail["vl"] == 0 for f in findings)
        # The finding carries a concrete cycle, like CDG001 does.
        assert any("cycle" in f.message for f in findings)


class TestVlc002Consistency:
    @pytest.mark.parametrize("engine", VL_ENGINES)
    def test_remap_to_nonexistent_lane_caught(self, engine):
        sm = bring_up("ring6", engine)
        vl = sm.current_tables.vl.copy()
        corrupt_assignment(vl, "remap")
        findings = check_vl_consistency(snapshot(sm, vl=vl))
        assert rules_of(findings) == ["VLC002"]

    def test_terminal_on_management_lane_caught(self):
        sm = bring_up("ring6", "dfsssp")
        vl = sm.current_tables.vl.copy()
        lid = vl.data_items()[0][0]
        vl.lid_to_vl[lid] = MANAGEMENT_VL
        findings = check_vl_consistency(snapshot(sm, vl=vl))
        assert rules_of(findings) == ["VLC002"]
        assert any("management" in f.message for f in findings)

    def test_switch_self_lid_on_data_lane_caught(self):
        sm = bring_up("ring6", "dfsssp")
        vl = sm.current_tables.vl.copy()
        sw_lid = next(iter(sm.topology.switch_lids()))
        vl.lid_to_vl[sw_lid] = 0
        findings = check_vl_consistency(snapshot(sm, vl=vl))
        assert rules_of(findings) == ["VLC002"]

    def test_dangling_lid_caught(self):
        sm = bring_up("ring6", "dfsssp")
        vl = sm.current_tables.vl.copy()
        vl.lid_to_vl[40961] = 0
        findings = check_vl_consistency(snapshot(sm, vl=vl))
        assert rules_of(findings) == ["VLC002"]
        assert any("not bound" in f.message for f in findings)

    def test_clean_fabrics_pass(self):
        for engine in VL_ENGINES:
            sm = bring_up("torus4x4", engine)
            assert check_vl_consistency(snapshot(sm)) == []


class TestVlc003Capacity:
    @pytest.mark.parametrize("engine", VL_ENGINES)
    def test_dropped_assignment_caught(self, engine):
        sm = bring_up("ring6", engine)
        vl = sm.current_tables.vl.copy()
        corrupt_assignment(vl, "drop")
        findings = check_vl_capacity(snapshot(sm, vl=vl))
        assert rules_of(findings) == ["VLC003"]
        # Missing entries aggregate: one actionable finding, not N.
        assert len(findings) == 1
        assert findings[0].detail["missing_count"] == 1

    def test_layer_overflow_caught(self):
        sm = bring_up("ring6", "lash")
        vl = sm.current_tables.vl.copy()
        vl.num_vls = vl.max_vls + 1
        findings = check_vl_capacity(snapshot(sm, vl=vl))
        assert "VLC003" in rules_of(findings)
        assert any("max_vls" in f.message for f in findings)


class TestVlc004Transition:
    def test_same_engine_transition_is_clean(self):
        built = preset_builders()["torus4x4"]()
        sm = SubnetManager(built.topology, engine="dfsssp", built=built)
        sm.initial_configure()
        snap = snapshot(sm)
        assert check_vl_transition_deadlock(snap, snap) == []

    def test_collapse_poisons_the_union(self):
        sm = bring_up("ring6", "lash")
        good = snapshot(sm)
        bad_vl = sm.current_tables.vl.copy()
        corrupt_assignment(bad_vl, "collapse")
        findings = check_vl_transition_deadlock(good, snapshot(sm, vl=bad_vl))
        assert rules_of(findings) == ["VLC004"]

    def test_single_vl_side_lands_on_lane_zero(self):
        # Engine-change reconfiguration: updn (single VL) -> dfsssp.
        built = preset_builders()["ring6"]()
        old_sm = SubnetManager(built.topology, engine="updn", built=built)
        old_sm.initial_configure()
        old_snap = snapshot(old_sm)
        assert old_snap.vl is None
        new_sm = SubnetManager(built.topology, engine="dfsssp", built=built)
        new_sm.compute_routing()
        new_snap = FabricSnapshot.from_topology(
            built.topology,
            new_sm.current_tables.ports,
            vl=new_sm.current_tables.vl,
        )
        # Must analyze without raising; both routings share the fabric's
        # up/down spanning structure, so the lane-0 union stays acyclic.
        findings = check_vl_transition_deadlock(old_snap, new_snap)
        assert rules_of(findings) in ([], ["VLC004"])

    def test_analyze_transition_uses_per_vl_path(self):
        built = preset_builders()["ring6"]()
        sm = SubnetManager(built.topology, engine="lash", built=built)
        sm.initial_configure()
        tables = sm.current_tables
        report = analyze_transition(
            built.topology,
            tables.ports,
            tables.ports,
            old_metadata=tables.metadata,
            new_metadata=tables.metadata,
            emit_metrics=False,
        )
        assert report.ok
        assert "transition-cdg-per-vl" in report.checks_run


class TestAnalyzerWiring:
    @pytest.mark.parametrize("preset", ("ring6", "torus4x4"))
    @pytest.mark.parametrize("engine", VL_ENGINES)
    def test_vl_engines_analyze_clean(self, preset, engine):
        sm = bring_up(preset, engine)
        report = analyze_subnet(sm, emit_metrics=False)
        assert report.ok, report.render()
        for check in ("vl-consistency", "vl-capacity", "cdg-per-vl"):
            assert check in report.checks_run
        # CDG001 is skipped with a notice, not silently.
        assert rules_of(report.notices) == ["META002"]
        assert report.faults == []

    def test_notice_is_rendered_but_never_fails(self):
        sm = bring_up("ring6", "lash")
        report = analyze_subnet(sm, emit_metrics=False)
        assert "META002" in report.render()
        report.raise_if_failed()  # must not raise

    def test_single_vl_engine_still_runs_cdg001(self):
        sm = bring_up("ring6", "updn")
        report = analyze_subnet(sm, emit_metrics=False)
        assert report.ok
        assert "cdg" in report.checks_run
        assert "cdg-per-vl" not in report.checks_run
        assert report.notices == []

    def test_vl_metrics_are_published(self):
        reset_hub()
        sm = bring_up("ring6", "dfsssp")
        analyze_subnet(sm)
        rendered = get_hub().metrics.render_prometheus()
        assert "repro_static_vl_layers" in rendered
        assert "repro_static_vl_dependencies" in rendered

    def test_workers_give_identical_report(self):
        sm = bring_up("torus4x4", "lash")
        one = analyze_subnet(sm, emit_metrics=False, workers=1)
        four = analyze_subnet(sm, emit_metrics=False, workers=4)
        assert one.ok and four.ok
        assert one.checks_run == four.checks_run


class TestMatrixAndCorruption:
    @pytest.mark.parametrize("preset", ("ring6", "torus4x4"))
    @pytest.mark.parametrize("engine", VL_ENGINES)
    def test_matrix_cells_clean(self, preset, engine):
        result = run_case(
            FabricCheckCase(preset=preset, engine=engine), emit_metrics=False
        )
        assert result.ok, result.report.render()

    @pytest.mark.parametrize("engine", VL_ENGINES)
    def test_corrupt_vl_mode_fails_the_cell(self, engine):
        result = run_case(
            FabricCheckCase(preset="ring6", engine=engine),
            corrupt_vl=True,
            emit_metrics=False,
        )
        assert not result.ok
        assert result.injected is not None
        assert "VLC002" in result.report.count_by_rule()

    def test_corrupt_vl_rejects_single_vl_engines(self):
        sm = bring_up("ring6", "updn")
        with pytest.raises(StaticAnalysisError) as exc:
            corrupt_vl_assignment(sm)
        for engine in VL_ENGINES:
            assert engine in str(exc.value)

    def test_verify_subnet_accepts_vl_engines(self):
        # The end-to-end hook: verify_subnet must not report META notices
        # as failures on a clean LASH fabric.
        from repro.analysis.verification import verify_subnet

        sm = bring_up("ring6", "lash")
        report = verify_subnet(sm)
        assert report.ok, report.problems()


CORRUPTION_RULE = {"remap": "VLC002", "drop": "VLC003", "collapse": "VLC001"}


class TestVlProperties:
    """Satellite 4: LASH on random 3-regular graphs, property-based."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**16),
        half=st.integers(4, 7),
        victim=st.integers(0, 2**20),
        mode=st.sampled_from(sorted(CORRUPTION_RULE)),
    )
    def test_lash_clean_and_corruption_caught_by_exactly_one_rule(
        self, seed, half, victim, mode
    ):
        built = build_random_regular(2 * half, 3, 1, seed=seed)
        sm = SubnetManager(built.topology, engine="lash", built=built)
        sm.assign_lids()
        sm.compute_routing()
        tables = sm.current_tables
        snap = FabricSnapshot.from_topology(
            built.topology, tables.ports, vl=tables.vl
        )
        # Clean routing satisfies VLC001-VLC003.
        assert check_vl_deadlock_freedom(snap) == []
        assert check_vl_consistency(snap) == []
        assert check_vl_capacity(snap) == []
        # One corrupted assignment is caught by exactly one rule.
        vl = tables.vl.copy()
        corrupt_assignment(vl, mode, index=victim)
        if mode == "collapse" and tables.vl.num_vls < 2:
            # Everything already fit on one layer; collapsing is the
            # identity and the fabric must still verify clean.
            expected = set()
        else:
            expected = {CORRUPTION_RULE[mode]}
        bad = FabricSnapshot.from_topology(
            built.topology, tables.ports, vl=vl
        )
        fired = set(
            rules_of(
                check_vl_deadlock_freedom(bad)
                + check_vl_consistency(bad)
                + check_vl_capacity(bad)
            )
        )
        assert fired == expected, (mode, fired)
