"""Tests for the capacity and cost sweeps (section V-A arithmetic)."""

import pytest

from repro.analysis.sweeps import (
    subnet_cost_sweep,
    vf_capacity_sweep,
)
from repro.constants import UNICAST_LID_COUNT
from repro.errors import ReproError


class TestVfCapacity:
    def test_paper_16_vf_point(self):
        point = next(
            p for p in vf_capacity_sweep() if p.vfs_per_hypervisor == 16
        )
        # Section V-A: floor(49151/17) = 2891 hypervisors, 46256 VMs.
        assert point.max_hypervisors == 2891
        assert point.max_vms == 46256
        assert point.lids_per_hypervisor == 17

    def test_hypervisor_count_decreases_with_vfs(self):
        points = vf_capacity_sweep()
        hyps = [p.max_hypervisors for p in points]
        assert hyps == sorted(hyps, reverse=True)

    def test_vm_capacity_grows_with_vfs(self):
        # More VFs per node: fewer nodes, but more total VM slots.
        points = vf_capacity_sweep((1, 16, 126))
        vms = [p.max_vms for p in points]
        assert vms == sorted(vms)

    def test_utilization_near_full(self):
        for p in vf_capacity_sweep():
            assert 0.97 < p.lid_utilization <= 1.0

    def test_budget_respected(self):
        for p in vf_capacity_sweep():
            assert (
                p.max_hypervisors * p.lids_per_hypervisor <= UNICAST_LID_COUNT
            )

    def test_invalid_vfs_rejected(self):
        with pytest.raises(ReproError):
            vf_capacity_sweep((0,))


class TestSubnetCostSweep:
    def test_default_matches_table1(self):
        rows = subnet_cost_sweep()
        assert [r.min_smps_full_reconfig for r in rows] == [
            216,
            594,
            104004,
            336960,
        ]

    def test_prepopulated_vfs_inflate_blocks(self):
        bare = subnet_cost_sweep(((324, 36),))[0]
        padded = subnet_cost_sweep(((324, 36),), extra_lids_per_node=16)[0]
        # 324 nodes x 16 VFs = 5184 extra LIDs -> many more blocks/SMPs.
        assert padded.lids == bare.lids + 16 * 324
        assert padded.min_smps_full_reconfig > 4 * bare.min_smps_full_reconfig
        # But the vSwitch migration bound is unchanged: it never depends on
        # the number of LIDs, only on the switch count.
        assert padded.max_smps_swap == bare.max_smps_swap
