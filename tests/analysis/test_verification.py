"""Tests for the subnet verification audit."""

import pytest

from repro.analysis.verification import (
    verify_delivery,
    verify_sm_consistency,
    verify_subnet,
)
from repro.core.reconfig import VSwitchReconfigurer
from repro.errors import ReproError
from repro.fabric.presets import scaled_fattree
from repro.sm.subnet_manager import SubnetManager
from tests.conftest import make_cloud


@pytest.fixture
def healthy_sm(small_fattree):
    sm = SubnetManager(small_fattree.topology, built=small_fattree)
    sm.initial_configure(with_discovery=False)
    return sm


class TestHealthySubnet:
    def test_clean_audit(self, healthy_sm):
        report = verify_subnet(healthy_sm)
        assert report.ok
        assert report.lids_checked == healthy_sm.lids_consumed
        report.raise_if_failed()  # no-op

    def test_sampling(self, healthy_sm):
        report = verify_delivery(healthy_sm.topology, sample_every=3)
        assert report.ok
        assert report.switches_checked == 4  # 12 switches / 3

    def test_bad_sampling_rejected(self, healthy_sm):
        with pytest.raises(ReproError):
            verify_delivery(healthy_sm.topology, sample_every=0)

    def test_after_migrations_still_ok(self, small_fattree):
        cloud = make_cloud(small_fattree, num_vfs=3)
        vm = cloud.boot_vm(on="l0h0")
        cloud.live_migrate(vm.name, "l4h4")
        cloud.live_migrate(vm.name, "l2h1")
        assert verify_subnet(cloud.sm).ok


class TestDetection:
    def test_detects_corrupted_entry(self, healthy_sm):
        sw = healthy_sm.topology.switches[3]
        victim = healthy_sm.topology.bound_lids()[-1]
        sw.lft.set(victim, 33)  # nonsense port
        report = verify_delivery(healthy_sm.topology)
        assert not report.ok
        assert any(str(victim) in f for f in report.failures)
        with pytest.raises(ReproError):
            report.raise_if_failed()

    def test_detects_unprogrammed_entry(self, healthy_sm):
        sw = healthy_sm.topology.switches[0]
        victim = healthy_sm.topology.bound_lids()[-1]
        sw.lft.clear(victim)
        report = verify_delivery(healthy_sm.topology)
        assert any("unroutable" in f for f in report.failures)

    def test_detects_loop(self, healthy_sm):
        # Point two spines at each other for one LID.
        topo = healthy_sm.topology
        victim = topo.bound_lids()[-1]
        spine_a, spine_b = topo.switches[0], topo.switches[1]
        # Find mutually-connecting ports via a shared leaf: spines are not
        # directly cabled in a 2-level tree, so build a leaf<->spine loop.
        leaf = topo.switches[6]
        port_to_spine = next(
            p.num
            for p in leaf.connected_ports()
            if p.remote.node is spine_a
        )
        port_to_leaf = next(
            p.num
            for p in spine_a.connected_ports()
            if p.remote.node is leaf
        )
        leaf.lft.set(victim, port_to_spine)
        spine_a.lft.set(victim, port_to_leaf)
        report = verify_delivery(topo)
        assert any("loop" in f for f in report.failures)

    def test_detects_sm_divergence(self, healthy_sm):
        sw = healthy_sm.topology.switches[2]
        victim = healthy_sm.topology.bound_lids()[0]
        tables_port = healthy_sm.current_tables.port_for(sw.index, victim)
        sw.lft.set(victim, (tables_port % 30) + 1 if tables_port < 30 else 1)
        report = verify_sm_consistency(healthy_sm)
        # The entry may coincidentally still equal the recorded one; ensure
        # we flipped it to something different.
        if sw.lft.get(victim) == tables_port:
            sw.lft.set(victim, tables_port + 1)
        report = verify_sm_consistency(healthy_sm)
        assert not report.ok

    def test_no_recorded_routing(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        report = verify_sm_consistency(sm)
        assert not report.ok

    def test_reconfigurer_keeps_audit_green(self, healthy_sm):
        topo = healthy_sm.topology
        lid_a = healthy_sm.lid_manager.assign_extra_lid(topo.hcas[0].port(1))
        lid_b = healthy_sm.lid_manager.assign_extra_lid(topo.hcas[-1].port(1))
        healthy_sm.compute_routing()
        healthy_sm.distribute()
        VSwitchReconfigurer(healthy_sm).swap_lids(lid_a, lid_b)
        # The registry must be updated too for delivery to verify: swap
        # means the LIDs exchanged attachment points.
        healthy_sm.lid_manager.move_lid(lid_a, topo.hcas[-1].port(1))
        healthy_sm.lid_manager.move_lid(lid_b, topo.hcas[0].port(1))
        assert verify_subnet(healthy_sm).ok
