"""Tests for the one-shot reproduction report."""

import pytest

from repro.analysis.report import generate_report
from repro.cli import main


class TestReport:
    @pytest.fixture(scope="class")
    def report_text(self):
        return generate_report(paper_scale=False)

    def test_contains_all_sections(self, report_text):
        for heading in (
            "Table I",
            "Fig. 7",
            "Per-migration reconfiguration",
            "Motivation",
        ):
            assert heading in report_text

    def test_table1_numbers_present(self, report_text):
        for token in ("336960", "3240", "99.04%"):
            assert token in report_text

    def test_vswitch_zero_pct(self, report_text):
        assert "vswitch-reconfig" in report_text
        assert "0.0000s" in report_text

    def test_motivation_numbers(self, report_text):
        # Shared Port breaks 6 peer connections, vSwitch zero.
        lines = [
            l
            for l in report_text.splitlines()
            if "Shared Port" in l or "vSwitch (this paper)" in l
        ]
        assert any("6" in l for l in lines if "Shared Port" in l)
        assert any(" 0" in l for l in lines if "vSwitch (this paper)" in l)

    def test_write_to_file(self, tmp_path):
        path = tmp_path / "out.md"
        text = generate_report(paper_scale=False, output=str(path))
        assert path.read_text() == text

    def test_cli_report(self, tmp_path, capsys):
        path = tmp_path / "cli.md"
        assert main(["report", "--output", str(path)]) == 0
        assert "report written" in capsys.readouterr().out
        assert path.exists()
