"""Tests for k/r calibration from transport observations."""

import pytest

from repro.analysis.calibration import calibrate
from repro.errors import ReproError
from repro.fabric.presets import scaled_fattree
from repro.mad.smp import Smp, SmpKind, SmpMethod
from repro.mad.transport import SmpTransport


@pytest.fixture
def observed_transport(small_fattree):
    topo = small_fattree.topology
    tr = SmpTransport(
        topo, hop_latency=2e-6, dr_overhead=0.5e-6, record_samples=True
    )
    # Mixed directed / destination-routed probes to every switch.
    for sw in topo.switches:
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, sw.name, directed=True))
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, sw.name, directed=False))
    return tr


class TestCalibration:
    def test_recovers_configured_constants(self, observed_transport):
        tr = observed_transport
        fit = calibrate(tr.stats)
        assert fit.k_per_hop == pytest.approx(2e-6, rel=1e-6)
        assert fit.r_per_hop == pytest.approx(0.5e-6, rel=1e-6)
        assert fit.samples == tr.stats.total_smps

    def test_paper_level_k_matches_mean(self, observed_transport):
        tr = observed_transport
        fit = calibrate(tr.stats)
        # k = k_hop * mean hops: equals the mean destination-routed latency.
        dst_lat = [
            l
            for l, d in zip(tr.stats.latencies, tr.stats.directed_flags)
            if not d
        ]
        assert fit.k == pytest.approx(sum(dst_lat) / len(dst_lat), rel=1e-6)

    def test_lftd_prediction_consistent(self, observed_transport):
        fit = calibrate(observed_transport.stats)
        n, m = 12, 6
        assert fit.lftd_time(n, m) == pytest.approx(n * m * (fit.k + fit.r))

    def test_needs_both_routing_modes(self, small_fattree):
        topo = small_fattree.topology
        tr = SmpTransport(topo)
        for sw in topo.switches:
            tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, sw.name))
        with pytest.raises(ReproError):
            calibrate(tr.stats)

    def test_needs_observations(self, small_fattree):
        tr = SmpTransport(small_fattree.topology)
        with pytest.raises(ReproError):
            calibrate(tr.stats)

    def test_delta_window_calibratable(self, observed_transport, small_fattree):
        # Calibration works on a delta window too (e.g. only the SMPs of
        # one reconfiguration).
        tr = observed_transport
        before = tr.stats.snapshot()
        topo = small_fattree.topology
        for sw in topo.switches[:4]:
            tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, sw.name, directed=True))
            tr.send(
                Smp(SmpMethod.GET, SmpKind.NODE_INFO, sw.name, directed=False)
            )
        fit = calibrate(tr.stats.delta_since(before))
        assert fit.samples == 8
        assert fit.k_per_hop == pytest.approx(2e-6, rel=1e-6)
