"""Unit tests for the static fabric checks (repro.analysis.static.checks)."""

import pytest

from repro.constants import LFT_UNSET
from repro.core.skyline import MigrationSkyline
from repro.errors import StaticAnalysisError
from repro.fabric.builders.generic import build_mesh_2d, build_ring, build_torus_2d
from repro.fabric.presets import scaled_fattree
from repro.sm.subnet_manager import SubnetManager
from repro.analysis.static import (
    FabricSnapshot,
    analyze_subnet,
    analyze_transition,
    check_deadlock_freedom,
    check_reachability,
    check_skyline_disjointness,
    check_vswitch_lids,
)
from tests.conftest import make_cloud


def bring_up(built, engine):
    sm = SubnetManager(built.topology, built=built, engine=engine)
    sm.initial_configure()
    return sm


def snapshot(built):
    return FabricSnapshot.from_topology(built.topology)


class TestCdgMatrix:
    """The acceptance matrix: which preset x engine pairs are deadlock-free."""

    def test_ring_under_naive_minhop_fails_cdg(self):
        built = build_ring(6, 1)
        report = analyze_subnet(bring_up(built, "minhop"), emit_metrics=False)
        assert not report.ok
        assert report.findings_for("CDG001")
        # The finding carries the offending dependency cycle.
        cycle = report.findings_for("CDG001")[0].detail["cycle"]
        assert len(cycle) >= 3

    def test_torus_under_naive_minhop_fails_cdg(self):
        built = build_torus_2d(4, 4, 1)
        report = analyze_subnet(bring_up(built, "minhop"), emit_metrics=False)
        assert not report.ok
        assert report.findings_for("CDG001")

    @pytest.mark.parametrize(
        "builder",
        [
            lambda: build_ring(6, 1),
            lambda: build_torus_2d(4, 4, 1),
            lambda: scaled_fattree("2l-small"),
        ],
    )
    def test_updn_is_deadlock_free_everywhere(self, builder):
        report = analyze_subnet(
            bring_up(builder(), "updn"), emit_metrics=False
        )
        assert report.ok, report.render()
        assert "updn-legality" in report.checks_run

    @pytest.mark.parametrize("engine", ["minhop", "updn", "ftree"])
    def test_fattree_presets_pass(self, engine):
        report = analyze_subnet(
            bring_up(scaled_fattree("2l-small"), engine), emit_metrics=False
        )
        assert report.ok, report.render()

    def test_mesh_under_dor_passes(self):
        report = analyze_subnet(
            bring_up(build_mesh_2d(4, 4, 1), "dor"), emit_metrics=False
        )
        assert report.ok, report.render()
        assert "dor-order" in report.checks_run

    def test_cdg_over_switch_lids_sees_management_cycles(self, small_fattree):
        # By default the CDG covers terminal LIDs only (switch self-LID
        # traffic rides VL15); explicitly including switch LIDs exposes
        # minhop's up-down-up management flows as dependency cycles.
        sm = bring_up(small_fattree, "minhop")
        snap = snapshot(small_fattree)
        assert not check_deadlock_freedom(snap)
        assert check_deadlock_freedom(snap, lids=[int(x) for x in snap.lids])


class TestReachability:
    def test_clean_fabric_has_no_findings(self, small_fattree):
        bring_up(small_fattree, "minhop")
        assert check_reachability(snapshot(small_fattree)) == []

    def test_cleared_entry_is_a_black_hole(self, small_fattree):
        sm = bring_up(small_fattree, "minhop")
        lid = int(snapshot(small_fattree).terminal_lids[0])
        victim = next(
            sw
            for sw in small_fattree.topology.switches
            if sw.lft.get(lid) != LFT_UNSET
            and sw.index != snapshot(small_fattree).dest_switch[lid]
        )
        victim.lft.clear(lid)
        findings = check_reachability(snapshot(small_fattree))
        assert any(
            f.rule == "LFT002" and f.lid == lid and f.switch == victim.index
            for f in findings
        )

    def test_injected_loop_is_reported_per_switch(self, small_fattree):
        from repro.analysis.static import inject_forwarding_loop

        bring_up(small_fattree, "minhop")
        inject_forwarding_loop(small_fattree.topology)
        findings = check_reachability(snapshot(small_fattree))
        loops = [f for f in findings if f.rule == "LFT001"]
        assert loops
        assert loops[0].switch is not None
        assert loops[0].switch_name is not None
        assert "->" in loops[0].message

    def test_lid_selection_out_of_range_rejected(self, small_fattree):
        bring_up(small_fattree, "minhop")
        with pytest.raises(StaticAnalysisError):
            snapshot(small_fattree).select_lids([10**6])


class TestAbsorbSaturation:
    """Regression: successor composition must double path length per round.

    A one-hop-per-round iteration only walks ~log2(n)+2 hops, so any
    loop-free path longer than that (e.g. around a large ring) was
    misclassified as a forwarding loop — 24 phantom LFT001/LFT004
    findings on a clean 12-switch ring.
    """

    @pytest.mark.parametrize("size", [12, 48])
    def test_large_ring_under_updn_is_clean(self, size):
        # Diameter is size/2, far beyond log2(size) + 2.
        built = build_ring(size, 1)
        report = analyze_subnet(bring_up(built, "updn"), emit_metrics=False)
        assert report.ok, report.render()

    def test_large_mesh_under_dor_is_clean(self):
        # 2x8 mesh: longest XY path is 8 hops > log2(16) + 2.
        built = build_mesh_2d(2, 8, 1)
        report = analyze_subnet(bring_up(built, "dor"), emit_metrics=False)
        assert report.ok, report.render()


class TestReviewRegressions:
    def test_narrow_ports_matrix_rejected(self, small_fattree):
        bring_up(small_fattree, "minhop")
        snap = snapshot(small_fattree)
        # Truncating the table drops the top bound LID's column; the
        # snapshot must refuse rather than silently skip that LID.
        narrow = snap.ports[:, : int(snap.lids[-1])]
        with pytest.raises(StaticAnalysisError, match="beyond"):
            FabricSnapshot.from_topology(small_fattree.topology, narrow)

    def test_unprogrammed_dest_entry_is_black_hole_not_misdelivery(
        self, small_fattree
    ):
        bring_up(small_fattree, "minhop")
        snap0 = snapshot(small_fattree)
        lid = int(snap0.terminal_lids[0])
        dest = small_fattree.topology.switches[int(snap0.dest_switch[lid])]
        dest.lft.clear(lid)
        findings = check_reachability(snapshot(small_fattree))
        mine = [f for f in findings if f.lid == lid]
        # Every source now funnels into the hole, so it aggregates as
        # LFT004 — whose cause must read black-holed, not misdelivered.
        assert mine and mine[0].rule == "LFT004"
        assert "black-holed" in mine[0].message
        assert "misdelivered" not in mine[0].message

    def test_per_rule_cap_emits_meta001_sentinel(
        self, small_fattree, monkeypatch
    ):
        from repro.analysis.static import checks as checks_mod

        monkeypatch.setattr(checks_mod, "MAX_FINDINGS_PER_RULE", 2)
        bring_up(small_fattree, "minhop")
        snap0 = snapshot(small_fattree)
        leaves = sorted(
            {int(snap0.dest_switch[int(t)]) for t in snap0.terminal_lids}
        )
        # Black-hole four LIDs at one *other* leaf each: exactly one
        # source fails per LID, so each is an LFT002 (never LFT004).
        broken = []
        for lid in map(int, snap0.terminal_lids):
            other = next(
                ix for ix in leaves if ix != int(snap0.dest_switch[lid])
            )
            sw = small_fattree.topology.switches[other]
            if sw.lft.get(lid) != LFT_UNSET:
                sw.lft.clear(lid)
                broken.append(lid)
            if len(broken) == 4:
                break
        assert len(broken) == 4
        findings = check_reachability(snapshot(small_fattree))
        by_rule = {}
        for f in findings:
            by_rule.setdefault(f.rule, []).append(f)
        assert len(by_rule["LFT002"]) == 2  # capped per rule
        assert "LFT001" not in by_rule  # sentinel no longer masquerades
        (meta,) = by_rule["META001"]
        assert meta.detail["suppressed_by_rule"] == {"LFT002": 2}


class TestTransition:
    def test_identical_routings_union_is_routing_itself(self, small_fattree):
        bring_up(small_fattree, "minhop")
        ports = snapshot(small_fattree).ports
        report = analyze_transition(
            small_fattree.topology, ports, ports.copy(), emit_metrics=False
        )
        assert report.ok

    def test_cyclic_routing_union_raises_cdg002(self):
        built = build_ring(6, 1)
        bring_up(built, "minhop")
        ports = snapshot(built).ports
        report = analyze_transition(
            built.topology, ports, ports.copy(), emit_metrics=False
        )
        assert report.findings_for("CDG002")

    def test_real_migration_transition_is_deadlock_free(self, small_fattree):
        cloud = make_cloud(small_fattree, lid_scheme="prepopulated", num_vfs=3)
        vm = cloud.boot_vm()
        dest = next(
            name
            for name, h in cloud.hypervisors.items()
            if name != vm.hypervisor_name and h.has_capacity()
        )
        old = snapshot(small_fattree).ports.copy()
        cloud.live_migrate(vm.name, dest)
        new = snapshot(small_fattree).ports.copy()
        assert (old != new).any()
        report = analyze_transition(
            small_fattree.topology, old, new, emit_metrics=False
        )
        assert report.ok, report.render()


class TestVswitchLids:
    @pytest.mark.parametrize("scheme", ["prepopulated", "dynamic"])
    def test_clean_cloud_passes_both_schemes(self, scheme):
        cloud = make_cloud(
            scaled_fattree("2l-small"), lid_scheme=scheme, num_vfs=2
        )
        cloud.boot_vm()
        vswitches = [h.vswitch for h in cloud.hypervisors.values()]
        assert (
            check_vswitch_lids(cloud.topology, vswitches, scheme=scheme)
            == []
        )

    def test_vf_lid_bound_elsewhere_is_vsw001(self, small_fattree):
        cloud = make_cloud(
            small_fattree, lid_scheme="prepopulated", num_vfs=2
        )
        vm = cloud.boot_vm()
        hyp = cloud.hypervisors[vm.hypervisor_name]
        other = next(
            h
            for name, h in cloud.hypervisors.items()
            if name != vm.hypervisor_name
        )
        # Point a VF at a LID that is bound to a *different* uplink.
        vf = next(v for v in hyp.vswitch.vfs if v.lid is not None)
        vf.lid = other.vswitch.pf.lid
        findings = check_vswitch_lids(
            cloud.topology,
            [h.vswitch for h in cloud.hypervisors.values()],
            scheme="prepopulated",
        )
        assert any(
            f.rule == "VSW001" and f.lid == vf.lid for f in findings
        )

    def test_pf_lid_mismatch_is_vsw002(self, small_fattree):
        cloud = make_cloud(
            small_fattree, lid_scheme="prepopulated", num_vfs=2
        )
        hyp = next(iter(cloud.hypervisors.values()))
        hyp.vswitch.pf.lid = hyp.vswitch.pf.lid + 1000
        findings = check_vswitch_lids(
            cloud.topology,
            [h.vswitch for h in cloud.hypervisors.values()],
            scheme="prepopulated",
        )
        assert any(f.rule == "VSW002" for f in findings)


class TestSkylines:
    def test_disjoint_skylines_pass(self):
        a = MigrationSkyline(vm_lid=10, other_lid=11, mode="swap", switches={0, 1})
        b = MigrationSkyline(vm_lid=20, other_lid=21, mode="swap", switches={2, 3})
        assert check_skyline_disjointness([a, b]) == []

    def test_shared_switch_is_sky001(self):
        a = MigrationSkyline(vm_lid=10, other_lid=11, mode="swap", switches={0, 1})
        b = MigrationSkyline(vm_lid=20, other_lid=21, mode="swap", switches={1, 2})
        findings = check_skyline_disjointness([a, b])
        assert any(f.rule == "SKY001" for f in findings)

    def test_shared_lid_is_sky001(self):
        a = MigrationSkyline(vm_lid=10, other_lid=11, mode="swap", switches={0})
        b = MigrationSkyline(vm_lid=11, other_lid=21, mode="swap", switches={5})
        findings = check_skyline_disjointness([a, b])
        assert any(f.rule == "SKY001" for f in findings)
