"""Tests for the experiment harnesses and renderers."""

import pytest

from repro.analysis.experiments import (
    FIG7_ENGINES,
    fig7_topologies,
    measure_path_computation,
    measured_full_reconfig_smps,
    paper_scale_enabled,
    table1_for_topology,
)
from repro.analysis.figures import PAPER_FIG7_SECONDS, Fig7Series, render_fig7
from repro.analysis.tables import render_table, render_table1
from repro.core.cost_model import paper_table1, table1_row
from repro.fabric.presets import paper_fattree, scaled_fattree


class TestTableRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "long"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "333" in lines[3]

    def test_render_table1_matches_paper_numbers(self):
        text = render_table1(paper_table1())
        for token in ("216", "594", "104004", "336960", "72", "3240"):
            assert token in text
        assert "Min SMPs Full RC" in text


class TestFig7Harness:
    def test_measure_records_all_engines(self, small_fattree):
        series = measure_path_computation(small_fattree, engines=("minhop",))
        assert "minhop" in series.seconds_by_engine
        assert series.seconds_by_engine["vswitch-reconfig"] == 0.0
        assert series.num_switches == 12

    def test_render_fig7(self, small_fattree):
        series = measure_path_computation(small_fattree, engines=("minhop",))
        text = render_fig7([series])
        assert "vswitch-reconfig" in text
        assert "0.0000s" in text

    def test_fig7_topologies_scaled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert not paper_scale_enabled()
        tops = fig7_topologies()
        assert len(tops) == 4
        assert all(t.topology.num_hcas <= 1000 for t in tops)

    def test_paper_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert paper_scale_enabled()

    def test_paper_values_table_complete(self):
        for engine in FIG7_ENGINES:
            assert set(PAPER_FIG7_SECONDS[engine]) == {324, 648, 5832, 11664}

    def test_paper_fig7_orderings(self):
        # The orderings our reproduction must preserve.
        for nodes in (324, 648, 5832, 11664):
            assert (
                PAPER_FIG7_SECONDS["ftree"][nodes]
                <= PAPER_FIG7_SECONDS["minhop"][nodes]
            )
            assert (
                PAPER_FIG7_SECONDS["minhop"][nodes]
                < PAPER_FIG7_SECONDS["dfsssp"][nodes]
            )
        # LASH explodes only on the 3-level instances.
        assert PAPER_FIG7_SECONDS["lash"][324] < PAPER_FIG7_SECONDS["dfsssp"][324]
        assert PAPER_FIG7_SECONDS["lash"][5832] > PAPER_FIG7_SECONDS["dfsssp"][5832]


class TestTable1Harness:
    @pytest.mark.parametrize("nodes", [324, 648])
    def test_constructed_topology_matches_closed_form(self, nodes):
        built = paper_fattree(nodes)
        row = table1_for_topology(built)
        assert row == table1_row(nodes, row.switches)

    def test_measured_full_reconfig_equals_table1(self, small_fattree):
        # The actually-counted SubnSet(LFT) packets of a forced full
        # reconfiguration equal n * m from the cost model.
        smps = measured_full_reconfig_smps(small_fattree, engine="minhop")
        topo = small_fattree.topology
        row = table1_row(topo.num_hcas, topo.num_switches)
        assert smps == row.min_smps_full_reconfig

    @pytest.mark.slow
    def test_measured_full_reconfig_paper_324(self):
        built = paper_fattree(324)
        assert measured_full_reconfig_smps(built, engine="ftree") == 216
