"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.figures import Fig7Series
from repro.analysis.plots import ascii_bars, render_fig7_chart
from repro.errors import ReproError


class TestAsciiBars:
    def test_zero_renders_pinned_bar(self):
        out = ascii_bars({"vswitch": 0.0, "minhop": 1.0})
        line = next(l for l in out.splitlines() if l.startswith("vswitch"))
        assert "|" in line and "#" not in line

    def test_log_scaling_orders_bars(self):
        out = ascii_bars({"a": 0.001, "b": 1.0, "c": 1000.0})
        lengths = {
            l.split()[0]: l.count("#") for l in out.splitlines()
        }
        assert lengths["a"] < lengths["b"] < lengths["c"]

    def test_linear_mode(self):
        out = ascii_bars({"half": 5.0, "full": 10.0}, log=False, width=20)
        lengths = {l.split()[0]: l.count("#") for l in out.splitlines()}
        assert lengths["full"] == 2 * lengths["half"]

    def test_values_printed(self):
        out = ascii_bars({"x": 0.125}, unit="ms")
        assert "0.125ms" in out

    def test_labels_aligned(self):
        out = ascii_bars({"ab": 1.0, "abcdef": 2.0})
        starts = {l.index("#") for l in out.splitlines()}
        assert len(starts) == 1

    def test_validation(self):
        with pytest.raises(ReproError):
            ascii_bars({"x": 1.0}, width=3)
        with pytest.raises(ReproError):
            ascii_bars({"x": -1.0})

    def test_empty(self):
        assert "no data" in ascii_bars({})


class TestFig7Chart:
    def test_groups_per_topology(self):
        s1 = Fig7Series("a", 36, 12, {"minhop": 0.1, "vswitch-reconfig": 0.0})
        s2 = Fig7Series("b", 72, 18, {"minhop": 0.2, "vswitch-reconfig": 0.0})
        out = render_fig7_chart([s1, s2])
        assert "a (36 nodes, 12 switches)" in out
        assert "b (72 nodes, 18 switches)" in out
        assert out.count("vswitch-reconfig") == 2
