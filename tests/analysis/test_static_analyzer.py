"""Tests for the analysis orchestration, the check-fabric matrix, and the
verification hook-up (repro.analysis.static.analyzer / .suite)."""

import pytest

from repro.errors import ReproError, StaticAnalysisError
from repro.fabric.presets import scaled_fattree
from repro.obs import get_hub
from repro.sm.subnet_manager import SubnetManager
from repro.analysis.static import (
    FabricCheckCase,
    analyze_cloud,
    analyze_subnet,
    default_cases,
    inject_forwarding_loop,
    run_case,
    run_matrix,
)
from repro.analysis.verification import verify_sm_consistency, verify_subnet
from tests.conftest import make_cloud


def bring_up(built, engine="minhop"):
    sm = SubnetManager(built.topology, built=built, engine=engine)
    sm.initial_configure()
    return sm


class TestAnalyzeSubnet:
    def test_hardware_and_recorded_sources_agree(self, small_fattree):
        sm = bring_up(small_fattree)
        hw = analyze_subnet(sm, source="hardware", emit_metrics=False)
        soft = analyze_subnet(sm, source="recorded", emit_metrics=False)
        assert hw.ok and soft.ok
        assert hw.lids_analyzed == soft.lids_analyzed

    def test_recorded_requires_tables(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        with pytest.raises(StaticAnalysisError):
            analyze_subnet(sm, source="recorded")

    def test_unknown_source_rejected(self, small_fattree):
        sm = bring_up(small_fattree)
        with pytest.raises(StaticAnalysisError):
            analyze_subnet(sm, source="telepathy")

    def test_engine_selects_legality_checks(self, small_fattree):
        sm = bring_up(small_fattree, engine="updn")
        report = analyze_subnet(sm, emit_metrics=False)
        assert "updn-legality" in report.checks_run

    def test_metrics_are_published(self, small_fattree):
        sm = bring_up(small_fattree)
        analyze_subnet(sm)
        rendered = get_hub().metrics.render_prometheus()
        assert "repro_static_checks_total" in rendered
        assert "repro_static_fabric_ok" in rendered

    def test_analyze_cloud_covers_vswitches(self, small_fattree):
        cloud = make_cloud(
            small_fattree, lid_scheme="prepopulated", num_vfs=2
        )
        report = analyze_cloud(cloud, emit_metrics=False)
        assert report.ok, report.render()
        assert "vswitch-lids" in report.checks_run


class TestCheckFabricMatrix:
    def test_default_matrix_is_all_clean(self):
        results = run_matrix(emit_metrics=False)
        assert len(results) >= 10
        for r in results:
            assert r.ok, f"{r.case}: {r.report.render()}"

    def test_matrix_covers_all_required_engines(self):
        engines = {c.engine for c in default_cases()}
        assert {"minhop", "updn", "ftree", "dor", "dfsssp", "lash"} <= engines

    def test_injected_fault_fails_with_actionable_findings(self):
        case = FabricCheckCase(preset="ring6", engine="updn")
        result = run_case(case, inject_fault=True, emit_metrics=False)
        assert not result.ok
        assert result.injected is not None
        rules = set(result.report.count_by_rule())
        assert "LFT001" in rules and "CDG001" in rules
        # Findings name the switch the problem was localised to.
        rendered = result.report.render()
        assert "sw " in rendered

    def test_unknown_preset_rejected(self):
        with pytest.raises(StaticAnalysisError):
            default_cases(preset="moebius")

    def test_empty_intersection_rejected(self):
        with pytest.raises(StaticAnalysisError):
            default_cases(preset="ring6", engine="ftree")


class TestVerificationHookup:
    def test_verify_subnet_runs_static_analysis(self, small_fattree):
        sm = bring_up(small_fattree)
        report = verify_subnet(sm)
        assert report.ok
        assert report.findings == []

    def test_loop_surfaces_through_raise_if_failed(self, small_fattree):
        sm = bring_up(small_fattree)
        inject_forwarding_loop(small_fattree.topology)
        report = verify_sm_consistency(sm)
        assert not report.ok
        rules = {f.rule for f in report.findings}
        assert "LFT001" in rules and "CDG001" in rules
        with pytest.raises(ReproError) as exc:
            report.raise_if_failed()
        # Per-switch detail reaches the exception text.
        assert "sw " in str(exc.value) or "LID" in str(exc.value)

    def test_static_can_be_disabled(self, small_fattree):
        sm = bring_up(small_fattree)
        inject_forwarding_loop(small_fattree.topology)
        report = verify_sm_consistency(sm, static=False)
        assert report.findings == []
        # The hardware/recorded mismatch itself is still caught.
        assert not report.ok

    def test_verify_subnet_before_and_after_reconfiguration(self):
        cloud = make_cloud(
            scaled_fattree("2l-small"), lid_scheme="prepopulated", num_vfs=3
        )
        assert verify_subnet(cloud.sm).ok
        vm = cloud.boot_vm()
        dest = next(
            name
            for name, h in cloud.hypervisors.items()
            if name != vm.hypervisor_name and h.has_capacity()
        )
        cloud.live_migrate(vm.name, dest)
        assert verify_subnet(cloud.sm).ok
