"""Smoke tests: every shipped example runs to completion and prints the
headline facts it promises."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

pytestmark = pytest.mark.slow


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "path computation    : 0" in out
        assert "VM kept its LID     : True" in out
        assert "99.04" in out

    def test_live_migration_cloud(self, capsys):
        out = run_example("live_migration_cloud.py", capsys)
        assert "at most one VM per node" in out
        assert "co-resident VMs unaffected" in out
        assert "one switch, regardless of topology" in out

    def test_reconfigure_at_scale(self, capsys):
        out = run_example("reconfigure_at_scale.py", capsys)
        assert "336960" in out
        assert "768 LFT blocks" in out

    def test_consolidation(self, capsys):
        out = run_example("consolidation.py", capsys)
        assert "nodes freed" in out
        assert "0 seconds of path computation" in out

    def test_deadlock_timeouts(self, capsys):
        out = run_example("deadlock_timeouts.py", capsys)
        assert "broken by timeouts" in out
        assert out.count("deadlock never formed") == 2

    def test_fabric_management(self, capsys):
        out = run_example("fabric_management.py", capsys)
        assert "took over" in out
        assert "subnet audit: OK" in out
        assert "safe swap" in out

    def test_routing_comparison(self, capsys):
        out = run_example("routing_comparison.py", capsys)
        assert "vswitch-reconfig" in out
        assert "0.0000s" in out
        assert "shape checks" in out
