"""Tests for the fat-tree and generic topology builders plus paper presets."""

import pytest

from repro.errors import TopologyError
from repro.fabric.builders.fattree import (
    build_three_level_fattree,
    build_two_level_fattree,
)
from repro.fabric.builders.generic import (
    build_mesh_2d,
    build_random_regular,
    build_ring,
    build_single_switch,
    build_torus_2d,
)
from repro.fabric.presets import (
    PAPER_FATTREE_NODES,
    PAPER_TABLE1_SHAPE,
    SCALED_PROFILES,
    paper_fattree,
    scaled_fattree,
)


class TestTwoLevel:
    def test_shape(self):
        b = build_two_level_fattree(4, 3, 2, switch_radix=8)
        t = b.topology
        assert t.num_switches == 6
        assert t.num_hcas == 12
        # Every leaf connects to every spine.
        view = t.fabric_view()
        for leaf in b.leaves:
            peers = {p for p, _ in view.neighbors(leaf.index)}
            assert len(peers) == 2

    def test_levels_and_roots(self):
        b = build_two_level_fattree(4, 3, 2, switch_radix=8)
        assert len(b.roots) == 2
        assert all(b.level[r.name] == 1 for r in b.roots)
        assert len(b.leaves) == 4

    def test_radix_violation_leaf(self):
        with pytest.raises(TopologyError):
            build_two_level_fattree(4, 7, 2, switch_radix=8)

    def test_radix_violation_spine(self):
        with pytest.raises(TopologyError):
            build_two_level_fattree(9, 3, 2, switch_radix=8)

    def test_parallel_spine_links(self):
        b = build_two_level_fattree(
            2, 2, 2, switch_radix=8, links_per_spine_pair=2
        )
        view = b.topology.fabric_view()
        assert view.degree(b.leaves[0].index) == 4  # 2 spines x 2 cables

    def test_no_hosts_option(self):
        b = build_two_level_fattree(4, 3, 2, switch_radix=8, attach_hosts=False)
        assert b.topology.num_hcas == 0
        # Host ports remain free for the cloud layer.
        assert len(list(b.leaves[0].free_ports())) >= 3

    def test_validates(self):
        b = build_two_level_fattree(4, 3, 2, switch_radix=8)
        b.topology.validate()


class TestThreeLevel:
    def test_shape_radix8(self):
        # m=4: pods of 4 leaves + 4 aggs, 16 core switches, 4 hosts/leaf.
        b = build_three_level_fattree(4, switch_radix=8)
        t = b.topology
        assert t.num_switches == 4 * 8 + 16
        assert t.num_hcas == 4 * 4 * 4

    def test_levels(self):
        b = build_three_level_fattree(2, switch_radix=4)
        levels = set(b.level.values())
        assert levels == {0, 1, 2}
        assert all(b.level[r.name] == 2 for r in b.roots)

    def test_pod_metadata(self):
        b = build_three_level_fattree(3, switch_radix=4)
        pods = {b.pod[sw.name] for sw in b.topology.switches}
        assert pods == {-1, 0, 1, 2}

    def test_odd_radix_rejected(self):
        with pytest.raises(TopologyError):
            build_three_level_fattree(2, switch_radix=7)

    def test_too_many_pods_rejected(self):
        with pytest.raises(TopologyError):
            build_three_level_fattree(9, switch_radix=8)

    def test_validates(self):
        b = build_three_level_fattree(3, switch_radix=8)
        b.topology.validate()


class TestPaperPresets:
    @pytest.mark.parametrize("nodes", [324, 648])
    def test_two_level_paper_counts(self, nodes):
        b = paper_fattree(nodes)
        switches, lids = PAPER_TABLE1_SHAPE[nodes]
        assert b.topology.num_hcas == nodes
        assert b.topology.num_switches == switches
        assert b.topology.num_hcas + b.topology.num_switches == lids

    @pytest.mark.slow
    @pytest.mark.parametrize("nodes", [5832, 11664])
    def test_three_level_paper_counts(self, nodes):
        b = paper_fattree(nodes, attach_hosts=True)
        switches, lids = PAPER_TABLE1_SHAPE[nodes]
        assert b.topology.num_hcas == nodes
        assert b.topology.num_switches == switches
        assert b.topology.num_hcas + b.topology.num_switches == lids

    def test_unknown_size_rejected(self):
        with pytest.raises(TopologyError):
            paper_fattree(1000)

    def test_all_sizes_listed(self):
        assert PAPER_FATTREE_NODES == (324, 648, 5832, 11664)


class TestScaledPresets:
    @pytest.mark.parametrize("profile", sorted(SCALED_PROFILES))
    def test_profiles_build_and_validate(self, profile):
        b = scaled_fattree(profile)
        b.topology.validate()
        assert b.topology.num_hcas > 0

    def test_unknown_profile_rejected(self):
        with pytest.raises(TopologyError):
            scaled_fattree("nope")

    def test_scaled_mirror_structure(self):
        # The scaled 2l twins keep the paper's leaves:spines ratios.
        small = scaled_fattree("2l-small")
        wide = scaled_fattree("2l-wide")
        assert len(wide.leaves) == 2 * len(small.leaves)


class TestGenericBuilders:
    def test_single_switch(self):
        b = build_single_switch(4)
        assert b.topology.num_switches == 1
        assert b.topology.num_hcas == 4
        b.topology.validate()

    def test_single_switch_overflow(self):
        with pytest.raises(TopologyError):
            build_single_switch(10, switch_radix=4)

    def test_ring(self):
        b = build_ring(5, 2)
        assert b.topology.num_switches == 5
        assert b.topology.num_hcas == 10
        view = b.topology.fabric_view()
        assert all(view.degree(i) == 2 for i in range(5))
        b.topology.validate()

    def test_ring_too_small(self):
        with pytest.raises(TopologyError):
            build_ring(2, 1)

    def test_mesh(self):
        b = build_mesh_2d(3, 4, 1)
        assert b.topology.num_switches == 12
        view = b.topology.fabric_view()
        degrees = sorted(view.degree(i) for i in range(12))
        assert degrees[0] == 2 and degrees[-1] == 4  # corners vs interior
        b.topology.validate()

    def test_torus_regular_degree(self):
        b = build_torus_2d(3, 3, 1)
        view = b.topology.fabric_view()
        assert all(view.degree(i) == 4 for i in range(9))
        b.topology.validate()

    def test_torus_too_small(self):
        with pytest.raises(TopologyError):
            build_torus_2d(2, 3, 1)

    def test_random_regular(self):
        b = build_random_regular(8, 3, 1, seed=1)
        view = b.topology.fabric_view()
        assert all(view.degree(i) == 3 for i in range(8))
        b.topology.validate()

    def test_random_regular_parity_rejected(self):
        with pytest.raises(TopologyError):
            build_random_regular(5, 3, 1)

    def test_random_regular_reproducible(self):
        a = build_random_regular(8, 3, 1, seed=7)
        b = build_random_regular(8, 3, 1, seed=7)
        va, vb = a.topology.fabric_view(), b.topology.fabric_view()
        assert (va.peer == vb.peer).all()
