"""Tests for IB addressing: LIDs, GUIDs, GIDs and their allocators."""

import pytest

from repro.constants import MAX_UNICAST_LID, MIN_UNICAST_LID, UNICAST_LID_COUNT
from repro.errors import AddressingError, LidExhaustedError, LidInUseError
from repro.fabric.addressing import (
    DEFAULT_SUBNET_PREFIX,
    GID,
    GuidAllocator,
    LidAllocator,
    is_valid_unicast_lid,
    make_gid,
    theoretical_hypervisor_limit,
    theoretical_vm_limit,
)


class TestUnicastRange:
    def test_lid_space_size_matches_paper(self):
        # Section II-B: 49151 usable unicast addresses (0x0001-0xBFFF).
        assert UNICAST_LID_COUNT == 49151

    def test_bounds(self):
        assert is_valid_unicast_lid(MIN_UNICAST_LID)
        assert is_valid_unicast_lid(MAX_UNICAST_LID)
        assert not is_valid_unicast_lid(0)
        assert not is_valid_unicast_lid(MAX_UNICAST_LID + 1)

    def test_hex_constants(self):
        assert MIN_UNICAST_LID == 0x0001
        assert MAX_UNICAST_LID == 0xBFFF


class TestGid:
    def test_gid_combines_prefix_and_guid(self):
        gid = GID(prefix=0xFE80_0000_0000_0000, guid=0xABCD)
        assert gid.as_int == (0xFE80_0000_0000_0000 << 64) | 0xABCD

    def test_make_gid_uses_default_prefix(self):
        gid = make_gid(42)
        assert gid.prefix == DEFAULT_SUBNET_PREFIX
        assert gid.guid == 42

    def test_gid_rejects_oversized_fields(self):
        with pytest.raises(AddressingError):
            GID(prefix=1 << 64, guid=0)
        with pytest.raises(AddressingError):
            GID(prefix=0, guid=1 << 64)

    def test_gid_is_hashable_value_type(self):
        assert make_gid(7) == make_gid(7)
        assert len({make_gid(7), make_gid(7), make_gid(8)}) == 2

    def test_str_is_ipv6_like(self):
        text = str(make_gid(1))
        assert text.count(":") == 7
        assert text.startswith("fe80")


class TestLidAllocator:
    def test_sequential_allocation_starts_at_one(self):
        alloc = LidAllocator()
        assert [alloc.allocate() for _ in range(3)] == [1, 2, 3]

    def test_release_and_recycle_lowest_first(self):
        alloc = LidAllocator()
        lids = [alloc.allocate() for _ in range(5)]
        alloc.release(lids[1])
        alloc.release(lids[3])
        assert alloc.allocate() == lids[1]
        assert alloc.allocate() == lids[3]

    def test_assign_specific_lid(self):
        alloc = LidAllocator()
        assert alloc.assign(100) == 100
        assert alloc.is_allocated(100)

    def test_assign_taken_lid_raises(self):
        alloc = LidAllocator()
        alloc.assign(7)
        with pytest.raises(LidInUseError):
            alloc.assign(7)

    def test_allocate_skips_explicitly_assigned(self):
        alloc = LidAllocator()
        alloc.assign(1)
        alloc.assign(2)
        assert alloc.allocate() == 3

    def test_exhaustion(self):
        alloc = LidAllocator(first=1, last=3)
        for _ in range(3):
            alloc.allocate()
        with pytest.raises(LidExhaustedError):
            alloc.allocate()

    def test_release_unknown_raises(self):
        alloc = LidAllocator()
        with pytest.raises(AddressingError):
            alloc.release(5)

    def test_counts(self):
        alloc = LidAllocator(first=1, last=10)
        assert alloc.capacity == 10
        alloc.allocate()
        alloc.allocate()
        assert alloc.allocated_count == 2
        assert alloc.free_count == 8

    def test_invalid_range_rejected(self):
        with pytest.raises(AddressingError):
            LidAllocator(first=0, last=10)
        with pytest.raises(AddressingError):
            LidAllocator(first=10, last=5)

    def test_assign_outside_range_rejected(self):
        alloc = LidAllocator(first=1, last=10)
        with pytest.raises(AddressingError):
            alloc.assign(11)

    def test_allocated_iterates_sorted(self):
        alloc = LidAllocator()
        alloc.assign(9)
        alloc.assign(3)
        alloc.assign(5)
        assert list(alloc.allocated()) == [3, 5, 9]


class TestGuidAllocator:
    def test_physical_and_virtual_pools_disjoint(self):
        guids = GuidAllocator()
        phys = {guids.allocate_physical() for _ in range(50)}
        virt = {guids.allocate_virtual() for _ in range(50)}
        assert not phys & virt

    def test_uniqueness(self):
        guids = GuidAllocator()
        seen = set()
        for _ in range(200):
            g = guids.allocate_physical()
            assert g not in seen
            seen.add(g)

    def test_is_virtual(self):
        guids = GuidAllocator()
        assert guids.is_virtual(guids.allocate_virtual())
        assert not guids.is_virtual(guids.allocate_physical())

    def test_was_issued(self):
        guids = GuidAllocator()
        g = guids.allocate_physical()
        assert guids.was_issued(g)
        assert not guids.was_issued(g + 999)

    def test_issued_count(self):
        guids = GuidAllocator()
        guids.allocate_physical()
        guids.allocate_virtual()
        assert guids.issued_count == 2


class TestTheoreticalLimits:
    def test_paper_hypervisor_limit_with_16_vfs(self):
        # Section V-A: floor(49151 / 17) = 2891 hypervisors.
        assert theoretical_hypervisor_limit(16) == 2891

    def test_paper_vm_limit_with_16_vfs(self):
        # Section V-A: 2891 * 16 = 46256 VMs.
        assert theoretical_vm_limit(16) == 46256

    def test_zero_vfs(self):
        assert theoretical_hypervisor_limit(0) == UNICAST_LID_COUNT
        assert theoretical_vm_limit(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(AddressingError):
            theoretical_hypervisor_limit(-1)
