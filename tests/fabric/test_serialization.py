"""Tests for topology save/load round-tripping."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.fabric.presets import scaled_fattree
from repro.fabric.serialization import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.sm.routing.base import RoutingRequest
from repro.sm.subnet_manager import SubnetManager


@pytest.fixture
def configured_fattree():
    built = scaled_fattree("2l-small")
    sm = SubnetManager(built.topology, built=built)
    sm.initial_configure(with_discovery=False)
    return built, sm


class TestRoundTrip:
    def test_structure_survives(self, configured_fattree):
        built, sm = configured_fattree
        doc = topology_to_dict(built.topology, built=built)
        clone = topology_from_dict(doc)
        t0, t1 = built.topology, clone.topology
        assert t1.num_switches == t0.num_switches
        assert t1.num_hcas == t0.num_hcas
        assert len(t1.links) == len(t0.links)
        assert t1.bound_lids() == t0.bound_lids()

    def test_lids_and_lfts_survive(self, configured_fattree):
        built, sm = configured_fattree
        clone = topology_from_dict(topology_to_dict(built.topology, built=built))
        for sw0, sw1 in zip(built.topology.switches, clone.topology.switches):
            assert sw0.lid == sw1.lid
            for lid in built.topology.bound_lids():
                assert sw0.lft.get(lid) == sw1.lft.get(lid)

    def test_builder_metadata_survives(self, configured_fattree):
        built, sm = configured_fattree
        clone = topology_from_dict(topology_to_dict(built.topology, built=built))
        assert clone.level == built.level
        assert clone.params == built.params
        assert [r.name for r in clone.roots] == [r.name for r in built.roots]

    def test_clone_is_routable(self, configured_fattree):
        built, sm = configured_fattree
        clone = topology_from_dict(topology_to_dict(built.topology, built=built))
        sm2 = SubnetManager(clone.topology, built=clone, engine="ftree")
        req = RoutingRequest.from_topology(clone.topology, built=clone)
        tables = sm2.engine.compute(req)
        tables.validate(req)

    def test_file_round_trip(self, tmp_path, configured_fattree):
        built, sm = configured_fattree
        path = tmp_path / "subnet.json"
        save_topology(str(path), built.topology, built=built)
        clone = load_topology(str(path))
        assert clone.topology.num_hcas == built.topology.num_hcas

    def test_bad_format_rejected(self):
        with pytest.raises(TopologyError):
            topology_from_dict({"format": 99})

    def test_reconfig_state_preserved(self, configured_fattree):
        # A post-migration fabric round-trips with the swapped entries.
        from repro.core.reconfig import VSwitchReconfigurer

        built, sm = configured_fattree
        topo = built.topology
        lid_a = sm.lid_manager.assign_extra_lid(topo.hcas[0].port(1))
        lid_b = sm.lid_manager.assign_extra_lid(topo.hcas[-1].port(1))
        sm.compute_routing()
        sm.distribute()
        VSwitchReconfigurer(sm).swap_lids(lid_a, lid_b)
        clone = topology_from_dict(topology_to_dict(topo, built=built))
        for sw0, sw1 in zip(topo.switches, clone.topology.switches):
            assert sw0.lft.get(lid_a) == sw1.lft.get(lid_a)
            assert sw0.lft.get(lid_b) == sw1.lft.get(lid_b)
