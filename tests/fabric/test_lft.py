"""Tests for Linear Forwarding Tables and the 64-LID block machinery."""

import numpy as np
import pytest

from repro.constants import (
    LFT_BLOCK_SIZE,
    LFT_BLOCKS_FULL_SUBNET,
    LFT_DROP_PORT,
    LFT_UNSET,
)
from repro.errors import TopologyError
from repro.fabric.lft import (
    LinearForwardingTable,
    blocks_covering,
    lft_block_of,
    min_blocks_for_lid_count,
)


class TestBlockArithmetic:
    def test_block_size_is_64(self):
        assert LFT_BLOCK_SIZE == 64

    def test_block_of(self):
        assert lft_block_of(0) == 0
        assert lft_block_of(63) == 0
        assert lft_block_of(64) == 1
        assert lft_block_of(12) == 0  # paper's Fig. 5: LIDs 2 and 12 share block 0

    def test_paper_swap_same_block(self):
        # Section V-C1: swapping LIDs 2 and 12 needs a single SMP because
        # both live in the block covering LIDs 0-63.
        assert lft_block_of(2) == lft_block_of(12)

    def test_paper_swap_cross_block(self):
        # "If the LID of VF3 on hypervisor 3 was 64 or greater, then two
        # SMPs would need to be sent."
        assert lft_block_of(2) != lft_block_of(64)

    def test_blocks_covering(self):
        assert blocks_covering([1, 2, 70, 130]) == [0, 1, 2]

    def test_negative_lid_rejected(self):
        with pytest.raises(TopologyError):
            lft_block_of(-1)

    def test_full_subnet_needs_768_blocks(self):
        # Section VI-A: a fully populated subnet needs 768 SMPs per switch.
        assert LFT_BLOCKS_FULL_SUBNET == 768


class TestMinBlocks:
    @pytest.mark.parametrize(
        "lids,expected",
        [(360, 6), (702, 11), (6804, 107), (13284, 208)],
    )
    def test_paper_table1_min_blocks(self, lids, expected):
        assert min_blocks_for_lid_count(lids) == expected

    def test_zero(self):
        assert min_blocks_for_lid_count(0) == 0

    def test_one_lid_needs_one_block(self):
        assert min_blocks_for_lid_count(1) == 1

    def test_63_lids_fit_one_block(self):
        assert min_blocks_for_lid_count(63) == 1

    def test_64_lids_need_two_blocks(self):
        # LIDs 1..64: LID 64 lives in block 1.
        assert min_blocks_for_lid_count(64) == 2

    def test_negative_rejected(self):
        with pytest.raises(TopologyError):
            min_blocks_for_lid_count(-1)


class TestLftBasics:
    def test_fresh_table_is_unprogrammed(self):
        lft = LinearForwardingTable(top_lid=100)
        assert lft.get(5) == LFT_UNSET
        assert not lft.is_programmed(5)

    def test_set_get(self):
        lft = LinearForwardingTable(top_lid=100)
        lft.set(5, 3)
        assert lft.get(5) == 3
        assert lft.is_programmed(5)

    def test_get_beyond_capacity_is_unset(self):
        lft = LinearForwardingTable(top_lid=63)
        assert lft.get(10_000) == LFT_UNSET

    def test_set_grows_capacity(self):
        lft = LinearForwardingTable(top_lid=63)
        lft.set(200, 7)
        assert lft.get(200) == 7
        assert lft.num_blocks == 4  # blocks 0..3 cover LID 200

    def test_set_lid_zero_rejected(self):
        lft = LinearForwardingTable()
        with pytest.raises(TopologyError):
            lft.set(0, 1)

    def test_set_bad_port_rejected(self):
        lft = LinearForwardingTable()
        with pytest.raises(TopologyError):
            lft.set(1, 256)

    def test_clear(self):
        lft = LinearForwardingTable(top_lid=100)
        lft.set(9, 2)
        lft.clear(9)
        assert not lft.is_programmed(9)

    def test_drop_forwards_to_port_255(self):
        # Section VI-C: port 255 drops traffic toward a migrating LID.
        lft = LinearForwardingTable(top_lid=100)
        lft.drop(8)
        assert lft.get(8) == LFT_DROP_PORT

    def test_programmed_lids(self):
        lft = LinearForwardingTable(top_lid=100)
        lft.set(3, 1)
        lft.set(99, 2)
        assert list(lft.programmed_lids()) == [3, 99]


class TestSwap:
    def test_swap_same_block_touches_one_block(self):
        lft = LinearForwardingTable(top_lid=100)
        lft.set(2, 2)
        lft.set(12, 4)
        assert lft.swap(2, 12) == (0,)
        assert lft.get(2) == 4
        assert lft.get(12) == 2

    def test_swap_cross_block_touches_two_blocks(self):
        lft = LinearForwardingTable(top_lid=100)
        lft.set(2, 2)
        lft.set(64, 4)
        assert lft.swap(2, 64) == (0, 1)

    def test_swap_equal_entries_is_noop(self):
        # Section VI-B: a switch already forwarding both LIDs through the
        # same port needs no update.
        lft = LinearForwardingTable(top_lid=100)
        lft.set(2, 2)
        lft.set(12, 2)
        assert lft.swap(2, 12) == ()

    def test_swap_is_involution(self):
        lft = LinearForwardingTable(top_lid=100)
        lft.set(5, 1)
        lft.set(9, 3)
        lft.swap(5, 9)
        lft.swap(5, 9)
        assert lft.get(5) == 1 and lft.get(9) == 3


class TestCopyEntry:
    def test_copy_touches_at_most_one_block(self):
        lft = LinearForwardingTable(top_lid=200)
        lft.set(1, 6)
        assert lft.copy_entry(1, 130) == (2,)
        assert lft.get(130) == 6

    def test_copy_equal_is_noop(self):
        lft = LinearForwardingTable(top_lid=100)
        lft.set(1, 6)
        lft.set(50, 6)
        assert lft.copy_entry(1, 50) == ()


class TestBlocksAndDiff:
    def test_load_and_get_block_roundtrip(self):
        lft = LinearForwardingTable(top_lid=200)
        block = np.full(LFT_BLOCK_SIZE, 9, dtype=np.int16)
        lft.load_block(1, block)
        assert np.array_equal(lft.get_block(1), block)

    def test_load_block_wrong_size_rejected(self):
        lft = LinearForwardingTable()
        with pytest.raises(TopologyError):
            lft.load_block(0, np.zeros(10, dtype=np.int16))

    def test_diff_blocks_counts_changed_blocks_only(self):
        a = LinearForwardingTable(top_lid=300)
        b = a.clone()
        b.set(10, 1)  # block 0
        b.set(130, 2)  # block 2
        assert a.diff_blocks(b) == [0, 2]

    def test_diff_blocks_empty_when_equal(self):
        a = LinearForwardingTable(top_lid=100)
        a.set(3, 3)
        b = a.clone()
        assert a.diff_blocks(b) == []
        assert a == b

    def test_diff_handles_different_capacities(self):
        a = LinearForwardingTable(top_lid=63)
        b = LinearForwardingTable(top_lid=300)
        b.set(200, 5)
        assert a.diff_blocks(b) == [3]

    def test_used_blocks(self):
        lft = LinearForwardingTable(top_lid=300)
        lft.set(1, 1)
        lft.set(260, 1)
        assert lft.used_blocks() == [0, 4]

    def test_clone_is_independent(self):
        a = LinearForwardingTable(top_lid=100)
        a.set(1, 1)
        b = a.clone()
        b.set(1, 2)
        assert a.get(1) == 1

    def test_as_array_readonly(self):
        lft = LinearForwardingTable(top_lid=100)
        arr = lft.as_array()
        with pytest.raises(ValueError):
            arr[1] = 5
