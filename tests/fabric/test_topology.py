"""Tests for the subnet topology graph and the LID binding registry."""

import pytest

from repro.errors import TopologyError
from repro.fabric.topology import Topology


def tiny():
    """Two switches, two HCAs: h0 - s0 - s1 - h1."""
    topo = Topology("tiny")
    s0 = topo.add_switch("s0", 4)
    s1 = topo.add_switch("s1", 4)
    h0 = topo.add_hca("h0")
    h1 = topo.add_hca("h1")
    topo.connect(s0, 1, h0, 1)
    topo.connect(s1, 1, h1, 1)
    topo.connect(s0, 2, s1, 2)
    return topo, s0, s1, h0, h1


class TestConstruction:
    def test_counts(self):
        topo, *_ = tiny()
        assert topo.num_switches == 2
        assert topo.num_hcas == 2
        assert len(topo.links) == 3

    def test_duplicate_name_rejected(self):
        topo = Topology()
        topo.add_switch("x", 2)
        with pytest.raises(TopologyError):
            topo.add_hca("x")

    def test_node_lookup(self):
        topo, s0, *_ = tiny()
        assert topo.node("s0") is s0
        assert "s0" in topo
        assert "nope" not in topo
        with pytest.raises(TopologyError):
            topo.node("nope")

    def test_dense_switch_indices(self):
        topo, s0, s1, *_ = tiny()
        assert s0.index == 0 and s1.index == 1
        assert topo.switch_by_index(1) is s1
        with pytest.raises(TopologyError):
            topo.switch_by_index(5)

    def test_connect_by_name(self):
        topo = Topology()
        topo.add_switch("a", 2)
        topo.add_switch("b", 2)
        topo.connect("a", 1, "b", 1)
        assert topo.node("a").port(1).remote.node.name == "b"

    def test_auto_connect_uses_free_ports(self):
        topo = Topology()
        a = topo.add_switch("a", 2)
        b = topo.add_switch("b", 2)
        topo.auto_connect(a, b)
        topo.auto_connect(a, b)
        with pytest.raises(TopologyError):
            topo.auto_connect(a, b)

    def test_leaf_switches(self):
        topo, s0, s1, *_ = tiny()
        assert set(sw.name for sw in topo.leaf_switches()) == {"s0", "s1"}


class TestLidRegistry:
    def test_bind_and_lookup(self):
        topo, s0, s1, h0, h1 = tiny()
        topo.bind_lid(5, h0.port(1))
        assert topo.port_of_lid(5) is h0.port(1)
        assert topo.num_lids == 1

    def test_multiple_lids_one_port(self):
        # The vSwitch case: PF + VF LIDs all behind one physical port.
        topo, s0, s1, h0, h1 = tiny()
        topo.bind_lid(5, h0.port(1))
        topo.bind_lid(6, h0.port(1))
        topo.bind_lid(7, h0.port(1))
        assert topo.bound_lids() == [5, 6, 7]

    def test_double_bind_rejected(self):
        topo, s0, s1, h0, h1 = tiny()
        topo.bind_lid(5, h0.port(1))
        with pytest.raises(TopologyError):
            topo.bind_lid(5, h1.port(1))

    def test_rebind_moves_lid(self):
        topo, s0, s1, h0, h1 = tiny()
        topo.bind_lid(5, h0.port(1))
        topo.rebind_lid(5, h1.port(1))
        assert topo.port_of_lid(5) is h1.port(1)

    def test_rebind_unknown_rejected(self):
        topo, *_ = tiny()
        with pytest.raises(TopologyError):
            topo.rebind_lid(9, topo.node("h0").port(1))

    def test_unbind(self):
        topo, s0, s1, h0, h1 = tiny()
        topo.bind_lid(5, h0.port(1))
        topo.unbind_lid(5)
        assert topo.port_of_lid(5) is None
        with pytest.raises(TopologyError):
            topo.unbind_lid(5)


class TestViews:
    def test_fabric_view_symmetric(self):
        topo, *_ = tiny()
        view = topo.fabric_view()
        assert view.num_switches == 2
        assert view.degree(0) == 1 and view.degree(1) == 1
        assert list(view.neighbors(0)) == [(1, 2)]
        assert list(view.neighbors(1)) == [(0, 2)]

    def test_fabric_view_in_ports_match(self):
        topo, *_ = tiny()
        view = topo.fabric_view()
        # s0 port 2 <-> s1 port 2.
        assert view.in_port[0] == 2

    def test_view_cached_and_invalidated(self):
        topo, *_ = tiny()
        v1 = topo.fabric_view()
        assert topo.fabric_view() is v1
        topo.add_switch("s2", 4)
        assert topo.fabric_view() is not v1

    def test_terminals(self):
        topo, s0, s1, h0, h1 = tiny()
        topo.bind_lid(1, s0.management_port)
        topo.bind_lid(3, h0.port(1))
        topo.bind_lid(4, h1.port(1))
        terms = topo.terminals()
        assert [(t.lid, t.switch_index, t.switch_port) for t in terms] == [
            (3, 0, 1),
            (4, 1, 1),
        ]
        assert topo.switch_lids() == {1: 0}

    def test_terminal_on_unattached_port_rejected(self):
        topo = Topology()
        h = topo.add_hca("h")
        topo.bind_lid(3, h.port(1))
        with pytest.raises(TopologyError):
            topo.terminals()


class TestValidation:
    def test_valid_topology_passes(self):
        topo, *_ = tiny()
        topo.validate()

    def test_dangling_hca_fails(self):
        topo = Topology()
        topo.add_switch("s", 2)
        topo.add_hca("h")
        with pytest.raises(TopologyError):
            topo.validate()

    def test_disconnected_switches_fail(self):
        topo = Topology()
        a = topo.add_switch("a", 2)
        b = topo.add_switch("b", 2)
        topo.add_switch("c", 2)
        topo.connect(a, 1, b, 1)
        with pytest.raises(TopologyError):
            topo.validate()
