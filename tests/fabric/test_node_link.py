"""Tests for nodes, ports, QPs and links."""

import pytest

from repro.errors import TopologyError
from repro.fabric.link import Link
from repro.fabric.node import HCA, NodeType, QueuePair, Switch


class TestQueuePair:
    def test_management_qps(self):
        assert QueuePair(0, owner="x").is_management
        assert QueuePair(1, owner="x").is_management
        assert not QueuePair(2, owner="x").is_management

    def test_negative_qpn_rejected(self):
        with pytest.raises(TopologyError):
            QueuePair(-1, owner="x")

    def test_smi_flag(self):
        assert QueuePair(0, owner="x", smi_allowed=False).smi_allowed is False


class TestSwitch:
    def test_ports_are_one_based(self):
        sw = Switch("sw", 4)
        assert sw.num_ports == 4
        assert sw.port(1).num == 1
        assert sw.port(4).num == 4

    def test_bad_port_raises(self):
        sw = Switch("sw", 4)
        with pytest.raises(TopologyError):
            sw.port(0)
        with pytest.raises(TopologyError):
            sw.port(5)

    def test_lid_lives_on_management_port(self):
        sw = Switch("sw", 4)
        sw.lid = 42
        assert sw.management_port.lid == 42
        assert sw.lid == 42

    def test_route_uses_lft(self):
        sw = Switch("sw", 4)
        sw.lft.set(9, 3)
        assert sw.route(9) == 3

    def test_is_switch(self):
        assert Switch("sw", 2).is_switch
        assert not HCA("h").is_switch

    def test_node_type(self):
        assert Switch("sw", 2).node_type is NodeType.SWITCH
        assert HCA("h").node_type is NodeType.CA


class TestHCA:
    def test_default_single_port(self):
        h = HCA("h")
        assert h.num_ports == 1

    def test_owns_management_qps(self):
        h = HCA("h")
        assert h.qp0.qpn == 0 and h.qp0.smi_allowed
        assert h.qp1.qpn == 1

    def test_create_qp_numbers_increase(self):
        h = HCA("h")
        q1, q2 = h.create_qp(), h.create_qp()
        assert q2.qpn == q1.qpn + 1
        assert q1.qpn >= 2  # QP0/QP1 reserved

    def test_lid_property(self):
        h = HCA("h")
        h.lid = 17
        assert h.port(1).lid == 17

    def test_uplink_switch_none_when_unplugged(self):
        assert HCA("h").uplink_switch() is None


class TestLink:
    def test_connects_both_ends(self):
        sw, h = Switch("sw", 4), HCA("h")
        link = Link(sw.port(1), h.port(1))
        assert sw.port(1).remote is h.port(1)
        assert h.port(1).remote is sw.port(1)
        assert h.uplink_switch() is sw

    def test_double_cabling_rejected(self):
        sw, h, h2 = Switch("sw", 4), HCA("h"), HCA("h2")
        Link(sw.port(1), h.port(1))
        with pytest.raises(TopologyError):
            Link(sw.port(1), h2.port(1))

    def test_loopback_rejected(self):
        sw = Switch("sw", 4)
        with pytest.raises(TopologyError):
            Link(sw.port(1), sw.port(2))

    def test_self_port_rejected(self):
        sw = Switch("sw", 4)
        with pytest.raises(TopologyError):
            Link(sw.port(1), sw.port(1))

    def test_negative_latency_rejected(self):
        sw, h = Switch("sw", 4), HCA("h")
        with pytest.raises(TopologyError):
            Link(sw.port(1), h.port(1), latency=-1.0)

    def test_other_end(self):
        sw, h = Switch("sw", 4), HCA("h")
        link = Link(sw.port(1), h.port(1))
        assert link.other_end(sw.port(1)) is h.port(1)
        with pytest.raises(TopologyError):
            link.other_end(sw.port(2))

    def test_disconnect(self):
        sw, h = Switch("sw", 4), HCA("h")
        link = Link(sw.port(1), h.port(1))
        link.disconnect()
        assert not sw.port(1).is_connected
        assert not h.port(1).is_connected

    def test_connected_and_free_ports(self):
        sw, h = Switch("sw", 4), HCA("h")
        Link(sw.port(2), h.port(1))
        assert [p.num for p in sw.connected_ports()] == [2]
        assert [p.num for p in sw.free_ports()] == [1, 3, 4]


class TestLeafDetection:
    def test_switch_with_hca_is_leaf(self):
        sw, h = Switch("sw", 4), HCA("h")
        Link(sw.port(1), h.port(1))
        assert sw.is_leaf
        assert sw.attached_hcas() == [h]

    def test_switch_without_hca_is_not_leaf(self):
        a, b = Switch("a", 4), Switch("b", 4)
        Link(a.port(1), b.port(1))
        assert not a.is_leaf
