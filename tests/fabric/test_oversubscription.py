"""Tests for oversubscribed and irregular fat-tree variants.

Production fat-trees are rarely fully provisioned; the builders and the
routing/migration stack must handle oversubscription (fewer uplinks than
hosts per leaf), parallel spine cables, and partially-populated leaves.
"""

import pytest

from repro.fabric.builders.fattree import build_two_level_fattree
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager
from repro.virt.cloud import CloudManager
from repro.workloads.traffic import all_to_all_flows, link_loads


def routed(built, engine="ftree"):
    sm = SubnetManager(built.topology, built=built, engine=engine)
    sm.initial_configure(with_discovery=False)
    req = RoutingRequest.from_topology(built.topology, built=built)
    return sm, req


class TestOversubscribed:
    def test_2_to_1_builds_and_routes(self):
        # 8 hosts per leaf, 4 uplinks: 2:1 oversubscription on radix 12.
        built = build_two_level_fattree(4, 8, 4, switch_radix=12)
        sm, req = routed(built)
        sm.current_tables.validate(req)

    def test_oversubscription_shows_in_link_loads(self):
        balanced = build_two_level_fattree(4, 4, 4, switch_radix=8)
        oversub = build_two_level_fattree(4, 8, 4, switch_radix=12)
        loads = {}
        for name, built in (("1:1", balanced), ("2:1", oversub)):
            sm, req = routed(built)
            lids = [t.lid for t in req.terminals]
            loads[name] = link_loads(
                sm.current_tables, req, all_to_all_flows(lids)
            ).max_load
        # Twice the hosts over the same uplink count: hotter links.
        assert loads["2:1"] > loads["1:1"]

    def test_migration_on_oversubscribed_tree(self):
        built = build_two_level_fattree(4, 8, 4, switch_radix=12)
        cloud = CloudManager(
            built.topology, built=built, lid_scheme="prepopulated", num_vfs=2
        )
        cloud.adopt_all_hcas()
        cloud.bring_up_subnet()
        vm = cloud.boot_vm(on="l0h0")
        report = cloud.live_migrate(vm.name, "l3h7")
        assert report.reconfig.path_compute_seconds == 0.0
        assert report.reconfig.lft_smps >= 1


class TestParallelSpineCables:
    def test_ftree_spreads_over_parallel_links(self):
        built = build_two_level_fattree(
            2, 4, 2, switch_radix=12, links_per_spine_pair=2
        )
        sm, req = routed(built)
        sm.current_tables.validate(req)
        # A remote leaf should use more than 2 distinct up ports (2 spines
        # x 2 cables available).
        groups = req.terminals_by_switch()
        leaf, terms = next(iter(groups.items()))
        other = next(l for l in groups if l != leaf)
        up_ports = {sm.current_tables.port_for(other, t.lid) for t in terms}
        assert len(up_ports) >= 3


class TestPartiallyPopulated:
    def test_empty_leaves_are_fine(self):
        # Hosts only on half the leaves (the rest reserved for growth).
        built = build_two_level_fattree(
            4, 3, 3, switch_radix=8, attach_hosts=False
        )
        topo = built.topology
        for leaf_idx in (0, 1):
            leaf = topo.node(f"leaf{leaf_idx}")
            for i in range(3):
                hca = topo.add_hca(f"h{leaf_idx}_{i}")
                topo.connect(leaf, 1 + i, hca, 1)
        sm, req = routed(built, engine="minhop")
        sm.current_tables.validate(req)
        assert topo.num_hcas == 6
