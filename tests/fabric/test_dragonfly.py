"""Tests for the dragonfly builder and the topology-agnostic stack on it."""

import pytest

from repro.errors import TopologyError
from repro.fabric.builders.dragonfly import build_dragonfly
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager
from repro.virt.cloud import CloudManager


class TestBuilder:
    def test_shape(self):
        b = build_dragonfly(4, 3, 2)
        t = b.topology
        assert t.num_switches == 12
        assert t.num_hcas == 24
        # links: hosts (24) + intra-group all-to-all (4*3) + globals (6).
        assert len(t.links) == 24 + 12 + 6
        t.validate()

    def test_group_metadata(self):
        b = build_dragonfly(3, 2, 1)
        assert {b.pod[sw.name] for sw in b.topology.switches} == {0, 1, 2}

    def test_intra_group_all_to_all(self):
        b = build_dragonfly(2, 4, 1)
        view = b.topology.fabric_view()
        # Router g0r0 sees the 3 siblings plus >= 0 global peers.
        peers = {p for p, _ in view.neighbors(0)}
        assert {1, 2, 3} <= peers

    def test_global_budget_enforced(self):
        with pytest.raises(TopologyError):
            build_dragonfly(6, 2, 1, global_links_per_router=2)
        # 6 groups need 5 globals per group; 2 routers x 2 = 4 < 5.

    def test_minimum_groups(self):
        with pytest.raises(TopologyError):
            build_dragonfly(1, 2, 1)


class TestRoutingOnDragonfly:
    @pytest.fixture(scope="class")
    def request_(self):
        b = build_dragonfly(4, 3, 2)
        sm = SubnetManager(b.topology, built=b)
        sm.assign_lids()
        return b, RoutingRequest.from_topology(b.topology, built=b)

    @pytest.mark.parametrize("engine", ["minhop", "updn", "dfsssp", "lash"])
    def test_engine_valid(self, request_, engine):
        _, req = request_
        tables = create_engine(engine).compute(req)
        tables.validate(req)

    def test_diameter_is_small(self, request_):
        # Dragonfly diameter 3: router -> global -> router within group.
        _, req = request_
        tables = create_engine("minhop").compute(req)
        dist = tables.metadata["switch_distances"]
        assert dist.max() <= 3


class TestVSwitchOnDragonfly:
    def test_migration_works_unmodified(self):
        # The paper's reconfiguration is topology agnostic: the same cloud
        # stack runs on a dragonfly without changes.
        b = build_dragonfly(4, 3, 2)
        cloud = CloudManager(
            b.topology, built=b, lid_scheme="prepopulated", num_vfs=2
        )
        cloud.adopt_all_hcas()
        cloud.bring_up_subnet()
        vm = cloud.boot_vm(on="g0r0h0")
        report = cloud.live_migrate(vm.name, "g3r2h1")
        assert report.reconfig.path_compute_seconds == 0.0
        assert 1 <= report.reconfig.lft_smps <= 2 * b.topology.num_switches
        assert vm.lid == report.vm_lid

    def test_intra_group_cheaper_than_inter_group(self):
        b = build_dragonfly(4, 3, 2)
        cloud = CloudManager(
            b.topology, built=b, lid_scheme="dynamic", num_vfs=2
        )
        cloud.adopt_all_hcas()
        cloud.bring_up_subnet()
        from repro.core.skyline import minimal_update_set

        vm = cloud.boot_vm(on="g0r0h0")
        intra = minimal_update_set(
            cloud.topology, vm.lid, cloud.hypervisors["g0r1h0"].uplink_port
        )
        inter = minimal_update_set(
            cloud.topology, vm.lid, cloud.hypervisors["g2r1h0"].uplink_port
        )
        assert len(intra) <= len(inter)
