"""The mutation-first Topology API and the remove/re-add round-trip.

The regression this file pins down: removing a switch used to leave three
kinds of stale state behind — the dead Link objects stayed in the
topology's link registry, the removed switch kept its LFT and PMA
counters, and builder metadata (``built.roots``) kept pointing at the
stale object whose dense index had been reset to -1. A later re-add of
the same switch then silently routed on wrong state. The round-trip test
asserts byte-identical routing after remove -> re-add.
"""

from __future__ import annotations

import pytest

from repro.errors import TopologyError
from repro.fabric.node import Switch
from repro.fabric.presets import scaled_fattree
from repro.fabric.topology import (
    MUTATION_KINDS,
    Topology,
    TopologyMutation,
)
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine


def ring(n: int = 4, hosts: int = 1) -> Topology:
    topo = Topology("ring")
    sws = [topo.add_switch(f"s{i}", 8) for i in range(n)]
    for i in range(n):
        topo.connect(sws[i], 1, sws[(i + 1) % n], 2)
    for i in range(n):
        for h in range(hosts):
            hca = topo.add_hca(f"h{i}-{h}")
            topo.connect(hca, 1, sws[i], 3 + h)
    return topo


class TestMutationDataclass:
    def test_kinds_are_validated(self):
        with pytest.raises(TopologyError):
            TopologyMutation(kind="teleport_switch")
        for kind in MUTATION_KINDS:
            assert TopologyMutation(kind=kind).kind == kind

    def test_dict_round_trip(self):
        mutation = TopologyMutation(
            kind="add_switch",
            a="grown",
            num_ports=8,
            level=2,
            cables=((1, "s0", 5), (2, "s1", 5)),
        )
        assert TopologyMutation.from_dict(mutation.as_dict()) == mutation

    def test_describe_mentions_endpoints(self):
        mutation = TopologyMutation(
            kind="add_link", a="s0", port_a=4, b="s2", port_b=4
        )
        assert "s0:4" in mutation.describe()
        assert "s2:4" in mutation.describe()


class TestLinkMutations:
    def test_add_link_bumps_version_once_for_switch_cables(self):
        topo = ring()
        v = topo.version
        topo.add_link("s0", 5, "s2", 5)
        assert topo.version == v + 1

    def test_remove_link_drops_it_from_the_registry(self):
        topo = ring()
        link = topo.node("s0").port(1).link
        count = len(topo.links)
        v = topo.version
        removed = topo.remove_link(link)
        assert removed is link
        assert len(topo.links) == count - 1
        assert link not in topo.links
        assert topo.version == v + 1
        with pytest.raises(TopologyError):
            topo.remove_link(link)  # already gone

    def test_restore_link_replugs_original_ports(self):
        topo = ring()
        link = topo.node("s0").port(1).link
        removed = topo.remove_link(link)
        fresh = topo.restore_link(removed)
        end_a, end_b = fresh.ends
        assert {(p.node.name, p.num) for p in (end_a, end_b)} == {
            ("s0", 1),
            ("s1", 2),
        }
        assert fresh.latency == removed.latency

    def test_hca_cable_removal_does_not_bump(self):
        topo = ring()
        link = topo.node("h0-0").port(1).link
        v = topo.version
        topo.remove_link(link)
        assert topo.version == v


class TestRemoveSwitchCleanDetach:
    def test_removed_switch_forgets_forwarding_state(self):
        topo = ring()
        victim = topo.node("s2")
        assert isinstance(victim, Switch)
        victim.lft.set(5, 3)
        victim.port_counters(1).xmit_packets = 99
        # Detach its hosts first (leaf removal is refused otherwise).
        for hca in victim.attached_hcas():
            topo.remove_link(hca.port(1).link)
            # Re-home the stranded host so validate() stays happy.
            topo.auto_connect(hca, "s1")
        topo.remove_switch(victim)
        assert victim.index == -1
        assert victim.lid is None
        from repro.constants import LFT_UNSET

        assert victim.lft.get(5) == LFT_UNSET  # table dropped
        assert victim.port_counters(1).xmit_packets == 0
        assert all(
            victim not in (p.node for p in link.ends) for link in topo.links
        )


class TestRemoveReAddRoundTrip:
    """Satellite regression: remove -> re-add must be byte-identical."""

    @pytest.mark.parametrize("engine", ("minhop", "updn", "ftree"))
    def test_round_trip_routing_identical(self, engine):
        from repro.sm.subnet_manager import SubnetManager

        built = scaled_fattree("2l-small")
        topo = built.topology
        sm = SubnetManager(topo, engine=engine, built=built)
        sm.initial_configure(with_discovery=False)
        lids_before = {sw.name: sw.lid for sw in topo.switches}

        # Remove a spine (a root for updn/ftree), then re-add it with
        # exactly the cables it had.
        victim = built.roots[0]
        cables = [
            (p.num, p.remote.node.name, p.remote.num)
            for p in victim.connected_ports()
        ]
        sm.handle_switch_failure(victim)
        assert victim.index == -1

        re_add = TopologyMutation(
            kind="add_switch",
            a=victim.name,
            num_ports=victim.num_ports,
            level=built.level.get(victim.name, -1),
            cables=tuple(cables),
        )
        # verify=True runs the full delivery + SM-consistency audit, so
        # the distributed hardware LFTs provably match the tables.
        sm.handle_topology_change(re_add, verify=True)

        # Every LID (incl. the re-added switch's) comes back unchanged.
        assert {sw.name: sw.lid for sw in topo.switches} == lids_before
        # The regression: any stale state left by the removal — dead
        # links in the registry, a retained LFT, the stale root object in
        # built.roots — makes the live tables diverge from a cold
        # recompute on the re-grown fabric. They must be byte-identical.
        request = RoutingRequest.from_topology(topo, built=built)
        cold = create_engine(engine).compute(request)
        assert sm.current_tables.ports.tobytes() == cold.ports.tobytes()

    def test_re_added_root_is_seen_by_level_engines(self):
        """built.roots held a stale object after remove -> re-add; the
        request must resolve roots by *name* against the live topology."""
        from repro.sm.subnet_manager import SubnetManager

        built = scaled_fattree("2l-small")
        topo = built.topology
        SubnetManager(topo, built=built).assign_lids()
        victim = built.roots[0]
        cables = [
            (p.num, p.remote.node.name, p.remote.num)
            for p in victim.connected_ports()
        ]
        topo.unbind_lid(victim.lid)
        victim.lid = None
        topo.remove_switch(victim)
        fresh = topo.add_switch(victim.name, victim.num_ports)
        for local_port, peer, peer_port in cables:
            topo.connect(fresh, local_port, peer, peer_port)
        request = RoutingRequest.from_topology(topo, built=built)
        assert fresh.index in request.root_indices
        # And the whole fabric still routes with the level-aware engine.
        create_engine("ftree").compute(request)
