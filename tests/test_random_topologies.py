"""Property-based routing validation on randomized topologies.

The paper's reconfiguration is topology agnostic; the agnostic routing
engines (and the migration machinery) must therefore hold up on arbitrary
connected switch graphs, not just the shapes we hand-picked. Hypothesis
samples random regular graphs and random migrations.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fabric.builders.generic import build_random_regular
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager
from repro.core.reconfig import VSwitchReconfigurer
from repro.core.skyline import minimal_update_set

_settings = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def build_and_route(n_switches, degree, seed, engine):
    built = build_random_regular(n_switches, degree, 2, seed=seed)
    sm = SubnetManager(built.topology, built=built, engine=engine)
    sm.initial_configure(with_discovery=False)
    request = RoutingRequest.from_topology(built.topology, built=built)
    return built, sm, request


class TestRandomTopologies:
    @_settings
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        engine=st.sampled_from(["minhop", "updn"]),
    )
    def test_engines_valid_on_random_regular(self, seed, engine):
        built, sm, request = build_and_route(8, 3, seed, engine)
        sm.current_tables.validate(request)

    @_settings
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_updn_deadlock_free_on_random_regular(self, seed):
        from repro.sm.deadlock import is_deadlock_free

        built, sm, request = build_and_route(8, 3, seed, "updn")
        assert is_deadlock_free(sm.current_tables.ports, request.view)

    @_settings
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        src=st.integers(min_value=0, max_value=15),
        dst=st.integers(min_value=0, max_value=15),
    )
    def test_swap_preserves_validity(self, seed, src, dst):
        built, sm, request = build_and_route(8, 3, seed, "minhop")
        topo = built.topology
        hcas = topo.hcas
        h_src, h_dst = hcas[src % len(hcas)], hcas[dst % len(hcas)]
        lid_a = sm.lid_manager.assign_extra_lid(h_src.port(1))
        lid_b = sm.lid_manager.assign_extra_lid(h_dst.port(1))
        sm.compute_routing()
        sm.distribute()
        VSwitchReconfigurer(sm).swap_lids(lid_a, lid_b)
        # After the swap, lid_a must deliver at h_dst's switch port and
        # lid_b at h_src's — walk the hardware LFTs from every switch.
        for lid, host in ((lid_a, h_dst), (lid_b, h_src)):
            attach = host.port(1).remote
            switches = topo.switches
            p2p = {}
            for sw in switches:
                for port in sw.connected_ports():
                    if port.remote.node.is_switch:
                        p2p[(sw.index, port.num)] = port.remote.node.index
            for start in switches:
                cur = start
                hops = 0
                while cur is not attach.node:
                    nxt = p2p.get((cur.index, cur.lft.get(lid)))
                    assert nxt is not None
                    cur = switches[nxt]
                    hops += 1
                    assert hops <= len(switches)
                assert cur.lft.get(lid) == attach.num

    @_settings
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        pick=st.integers(min_value=0, max_value=1_000),
    )
    def test_minimal_update_set_sound_on_random_regular(self, seed, pick):
        built, sm, request = build_and_route(8, 3, seed, "minhop")
        topo = built.topology
        hcas = topo.hcas
        src = hcas[pick % len(hcas)]
        dst = hcas[(pick // 7 + 1) % len(hcas)]
        vm_lid = sm.lid_manager.assign_extra_lid(src.port(1))
        sm.compute_routing()
        sm.distribute()
        updates = minimal_update_set(topo, vm_lid, dst.port(1).lid and dst.port(1))
        # Soundness: apply new entries (dst's own routing) on the update
        # set, leave stale entries elsewhere, and verify delivery from all
        # switches.
        template = dst.port(1).lid
        attach = dst.port(1).remote
        switches = topo.switches
        p2p = {}
        for sw in switches:
            for port in sw.connected_ports():
                if port.remote.node.is_switch:
                    p2p[(sw.index, port.num)] = port.remote.node.index
        for start in switches:
            cur = start
            hops = 0
            while True:
                if cur is attach.node:
                    break
                out = (
                    cur.lft.get(template)
                    if cur.index in updates
                    else cur.lft.get(vm_lid)
                )
                nxt = p2p.get((cur.index, out))
                assert nxt is not None, (
                    f"stale mixture strands LID {vm_lid} at {cur.name}"
                )
                cur = switches[nxt]
                hops += 1
                assert hops <= len(switches)
