"""TelemetryHarness end-to-end and the issue's chaos acceptance scenario."""

import pytest

from repro.errors import ReproError
from repro.fabric.presets import scaled_fattree
from repro.faults.plan import FaultPlan
from repro.mad.smp import SmpKind
from repro.telemetry import TelemetryHarness
from repro.workloads.chaos import ChaosRunner
from tests.conftest import make_cloud


@pytest.fixture
def cloud(small_fattree):
    return make_cloud(small_fattree)


class TestHarness:
    def test_burst_sweep_and_matrix_audit(self, cloud):
        harness = TelemetryHarness(cloud.sm, max_endpoints=8)
        stats = harness.burst()
        assert stats.delivered > 0
        sweep = harness.sweep()
        assert sweep.samples > 0
        # Row sums reproduce delivered-packet totals exactly.
        assert harness.verify_matrix()
        assert harness.matrix.total == harness.delivered
        # Swept HCA counters observed the burst's delivered packets.
        rcv = sum(
            harness.perf.total(h.name, 1, "rcv_packets")
            for h in cloud.topology.hcas
        )
        assert rcv >= stats.delivered

    def test_endpoints_default_to_first_hca_lids(self, cloud):
        harness = TelemetryHarness(cloud.sm, max_endpoints=4)
        eps = harness.endpoints()
        assert len(eps) == 4
        assert eps == sorted(eps)
        harness.set_endpoints(eps[:2])
        assert harness.endpoints() == eps[:2]

    def test_needs_two_endpoints(self, cloud):
        with pytest.raises(ReproError):
            TelemetryHarness(cloud.sm, max_endpoints=1)

    def test_bursts_advance_the_hub_clock(self, cloud):
        from repro.obs import get_hub

        harness = TelemetryHarness(cloud.sm, max_endpoints=4)
        t0 = get_hub().now()
        harness.burst()
        assert get_hub().now() > t0


class TestChaosAcceptance:
    """The issue's acceptance scenario: a chaos run with link-flap faults.

    Must report nonzero xmit-wait AND discard counters on the flapped
    link's ports, get a congestion threshold event into the
    FabricEventManager, show the PerfManager's sweep MADs in
    TransportStats, and export a traffic matrix whose row sums match the
    data plane's delivered totals exactly.
    """

    @pytest.fixture(scope="class")
    def run(self):
        cloud = make_cloud(scaled_fattree("2l-small"))
        plan = FaultPlan(seed=1, smp_drop_rate=0.01, link_flap_rate=0.5)
        runner = ChaosRunner(
            cloud,
            plan,
            telemetry=True,
            telemetry_interval=4,
            telemetry_endpoints=36,
        )
        report = runner.run(10)
        return runner, report

    def test_run_survives_and_flaps_happened(self, run):
        runner, report = run
        assert report.ok
        assert report.link_flaps > 0
        assert report.telemetry.bursts > 0

    def test_flapped_ports_recorded_wait_and_discards(self, run):
        runner, report = run
        tel = report.telemetry
        assert tel.flapped_port_discards > 0
        assert tel.flapped_port_wait_seconds > 0
        # The flapped ports' own counters carry the evidence.
        flagged = 0
        for name, port in set(runner._flapped_ports):
            pc = runner.sm.topology.node(name).port_counters(port)
            if pc.unroutable_discards and pc.xmit_wait:
                flagged += 1
        assert flagged > 0

    def test_congestion_event_reached_fabric_event_manager(self, run):
        runner, report = run
        assert len(runner.events.congestion_events) > 0
        assert report.telemetry.congestion_events == len(
            runner.events.congestion_events
        )
        record = runner.events.congestion_events[0]
        assert record.severity >= 0

    def test_sweep_mads_visible_in_transport_stats(self, run):
        runner, report = run
        tel = report.telemetry
        assert tel.sweeps > 0
        assert (
            runner.sm.transport.stats.by_kind[SmpKind.PORT_COUNTERS]
            >= tel.sweeps
        )
        assert tel.sweep_smps > 0

    def test_traffic_matrix_audits_against_data_plane(self, run):
        runner, report = run
        tel = report.telemetry
        assert tel.matrix_consistent
        matrix = runner.harness.matrix
        assert matrix.total == runner.harness.delivered == (
            tel.packets_delivered
        )
        assert sum(
            matrix.row_sum(lid) for lid in matrix.endpoints
        ) == runner.harness.delivered

    def test_report_renders_telemetry_rows(self, run):
        _, report = run
        text = report.render()
        assert "telemetry:" in text
        assert "flap windows" in text
        assert "row sums consistent" in text

    def test_telemetry_off_keeps_report_silent(self):
        cloud = make_cloud(scaled_fattree("2l-small"))
        runner = ChaosRunner(cloud, FaultPlan(seed=1))
        report = runner.run(2)
        assert report.telemetry is None
        assert "telemetry:" not in report.render()
