"""The ``repro perf`` / ``repro top`` CLIs and ``repro chaos --telemetry``."""

import json

from repro.cli import main


class TestPerfCli:
    def test_perf_runs_and_audits(self, capsys):
        assert main(["perf", "--sweeps", "1", "--hosts", "6"]) == 0
        out = capsys.readouterr().out
        assert "top" in out
        assert "traffic matrix" in out
        assert "consistent" in out

    def test_perf_export_row_sums_match_delivered(self, tmp_path, capsys):
        dash = tmp_path / "dash.json"
        assert (
            main(
                [
                    "perf",
                    "--sweeps",
                    "2",
                    "--hosts",
                    "6",
                    "--export",
                    str(dash),
                ]
            )
            == 0
        )
        data = json.loads(dash.read_text())
        matrix = data["traffic_matrix"]
        assert sum(matrix["row_sums"]) == matrix["total"]
        assert matrix["total"] == data["dataplane"]["delivered"] > 0
        assert data["sweeps"]["smps"] > 0
        assert data["series"]["count"] > 0

    def test_perf_vm_endpoints_add_owner_matrices(self, tmp_path):
        dash = tmp_path / "dash.json"
        assert (
            main(
                [
                    "perf",
                    "--vms",
                    "4",
                    "--sweeps",
                    "1",
                    "--export",
                    str(dash),
                ]
            )
            == 0
        )
        data = json.loads(dash.read_text())
        assert data["by_vm"]
        assert data["by_tenant"]
        assert sum(data["by_vm"].values()) == data["traffic_matrix"]["total"]

    def test_perf_mad_drop_exercises_retries(self, capsys):
        assert (
            main(
                [
                    "perf",
                    "--sweeps",
                    "1",
                    "--hosts",
                    "4",
                    "--drop",
                    "0.2",
                    "--seed",
                    "5",
                ]
            )
            == 0
        )
        assert "mad-drop=0.2" in capsys.readouterr().out

    def test_unknown_profile_is_a_usage_error(self, capsys):
        assert main(["perf", "--profile", "nope"]) == 2


class TestTopCli:
    def test_top_prints_frames(self, capsys):
        assert main(["top", "--iterations", "2", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "frame 1" in out
        assert "frame 2" in out
        assert "MB/s" in out


class TestChaosTelemetryCli:
    def test_chaos_telemetry_flag(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--telemetry",
                    "--steps",
                    "6",
                    "--seed",
                    "1",
                    "--inject",
                    "link-flap=0.4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "flap windows" in out
