"""Analytics: rates, top talkers, congestion detection, traffic matrices."""

import pytest

from repro.errors import ReproError
from repro.telemetry import (
    LINK_BANDWIDTH_BYTES,
    CongestionDetector,
    TrafficMatrix,
    port_rates,
    top_talkers,
)
from repro.telemetry.store import TimeSeriesStore


def seeded_store():
    """Two ports: 'hot' saturates the link for 1 s, 'cold' trickles."""
    store = TimeSeriesStore()
    for t, factor in ((0.0, 0), (1.0, 1)):
        store.append("hot", 1, "xmit_data", t, int(LINK_BANDWIDTH_BYTES) * factor)
        store.append("hot", 1, "xmit_packets", t, 1000 * factor)
        store.append("hot", 1, "rcv_packets", t, 900 * factor)
        store.append("hot", 1, "rcv_data", t, 500 * factor)
        store.append("hot", 1, "xmit_wait", t, 500_000_000 * factor)  # 0.5 s
        store.append("hot", 1, "xmit_discards", t, 10 * factor)
        store.append("cold", 2, "xmit_data", t, 100 * factor)
        store.append("cold", 2, "xmit_packets", t, 1 * factor)
    return store


class TestPortRates:
    def test_rates_derive_from_swept_deltas(self):
        rates = {(r.node, r.port): r for r in port_rates(seeded_store())}
        hot = rates[("hot", 1)]
        assert hot.utilization == pytest.approx(1.0)
        assert hot.xmit_pps == pytest.approx(1000.0)
        assert hot.wait_fraction == pytest.approx(0.5)
        assert hot.discard_rate == pytest.approx(10.0)
        assert rates[("cold", 2)].utilization < 1e-6

    def test_bandwidth_must_be_positive(self):
        with pytest.raises(ReproError, match="bandwidth"):
            port_rates(seeded_store(), bandwidth=0)

    def test_top_talkers_sorts_by_xmit_rate(self):
        hottest = top_talkers(seeded_store(), top=1)
        assert [(r.node, r.port) for r in hottest] == [("hot", 1)]
        both = top_talkers(seeded_store(), top=10)
        assert len(both) == 2

    def test_top_must_be_at_least_one(self):
        with pytest.raises(ReproError, match="top"):
            top_talkers(seeded_store(), top=0)


class _EventSink:
    def __init__(self):
        self.calls = []

    def report_congestion(self, node, port, *, severity=0.0):
        self.calls.append((node, port, severity))


class TestCongestionDetector:
    def test_wait_growth_flags_and_raises_event(self):
        sink = _EventSink()
        detector = CongestionDetector(sink)
        findings = detector.scan(seeded_store())
        assert [(f.node, f.port) for f in findings] == [("hot", 1)]
        assert findings[0].wait_seconds == pytest.approx(0.5)
        assert findings[0].discards == 10
        assert sink.calls and sink.calls[0][0] == "hot"
        assert detector.congestion_seconds == pytest.approx(0.5)

    def test_detection_is_delta_based(self):
        store = seeded_store()
        # Utilization disabled: only wait/discard *growth* can flag.
        detector = CongestionDetector(utilization_threshold=10.0)
        assert detector.scan(store)
        # No counter growth since the last scan: nothing new to flag.
        assert detector.scan(store) == []
        assert len(detector.findings) == 1

    def test_utilization_threshold_alone_can_flag(self):
        store = TimeSeriesStore()
        store.append("sw", 3, "xmit_data", 0.0, 0)
        store.append(
            "sw", 3, "xmit_data", 1.0, int(LINK_BANDWIDTH_BYTES * 0.95)
        )
        detector = CongestionDetector(
            wait_seconds_threshold=1e9,  # unreachable
            discard_threshold=10**9,
            utilization_threshold=0.9,
        )
        findings = detector.scan(store)
        assert [(f.node, f.port) for f in findings] == [("sw", 3)]

    def test_negative_thresholds_rejected(self):
        with pytest.raises(ReproError):
            CongestionDetector(wait_seconds_threshold=-1.0)


class TestTrafficMatrix:
    def test_total_and_row_sums_track_delivered_flows(self):
        matrix = TrafficMatrix.from_flows({(1, 2): 3, (2, 1): 4})
        matrix.add({(1, 2): 1, (1, 3): 2})
        assert matrix.total == 10
        assert matrix.row_sum(1) == 6
        assert matrix.row_sum(2) == 4
        assert matrix.endpoints == [1, 2, 3]
        assert sum(matrix.row_sum(lid) for lid in matrix.endpoints) == (
            matrix.total
        )

    def test_rows_align_with_endpoints(self):
        matrix = TrafficMatrix({(1, 2): 5, (2, 1): 7})
        assert matrix.rows() == [[0, 5], [7, 0]]

    def test_aggregate_folds_lids_into_owners(self):
        matrix = TrafficMatrix({(1, 2): 5, (2, 1): 7, (1, 9): 1})
        owners = {1: "vm-a", 2: "vm-b"}
        agg = matrix.aggregate(owners)
        assert agg[("vm-a", "vm-b")] == 5
        assert agg[("vm-b", "vm-a")] == 7
        assert agg[("vm-a", "unassigned")] == 1
        assert sum(agg.values()) == matrix.total

    def test_to_json_is_the_planner_shape(self):
        matrix = TrafficMatrix({(1, 2): 5})
        dump = matrix.to_json()
        assert dump == {
            "endpoints": [1, 2],
            "rows": [[0, 5], [0, 0]],
            "row_sums": [5, 0],
            "total": 5,
        }
