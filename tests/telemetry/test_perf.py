"""PerfManager: costed sweeps, rollover reconstruction, faults, resets."""

import pytest

from repro.fabric.builders import build_two_level_fattree
from repro.fabric.node import PMA_COUNTER_WRAP
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mad.smp import SmpKind
from repro.obs import get_hub
from repro.sim.engine import SimulationEngine
from repro.sm.subnet_manager import SubnetManager
from repro.telemetry import PerfManager, TimeSeriesStore


@pytest.fixture
def sm():
    built = build_two_level_fattree(4, 2, 2, switch_radix=8)
    manager = SubnetManager(
        built.topology, engine="minhop", built=built
    )
    manager.initial_configure(with_discovery=False)
    return manager


class TestSweepCost:
    def test_sweep_sends_one_costed_mad_per_node(self, sm):
        perf = PerfManager(sm)
        before = sm.transport.stats.total_smps
        report = perf.sweep()
        nodes = len(sm.topology.switches) + len(sm.topology.hcas)
        assert report.nodes_swept == nodes
        assert report.smps == nodes
        assert sm.transport.stats.total_smps - before == nodes
        assert (
            sm.transport.stats.by_kind[SmpKind.PORT_COUNTERS] == nodes
        )
        assert not report.missed

    def test_switches_only_when_hcas_excluded(self, sm):
        perf = PerfManager(sm, include_hcas=False)
        report = perf.sweep()
        assert report.nodes_swept == len(sm.topology.switches)

    def test_sweep_advances_sim_clock_and_counts_metrics(self, sm):
        hub = get_hub()
        t0 = hub.now()
        perf = PerfManager(sm)
        perf.sweep()
        assert hub.now() > t0
        assert hub.metrics.counter("repro_telemetry_sweeps_total").value == 1
        assert (
            hub.metrics.counter("repro_telemetry_sweep_smps_total").value
            == perf.smps
        )


class TestRollover:
    def test_wrapped_wire_reads_reconstruct_monotonic_totals(self, sm):
        sw = sm.topology.switches[0]
        pc = sw.port_counters(1)
        pc.xmit_packets = PMA_COUNTER_WRAP - 5
        perf = PerfManager(sm, include_hcas=False)
        perf.sweep()
        first = perf.total(sw.name, 1, "xmit_packets")
        assert first == PMA_COUNTER_WRAP - 5
        pc.xmit_packets += 10  # crosses the 32-bit wire boundary
        perf.sweep()
        second = perf.total(sw.name, 1, "xmit_packets")
        assert second - first == 10
        # The raw wire view really did wrap.
        assert pc.pma_view()["xmit_packets"] == 5

    def test_store_holds_unwrapped_totals(self, sm):
        sw = sm.topology.switches[0]
        sw.port_counters(1).xmit_packets = PMA_COUNTER_WRAP + 7
        perf = PerfManager(sm, include_hcas=False)
        perf.sweep()
        latest = perf.store.latest(sw.name, 1, "xmit_packets")
        # First observation can only see the wrapped wire value.
        assert latest[1] == 7


class TestFaults:
    def test_unanswered_nodes_are_missed_not_fatal(self, sm):
        injector = FaultInjector(FaultPlan(seed=3, smp_drop_rate=1.0))
        sm.transport.set_fault_injector(injector)
        try:
            perf = PerfManager(sm, include_hcas=False)
            report = perf.sweep()
        finally:
            sm.transport.set_fault_injector(None)
        assert len(report.missed) == len(sm.topology.switches)
        assert report.samples == 0
        assert perf.misses == len(report.missed)

    def test_resilient_sender_retries_sweep_mads(self, sm):
        sm.enable_resilience()
        injector = FaultInjector(FaultPlan(seed=5, smp_drop_rate=0.3))
        sm.transport.set_fault_injector(injector)
        try:
            perf = PerfManager(sm)
            report = perf.sweep()
        finally:
            sm.transport.set_fault_injector(None)
        # Retries recovered every GET: full coverage, paid in extra MADs.
        assert not report.missed
        assert report.retransmissions > 0
        assert report.smps > report.nodes_swept


class TestScheduling:
    def test_maybe_sweep_is_period_gated_on_sim_clock(self, sm):
        perf = PerfManager(sm, period=1.0)
        assert perf.maybe_sweep() is not None
        assert perf.maybe_sweep() is None
        get_hub().advance(1.5)
        assert perf.maybe_sweep() is not None

    def test_attach_schedules_bounded_periodic_sweeps(self, sm):
        perf = PerfManager(sm, period=0.25, include_hcas=False)
        engine = SimulationEngine()
        scheduled = perf.attach(engine, until=1.0)
        assert scheduled == 4
        engine.run()
        assert perf.sweeps == 4


class TestReset:
    def test_reset_counters_zeroes_and_reseeds(self, sm):
        sw = sm.topology.switches[0]
        sw.port_counters(1).xmit_packets = 42
        perf = PerfManager(sm, include_hcas=False)
        perf.sweep()
        acked = perf.reset_counters()
        assert acked == len(sm.topology.switches)
        assert sw.port_counters(1).xmit_packets == 0
        # Post-reset growth is observed from a fresh wire baseline.
        sw.port_counters(1).xmit_packets = 3
        perf.sweep()
        assert (
            perf.total(sw.name, 1, "xmit_packets") >= 42
        )  # monotonic total never regresses

    def test_shared_store_can_be_injected(self, sm):
        store = TimeSeriesStore(capacity=16)
        perf = PerfManager(sm, store=store, include_hcas=False)
        perf.sweep()
        assert len(store) > 0
        assert perf.store is store
