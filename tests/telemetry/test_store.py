"""TimeSeriesStore: bounded rings, windowed rates, deterministic export."""

import pytest

from repro.errors import ReproError
from repro.telemetry import TimeSeriesStore


class TestBounds:
    def test_capacity_must_hold_two_samples(self):
        with pytest.raises(ReproError, match=">= 2"):
            TimeSeriesStore(capacity=1)

    def test_ring_evicts_oldest_and_counts(self):
        store = TimeSeriesStore(capacity=4)
        for i in range(10):
            store.append("sw", 1, "xmit_packets", float(i), i * 10)
        samples = store.series("sw", 1, "xmit_packets")
        assert len(samples) == 4
        assert samples[0] == (6.0, 60)  # oldest six evicted
        assert store.samples_total == 10
        assert store.evictions == 6

    def test_series_are_independent_rings(self):
        store = TimeSeriesStore(capacity=2)
        store.append("sw", 1, "xmit_packets", 0.0, 1)
        store.append("sw", 2, "xmit_packets", 0.0, 2)
        store.append("sw", 1, "rcv_packets", 0.0, 3)
        assert len(store) == 3
        assert store.evictions == 0


class TestLookup:
    def test_keys_and_endpoints_sorted(self):
        store = TimeSeriesStore()
        store.append("b", 2, "xmit_packets", 0.0, 1)
        store.append("a", 1, "rcv_packets", 0.0, 1)
        store.append("a", 1, "xmit_packets", 0.0, 1)
        assert store.keys() == [
            ("a", 1, "rcv_packets"),
            ("a", 1, "xmit_packets"),
            ("b", 2, "xmit_packets"),
        ]
        assert store.endpoints() == [("a", 1), ("b", 2)]

    def test_latest_and_counters_at(self):
        store = TimeSeriesStore()
        store.append("sw", 1, "xmit_packets", 0.0, 5)
        store.append("sw", 1, "xmit_packets", 1.0, 9)
        store.append("sw", 1, "xmit_wait", 1.0, 100)
        assert store.latest("sw", 1, "xmit_packets") == (1.0, 9)
        assert store.latest("sw", 9, "xmit_packets") is None
        assert store.counters_at("sw", 1) == {
            "xmit_packets": 9,
            "xmit_wait": 100,
        }

    def test_last_time_tracks_newest_sample(self):
        store = TimeSeriesStore()
        assert store.last_time == 0.0
        store.append("a", 1, "xmit_packets", 2.5, 1)
        store.append("b", 1, "xmit_packets", 1.5, 1)
        assert store.last_time == 2.5


class TestRates:
    def test_rate_over_all_samples(self):
        store = TimeSeriesStore()
        store.append("sw", 1, "xmit_packets", 0.0, 0)
        store.append("sw", 1, "xmit_packets", 2.0, 100)
        assert store.rate("sw", 1, "xmit_packets") == pytest.approx(50.0)

    def test_windowed_rate_uses_trailing_samples_only(self):
        store = TimeSeriesStore()
        store.append("sw", 1, "xmit_packets", 0.0, 0)
        store.append("sw", 1, "xmit_packets", 10.0, 1000)
        store.append("sw", 1, "xmit_packets", 11.0, 1100)
        # Full span: 1100/11 = 100/s; trailing 2 s: 100/1 = 100... use
        # distinct slopes so the window matters.
        store.append("sw", 1, "xmit_packets", 12.0, 1400)
        assert store.rate(
            "sw", 1, "xmit_packets", window=2.0
        ) == pytest.approx((1400 - 1000) / 2.0)

    def test_window_falls_back_to_last_two(self):
        store = TimeSeriesStore()
        store.append("sw", 1, "xmit_packets", 0.0, 0)
        store.append("sw", 1, "xmit_packets", 10.0, 500)
        # Window shorter than the sample spacing: only one sample is
        # inside, so the rate falls back to the last two.
        assert store.rate(
            "sw", 1, "xmit_packets", window=1.0
        ) == pytest.approx(50.0)

    def test_degenerate_rates_are_zero(self):
        store = TimeSeriesStore()
        assert store.rate("sw", 1, "xmit_packets") == 0.0
        store.append("sw", 1, "xmit_packets", 1.0, 5)
        assert store.rate("sw", 1, "xmit_packets") == 0.0
        store.append("sw", 1, "xmit_packets", 1.0, 9)  # zero time span
        assert store.rate("sw", 1, "xmit_packets") == 0.0

    def test_non_positive_window_raises(self):
        store = TimeSeriesStore()
        store.append("sw", 1, "xmit_packets", 0.0, 0)
        store.append("sw", 1, "xmit_packets", 1.0, 1)
        with pytest.raises(ReproError, match="window"):
            store.rate("sw", 1, "xmit_packets", window=0.0)


class TestExport:
    def test_to_json_shape(self):
        store = TimeSeriesStore(capacity=8)
        store.append("sw", 1, "xmit_packets", 0.0, 1)
        store.append("sw", 1, "xmit_packets", 1.0, 3)
        dump = store.to_json()
        assert dump["capacity"] == 8
        assert dump["samples_total"] == 2
        assert dump["evictions"] == 0
        assert dump["series"] == [
            {
                "node": "sw",
                "port": 1,
                "counter": "xmit_packets",
                "samples": [[0.0, 1], [1.0, 3]],
            }
        ]
