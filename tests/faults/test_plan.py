"""FaultPlan: validation, spec parsing, description."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults.plan import FaultPlan, ScriptedFault


class TestValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(smp_drop_rate=1.5)
        with pytest.raises(FaultInjectionError):
            FaultPlan(smp_corrupt_rate=-0.1)
        with pytest.raises(FaultInjectionError):
            FaultPlan(link_flap_rate=2.0)
        with pytest.raises(FaultInjectionError):
            FaultPlan(per_target_drop={"sw0": 1.01})

    def test_scripted_validation(self):
        with pytest.raises(FaultInjectionError):
            ScriptedFault(action="explode")
        with pytest.raises(FaultInjectionError):
            ScriptedFault(nth=0)
        with pytest.raises(FaultInjectionError):
            ScriptedFault(action="delay", delay_seconds=0.0)

    def test_scripted_list_coerced_to_tuple(self):
        plan = FaultPlan(scripted=[ScriptedFault(action="drop")])
        assert isinstance(plan.scripted, tuple)

    def test_injects_smp_faults(self):
        assert not FaultPlan().injects_smp_faults
        assert not FaultPlan(link_flap_rate=0.5).injects_smp_faults
        assert FaultPlan(smp_drop_rate=0.1).injects_smp_faults
        assert FaultPlan(per_target_drop={"sw0": 0.5}).injects_smp_faults
        assert FaultPlan(scripted=(ScriptedFault(),)).injects_smp_faults
        # A partition needs the injector attached: it drops SMInfo MADs.
        assert FaultPlan(partition_step=3).injects_smp_faults

    def test_partition_and_storm_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(partition_step=2, partition_heal_steps=0)
        with pytest.raises(FaultInjectionError):
            FaultPlan(link_flap_storm_step=2, link_flap_storm_size=0)


class TestFromSpec:
    def test_full_spec(self):
        plan = FaultPlan.from_spec(
            "smp-drop=0.1,smp-corrupt=0.01,smp-delay=0.05,"
            "link-flap=0.2,switch-fail=0.02,sm-death=7",
            seed=9,
        )
        assert plan.seed == 9
        assert plan.smp_drop_rate == 0.1
        assert plan.smp_corrupt_rate == 0.01
        assert plan.smp_delay_rate == 0.05
        assert plan.link_flap_rate == 0.2
        assert plan.switch_failure_rate == 0.02
        assert plan.sm_death_step == 7

    def test_empty_spec_is_quiet_plan(self):
        plan = FaultPlan.from_spec("", seed=3)
        assert plan == FaultPlan(seed=3)

    def test_unknown_key_rejected(self):
        with pytest.raises(FaultInjectionError, match="unknown --inject"):
            FaultPlan.from_spec("gremlins=1.0")

    def test_malformed_item_rejected(self):
        with pytest.raises(FaultInjectionError, match="key=value"):
            FaultPlan.from_spec("smp-drop")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(FaultInjectionError, match="integer"):
            FaultPlan.from_spec("flap-storm=oops")
        with pytest.raises(FaultInjectionError, match="number"):
            FaultPlan.from_spec("smp-drop=abc")

    def test_describe_mentions_active_knobs(self):
        text = FaultPlan.from_spec("smp-drop=0.1,sm-death=4", seed=2).describe()
        assert "seed=2" in text
        assert "drop=0.1" in text
        assert "sm-death@4" in text

    def test_ha_spec_keys(self):
        plan = FaultPlan.from_spec(
            "partition=6,heal-after=3,flap-storm=11,storm-size=6", seed=1
        )
        assert plan.partition_step == 6
        assert plan.partition_heal_steps == 3
        assert plan.link_flap_storm_step == 11
        assert plan.link_flap_storm_size == 6
        text = plan.describe()
        assert "partition@6+3" in text
        assert "flap-storm@11x6" in text
