"""FaultInjector: decision streams, scripted rules, determinism."""

import numpy as np

from repro.constants import LFT_BLOCK_SIZE
from repro.faults.injector import FaultAction, FaultInjector
from repro.faults.plan import FaultPlan, ScriptedFault
from repro.mad.smp import Smp, SmpKind, SmpMethod, make_set_lft_block


def lft_smp(target="sw0", block=0):
    return make_set_lft_block(
        target, block, np.zeros(LFT_BLOCK_SIZE, dtype=np.int16)
    )


def port_info_smp(target="sw0"):
    return Smp(SmpMethod.SET, SmpKind.PORT_INFO, target)


class TestProbabilisticDecisions:
    def test_quiet_plan_always_delivers(self):
        inj = FaultInjector(FaultPlan())
        decisions = [inj.decide(lft_smp()) for _ in range(100)]
        assert all(d.action is FaultAction.DELIVER for d in decisions)
        assert inj.injected_total == 0

    def test_drop_rate_roughly_honoured(self):
        inj = FaultInjector(FaultPlan(seed=1, smp_drop_rate=0.3))
        drops = sum(
            inj.decide(lft_smp()).action is FaultAction.DROP
            for _ in range(1000)
        )
        assert 200 < drops < 400

    def test_decision_stream_is_deterministic(self):
        plan = FaultPlan(seed=42, smp_drop_rate=0.2, smp_corrupt_rate=0.1)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        smps = [lft_smp(block=i % 4) for i in range(300)]
        assert [a.decide(s).action for s in smps] == [
            b.decide(s).action for s in smps
        ]
        assert a.summary() == b.summary()

    def test_corrupt_downgraded_to_drop_off_lft(self):
        inj = FaultInjector(FaultPlan(seed=5, smp_corrupt_rate=1.0))
        assert inj.decide(lft_smp()).action is FaultAction.CORRUPT
        # A damaged non-LFT MAD fails its CRC and is discarded: a drop.
        assert inj.decide(port_info_smp()).action is FaultAction.DROP

    def test_per_target_drop_overrides_global(self):
        inj = FaultInjector(
            FaultPlan(seed=3, per_target_drop={"victim": 1.0})
        )
        assert inj.decide(lft_smp("victim")).action is FaultAction.DROP
        assert inj.decide(lft_smp("bystander")).action is FaultAction.DELIVER

    def test_delay_carries_latency(self):
        inj = FaultInjector(
            FaultPlan(seed=2, smp_delay_rate=1.0, smp_delay_seconds=5e-3)
        )
        decision = inj.decide(lft_smp())
        assert decision.action is FaultAction.DELAY
        assert decision.delay_seconds == 5e-3


class TestScriptedFaults:
    def test_nth_matching_smp_dropped(self):
        rule = ScriptedFault(
            action="drop", target="switch7", kind="lft_block", nth=3
        )
        inj = FaultInjector(FaultPlan(scripted=(rule,)))
        # Non-matching target never counts.
        assert inj.decide(lft_smp("switch1")).action is FaultAction.DELIVER
        actions = [inj.decide(lft_smp("switch7")).action for _ in range(5)]
        assert actions == [
            FaultAction.DELIVER,
            FaultAction.DELIVER,
            FaultAction.DROP,  # exactly the 3rd LFT-block SMP of switch7
            FaultAction.DELIVER,
            FaultAction.DELIVER,
        ]

    def test_at_time_arms_from_sim_time(self):
        rule = ScriptedFault(action="drop", at_time=1.0)
        inj = FaultInjector(FaultPlan(scripted=(rule,)))
        assert inj.decide(lft_smp(), now=0.5).action is FaultAction.DELIVER
        assert inj.decide(lft_smp(), now=1.5).action is FaultAction.DROP
        # count=1: fires once, then disarms.
        assert inj.decide(lft_smp(), now=2.0).action is FaultAction.DELIVER

    def test_count_fires_repeatedly(self):
        rule = ScriptedFault(action="drop", nth=1, count=2)
        inj = FaultInjector(FaultPlan(scripted=(rule,)))
        actions = [inj.decide(lft_smp()).action for _ in range(4)]
        assert actions == [
            FaultAction.DROP,
            FaultAction.DROP,
            FaultAction.DELIVER,
            FaultAction.DELIVER,
        ]

    def test_scripted_corrupt_downgrades_off_lft(self):
        rule = ScriptedFault(action="corrupt", kind="port_info")
        inj = FaultInjector(FaultPlan(scripted=(rule,)))
        decision = inj.decide(port_info_smp())
        assert decision.action is FaultAction.DROP
        assert decision.scripted is rule


class TestCorruption:
    def test_corrupt_entries_changes_exactly_one_slot(self):
        inj = FaultInjector(FaultPlan(seed=8))
        entries = np.full(LFT_BLOCK_SIZE, 7, dtype=np.int16)
        damaged = inj.corrupt_entries(entries)
        assert damaged is not entries
        assert (damaged != entries).sum() <= 1
        assert entries[entries != damaged].size <= 1
        # Original payload untouched.
        assert (entries == 7).all()


class TestIsolation:
    def test_isolation_drops_sminfo_to_isolated_nodes_only(self):
        inj = FaultInjector(FaultPlan(seed=2))
        inj.isolate(["h3"])
        sminfo = Smp(SmpMethod.GET, SmpKind.SM_INFO, "h3")
        assert inj.decide(sminfo).action is FaultAction.DROP
        # Other kinds to the same node, and SMInfo to other nodes, pass.
        assert inj.decide(port_info_smp("h3")).action is FaultAction.DELIVER
        other = Smp(SmpMethod.GET, SmpKind.SM_INFO, "h4")
        assert inj.decide(other).action is FaultAction.DELIVER
        inj.heal()
        assert inj.decide(sminfo).action is FaultAction.DELIVER

    def test_isolation_does_not_shift_decision_stream(self):
        # The partition check is deterministic (no RNG draw), so healing
        # mid-run must not change later probabilistic decisions.
        plan = FaultPlan(seed=11, smp_drop_rate=0.3)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        b.isolate(["h9"])
        for _ in range(20):
            b.decide(Smp(SmpMethod.GET, SmpKind.SM_INFO, "h9"))
        b.heal()
        got_a = [a.decide(lft_smp()).action for _ in range(100)]
        got_b = [b.decide(lft_smp()).action for _ in range(100)]
        assert got_a == got_b


class TestRngIsolation:
    def test_fabric_rng_independent_of_decision_stream(self):
        plan = FaultPlan(seed=4, smp_drop_rate=0.5)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        # a consumes SMP decisions; b does not. Fabric streams must agree.
        for _ in range(50):
            a.decide(lft_smp())
        assert [a.fabric_rng.random() for _ in range(10)] == [
            b.fabric_rng.random() for _ in range(10)
        ]
