"""Tests for SMP packet records."""

import numpy as np
import pytest

from repro.constants import LFT_BLOCK_SIZE
from repro.errors import TopologyError
from repro.mad.smp import Smp, SmpKind, SmpMethod, make_set_lft_block


class TestSmp:
    def test_set_lft_requires_full_block(self):
        with pytest.raises(TopologyError):
            Smp(
                SmpMethod.SET,
                SmpKind.LFT_BLOCK,
                "sw",
                payload={"block": 0, "entries": np.zeros(3, dtype=np.int16)},
            )

    def test_set_lft_requires_block_index(self):
        with pytest.raises(TopologyError):
            Smp(
                SmpMethod.SET,
                SmpKind.LFT_BLOCK,
                "sw",
                payload={"entries": np.zeros(LFT_BLOCK_SIZE, dtype=np.int16)},
            )

    def test_get_lft_needs_no_entries(self):
        smp = Smp(SmpMethod.GET, SmpKind.LFT_BLOCK, "sw", payload={"block": 0})
        assert not smp.is_lft_update

    def test_is_lft_update_only_for_set_lft(self):
        smp = make_set_lft_block("sw", 0, np.zeros(LFT_BLOCK_SIZE))
        assert smp.is_lft_update
        other = Smp(SmpMethod.SET, SmpKind.PORT_INFO, "sw")
        assert not other.is_lft_update

    def test_directed_default(self):
        assert Smp(SmpMethod.GET, SmpKind.NODE_INFO, "x").directed is True

    def test_make_set_lft_block_casts_dtype(self):
        smp = make_set_lft_block("sw", 2, np.zeros(LFT_BLOCK_SIZE, dtype=np.int64))
        assert smp.payload["entries"].dtype == np.int16
        assert smp.payload["block"] == 2

    def test_destination_routed_option(self):
        smp = make_set_lft_block(
            "sw", 0, np.zeros(LFT_BLOCK_SIZE), directed=False
        )
        assert smp.directed is False
