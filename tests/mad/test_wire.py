"""Tests for the 256-byte MAD wire encoding."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constants import LFT_BLOCK_SIZE
from repro.errors import ReproError
from repro.mad.smp import Smp, SmpKind, SmpMethod, make_set_lft_block
from repro.mad.wire import ATTR_PAYLOAD_SIZE, MAD_SIZE, decode_smp, encode_smp


class TestSizeInvariants:
    def test_every_mad_is_256_bytes(self):
        smp = make_set_lft_block("sw0", 3, np.arange(64) % 200)
        assert len(encode_smp(smp)) == MAD_SIZE

    def test_lft_block_exactly_fills_payload(self):
        # The architectural reason LFTs move in 64-LID blocks: one block of
        # one-byte port entries is exactly one attribute payload.
        assert LFT_BLOCK_SIZE * 1 == ATTR_PAYLOAD_SIZE

    def test_truncated_rejected(self):
        with pytest.raises(ReproError):
            decode_smp(b"\x00" * 100)


class TestRoundTrip:
    def test_set_lft_block(self):
        entries = np.asarray([(i * 7) % 250 for i in range(64)], dtype=np.int16)
        smp = make_set_lft_block("leaf3", 5, entries, directed=False)
        decoded, tid = decode_smp(encode_smp(smp, tid=42))
        assert tid == 42
        assert decoded.method is SmpMethod.SET
        assert decoded.kind is SmpKind.LFT_BLOCK
        assert decoded.target == "leaf3"
        assert decoded.directed is False
        assert decoded.payload["block"] == 5
        assert np.array_equal(decoded.payload["entries"], entries)

    def test_get_lft_block(self):
        smp = Smp(SmpMethod.GET, SmpKind.LFT_BLOCK, "sw", payload={"block": 9})
        decoded, _ = decode_smp(encode_smp(smp))
        assert decoded.method is SmpMethod.GET
        assert decoded.payload["block"] == 9

    def test_port_info(self):
        smp = Smp(
            SmpMethod.SET,
            SmpKind.PORT_INFO,
            "hca7",
            payload={"port": 1, "lid": 777},
        )
        decoded, _ = decode_smp(encode_smp(smp))
        assert decoded.payload == {"port": 1, "lid": 777}

    def test_vguid(self):
        smp = Smp(
            SmpMethod.SET,
            SmpKind.VGUID,
            "hyp",
            payload={"vf": 3, "vguid": 0x0000_0100_0000_BEEF},
        )
        decoded, _ = decode_smp(encode_smp(smp))
        assert decoded.payload["vf"] == 3
        assert decoded.payload["vguid"] == 0x0000_0100_0000_BEEF

    def test_directed_flag_in_mgmt_class(self):
        for directed in (True, False):
            smp = Smp(
                SmpMethod.GET, SmpKind.NODE_INFO, "x", directed=directed
            )
            decoded, _ = decode_smp(encode_smp(smp))
            assert decoded.directed is directed

    @given(
        block=st.integers(min_value=0, max_value=767),
        entries=st.lists(
            st.integers(min_value=0, max_value=255), min_size=64, max_size=64
        ),
        tid=st.integers(min_value=0, max_value=(1 << 64) - 1),
    )
    def test_lft_round_trip_property(self, block, entries, tid):
        smp = make_set_lft_block(
            "sw", block, np.asarray(entries, dtype=np.int16)
        )
        decoded, tid2 = decode_smp(encode_smp(smp, tid=tid))
        assert tid2 == tid
        assert decoded.payload["block"] == block
        assert list(decoded.payload["entries"]) == entries


class TestValidation:
    def test_bad_tid(self):
        smp = Smp(SmpMethod.GET, SmpKind.NODE_INFO, "x")
        with pytest.raises(ReproError):
            encode_smp(smp, tid=1 << 64)

    def test_long_target_rejected(self):
        smp = Smp(SmpMethod.GET, SmpKind.NODE_INFO, "y" * 80)
        with pytest.raises(ReproError):
            encode_smp(smp)

    def test_garbage_class_rejected(self):
        smp = Smp(SmpMethod.GET, SmpKind.NODE_INFO, "x")
        wire = bytearray(encode_smp(smp))
        wire[1] = 0x55  # unknown mgmt class
        with pytest.raises(ReproError):
            decode_smp(bytes(wire))
