"""Tests for SMP transport: hop counting, latency, accounting, application."""

import numpy as np
import pytest

from repro.constants import LFT_BLOCK_SIZE
from repro.errors import TopologyError
from repro.fabric.topology import Topology
from repro.mad.smp import Smp, SmpKind, SmpMethod, make_set_lft_block
from repro.mad.transport import SmpTransport


def line_topology():
    """h0 - s0 - s1 - s2 - h2 (SM on h0)."""
    topo = Topology("line")
    s0, s1, s2 = (topo.add_switch(f"s{i}", 4) for i in range(3))
    h0, h2 = topo.add_hca("h0"), topo.add_hca("h2")
    topo.connect(h0, 1, s0, 1)
    topo.connect(s0, 2, s1, 1)
    topo.connect(s1, 2, s2, 1)
    topo.connect(s2, 2, h2, 1)
    return topo


class TestHops:
    def test_hops_to_switches(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        assert tr.hops_to(topo.node("s0")) == 1
        assert tr.hops_to(topo.node("s1")) == 2
        assert tr.hops_to(topo.node("s2")) == 3

    def test_hops_to_remote_hca(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        assert tr.hops_to(topo.node("h2")) == 4

    def test_hops_to_self(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        assert tr.hops_to(topo.node("h0")) == 0

    def test_sm_defaults_to_first_hca(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        assert tr.sm_node.name == "h0"

    def test_move_sm_changes_distances(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        tr.set_sm_node(topo.node("h2"))
        assert tr.hops_to(topo.node("s2")) == 1
        assert tr.hops_to(topo.node("s0")) == 3


class TestLatencyModel:
    def test_directed_adds_r_per_hop(self):
        topo = line_topology()
        tr = SmpTransport(topo, hop_latency=1.0, dr_overhead=0.5)
        res_dir = tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s1"))
        res_dst = tr.send(
            Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s1", directed=False)
        )
        assert res_dir.latency == pytest.approx(2 * 1.5)
        assert res_dst.latency == pytest.approx(2 * 1.0)

    def test_closer_switch_cheaper(self):
        # Section VI-A footnote 4.
        topo = line_topology()
        tr = SmpTransport(topo)
        near = tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s0"))
        far = tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s2"))
        assert far.latency > near.latency


class TestAccounting:
    def test_counters(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s0"))
        tr.send(make_set_lft_block("s1", 0, np.zeros(LFT_BLOCK_SIZE)))
        assert tr.stats.total_smps == 2
        assert tr.stats.lft_update_smps == 1
        assert tr.stats.by_kind[SmpKind.LFT_BLOCK] == 1
        assert tr.stats.by_target["s0"] == 1

    def test_directed_vs_destination_counts(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s0"))
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s0", directed=False))
        assert tr.stats.directed_smps == 1
        assert tr.stats.destination_routed_smps == 1

    def test_snapshot_delta(self):
        topo = line_topology()
        tr = SmpTransport(topo, record_samples=True)
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s0"))
        before = tr.stats.snapshot()
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s1"))
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s2"))
        delta = tr.stats.delta_since(before)
        assert delta.total_smps == 2
        assert len(delta.latencies) == 2

    def test_mean_k(self):
        topo = line_topology()
        tr = SmpTransport(topo, hop_latency=1.0, dr_overhead=0.0)
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s0"))  # 1 hop
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s2"))  # 3 hops
        assert tr.stats.mean_k() == pytest.approx(2.0)

    def test_pipelined_time_bounds(self):
        topo = line_topology()
        tr = SmpTransport(
            topo, hop_latency=1.0, dr_overhead=0.0, record_samples=True
        )
        for _ in range(4):
            tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s1"))  # 2.0 each
        serial = tr.stats.serial_time
        assert tr.stats.pipelined_time(1) == pytest.approx(serial)
        assert tr.stats.pipelined_time(4) == pytest.approx(serial / 4)
        # Never below the slowest single packet.
        assert tr.stats.pipelined_time(100) == pytest.approx(2.0)

    def test_pipeline_window_validation(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        with pytest.raises(TopologyError):
            tr.stats.pipelined_time(0)


class TestSampleRecording:
    def test_samples_off_by_default(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        for _ in range(3):
            tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s1"))
        assert tr.stats.latencies == []
        assert tr.stats.hops == []
        assert tr.stats.directed_flags == []
        assert tr.stats.total_smps == 3
        assert tr.stats.max_latency > 0

    def test_pipelined_floor_without_samples(self):
        topo = line_topology()
        tr = SmpTransport(topo, hop_latency=1.0, dr_overhead=0.0)
        for _ in range(4):
            tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s1"))  # 2.0 each
        # max_latency keeps the never-below-the-slowest-packet floor exact
        # even without per-SMP samples.
        assert tr.stats.pipelined_time(100) == pytest.approx(2.0)

    def test_opt_in_records_samples(self):
        topo = line_topology()
        tr = SmpTransport(topo, record_samples=True)
        tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s0"))
        assert len(tr.stats.latencies) == 1
        assert len(tr.stats.hops) == 1
        assert len(tr.stats.directed_flags) == 1


class TestApplication:
    def test_set_lft_programs_switch(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        entries = np.full(LFT_BLOCK_SIZE, 3, dtype=np.int16)
        tr.send(make_set_lft_block("s1", 0, entries))
        assert topo.node("s1").lft.get(10) == 3

    def test_get_lft_reads_back(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        topo.node("s0").lft.set(5, 2)
        res = tr.send(
            Smp(SmpMethod.GET, SmpKind.LFT_BLOCK, "s0", payload={"block": 0})
        )
        assert res.data["entries"][5] == 2

    def test_lft_smp_to_hca_rejected(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        with pytest.raises(TopologyError):
            tr.send(make_set_lft_block("h2", 0, np.zeros(LFT_BLOCK_SIZE)))

    def test_set_port_lid(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        tr.send(
            Smp(
                SmpMethod.SET,
                SmpKind.PORT_INFO,
                "h2",
                payload={"port": 1, "lid": 77},
            )
        )
        assert topo.node("h2").port(1).lid == 77

    def test_get_node_info(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        res = tr.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "s1"))
        assert res.data["node_type"] == "switch"
        assert res.data["num_ports"] == 4

    def test_vguid_payload_carried_back(self):
        topo = line_topology()
        tr = SmpTransport(topo)
        res = tr.send(
            Smp(
                SmpMethod.SET,
                SmpKind.VGUID,
                "h2",
                payload={"vf": 1, "vguid": 0xBEEF},
            )
        )
        assert res.data == {"vf": 1, "vguid": 0xBEEF}
