"""ReliableSmpSender: MAD retry/timeout semantics over a lossy transport."""

import numpy as np
import pytest

from repro.constants import LFT_BLOCK_SIZE
from repro.errors import (
    FaultInjectionError,
    SmpTimeoutError,
    TransportError,
    UnreachableTargetError,
)
from repro.fabric.topology import Topology
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mad.reliable import ReliableSmpSender, RetryPolicy
from repro.mad.smp import Smp, SmpKind, SmpMethod, make_set_lft_block
from repro.mad.transport import SmpTransport
from repro.obs import get_hub


def line_topology():
    topo = Topology("line")
    s0, s1 = topo.add_switch("s0", 4), topo.add_switch("s1", 4)
    h0 = topo.add_hca("h0")
    topo.connect(h0, 1, s0, 1)
    topo.connect(s0, 2, s1, 1)
    return topo


def lossy_sender(plan, policy=None):
    tr = SmpTransport(line_topology())
    tr.set_fault_injector(FaultInjector(plan))
    return ReliableSmpSender(tr, policy=policy)


def lft_smp(target="s0", block=0):
    return make_set_lft_block(
        target, block, np.zeros(LFT_BLOCK_SIZE, dtype=np.int16)
    )


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.retries == 4
        assert policy.timeout_for(0) == policy.timeout_s

    def test_backoff_is_capped(self):
        policy = RetryPolicy(
            retries=10, timeout_s=1e-3, backoff=2.0, max_timeout_s=4e-3
        )
        waits = [policy.timeout_for(i) for i in range(6)]
        assert waits[0] == 1e-3
        assert waits[1] == 2e-3
        assert waits[2] == 4e-3
        assert waits[5] == 4e-3  # capped

    def test_validation(self):
        with pytest.raises(FaultInjectionError):
            RetryPolicy(retries=-1)
        with pytest.raises(FaultInjectionError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(FaultInjectionError):
            RetryPolicy(backoff=0.5)

    def test_worst_case_wait_sums_all_attempts(self):
        policy = RetryPolicy(retries=2, timeout_s=1e-3, backoff=2.0)
        # Initial send timeout + 2 retry timeouts.
        assert policy.worst_case_wait() == pytest.approx(1e-3 + 2e-3 + 4e-3)


class TestRecovery:
    def test_lossless_transport_passes_through(self):
        sender = lossy_sender(FaultPlan())
        result = sender.send(lft_smp())
        assert result.ok
        assert sender.stats.retransmissions == 0

    def test_recovers_from_partial_loss(self):
        sender = lossy_sender(
            FaultPlan(seed=1, smp_drop_rate=0.3),
            RetryPolicy(retries=8),
        )
        results = [sender.send(lft_smp(block=i % 4)) for i in range(100)]
        assert all(r.ok for r in results)
        assert sender.stats.retransmissions > 0
        assert sender.stats.timeouts > 0

    def test_exhausted_retries_raise_timeout_error(self):
        sender = lossy_sender(
            FaultPlan(seed=2, smp_drop_rate=1.0),
            RetryPolicy(retries=2),
        )
        with pytest.raises(SmpTimeoutError, match="after 3 attempts"):
            sender.send(lft_smp())

    def test_timeout_error_is_transport_error(self):
        assert issubclass(SmpTimeoutError, TransportError)

    def test_exhaustion_charges_full_backoff_wait(self):
        policy = RetryPolicy(retries=3)
        sender = lossy_sender(FaultPlan(seed=3, smp_drop_rate=1.0), policy)
        with pytest.raises(SmpTimeoutError):
            sender.send(lft_smp())
        assert sender.stats.retry_wait_seconds == pytest.approx(
            policy.worst_case_wait()
        )

    def test_unreachable_target_not_retried(self):
        sender = lossy_sender(FaultPlan(), RetryPolicy(retries=5))
        with pytest.raises(UnreachableTargetError):
            sender.send(Smp(SmpMethod.GET, SmpKind.NODE_INFO, "ghost"))
        assert sender.stats.retransmissions == 0


class TestObservability:
    def test_retry_span_and_metric_emitted(self):
        sender = lossy_sender(
            FaultPlan(seed=4, smp_drop_rate=1.0), RetryPolicy(retries=1)
        )
        with pytest.raises(SmpTimeoutError):
            sender.send(lft_smp())
        hub = get_hub()
        spans = [s for s in hub.all_spans() if s.name == "smp_retry"]
        assert len(spans) == 1
        assert spans[0].attributes["recovered"] is False
        assert "repro_smp_retries_total" in hub.metrics.render_prometheus()

    def test_recovered_retry_span_marked(self):
        tr = SmpTransport(line_topology())
        # Drop exactly the first send; the retry succeeds.
        from repro.faults.plan import ScriptedFault

        tr.set_fault_injector(
            FaultInjector(
                FaultPlan(scripted=(ScriptedFault(action="drop", nth=1),))
            )
        )
        sender = ReliableSmpSender(tr, policy=RetryPolicy(retries=2))
        result = sender.send(lft_smp())
        assert result.ok
        spans = [s for s in get_hub().all_spans() if s.name == "smp_retry"]
        assert spans[0].attributes["recovered"] is True
        # The first send was dropped; attempt 2 (the first retry) landed.
        assert spans[0].attributes["attempts"] == 2
