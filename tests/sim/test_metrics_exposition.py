"""Tests for labeled metrics, the Prometheus/JSON expositions, and the
Timer/Histogram edge cases hardened alongside them."""

import json

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import Gauge, Histogram, MetricRegistry, Timer


class TestLabeledSeries:
    def test_label_sets_are_distinct_series(self):
        reg = MetricRegistry()
        reg.counter("smp_total", kind="lft").add(2)
        reg.counter("smp_total", kind="node_info").add(1)
        reg.counter("smp_total").add(5)
        assert reg.counter("smp_total", kind="lft").value == 2
        assert reg.counter("smp_total", kind="node_info").value == 1
        assert reg.counter("smp_total").value == 5

    def test_label_order_is_canonical(self):
        reg = MetricRegistry()
        reg.counter("x", a=1, b=2).add()
        assert reg.counter("x", b=2, a=1).value == 1

    def test_gauge_set_add_and_nan(self):
        g = Gauge("g")
        g.set(3.5)
        g.add(-1.5)
        assert g.value == 2.0
        with pytest.raises(SimulationError):
            g.set(float("nan"))

    def test_registry_len_and_reset(self):
        reg = MetricRegistry()
        reg.counter("c").add()
        reg.gauge("g").set(1)
        reg.timer("t")
        reg.histogram("h")
        assert len(reg) == 4
        reg.reset()
        assert len(reg) == 0


class TestPrometheusRendering:
    def test_empty_registry_renders_empty(self):
        assert MetricRegistry().render_prometheus() == ""

    def test_counter_and_gauge_lines(self):
        reg = MetricRegistry()
        reg.counter("smp_total", kind="lft", routed="directed").add(7)
        reg.gauge("vms_running").set(3)
        text = reg.render_prometheus()
        assert "# TYPE smp_total counter" in text
        assert 'smp_total{kind="lft",routed="directed"} 7' in text
        assert "# TYPE vms_running gauge" in text
        assert "vms_running 3" in text
        assert text.endswith("\n")

    def test_name_sanitization_and_label_escaping(self):
        reg = MetricRegistry()
        reg.counter("bad-name.metric", label='va"l\nue').add()
        text = reg.render_prometheus()
        assert "bad_name_metric" in text
        assert r"va\"l\nue" in text

    def test_timer_and_histogram_rendering(self):
        reg = MetricRegistry()
        t = reg.timer("compute")
        with t:
            pass
        h = reg.histogram("lat")
        h.observe_many([1.0, 2.0, 3.0])
        text = reg.render_prometheus()
        assert "compute_seconds_sum" in text
        assert "compute_seconds_count 1" in text
        assert "# TYPE lat histogram" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="10"} 3' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 6" in text
        assert "lat_count 3" in text

    def test_histogram_buckets_are_cumulative_and_custom(self):
        reg = MetricRegistry()
        h = reg.histogram("size", buckets=[1.0, 2.0, 4.0])
        h.observe_many([0.5, 1.5, 3.0, 100.0])
        assert h.bucket_counts() == [1, 2, 3]
        text = reg.render_prometheus()
        assert 'size_bucket{le="1"} 1' in text
        assert 'size_bucket{le="2"} 2' in text
        assert 'size_bucket{le="4"} 3' in text
        # The over-the-top observation only shows in +Inf.
        assert 'size_bucket{le="+Inf"} 4' in text
        snap = json.loads(reg.dump_json())
        assert snap["histograms"]["size"]["buckets"] == [
            [1.0, 1],
            [2.0, 2],
            [4.0, 3],
        ]

    def test_histogram_bucket_bounds_must_increase(self):
        with pytest.raises(SimulationError, match="strictly increase"):
            Histogram("bad", buckets=[1.0, 1.0])
        with pytest.raises(SimulationError, match="at least one"):
            Histogram("bad", buckets=[])

    def test_json_snapshot_round_trips(self):
        reg = MetricRegistry()
        reg.counter("c", mode="swap").add(2)
        reg.gauge("g").set(1.5)
        snap = json.loads(reg.dump_json())
        assert snap["counters"]["c{mode=swap}"] == 2
        assert snap["gauges"]["g"] == 1.5


class TestTimerErrors:
    def test_exit_without_enter_raises(self):
        t = Timer("bare")
        with pytest.raises(SimulationError, match="without a matching"):
            t.__exit__(None, None, None)

    def test_normal_use_still_works(self):
        t = Timer("ok")
        with t:
            pass
        assert len(t.laps) == 1
        assert t.total >= 0


class TestHistogramPercentileEdges:
    def test_empty_histogram_is_zero(self):
        h = Histogram("h")
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0
        assert h.sum == 0.0

    def test_bounds_inclusive(self):
        h = Histogram("h")
        h.observe_many([1.0, 2.0, 3.0])
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 3.0

    def test_out_of_range_raises(self):
        h = Histogram("h")
        h.observe(1.0)
        with pytest.raises(SimulationError):
            h.percentile(-0.1)
        with pytest.raises(SimulationError):
            h.percentile(100.1)

    def test_single_value(self):
        h = Histogram("h")
        h.observe(42.0)
        for q in (0, 50, 99, 100):
            assert h.percentile(q) == 42.0

    def test_nan_rejected(self):
        h = Histogram("h")
        with pytest.raises(SimulationError):
            h.observe(float("nan"))
