"""Tests for the credit-based data-plane simulator (section VI-C claims)."""

import pytest

from repro.core.reconfig import VSwitchReconfigurer
from repro.errors import SimulationError
from repro.fabric.builders.generic import build_ring
from repro.fabric.presets import scaled_fattree
from repro.sim.dataplane import DataPlaneSimulator
from repro.sm.subnet_manager import SubnetManager
from repro.workloads.traffic import all_to_all_flows


def routed_subnet(built, engine="minhop"):
    sm = SubnetManager(built.topology, built=built, engine=engine)
    sm.initial_configure(with_discovery=False)
    return sm


class TestBasics:
    def test_single_packet_delivered(self, small_fattree):
        sm = routed_subnet(small_fattree)
        topo = small_fattree.topology
        sim = DataPlaneSimulator(topo)
        src = topo.hcas[0].lid
        dst = topo.hcas[-1].lid
        sim.inject(src, dst)
        stats = sim.run()
        assert stats.delivered == 1
        assert stats.in_flight == 0
        assert stats.latencies[0] > 0

    def test_all_to_all_on_fattree_all_delivered(self, small_fattree):
        sm = routed_subnet(small_fattree)
        topo = small_fattree.topology
        lids = [h.lid for h in topo.hcas[:12]]
        sim = DataPlaneSimulator(topo, channel_credits=2)
        sim.inject_flows(all_to_all_flows(lids), spacing=1e-7)
        stats = sim.run()
        assert stats.delivered == stats.injected
        assert stats.dropped_timeout == 0

    def test_intra_leaf_faster_than_cross_leaf(self, small_fattree):
        sm = routed_subnet(small_fattree)
        topo = small_fattree.topology
        sim = DataPlaneSimulator(topo)
        sim.inject(topo.hcas[0].lid, topo.hcas[1].lid)  # same leaf
        sim.run()
        near = sim.stats.latencies[-1]
        sim.inject(topo.hcas[0].lid, topo.hcas[-1].lid)  # across spines
        sim.run()
        far = sim.stats.latencies[-1]
        assert far > near

    def test_unrouted_destination_dropped(self, small_fattree):
        # An unprogrammed LFT entry IS the drop port (255) on real
        # hardware, so unrouted traffic counts as a port-255 drop.
        sm = routed_subnet(small_fattree)
        topo = small_fattree.topology
        sim = DataPlaneSimulator(topo)
        sim.inject(topo.hcas[0].lid, 40000)
        stats = sim.run()
        assert stats.dropped_port255 == 1
        assert stats.in_flight == 0

    def test_validation(self, small_fattree):
        topo = small_fattree.topology
        with pytest.raises(SimulationError):
            DataPlaneSimulator(topo, channel_credits=0)
        with pytest.raises(SimulationError):
            DataPlaneSimulator(topo, hop_time=0)
        sim = DataPlaneSimulator(topo)
        with pytest.raises(SimulationError):
            sim.inject(40000, 1)


class TestPort255Invalidation:
    def test_invalidated_lid_traffic_dropped(self, small_fattree):
        # Section VI-C: the partially-static mitigation forwards the
        # migrating LID to port 255 so packets are dropped, not deadlocked.
        sm = routed_subnet(small_fattree)
        topo = small_fattree.topology
        victim = topo.hcas[-1].lid
        VSwitchReconfigurer(sm).invalidate_lid(victim)
        sim = DataPlaneSimulator(topo)
        sim.inject(topo.hcas[0].lid, victim)
        sim.inject(topo.hcas[0].lid, topo.hcas[1].lid)  # bystander
        stats = sim.run()
        assert stats.dropped_port255 == 1
        assert stats.delivered == 1  # only the victim's traffic is affected


class TestDeadlockAndTimeouts:
    def _ring_sim(self, engine, credits=1):
        built = build_ring(6, 1)
        sm = routed_subnet(built, engine=engine)
        topo = built.topology
        lids = [h.lid for h in topo.hcas]
        sim = DataPlaneSimulator(
            topo, channel_credits=credits, hop_time=1e-6, hoq_timeout=50e-6
        )
        # Every host sends to the host 3 ahead: minimal routes chase each
        # other around the ring and fill every channel.
        flows = [(lids[i], lids[(i + 3) % 6]) for i in range(6)] * 4
        sim.inject_flows(flows)
        return sim

    def test_minhop_ring_deadlocks_resolved_by_timeouts(self):
        # The paper: "deadlocks could possibly occur ... and they will be
        # resolved by IB timeouts".
        sim = self._ring_sim("minhop", credits=1)
        stats = sim.run()
        assert stats.in_flight == 0  # nothing stuck forever
        assert stats.dropped_timeout > 0  # the deadlock was real
        assert stats.delivered > 0  # and the timeouts un-stuck the rest

    def test_updn_ring_never_times_out(self):
        # Up*/Down* breaks the cycle: same traffic, zero timeouts.
        sim = self._ring_sim("updn", credits=1)
        stats = sim.run()
        assert stats.dropped_timeout == 0
        assert stats.delivered == stats.injected

    def test_more_credits_reduce_blocking(self):
        lean = self._ring_sim("minhop", credits=1)
        lean_stats = lean.run()
        roomy = self._ring_sim("minhop", credits=8)
        roomy_stats = roomy.run()
        assert roomy_stats.dropped_timeout <= lean_stats.dropped_timeout


class TestMidFlightReconfiguration:
    def test_traffic_follows_migrated_lid(self, small_fattree):
        # Reconfigure while packets are in flight: late packets follow the
        # updated LFTs to the VM's new location.
        sm = routed_subnet(small_fattree)
        topo = small_fattree.topology
        h_src = topo.hcas[0]
        h_old = topo.hcas[-1]
        h_new = topo.hcas[-7]  # different leaf
        vm_lid = sm.lid_manager.assign_extra_lid(h_old.port(1))
        sm.compute_routing()
        sm.distribute()
        rec = VSwitchReconfigurer(sm)

        sim = DataPlaneSimulator(topo, hop_time=1e-6)
        for i in range(10):
            sim.inject(h_src.lid, vm_lid, delay=i * 5e-6)

        def migrate() -> None:
            rec.copy_path(h_new.port(1).lid, vm_lid)
            sm.lid_manager.move_lid(vm_lid, h_new.port(1))

        sim.engine.schedule(22e-6, migrate, label="migration")
        stats = sim.run()
        # All packets delivered: early ones at the old host, late ones at
        # the new one, none lost to the reconfiguration itself.
        assert stats.delivered == stats.injected
        assert stats.dropped_timeout == 0


class TestVirtualLanes:
    def test_dfsssp_vl_separation_prevents_deadlock(self):
        # DFSSSP on a ring is cyclic per-CDG on one lane but splits
        # destinations over VLs; giving each VL its own credits makes the
        # simulated traffic deadlock free where single-lane minhop stalls.
        built = build_ring(6, 1)
        sm = SubnetManager(built.topology, built=built, engine="dfsssp")
        sm.initial_configure(with_discovery=False)
        lid_to_vl = sm.current_tables.metadata["lid_to_vl"]
        assert sm.current_tables.num_vls >= 2
        topo = built.topology
        lids = [h.lid for h in topo.hcas]
        flows = [(lids[i], lids[(i + 3) % 6]) for i in range(6)] * 4
        sim = DataPlaneSimulator(
            topo,
            channel_credits=1,
            hop_time=1e-6,
            hoq_timeout=50e-6,
            lid_to_vl=lid_to_vl,
        )
        sim.inject_flows(flows)
        stats = sim.run()
        assert stats.dropped_timeout == 0
        assert stats.delivered == stats.injected

    def test_same_routes_without_vls_deadlock(self):
        # Ablation: identical DFSSSP routes but all traffic forced onto one
        # lane -> the deadlock reappears and timeouts fire.
        built = build_ring(6, 1)
        sm = SubnetManager(built.topology, built=built, engine="dfsssp")
        sm.initial_configure(with_discovery=False)
        topo = built.topology
        lids = [h.lid for h in topo.hcas]
        flows = [(lids[i], lids[(i + 3) % 6]) for i in range(6)] * 4
        sim = DataPlaneSimulator(
            topo, channel_credits=1, hop_time=1e-6, hoq_timeout=50e-6
        )
        sim.inject_flows(flows)
        stats = sim.run()
        assert stats.in_flight == 0
        assert stats.dropped_timeout > 0


class TestSafeSwapUnderTraffic:
    def test_safe_swap_drops_instead_of_misroutes(self, small_fattree):
        # The section VI-C partially-static swap: packets racing the
        # reconfiguration are dropped at the invalidated entries (port 255)
        # and nothing deadlocks; packets after the swap deliver at the new
        # attachment.
        sm = routed_subnet(small_fattree)
        topo = small_fattree.topology
        h_src = topo.hcas[0]
        h_a, h_b = topo.hcas[10], topo.hcas[-1]
        lid_a = sm.lid_manager.assign_extra_lid(h_a.port(1))
        lid_b = sm.lid_manager.assign_extra_lid(h_b.port(1))
        sm.compute_routing()
        sm.distribute()
        rec = VSwitchReconfigurer(sm)

        sim = DataPlaneSimulator(topo, hop_time=1e-6)
        for i in range(40):
            sim.inject(h_src.lid, lid_a, delay=i * 2e-6)

        # Phase 1 (t=15us): invalidate — the reconfiguration window opens
        # and traffic toward the moving LID is dropped at the switches.
        sim.engine.schedule(
            15e-6, lambda: rec.invalidate_lid(lid_a), label="invalidate"
        )

        # Phase 2 (t=40us): the actual swap lands and the window closes.
        def finish_swap():
            rec.swap_lids(lid_a, lid_b)
            sm.lid_manager.move_lid(lid_a, h_b.port(1))
            sm.lid_manager.move_lid(lid_b, h_a.port(1))
            # The freed VF LID inherited the invalidated (port-255) column;
            # re-establish it along its new hypervisor's path, as the next
            # VM boot would (the production safe_swap_lids does this in one
            # step by recomputing from the SM's recorded tables).
            rec.copy_path(h_a.port(1).lid, lid_b)

        sim.engine.schedule(40e-6, finish_swap, label="swap")
        stats = sim.run()
        assert stats.in_flight == 0
        assert stats.dropped_timeout == 0  # never wedged
        # Everything either delivered or was cleanly dropped by port 255.
        assert stats.delivered + stats.dropped_port255 == stats.injected
        # Packets genuinely hit the invalidation window...
        assert stats.dropped_port255 > 0
        # ...and traffic before and after the window delivered.
        assert stats.delivered > 0
