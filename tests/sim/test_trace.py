"""Tests for the run trace: filtering and JSONL persistence."""

from repro.sim.trace import Trace


def sample_trace():
    tr = Trace()
    tr.emit(1.0, "boot", vm="vm1")
    tr.emit(2.0, "migrate", vm="vm1", smps=6)
    tr.emit(3.0, "boot", vm="vm2")
    return tr


class TestFiltering:
    def test_of_kind_preserves_order(self):
        tr = sample_trace()
        boots = tr.of_kind("boot")
        assert [r.detail["vm"] for r in boots] == ["vm1", "vm2"]
        assert tr.of_kind("stop") == []

    def test_last(self):
        tr = sample_trace()
        assert tr.last().kind == "boot"
        assert tr.last().detail["vm"] == "vm2"
        assert tr.last("migrate").detail["smps"] == 6
        assert tr.last("stop") is None
        assert Trace().last() is None

    def test_kinds_first_appearance_order(self):
        tr = sample_trace()
        assert tr.kinds() == ["boot", "migrate"]

    def test_len_and_iter(self):
        tr = sample_trace()
        assert len(tr) == 3
        assert [r.time for r in tr] == [1.0, 2.0, 3.0]


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tr = sample_trace()
        path = tmp_path / "trace.jsonl"
        assert tr.to_jsonl(path) == 3
        back = Trace.from_jsonl(path)
        assert len(back) == 3
        assert [r.kind for r in back] == [r.kind for r in tr]
        assert back.last("migrate").detail == {"vm": "vm1", "smps": 6}

    def test_unserializable_detail_stringified(self, tmp_path):
        tr = Trace()
        tr.emit(0.0, "odd", obj=object())
        path = tmp_path / "odd.jsonl"
        tr.to_jsonl(path)
        back = Trace.from_jsonl(path)
        assert "object" in back.last("odd").detail["obj"]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        path.write_text(
            '{"time": 1.0, "kind": "a", "detail": {}}\n\n'
            '{"time": 2.0, "kind": "b", "detail": {}}\n',
            encoding="utf-8",
        )
        back = Trace.from_jsonl(path)
        assert [r.kind for r in back] == ["a", "b"]
