"""Tests for the discrete-event engine, metrics and traces."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine, replay_smp_pipeline
from repro.sim.metrics import Counter, Histogram, MetricRegistry, Timer
from repro.sim.trace import Trace


class TestEngine:
    def test_events_run_in_time_order(self):
        eng = SimulationEngine()
        log = []
        eng.schedule(2.0, lambda: log.append("b"))
        eng.schedule(1.0, lambda: log.append("a"))
        eng.schedule(3.0, lambda: log.append("c"))
        end = eng.run()
        assert log == ["a", "b", "c"]
        assert end == 3.0
        assert eng.events_processed == 3

    def test_ties_broken_by_insertion_order(self):
        eng = SimulationEngine()
        log = []
        eng.schedule(1.0, lambda: log.append(1))
        eng.schedule(1.0, lambda: log.append(2))
        eng.run()
        assert log == [1, 2]

    def test_nested_scheduling(self):
        eng = SimulationEngine()
        log = []

        def first():
            log.append(eng.now)
            eng.schedule(0.5, lambda: log.append(eng.now))

        eng.schedule(1.0, first)
        eng.run()
        assert log == [1.0, 1.5]

    def test_negative_delay_rejected(self):
        eng = SimulationEngine()
        with pytest.raises(SimulationError):
            eng.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        eng = SimulationEngine()
        eng.schedule(5.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.schedule_at(1.0, lambda: None)

    def test_run_until(self):
        eng = SimulationEngine()
        log = []
        eng.schedule(1.0, lambda: log.append(1))
        eng.schedule(10.0, lambda: log.append(2))
        eng.run(until=5.0)
        assert log == [1]
        assert eng.now == 5.0

    def test_reset(self):
        eng = SimulationEngine()
        eng.schedule(1.0, lambda: None)
        eng.run()
        eng.reset()
        assert eng.now == 0.0
        assert eng.events_processed == 0


class TestSmpPipelineReplay:
    def test_window_one_is_serial_sum(self):
        lats = [1.0, 2.0, 3.0]
        assert replay_smp_pipeline(lats, 1) == pytest.approx(6.0)

    def test_large_window_bound_by_longest(self):
        lats = [1.0, 2.0, 3.0]
        assert replay_smp_pipeline(lats, 10) == pytest.approx(3.0)

    def test_window_two(self):
        # t=0: issue 1.0 and 2.0; t=1: issue 3.0 -> done at 4.0.
        assert replay_smp_pipeline([1.0, 2.0, 3.0], 2) == pytest.approx(4.0)

    def test_empty(self):
        assert replay_smp_pipeline([], 4) == 0.0

    def test_bad_window(self):
        with pytest.raises(SimulationError):
            replay_smp_pipeline([1.0], 0)

    def test_matches_analytic_uniform_latencies(self):
        # With equal latencies t, N packets, window W:
        # completion = ceil(N/W) * t — same as the analytic model's n*m*k/W
        # up to the ceiling.
        lats = [2.0] * 8
        assert replay_smp_pipeline(lats, 4) == pytest.approx(4.0)


class TestMetrics:
    def test_counter(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5
        with pytest.raises(SimulationError):
            c.add(-1)

    def test_timer_context(self):
        t = Timer("t")
        with t:
            pass
        with t:
            pass
        assert len(t.laps) == 2
        assert t.total >= 0
        assert t.mean == pytest.approx(t.total / 2)

    def test_histogram_stats(self):
        h = Histogram("h")
        h.observe_many([1.0, 2.0, 3.0, 4.0])
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0
        assert h.percentile(50) == pytest.approx(2.5)

    def test_histogram_validation(self):
        h = Histogram("h")
        with pytest.raises(SimulationError):
            h.observe(float("nan"))
        with pytest.raises(SimulationError):
            h.percentile(200)

    def test_empty_histogram(self):
        h = Histogram("h")
        assert h.mean == 0.0 and h.percentile(99) == 0.0

    def test_registry(self):
        reg = MetricRegistry()
        reg.counter("smps").add(3)
        reg.histogram("lat").observe(1.5)
        with reg.timer("work"):
            pass
        summary = reg.summary()
        assert summary["smps.count"] == 3.0
        assert summary["lat.mean"] == 1.5
        assert "work.total_s" in summary

    def test_registry_reuses_instances(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")


class TestTrace:
    def test_emit_and_filter(self):
        tr = Trace()
        tr.emit(0.0, "boot", vm="vm1")
        tr.emit(1.0, "migrate", vm="vm1", dest="h2")
        tr.emit(2.0, "boot", vm="vm2")
        assert len(tr) == 3
        assert len(tr.of_kind("boot")) == 2
        assert tr.last("migrate").detail["dest"] == "h2"
        assert tr.kinds() == ["boot", "migrate"]

    def test_last_empty(self):
        assert Trace().last() is None
