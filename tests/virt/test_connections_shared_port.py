"""Tests for connection tracking and the Shared Port vs vSwitch motivation
experiment (paper sections I, III, IV-A)."""

import pytest

from repro.errors import MigrationError
from repro.fabric.presets import scaled_fattree
from repro.virt.connections import ConnectionManager
from repro.virt.shared_port_fleet import SharedPortFleet
from tests.conftest import make_cloud


@pytest.fixture
def sp_fleet():
    built = scaled_fattree("2l-small")
    fleet = SharedPortFleet(built.topology, num_vfs=4)
    fleet.adopt_all_hcas()
    return fleet


class TestSharedPortFleet:
    def test_vms_share_hypervisor_lid(self, sp_fleet):
        a = sp_fleet.boot_vm(on="l0h0")
        b = sp_fleet.boot_vm(on="l0h0")
        assert a.lid == b.lid == sp_fleet.hcas["l0h0"].lid

    def test_migration_changes_lid(self, sp_fleet):
        vm = sp_fleet.boot_vm(on="l0h0")
        outcome = sp_fleet.migrate_vm(vm.name, "l3h3")
        assert outcome.lid_changed
        assert vm.lid == sp_fleet.hcas["l3h3"].lid
        assert vm.vguid is not None  # vGUID travelled

    def test_migration_to_self_rejected(self, sp_fleet):
        vm = sp_fleet.boot_vm(on="l0h0")
        with pytest.raises(MigrationError):
            sp_fleet.migrate_vm(vm.name, "l0h0")

    def test_lid_swap_variant_keeps_lid_but_hits_coresidents(self, sp_fleet):
        vm = sp_fleet.boot_vm(on="l0h0")
        bystander = sp_fleet.boot_vm(on="l0h0")
        bystander_lid = bystander.lid
        outcome = sp_fleet.migrate_vm_with_lid_swap(vm.name, "l3h3")
        assert not outcome.lid_changed  # the swap preserved the value
        assert bystander.name in outcome.collaterally_relocated
        assert bystander.lid != bystander_lid  # ...at the bystander's cost

    def test_co_residents(self, sp_fleet):
        a = sp_fleet.boot_vm(on="l1h1")
        b = sp_fleet.boot_vm(on="l1h1")
        assert sp_fleet.co_residents(a) == [b.name]


class TestConnectionManager:
    def test_connect_resolves_both_sides(self, sp_fleet):
        a = sp_fleet.boot_vm(on="l0h0")
        b = sp_fleet.boot_vm(on="l3h3")
        cm = ConnectionManager(sp_fleet.sa)
        conn = cm.connect(a.gid, b.gid)
        assert conn.a_cached_dlid == b.lid
        assert conn.b_cached_dlid == a.lid
        assert cm.count == 1

    def test_audit_healthy(self, sp_fleet):
        a = sp_fleet.boot_vm(on="l0h0")
        b = sp_fleet.boot_vm(on="l3h3")
        cm = ConnectionManager(sp_fleet.sa)
        cm.connect(a.gid, b.gid)
        audit = cm.audit()
        assert audit.broken_count == 0 and len(audit.healthy) == 1

    def test_orphan_detection(self, sp_fleet):
        a = sp_fleet.boot_vm(on="l0h0")
        b = sp_fleet.boot_vm(on="l3h3")
        cm = ConnectionManager(sp_fleet.sa)
        cm.connect(a.gid, b.gid)
        sp_fleet.sa.unregister(b.gid)
        assert len(cm.audit().orphaned) == 1
        assert cm.drop_orphans() == 1
        assert cm.count == 0

    def test_unknown_connection(self, sp_fleet):
        from repro.errors import VirtError

        cm = ConnectionManager(sp_fleet.sa)
        with pytest.raises(VirtError):
            cm.connection(99)


class TestMotivationExperiment:
    """The numbers behind section I: who breaks, and what repair costs."""

    def test_shared_port_migration_breaks_peers(self, sp_fleet):
        vm = sp_fleet.boot_vm(on="l0h0")
        peers = [sp_fleet.boot_vm(on=f"l{i}h{i}") for i in range(1, 5)]
        cm = ConnectionManager(sp_fleet.sa)
        for p in peers:
            cm.connect(p.gid, vm.gid)
        sp_fleet.migrate_vm(vm.name, "l5h5")
        audit = cm.audit()
        assert audit.broken_count == len(peers)  # every peer is stale

    def test_repair_costs_sa_queries(self, sp_fleet):
        vm = sp_fleet.boot_vm(on="l0h0")
        peers = [sp_fleet.boot_vm(on=f"l{i}h{i}") for i in range(1, 5)]
        cm = ConnectionManager(sp_fleet.sa)
        for p in peers:
            cm.connect(p.gid, vm.gid)
        sp_fleet.migrate_vm(vm.name, "l5h5")
        spent = cm.repair()
        assert spent >= len(peers)  # the SA query storm
        assert cm.audit().broken_count == 0

    def test_cache_absorbs_repeated_resolution(self, sp_fleet):
        # Reference [10]: with the cache, one SA round-trip refreshes the
        # migrated VM's record for all its peers.
        vm = sp_fleet.boot_vm(on="l0h0")
        peers = [sp_fleet.boot_vm(on=f"l{i}h{i}") for i in range(1, 5)]
        cm = ConnectionManager(sp_fleet.sa, use_cache=True)
        for p in peers:
            cm.connect(p.gid, vm.gid)
        sp_fleet.migrate_vm(vm.name, "l5h5")
        spent = cm.repair()
        nocache = ConnectionManager(sp_fleet.sa)  # fresh, for comparison
        assert spent <= len(peers)  # shared refresh via the cache

    def test_vswitch_migration_breaks_nothing(self, small_fattree):
        # The same experiment on the vSwitch cloud: zero broken, zero
        # repair queries — the architecture's whole point.
        cloud = make_cloud(small_fattree, lid_scheme="prepopulated")
        vm = cloud.boot_vm(on="l0h0")
        peers = [cloud.boot_vm(on=f"l{i}h{i}") for i in range(1, 5)]
        cm = ConnectionManager(cloud.sa)
        for p in peers:
            cm.connect(p.gid, vm.gid)
        cloud.live_migrate(vm.name, "l5h5")
        audit = cm.audit()
        assert audit.broken_count == 0
        assert cm.repair() == 0

    def test_lid_swap_emulation_collateral_damage(self, sp_fleet):
        # Why the paper could run only one VM per node: the swap breaks
        # connections of co-residents on both hypervisors.
        vm = sp_fleet.boot_vm(on="l0h0")
        bystander = sp_fleet.boot_vm(on="l0h0")
        remote = sp_fleet.boot_vm(on="l4h4")
        cm = ConnectionManager(sp_fleet.sa)
        cm.connect(remote.gid, bystander.gid)
        sp_fleet.migrate_vm_with_lid_swap(vm.name, "l5h5")
        audit = cm.audit()
        assert audit.broken_count == 1  # the bystander's connection died
