"""Evacuation under injected SMP faults: every migration rolls back or
completes — a half-moved VM or a half-routed subnet is never left behind.

Same idiom as ``tests/core/test_migration_rollback.py``, aimed at
:meth:`~repro.virt.cloud.CloudManager.evacuate` (the maintenance-drain
flexibility argument of the paper's sections V-B/VI).
"""

import numpy as np
import pytest

from repro.analysis.verification import verify_subnet
from repro.fabric.presets import scaled_fattree
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, ScriptedFault
from repro.mad.reliable import RetryPolicy
from tests.conftest import make_cloud


def evac_cloud(*, lid_scheme="dynamic", retries=8, vms_on_source=3):
    """Cloud with *vms_on_source* VMs pinned to one hypervisor."""
    cloud = make_cloud(scaled_fattree("2l-small"), lid_scheme=lid_scheme)
    cloud.sm.enable_resilience(RetryPolicy(retries=retries))
    source = sorted(cloud.hypervisors)[0]
    for _ in range(vms_on_source):
        cloud.boot_vm(on=source)
    return cloud, source


def snapshot(cloud):
    lfts = {
        sw.name: np.array(sw.lft.as_array(), copy=True)
        for sw in cloud.topology.switches
    }
    vms = {
        name: (vm.state.name, vm.hypervisor_name, vm.lid)
        for name, vm in cloud.vms.items()
    }
    return lfts, vms


@pytest.mark.parametrize("scheme", ["prepopulated", "dynamic"])
class TestEvacuateUnderFaults:
    def test_fault_free_evacuate_drains(self, scheme):
        cloud, source = evac_cloud(lid_scheme=scheme)
        reports = cloud.evacuate(source)
        assert len(reports) == 3
        assert all(r.outcome == "completed" for r in reports)
        assert not list(cloud.hypervisors[source].running_vms())
        assert verify_subnet(cloud.sm).problems() == []

    def test_lossy_evacuate_completes_with_retries(self, scheme):
        cloud, source = evac_cloud(lid_scheme=scheme, retries=16)
        cloud.sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=11, smp_drop_rate=0.1))
        )
        reports = cloud.evacuate(source)
        cloud.sm.transport.set_fault_injector(None)
        assert all(r.outcome == "completed" for r in reports)
        assert not list(cloud.hypervisors[source].running_vms())
        assert verify_subnet(cloud.sm).problems() == []

    def test_fatal_fault_rolls_back_not_corrupts(self, scheme):
        """A switch going persistently deaf mid-drain must leave each
        migration either fully applied or fully rolled back — the nth
        cut-over lets early migrations land before the fault arms."""
        cloud, source = evac_cloud(lid_scheme=scheme, retries=1)
        _, vms_before = snapshot(cloud)
        victim = cloud.topology.switches[0].name
        cloud.sm.transport.set_fault_injector(
            FaultInjector(
                FaultPlan(
                    seed=5,
                    scripted=(
                        ScriptedFault(
                            action="drop",
                            target=victim,
                            kind="lft_block",
                            nth=5,
                            count=10_000,
                        ),
                    ),
                )
            )
        )
        reports = cloud.evacuate(source)
        cloud.sm.transport.set_fault_injector(None)
        assert reports, "evacuation attempted no migrations"
        assert all(
            r.outcome in ("completed", "rolled_back") for r in reports
        )
        assert any(r.outcome == "rolled_back" for r in reports)
        for r in reports:
            vm = cloud.vms[r.vm_name]
            if r.outcome == "completed":
                assert vm.hypervisor_name == r.destination
            else:
                # rolled back: the VM never left the source
                assert vm.hypervisor_name == source
                assert vm.state.name == vms_before[r.vm_name][0]
        assert verify_subnet(cloud.sm).problems() == []

    def test_rolled_back_evacuation_restores_routing(self, scheme):
        """A dead switch kills every migration; the subnet must be
        byte-identical to its pre-evacuation state."""
        cloud, source = evac_cloud(lid_scheme=scheme, retries=1)
        lfts_before, vms_before = snapshot(cloud)
        victim = cloud.topology.switches[0].name
        cloud.sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=5, per_target_drop={victim: 1.0}))
        )
        reports = cloud.evacuate(source)
        cloud.sm.transport.set_fault_injector(None)
        assert reports
        assert all(r.outcome == "rolled_back" for r in reports)
        lfts_after, vms_after = snapshot(cloud)
        assert vms_after == vms_before
        assert all(
            np.array_equal(lfts_after[k], lfts_before[k])
            for k in lfts_before
        )
        assert verify_subnet(cloud.sm).problems() == []


class TestPartialDrain:
    def test_capacity_exhaustion_is_a_partial_drain(self):
        """Filling every other hypervisor strands the overflow on the
        source — evacuate returns the partial work instead of dying."""
        cloud = make_cloud(scaled_fattree("2l-small"), lid_scheme="dynamic")
        source = sorted(cloud.hypervisors)[0]
        for name, hyp in cloud.hypervisors.items():
            fill = 4 if name == source else 3
            for _ in range(fill):
                cloud.boot_vm(on=name)
        # one free VF per non-source node; 4 VMs to move; plenty of room
        # — now remove the slack by topping every other node up
        for name, hyp in cloud.hypervisors.items():
            if name != source:
                cloud.boot_vm(on=name)
        reports = cloud.evacuate(source)
        assert reports == []
        stranded = list(cloud.hypervisors[source].running_vms())
        assert len(stranded) == 4  # everyone stayed, still running
        assert all(vm.is_running for vm in stranded)
        assert verify_subnet(cloud.sm).problems() == []
