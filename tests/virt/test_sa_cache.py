"""Tests for the SA path-record query model and the caching scheme
(the paper's reference [10] background mechanism)."""

import pytest

from repro.errors import VirtError
from repro.fabric.addressing import make_gid
from repro.virt.sa_cache import PathRecord, SaPathCache, SubnetAdministrator


class TestSubnetAdministrator:
    def test_register_query(self):
        sa = SubnetAdministrator()
        gid = make_gid(1)
        sa.register(gid, 10)
        rec = sa.query(gid)
        assert rec.dlid == 10
        assert sa.stats.queries == 1

    def test_unknown_gid_raises(self):
        sa = SubnetAdministrator()
        with pytest.raises(VirtError):
            sa.query(make_gid(9))

    def test_update_in_place(self):
        sa = SubnetAdministrator()
        gid = make_gid(1)
        sa.register(gid, 10)
        sa.register(gid, 20)
        assert sa.query(gid).dlid == 20

    def test_unregister(self):
        sa = SubnetAdministrator()
        gid = make_gid(1)
        sa.register(gid, 10)
        sa.unregister(gid)
        with pytest.raises(VirtError):
            sa.query(gid)

    def test_invalid_record(self):
        with pytest.raises(VirtError):
            PathRecord(dgid=make_gid(1), dlid=0)


class TestSaPathCache:
    def test_first_resolve_misses_then_hits(self):
        sa = SubnetAdministrator()
        gid = make_gid(1)
        sa.register(gid, 10)
        cache = SaPathCache(sa)
        cache.resolve(gid)
        cache.resolve(gid)
        cache.resolve(gid)
        assert cache.stats.cache_misses == 1
        assert cache.stats.cache_hits == 2
        assert sa.stats.queries == 1  # only the miss reached the SA

    def test_queries_saved(self):
        sa = SubnetAdministrator()
        gid = make_gid(1)
        sa.register(gid, 10)
        cache = SaPathCache(sa)
        for _ in range(5):
            cache.resolve(gid)
        assert cache.stats.queries_saved == 4

    def test_invalidate_forces_requery(self):
        sa = SubnetAdministrator()
        gid = make_gid(1)
        sa.register(gid, 10)
        cache = SaPathCache(sa)
        cache.resolve(gid)
        cache.invalidate(gid)
        cache.resolve(gid)
        assert sa.stats.queries == 2

    def test_vswitch_migration_keeps_entry_valid(self):
        # vSwitch migration: LID unchanged => cached record stays correct.
        sa = SubnetAdministrator()
        gid = make_gid(1)
        sa.register(gid, 10)
        cache = SaPathCache(sa)
        cache.resolve(gid)
        sa.register(gid, 10)  # re-registered at same LID after migration
        assert cache.entry_still_valid(gid)

    def test_shared_port_migration_invalidates(self):
        # Shared Port: LID changes to the destination hypervisor's LID.
        sa = SubnetAdministrator()
        gid = make_gid(1)
        sa.register(gid, 10)
        cache = SaPathCache(sa)
        cache.resolve(gid)
        sa.register(gid, 99)  # LID changed
        assert not cache.entry_still_valid(gid)

    def test_size(self):
        sa = SubnetAdministrator()
        cache = SaPathCache(sa)
        for i in range(3):
            gid = make_gid(i + 1)
            sa.register(gid, i + 1)
            cache.resolve(gid)
        assert cache.size == 3

    def test_uncached_entry_invalid(self):
        sa = SubnetAdministrator()
        cache = SaPathCache(sa)
        assert not cache.entry_still_valid(make_gid(5))
