"""Tests for VMs, hypervisors and the cloud manager."""

import pytest

from repro.errors import VirtError
from repro.fabric.addressing import GuidAllocator
from repro.fabric.node import HCA
from repro.sriov.vswitch import VSwitchHCA
from repro.virt.cloud import CloudManager, PlacementPolicy
from repro.virt.hypervisor import Hypervisor
from repro.virt.vm import VirtualMachine, VmState


class TestVirtualMachine:
    def test_lid_follows_vf(self):
        guids = GuidAllocator()
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=2)
        vm = VirtualMachine("vm", guids.allocate_virtual())
        assert vm.lid is None
        vf = vsw.vf(1)
        vf.lid = 42
        vf.attach("vm")
        vm.attach_vf(vf, "h")
        assert vm.lid == 42
        assert vm.is_running

    def test_double_attach_rejected(self):
        guids = GuidAllocator()
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=2)
        vm = VirtualMachine("vm", guids.allocate_virtual())
        vm.attach_vf(vsw.vf(1), "h")
        with pytest.raises(VirtError):
            vm.attach_vf(vsw.vf(2), "h")

    def test_detach_without_vf_rejected(self):
        vm = VirtualMachine("vm", 1)
        with pytest.raises(VirtError):
            vm.detach_vf()

    def test_gid_derived_from_vguid(self):
        vm = VirtualMachine("vm", 0xABC)
        assert vm.gid.guid == 0xABC


class TestHypervisor:
    def test_capacity_tracking(self):
        guids = GuidAllocator()
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=2)
        hyp = Hypervisor("h", vsw)
        assert hyp.free_vf_count == 2 and hyp.has_capacity()
        vm = VirtualMachine("vm", guids.allocate_virtual())
        vf = vsw.first_free_vf()
        vf.attach(vm.name)
        hyp.host_vm(vm, vf)
        assert hyp.vm_count == 1
        assert hyp.free_vf_count == 1

    def test_duplicate_vm_rejected(self):
        guids = GuidAllocator()
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=2)
        hyp = Hypervisor("h", vsw)
        vm = VirtualMachine("vm", 1)
        vf = vsw.vf(1)
        vf.attach("vm")
        hyp.host_vm(vm, vf)
        with pytest.raises(VirtError):
            hyp.host_vm(vm, vsw.vf(2))

    def test_evict_unknown_rejected(self):
        guids = GuidAllocator()
        hyp = Hypervisor("h", VSwitchHCA(HCA("h"), guids, num_vfs=1))
        with pytest.raises(VirtError):
            hyp.evict_vm(VirtualMachine("ghost", 1))


class TestPlacementPolicy:
    def _hyps(self, frees):
        guids = GuidAllocator()
        out = []
        for i, free in enumerate(frees):
            vsw = VSwitchHCA(HCA(f"h{i}"), guids, num_vfs=4)
            hyp = Hypervisor(f"h{i}", vsw)
            for j in range(4 - free):
                vsw.first_free_vf().attach(f"pad{i}_{j}")
            out.append(hyp)
        return out

    def test_spread_prefers_emptiest(self):
        hyps = self._hyps([1, 4, 2])
        assert PlacementPolicy("spread").choose(hyps).name == "h1"

    def test_pack_prefers_fullest(self):
        hyps = self._hyps([1, 4, 2])
        assert PlacementPolicy("pack").choose(hyps).name == "h0"

    def test_first_fit(self):
        hyps = self._hyps([1, 4, 2])
        assert PlacementPolicy("first-fit").choose(hyps).name == "h0"

    def test_empty_candidates_rejected(self):
        with pytest.raises(VirtError):
            PlacementPolicy("spread").choose([])

    def test_unknown_policy_rejected(self):
        hyps = self._hyps([1])
        with pytest.raises(VirtError):
            PlacementPolicy("random").choose(hyps)


class TestCloudManager:
    def test_boot_and_stop(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm()
        assert vm.is_running
        assert cloud.running_vm_count == 1
        cloud.stop_vm(vm.name)
        assert cloud.running_vm_count == 0
        assert vm.name not in cloud.vms

    def test_boot_on_specific_node(self, prepopulated_cloud):
        vm = prepopulated_cloud.boot_vm(on="l2h2")
        assert vm.hypervisor_name == "l2h2"

    def test_boot_on_full_node_rejected(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        for _ in range(4):
            cloud.boot_vm(on="l0h0")
        with pytest.raises(VirtError):
            cloud.boot_vm(on="l0h0")

    def test_names_unique(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        cloud.boot_vm(name="mine")
        with pytest.raises(VirtError):
            cloud.boot_vm(name="mine")

    def test_total_capacity(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        assert cloud.total_capacity == 4 * len(cloud.hypervisors)

    def test_sa_records_follow_vms(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm(on="l0h0")
        rec = cloud.sa.query(vm.gid)
        assert rec.dlid == vm.lid
        cloud.live_migrate(vm.name, "l4h4")
        rec2 = cloud.sa.query(vm.gid)
        assert rec2.dlid == vm.lid  # same LID after migration (vSwitch!)

    def test_stop_vm_unregisters_sa(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        vm = cloud.boot_vm()
        gid = vm.gid
        cloud.stop_vm(vm.name)
        with pytest.raises(VirtError):
            cloud.sa.query(gid)

    def test_adopting_twice_rejected(self, small_fattree):
        cloud = CloudManager(small_fattree.topology, built=small_fattree)
        hca = small_fattree.topology.hcas[0]
        cloud.adopt_hca_as_hypervisor(hca)
        with pytest.raises(VirtError):
            cloud.adopt_hca_as_hypervisor(hca)

    def test_unknown_scheme_rejected(self, small_fattree):
        with pytest.raises(VirtError):
            CloudManager(
                small_fattree.topology,
                built=small_fattree,
                lid_scheme="magic",
            )

    def test_fragmentation_metric(self, prepopulated_cloud):
        cloud = prepopulated_cloud
        assert cloud.fragmentation() == 0.0
        cloud.boot_vm(on="l0h0")  # partially used node
        assert cloud.fragmentation() == 1.0
        for _ in range(3):
            cloud.boot_vm(on="l0h0")  # now full
        assert cloud.fragmentation() == 0.0

    def test_dynamic_cloud_consumes_lids_lazily(self, dynamic_cloud):
        cloud = dynamic_cloud
        topo = cloud.topology
        base = topo.num_switches + topo.num_hcas
        assert cloud.sm.lids_consumed == base
        cloud.boot_vm()
        assert cloud.sm.lids_consumed == base + 1


class TestLeafAffinity:
    def test_second_vm_lands_on_same_leaf(self, small_fattree):
        from repro.virt.cloud import CloudManager

        cloud = CloudManager(
            small_fattree.topology,
            built=small_fattree,
            lid_scheme="prepopulated",
            num_vfs=2,
            placement="leaf-affinity",
        )
        cloud.adopt_all_hcas()
        cloud.bring_up_subnet()
        a = cloud.boot_vm()
        b = cloud.boot_vm()
        leaf = lambda vm: cloud.hypervisors[
            vm.hypervisor_name
        ].uplink_port.remote.node
        assert leaf(a) is leaf(b)

    def test_affinity_enables_cheap_migrations(self, small_fattree):
        # Tenants packed per leaf => their migrations stay intra-leaf and
        # (with the minimal variant) cost one SMP each.
        from repro.virt.cloud import CloudManager

        cloud = CloudManager(
            small_fattree.topology,
            built=small_fattree,
            lid_scheme="prepopulated",
            num_vfs=2,
            placement="leaf-affinity",
        )
        cloud.adopt_all_hcas()
        cloud.bring_up_subnet()
        cloud.orchestrator.minimal_intra_leaf = True
        vms = [cloud.boot_vm() for _ in range(4)]
        vm = vms[0]
        src = cloud.hypervisors[vm.hypervisor_name]
        sibling = next(
            h
            for h in cloud.hypervisors.values()
            if h is not src
            and h.uplink_port.remote.node is src.uplink_port.remote.node
            and h.has_capacity()
        )
        report = cloud.live_migrate(vm.name, sibling.name)
        assert report.skyline.intra_leaf
        assert report.switches_updated == 1

    def test_spills_to_new_leaf_when_full(self, small_fattree):
        from repro.virt.cloud import CloudManager

        cloud = CloudManager(
            small_fattree.topology,
            built=small_fattree,
            lid_scheme="prepopulated",
            num_vfs=1,
            placement="leaf-affinity",
        )
        cloud.adopt_all_hcas()
        cloud.bring_up_subnet()
        # 6 hypervisors per leaf x 1 VF: the 7th VM must change leaves.
        vms = [cloud.boot_vm() for _ in range(7)]
        leaves = {
            cloud.hypervisors[vm.hypervisor_name].uplink_port.remote.node
            for vm in vms
        }
        assert len(leaves) == 2
