"""Tests for the AST determinism linter (tools.lint)."""

from pathlib import Path

import pytest

from tools.lint import RULES, lint_paths, lint_source, main


def rules_of(source, path):
    return [v.rule for v in lint_source(source, path)]


CRITICAL = "src/repro/sm/example.py"
RELAXED = "src/repro/workloads/example.py"
OBS = "src/repro/obs/example.py"
COST = "src/repro/core/example.py"


class TestDet001WallClock:
    def test_time_time_flagged(self):
        assert rules_of("import time\nt = time.time()\n", RELAXED) == [
            "DET001"
        ]

    def test_datetime_now_flagged(self):
        src = "import datetime\nd = datetime.datetime.now()\n"
        assert rules_of(src, RELAXED) == ["DET001"]
        src = "from datetime import datetime\nd = datetime.now()\n"
        assert rules_of(src, RELAXED) == ["DET001"]

    def test_perf_counter_allowed(self):
        src = "import time\nt = time.perf_counter()\nm = time.monotonic()\n"
        assert rules_of(src, RELAXED) == []

    def test_obs_layer_exempt(self):
        assert rules_of("import time\nt = time.time()\n", OBS) == []


class TestDet002UnseededRng:
    def test_module_level_random_flagged(self):
        assert rules_of("import random\nx = random.random()\n", RELAXED) == [
            "DET002"
        ]
        assert rules_of(
            "import random\nrandom.seed(3)\n", RELAXED
        ) == ["DET002"]

    def test_seeded_instance_allowed(self):
        src = "import random\nrng = random.Random(7)\nx = rng.random()\n"
        assert rules_of(src, RELAXED) == []

    def test_numpy_global_flagged_default_rng_allowed(self):
        assert rules_of(
            "import numpy as np\nx = np.random.rand(3)\n", RELAXED
        ) == ["DET002"]
        assert (
            rules_of(
                "import numpy as np\nrng = np.random.default_rng(5)\n",
                RELAXED,
            )
            == []
        )


class TestDet003SetIteration:
    def test_for_over_set_call_flagged_in_critical_module(self):
        src = "for x in set(items):\n    use(x)\n"
        assert rules_of(src, CRITICAL) == ["DET003"]

    def test_set_union_flagged(self):
        src = "out = [x for x in set(a) | set(b)]\n"
        assert rules_of(src, CRITICAL) == ["DET003"]

    def test_sorted_wrapper_allowed(self):
        src = "for x in sorted(set(a) | set(b)):\n    use(x)\n"
        assert rules_of(src, CRITICAL) == []

    def test_non_critical_module_not_flagged(self):
        src = "for x in set(items):\n    use(x)\n"
        assert rules_of(src, RELAXED) == []

    def test_set_literal_and_comprehension_flagged(self):
        assert rules_of("for x in {1, 2, 3}:\n    use(x)\n", CRITICAL) == [
            "DET003"
        ]
        assert rules_of(
            "for x in {y for y in items}:\n    use(x)\n", CRITICAL
        ) == ["DET003"]


class TestDet005TupleKeyedDictIteration:
    ANALYSIS = "src/repro/analysis/static/example.py"

    def test_nested_tuple_items_target_flagged(self):
        src = "for (a, b), v in d.items():\n    use(a, b, v)\n"
        assert rules_of(src, CRITICAL) == ["DET005"]
        # The analysis layer is in scope too (reports must be stable).
        assert rules_of(src, self.ANALYSIS) == ["DET005"]

    def test_tuple_keys_target_flagged(self):
        src = "for a, b in d.keys():\n    use(a, b)\n"
        assert rules_of(src, CRITICAL) == ["DET005"]

    def test_comprehension_flagged(self):
        src = "out = [v for (a, b), v in d.items()]\n"
        assert rules_of(src, CRITICAL) == ["DET005"]

    def test_sorted_wrapper_allowed(self):
        src = "for (a, b), v in sorted(d.items()):\n    use(a)\n"
        assert rules_of(src, CRITICAL) == []

    def test_flat_items_target_allowed(self):
        src = "for k, v in d.items():\n    use(k, v)\n"
        assert rules_of(src, CRITICAL) == []

    def test_tuple_valued_dict_allowed(self):
        # The *value* being a tuple says nothing about key order.
        src = "for k, (x, y) in d.items():\n    use(k, x, y)\n"
        assert rules_of(src, CRITICAL) == []

    def test_non_critical_module_allowed(self):
        src = "for (a, b), v in d.items():\n    use(a)\n"
        assert rules_of(src, RELAXED) == []

    def test_noqa_suppresses(self):
        src = "for (a, b), v in d.items():  # noqa: DET005\n    use(a)\n"
        assert rules_of(src, CRITICAL) == []


class TestDet004FloatEquality:
    def test_float_literal_eq_flagged_in_cost_model(self):
        assert rules_of("ok = cost == 0.5\n", COST) == ["DET004"]
        assert rules_of("ok = 1.5 != cost\n", COST) == ["DET004"]

    def test_int_eq_allowed(self):
        assert rules_of("ok = count == 5\n", COST) == []

    def test_float_comparison_outside_scope_allowed(self):
        assert rules_of("ok = cost == 0.5\n", CRITICAL) == []

    def test_negative_float_flagged(self):
        assert rules_of("ok = cost == -1.0\n", COST) == ["DET004"]


class TestSuppression:
    def test_targeted_noqa_suppresses(self):
        src = "import time\nt = time.time()  # noqa: DET001\n"
        assert rules_of(src, RELAXED) == []

    def test_unrelated_noqa_does_not_suppress(self):
        src = "import time\nt = time.time()  # noqa: DET002\n"
        assert rules_of(src, RELAXED) == ["DET001"]

    def test_blanket_noqa_suppresses(self):
        src = "import time\nt = time.time()  # noqa\n"
        assert rules_of(src, RELAXED) == []


class TestRunner:
    def test_src_repro_is_clean(self):
        tree = Path(__file__).resolve().parent.parent / "src" / "repro"
        violations = lint_paths([tree])
        assert violations == [], [v.render() for v in violations]

    def test_violation_render_is_clickable(self):
        out = lint_source("import time\nt = time.time()\n", RELAXED)
        assert out[0].render().startswith(f"{RELAXED}:2:")

    def test_cli_exit_codes(self, tmp_path, capsys):
        assert main(["--list-rules"]) == 0
        listing = capsys.readouterr().out
        for rule in RULES:
            assert rule in listing
        dirty = tmp_path / "repro" / "sm" / "bad.py"
        dirty.parent.mkdir(parents=True)
        dirty.write_text("for x in set(a):\n    pass\n", encoding="utf-8")
        assert main([str(dirty)]) == 1
        assert "DET003" in capsys.readouterr().out
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        assert main([str(clean)]) == 0


@pytest.mark.parametrize("rule", sorted(RULES))
def test_every_rule_has_a_description(rule):
    assert RULES[rule]
