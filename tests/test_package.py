"""Package-level tests: public API surface, error hierarchy, constants."""

import pytest

import repro
from repro import errors
from repro.constants import (
    LFT_BLOCK_SIZE,
    LFT_BLOCKS_FULL_SUBNET,
    LFT_DROP_PORT,
    MAX_UNICAST_LID,
    PAPER_SWITCH_RADIX,
    UNICAST_LID_COUNT,
)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_subpackage_exports_resolve(self):
        for pkg in (
            repro.fabric,
            repro.mad,
            repro.sm,
            repro.sriov,
            repro.core,
            repro.virt,
            repro.sim,
            repro.workloads,
            repro.analysis,
        ):
            for name in pkg.__all__:
                assert hasattr(pkg, name), f"{pkg.__name__}.{name} missing"

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_docstrings_everywhere(self):
        # Every public symbol re-exported at package level is documented.
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"repro.{name} lacks a docstring"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj.__module__ == "repro.errors"
            ):
                assert issubclass(obj, errors.ReproError)

    def test_specific_parentage(self):
        assert issubclass(errors.LidExhaustedError, errors.AddressingError)
        assert issubclass(errors.MigrationError, errors.VirtError)
        assert issubclass(errors.UnreachableLidError, errors.RoutingError)

    def test_catchable_as_repro_error(self):
        from repro.fabric.addressing import LidAllocator

        alloc = LidAllocator(first=1, last=1)
        alloc.allocate()
        with pytest.raises(errors.ReproError):
            alloc.allocate()


class TestConstants:
    def test_lid_space(self):
        assert MAX_UNICAST_LID == 0xBFFF
        assert UNICAST_LID_COUNT == 49151

    def test_lft_block_invariants(self):
        assert LFT_BLOCK_SIZE == 64
        assert LFT_BLOCKS_FULL_SUBNET * LFT_BLOCK_SIZE >= MAX_UNICAST_LID + 1
        assert LFT_BLOCKS_FULL_SUBNET == 768

    def test_drop_port(self):
        assert LFT_DROP_PORT == 255

    def test_paper_radix(self):
        assert PAPER_SWITCH_RADIX == 36
