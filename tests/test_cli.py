"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig7_flags(self):
        args = build_parser().parse_args(
            ["fig7", "--paper-scale", "--engines", "minhop"]
        )
        assert args.paper_scale and args.engines == "minhop"

    def test_demo_defaults(self):
        args = build_parser().parse_args(["migrate-demo"])
        assert args.scheme == "prepopulated"
        assert args.profile == "2l-small"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for token in ("216", "336960", "3240", "99.04%"):
            assert token in out

    def test_fig7_minhop_only(self, capsys):
        assert main(["fig7", "--engines", "minhop"]) == 0
        out = capsys.readouterr().out
        assert "minhop" in out
        assert "vswitch-reconfig" in out
        assert "0.0000s" in out

    def test_cost_model(self, capsys):
        assert main(["cost-model"]) == 0
        out = capsys.readouterr().out
        assert "11664" in out and "ratio" in out

    @pytest.mark.parametrize("scheme", ["prepopulated", "dynamic"])
    def test_migrate_demo(self, capsys, scheme):
        assert main(["migrate-demo", "--scheme", scheme]) == 0
        out = capsys.readouterr().out
        assert "PCt=0" in out
        assert "LID kept=True" in out

    def test_migrate_demo_span_tree_cross_check(self, capsys):
        assert main(["migrate-demo", "--scheme", "dynamic"]) == 0
        out = capsys.readouterr().out
        assert "span tree:" in out
        assert "migration @" in out
        assert "lft_copy @" in out
        # The acceptance witness: recorded events == n'·m' == the report.
        cross = next(
            line for line in out.splitlines() if line.startswith("cross-check")
        )
        import re

        nums = re.findall(
            r"events=(\d+).*?=(\d+), reconfig report=(\d+)", cross
        )[0]
        assert nums[0] == nums[1] == nums[2]


class TestObservabilityCommands:
    def test_record_then_trace(self, capsys, tmp_path):
        rec = tmp_path / "run"
        assert main(["migrate-demo", "--record", str(rec)]) == 0
        capsys.readouterr()
        assert (rec / "trace.jsonl").exists()
        assert (rec / "metrics.prom").exists()
        assert (rec / "metrics.json").exists()

        assert main(["trace", str(rec)]) == 0
        out = capsys.readouterr().out
        assert "span tree:" in out
        assert "migration @" in out
        assert "timeline:" in out
        assert "| smp" in out

    def test_trace_tree_only(self, capsys, tmp_path):
        rec = tmp_path / "run"
        assert main(["table1", "--record", str(rec)]) == 0
        capsys.readouterr()
        assert main(["trace", str(rec), "--tree-only"]) == 0
        out = capsys.readouterr().out
        assert "timeline:" not in out

    def test_trace_missing_run(self, capsys, tmp_path):
        assert main(["trace", str(tmp_path / "nope")]) == 1
        assert "no recorded run" in capsys.readouterr().err

    def test_trace_corrupt_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "run"}\ngarbage\n', encoding="utf-8")
        assert main(["trace", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "cannot replay" in err
        assert "not valid JSON" in err

    def test_metrics_wraps_command(self, capsys):
        assert main(["metrics", "migrate-demo", "--scheme", "dynamic"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_smp_total counter" in out
        assert "repro_migrations_total" in out
        assert 'repro_vswitch_lft_smps{mode="copy"}' in out

    def test_metrics_prints_recorded_run(self, capsys, tmp_path):
        rec = tmp_path / "run"
        assert main(["migrate-demo", "--record", str(rec)]) == 0
        capsys.readouterr()
        assert main(["metrics", str(rec)]) == 0
        out = capsys.readouterr().out
        assert "# TYPE" in out

    def test_metrics_rejects_unknown_target(self, capsys):
        assert main(["metrics", "not-a-command"]) == 1
        assert "neither" in capsys.readouterr().err


class TestCheckFabric:
    def test_single_cell_clean(self, capsys):
        assert main(["check-fabric", "--preset", "2l-small", "--engine", "minhop"]) == 0
        out = capsys.readouterr().out
        assert "2l-small x minhop" in out
        assert "all clean" in out

    def test_full_matrix_covers_required_engines(self, capsys):
        assert main(["check-fabric"]) == 0
        out = capsys.readouterr().out
        for engine in ("minhop", "updn", "ftree", "dor"):
            assert f"x {engine}" in out
        assert "all clean" in out

    def test_injected_fault_exits_nonzero_with_findings(self, capsys):
        rc = main(["check-fabric", "--preset", "ring6", "--inject-fault"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "injected fault" in out
        assert "LFT001" in out and "CDG001" in out
        assert "FAILED" in out

    def test_unknown_preset_is_usage_error(self, capsys):
        assert main(["check-fabric", "--preset", "moebius"]) == 2
        assert "unknown preset" in capsys.readouterr().err

    def test_record_writes_static_metrics(self, capsys, tmp_path):
        rec = tmp_path / "run"
        args = ["check-fabric", "--preset", "ring6", "--record", str(rec)]
        assert main(args) == 0
        capsys.readouterr()
        prom = (rec / "metrics.prom").read_text(encoding="utf-8")
        assert "repro_static_checks_total" in prom
        assert "repro_static_fabric_ok" in prom
