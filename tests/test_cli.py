"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig7_flags(self):
        args = build_parser().parse_args(
            ["fig7", "--paper-scale", "--engines", "minhop"]
        )
        assert args.paper_scale and args.engines == "minhop"

    def test_demo_defaults(self):
        args = build_parser().parse_args(["migrate-demo"])
        assert args.scheme == "prepopulated"
        assert args.profile == "2l-small"


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        for token in ("216", "336960", "3240", "99.04%"):
            assert token in out

    def test_fig7_minhop_only(self, capsys):
        assert main(["fig7", "--engines", "minhop"]) == 0
        out = capsys.readouterr().out
        assert "minhop" in out
        assert "vswitch-reconfig" in out
        assert "0.0000s" in out

    def test_cost_model(self, capsys):
        assert main(["cost-model"]) == 0
        out = capsys.readouterr().out
        assert "11664" in out and "ratio" in out

    @pytest.mark.parametrize("scheme", ["prepopulated", "dynamic"])
    def test_migrate_demo(self, capsys, scheme):
        assert main(["migrate-demo", "--scheme", scheme]) == 0
        out = capsys.readouterr().out
        assert "PCt=0" in out
        assert "LID kept=True" in out
