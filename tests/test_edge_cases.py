"""Edge-case coverage for branches the mainline flows never hit."""

import numpy as np
import pytest

from repro.constants import LFT_UNSET
from repro.errors import (
    RoutingError,
    SimulationError,
    TopologyError,
    UnreachableLidError,
)
from repro.fabric.presets import scaled_fattree
from repro.fabric.topology import Topology
from repro.mad.smp import Smp, SmpKind, SmpMethod
from repro.mad.transport import SmpTransport
from repro.sm.lft_distribution import LftDistributor
from repro.sm.routing.base import RoutingRequest
from repro.sm.subnet_manager import SubnetManager


class TestTransportEdges:
    def test_sm_on_switch_zero_base_hop(self):
        topo = Topology("t")
        s0 = topo.add_switch("s0", 4)
        s1 = topo.add_switch("s1", 4)
        h = topo.add_hca("h")
        topo.connect(s0, 1, s1, 1)
        topo.connect(s1, 2, h, 1)
        tr = SmpTransport(topo, sm_node=s0)
        assert tr.hops_to(s0) == 0
        assert tr.hops_to(s1) == 1
        assert tr.hops_to(h) == 2

    def test_unreachable_switch_rejected(self):
        topo = Topology("t")
        s0 = topo.add_switch("s0", 4)
        s1 = topo.add_switch("s1", 4)  # island
        topo.add_hca("h")
        topo.connect(s0, 1, "h", 1)
        tr = SmpTransport(topo)
        with pytest.raises(TopologyError):
            tr.hops_to(s1)

    def test_uncabled_sm_host_rejected(self):
        topo = Topology("t")
        topo.add_switch("s0", 4)
        topo.add_hca("h")  # no cable
        tr = SmpTransport(topo)
        with pytest.raises(TopologyError):
            tr.hops_to(topo.node("s0"))

    def test_no_hca_for_default_sm(self):
        topo = Topology("t")
        topo.add_switch("s0", 4)
        tr = SmpTransport(topo)
        with pytest.raises(TopologyError):
            _ = tr.sm_node

    def test_distance_cache_invalidation(self, small_fattree):
        topo = small_fattree.topology
        tr = SmpTransport(topo)
        before = tr.hops_to(topo.switches[5])
        # Cut a cable the cached BFS used; without invalidation the stale
        # distances would persist.
        link = next(
            l
            for l in topo.links
            if l.a.node.is_switch and l.b.node.is_switch
        )
        link.disconnect()
        topo.invalidate_fabric_view()
        tr.invalidate_distances()
        after = tr.hops_to(topo.switches[5])
        assert after >= before


class TestTracePathEdges:
    @pytest.fixture
    def routed(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        sm.initial_configure(with_discovery=False)
        req = RoutingRequest.from_topology(
            small_fattree.topology, built=small_fattree
        )
        return sm, req

    def test_unprogrammed_raises_unreachable(self, routed):
        sm, req = routed
        with pytest.raises(UnreachableLidError):
            sm.current_tables.trace_path(req, 0, 40000)

    def test_wrong_endpoint_detected(self, routed):
        sm, req = routed
        t0, t1 = req.terminals[0], req.terminals[1]
        tables = sm.current_tables
        # Misprogram LID t0 to exit at t1's port on t1's leaf.
        tables.ports[:, t0.lid] = tables.ports[:, t1.lid]
        with pytest.raises(RoutingError):
            tables.trace_path(req, t1.switch_index, t0.lid)

    def test_loop_detected(self, routed):
        sm, req = routed
        tables = sm.current_tables
        lid = req.terminals[0].lid
        view = req.view
        # Point two switches at each other.
        a = 0
        b, port_ab = next(iter(view.neighbors(a)))
        port_ba = next(p for nb, p in view.neighbors(b) if nb == a)
        tables.ports[a, lid] = port_ab
        tables.ports[b, lid] = port_ba
        with pytest.raises(RoutingError, match="loop"):
            tables.trace_path(req, a, lid)

    def test_dangling_port_detected(self, routed):
        sm, req = routed
        tables = sm.current_tables
        lid = req.terminals[0].lid
        tables.ports[0, lid] = 33  # nothing cabled there
        with pytest.raises(RoutingError, match="leads nowhere"):
            tables.trace_path(req, 0, lid)


class TestDistributorEdges:
    def test_stale_entries_above_new_top_lid(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        sm.initial_configure(with_discovery=False)
        # Plant a stale entry far above the routed LID range.
        sw = small_fattree.topology.switches[0]
        sw.lft.set(5000, 3)
        dist = LftDistributor(small_fattree.topology, sm.transport)
        report = dist.distribute(sm.current_tables)
        # The distributor must clear the stale block, not ignore it.
        assert sw.lft.get(5000) == LFT_UNSET
        assert report.smps_sent >= 1

    def test_bad_pipeline_window(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        with pytest.raises(RoutingError):
            LftDistributor(
                small_fattree.topology, sm.transport, pipeline_window=0
            )


class TestEngineGuards:
    def test_engine_running_twice_rejected(self):
        from repro.sim.engine import SimulationEngine

        eng = SimulationEngine()

        def nested():
            with pytest.raises(SimulationError):
                eng.run()

        eng.schedule(1.0, nested)
        eng.run()

    def test_request_requires_lids(self, small_fattree):
        with pytest.raises(RoutingError):
            RoutingRequest.from_topology(small_fattree.topology)
