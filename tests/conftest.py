"""Shared fixtures: small topologies, subnet managers and clouds."""

from __future__ import annotations

import pytest

from repro.fabric.builders.generic import build_ring, build_single_switch
from repro.fabric.presets import scaled_fattree
from repro.obs import reset_hub
from repro.sm.routing.base import RoutingRequest
from repro.sm.subnet_manager import SubnetManager
from repro.virt.cloud import CloudManager


@pytest.fixture(autouse=True)
def fresh_obs_hub():
    """Every test starts with an empty observability hub."""
    reset_hub()
    yield
    reset_hub()


@pytest.fixture
def small_fattree():
    """2-level scaled fat-tree: 36 hosts, 12 switches, 6 roots."""
    return scaled_fattree("2l-small")


@pytest.fixture
def small_3l_fattree():
    """3-level scaled fat-tree: 216 hosts, 108 switches."""
    return scaled_fattree("3l-small")


@pytest.fixture
def single_switch():
    """One switch, 4 hosts."""
    return build_single_switch(4)


@pytest.fixture
def ring():
    """4-switch ring with 2 hosts each (cyclic topology)."""
    return build_ring(4, 2)


@pytest.fixture
def routed_fattree(small_fattree):
    """Small fat-tree with LIDs assigned and minhop routing distributed."""
    sm = SubnetManager(small_fattree.topology, engine="minhop", built=small_fattree)
    sm.initial_configure(with_discovery=False)
    request = RoutingRequest.from_topology(
        small_fattree.topology, built=small_fattree
    )
    return small_fattree, sm, request


def make_cloud(built, *, lid_scheme="prepopulated", num_vfs=4, **kw):
    """Cloud on *built*, all HCAs adopted, subnet brought up."""
    cloud = CloudManager(
        built.topology, built=built, lid_scheme=lid_scheme, num_vfs=num_vfs, **kw
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    return cloud


@pytest.fixture
def prepopulated_cloud(small_fattree):
    """Running cloud with the prepopulated scheme."""
    return make_cloud(small_fattree, lid_scheme="prepopulated")


@pytest.fixture
def dynamic_cloud(small_fattree):
    """Running cloud with the dynamic scheme."""
    return make_cloud(small_fattree, lid_scheme="dynamic")
