"""Sweep mechanics: batching/coalescing, op flows, timeouts, backoff."""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mad.reliable import RetryPolicy
from repro.obs.hub import get_hub
from repro.service import ControlPlaneService, TenantQuota


def service_over(cloud, **kw):
    kw.setdefault("default_quota", TenantQuota(max_vms=16, max_vfs=16))
    return ControlPlaneService(cloud, **kw)


class TestCoalescing:
    def test_batch_applies_in_one_sweep(self, dynamic_cloud):
        svc = service_over(dynamic_cloud, batch_size=8)
        for _ in range(8):
            svc.submit("t1", "boot")
        svc.drain()
        assert svc.stats.sweeps == 1
        assert svc.stats.applied_requests == 8
        assert svc.stats.coalescing_ratio == 8.0

    def test_batched_boots_cost_fewer_smps_than_serial(self):
        from repro.fabric.presets import scaled_fattree
        from tests.conftest import make_cloud

        batched = service_over(
            make_cloud(scaled_fattree("2l-small"), lid_scheme="dynamic"),
            batch_size=8,
        )
        for _ in range(8):
            batched.submit("t1", "boot")
        batched.drain()

        serial = service_over(
            make_cloud(scaled_fattree("2l-small"), lid_scheme="dynamic"),
            batch_size=1,
        )
        for _ in range(8):
            serial.submit("t1", "boot")
        serial.drain()

        assert batched.stats.sweeps < serial.stats.sweeps
        assert batched.stats.lft_smps <= serial.stats.lft_smps
        assert batched.stats.ideal_lft_smps == serial.stats.ideal_lft_smps
        assert batched.stats.smp_coalescing_ratio >= 1.0

    def test_mixed_batch_splits_boots_from_others(self, dynamic_cloud):
        svc = service_over(dynamic_cloud, batch_size=8)
        svc.submit("t1", "boot")
        svc.submit("t1", "boot")
        svc.drain()
        svc.submit("t1", "boot")
        svc.submit("t1", "stop", name="t1-vm1")
        report = svc.pump()
        assert report.applied == 2
        assert report.completed == 2
        assert "t1-vm1" not in dynamic_cloud.vms
        assert "t1-vm3" in dynamic_cloud.vms


class TestOpFlows:
    def test_boot_response_names_placement(self, dynamic_cloud):
        svc = service_over(dynamic_cloud)
        svc.submit("t1", "boot", request_id="r1")
        svc.drain()
        outcome = svc.response_for("r1")
        assert outcome.status == "completed"
        vm = dynamic_cloud.vms["t1-vm1"]
        assert vm.hypervisor_name in outcome.detail
        assert vm.tenant == "t1"
        assert vm.lid is not None

    def test_migrate_moves_to_bound_dest(self, dynamic_cloud):
        svc = service_over(dynamic_cloud)
        svc.submit("t1", "boot")
        svc.drain()
        src = dynamic_cloud.vms["t1-vm1"].hypervisor_name
        svc.submit("t1", "migrate", request_id="r-mig", name="t1-vm1")
        svc.drain()
        outcome = svc.response_for("r-mig")
        assert outcome.status == "completed"
        assert dynamic_cloud.vms["t1-vm1"].hypervisor_name != src

    def test_evacuate_drains_hypervisor(self, dynamic_cloud):
        svc = service_over(dynamic_cloud)
        hyp_name = sorted(dynamic_cloud.hypervisors)[0]
        for _ in range(3):
            svc.submit("t1", "boot", on=hyp_name)
        svc.drain()
        hyp = dynamic_cloud.hypervisors[hyp_name]
        assert len(list(hyp.running_vms())) == 3
        svc.submit("t1", "evacuate", request_id="r-evac", hypervisor=hyp_name)
        svc.drain()
        outcome = svc.response_for("r-evac")
        assert outcome.status == "completed"
        assert "drained" in outcome.detail
        assert not list(hyp.running_vms())
        assert len(dynamic_cloud.vms) == 3  # still running elsewhere

    def test_boot_on_full_hypervisor_fails_with_capacity(self, dynamic_cloud):
        svc = service_over(dynamic_cloud)
        hyp_name = sorted(dynamic_cloud.hypervisors)[0]
        for _ in range(4):  # num_vfs=4 fills the node
            svc.submit("t1", "boot", on=hyp_name)
        svc.drain()
        svc.submit("t1", "boot", request_id="r-full", on=hyp_name)
        svc.drain()
        outcome = svc.response_for("r-full")
        assert outcome.status == "failed"
        assert "capacity" in outcome.detail
        assert outcome.retry_after_s is not None  # retryable failure


class TestTimeouts:
    def test_queued_deadline_expires_explicitly(self, dynamic_cloud):
        svc = service_over(dynamic_cloud, request_timeout_s=0.25)
        svc.submit("t1", "boot", request_id="r-late")
        get_hub().advance(1.0)  # sim time passes while queued
        report = svc.pump()
        assert report.timed_out == 1
        outcome = svc.response_for("r-late")
        assert outcome.status == "timed_out"
        assert "while queued" in outcome.detail
        assert outcome.retry_after_s is not None
        assert svc.stats.timed_out == 1
        assert "t1-vm1" not in dynamic_cloud.vms

    def test_transport_faults_exhaust_into_timed_out(self, dynamic_cloud):
        # Transactional distribution turns silent SMP loss into a raised
        # TransportError (read-back verification); rate 1.0 means no
        # retry budget can save the boot.
        dynamic_cloud.sm.enable_resilience(RetryPolicy(retries=1))
        dynamic_cloud.sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=7, smp_drop_rate=1.0))
        )
        svc = service_over(
            dynamic_cloud,
            retry_policy=RetryPolicy(retries=2),
            request_timeout_s=100.0,
        )
        svc.submit("t1", "boot", request_id="r-dark")
        svc.drain()
        outcome = svc.response_for("r-dark")
        assert outcome.status == "timed_out"
        assert "transport" in outcome.detail
        assert svc.pending_accounted() == 0
        # the failed boot rolled back: no half-created VM
        assert "t1-vm1" not in dynamic_cloud.vms

    def test_retry_backoff_charges_sim_clock(self, dynamic_cloud):
        dynamic_cloud.sm.enable_resilience(RetryPolicy(retries=1))
        dynamic_cloud.sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=7, smp_drop_rate=1.0))
        )
        svc = service_over(
            dynamic_cloud,
            retry_policy=RetryPolicy(retries=3),
            request_timeout_s=1000.0,
        )
        svc.submit("t1", "boot")
        started = get_hub().now()
        svc.drain()
        waited = get_hub().now() - started
        assert waited >= sum(RetryPolicy(retries=3).waits())
