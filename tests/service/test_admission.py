"""Admission control: quotas, bounded queue, shedding, idempotency."""

import pytest

from repro.errors import ServiceError
from repro.obs.hub import get_hub
from repro.service import ControlPlaneService, TenantQuota


def service_over(cloud, **kw):
    kw.setdefault("default_quota", TenantQuota(max_vms=16, max_vfs=16))
    return ControlPlaneService(cloud, **kw)


class TestQuotas:
    def test_boot_quota_counts_queued_boots(self, dynamic_cloud):
        svc = service_over(
            dynamic_cloud, default_quota=TenantQuota(max_vms=2, max_vfs=2)
        )
        assert svc.submit("t1", "boot").status == "accepted"
        assert svc.submit("t1", "boot").status == "accepted"
        third = svc.submit("t1", "boot")
        assert third.status == "rejected_quota"
        assert third.retry_after_s is not None and third.retry_after_s > 0
        assert third.retryable
        assert svc.stats.rejected_quota == 1

    def test_boot_quota_counts_running_vms(self, dynamic_cloud):
        svc = service_over(
            dynamic_cloud, default_quota=TenantQuota(max_vms=2, max_vfs=2)
        )
        svc.submit("t1", "boot")
        svc.submit("t1", "boot")
        svc.drain()
        assert svc.stats.completed == 2
        assert svc.submit("t1", "boot").status == "rejected_quota"

    def test_quota_is_per_tenant(self, dynamic_cloud):
        svc = service_over(
            dynamic_cloud, default_quota=TenantQuota(max_vms=1, max_vfs=1)
        )
        assert svc.submit("t1", "boot").status == "accepted"
        assert svc.submit("t1", "boot").status == "rejected_quota"
        assert svc.submit("t2", "boot").status == "accepted"

    def test_named_tenant_quota_overrides_default(self, dynamic_cloud):
        svc = service_over(
            dynamic_cloud,
            quotas={"vip": TenantQuota(max_vms=3, max_vfs=3)},
            default_quota=TenantQuota(max_vms=1, max_vfs=1),
        )
        assert svc.quota_for("vip").max_vms == 3
        assert svc.quota_for("other").max_vms == 1

    def test_migrations_in_flight_capped(self, dynamic_cloud):
        svc = service_over(
            dynamic_cloud,
            default_quota=TenantQuota(
                max_vms=8, max_vfs=8, max_migrations_in_flight=1
            ),
        )
        svc.submit("t1", "boot")
        svc.submit("t1", "boot")
        svc.drain()
        first = svc.submit("t1", "migrate", name="t1-vm1")
        second = svc.submit("t1", "migrate", name="t1-vm2")
        assert first.status == "accepted"
        assert second.status == "rejected_quota"
        assert "in flight" in second.detail


class TestOverload:
    def test_queue_full_is_explicit_rejection(self, dynamic_cloud):
        svc = service_over(
            dynamic_cloud, max_queue_depth=4, shed_queue_fraction=1.0
        )
        for _ in range(4):
            assert svc.submit("t1", "boot").status == "accepted"
        overflow = svc.submit("t1", "boot")
        assert overflow.status == "rejected_overload"
        assert "queue is full" in overflow.detail
        assert overflow.retry_after_s is not None
        assert svc.stats.rejected_overload == 1

    def test_shedding_before_queue_is_full(self, dynamic_cloud):
        svc = service_over(
            dynamic_cloud, max_queue_depth=8, shed_queue_fraction=0.5
        )
        for _ in range(4):
            svc.submit("t1", "boot")
        assert svc.shedding
        shed = svc.submit("t1", "boot")
        assert shed.status == "rejected_overload"
        assert "shedding" in shed.detail
        assert svc.queue_depth == 4  # nothing silently enqueued

    def test_retry_after_is_deterministic(self, dynamic_cloud):
        svc = service_over(
            dynamic_cloud, max_queue_depth=4, shed_queue_fraction=1.0
        )
        for _ in range(4):
            svc.submit("t1", "boot")
        first = svc.submit("t1", "boot")
        second = svc.submit("t1", "boot")
        assert first.retry_after_s == second.retry_after_s

    def test_rejections_do_not_touch_the_journal(self, dynamic_cloud):
        svc = service_over(
            dynamic_cloud, default_quota=TenantQuota(max_vms=1, max_vfs=1)
        )
        svc.submit("t1", "boot")
        head = svc.journal.head_seq
        svc.submit("t1", "boot")  # rejected_quota
        assert svc.journal.head_seq == head

    def test_queue_depth_gauge_exposed(self, dynamic_cloud):
        svc = service_over(dynamic_cloud)
        svc.submit("t1", "boot")
        gauge = get_hub().metrics.gauge("repro_service_queue_depth")
        assert gauge.value == 1


class TestIdempotency:
    def test_terminal_replay_returns_original_response(self, dynamic_cloud):
        svc = service_over(dynamic_cloud)
        svc.submit("t1", "boot", request_id="t1/boot/once")
        svc.drain()
        original = svc.response_for("t1/boot/once")
        assert original is not None and original.status == "completed"
        vms_before = set(dynamic_cloud.vms)
        replay = svc.submit("t1", "boot", request_id="t1/boot/once")
        assert replay is original
        assert set(dynamic_cloud.vms) == vms_before  # no double boot
        assert svc.stats.duplicates == 1

    def test_queued_replay_reports_already_queued(self, dynamic_cloud):
        svc = service_over(dynamic_cloud)
        svc.submit("t1", "boot", request_id="t1/boot/once")
        replay = svc.submit("t1", "boot", request_id="t1/boot/once")
        assert replay.status == "accepted"
        assert replay.detail == "already queued"
        assert svc.queue_depth == 1

    def test_minted_ids_and_vm_names_never_collide(self, dynamic_cloud):
        svc = service_over(dynamic_cloud)
        r1 = svc.submit("t1", "boot")
        r2 = svc.submit("t1", "boot", request_id="t1/custom")
        r3 = svc.submit("t1", "boot")
        svc.drain()
        ids = {r1.request_id, r2.request_id, r3.request_id}
        assert len(ids) == 3
        assert {"t1-vm1", "t1-vm2", "t1-vm3"} <= set(dynamic_cloud.vms)


class TestIsolationAndLedger:
    def test_tenant_cannot_stop_foreign_vm(self, dynamic_cloud):
        svc = service_over(dynamic_cloud)
        svc.submit("t1", "boot")
        svc.drain()
        response = svc.submit("t2", "stop", request_id="t2/stop/1", name="t1-vm1")
        assert response.status == "accepted"
        svc.drain()
        outcome = svc.response_for("t2/stop/1")
        assert outcome is not None and outcome.status == "failed"
        assert "unknown VM" in outcome.detail
        assert dynamic_cloud.vms["t1-vm1"].is_running

    def test_stop_requires_a_name(self, dynamic_cloud):
        svc = service_over(dynamic_cloud)
        with pytest.raises(ServiceError, match="must name a VM"):
            svc.submit("t1", "stop")

    def test_every_submission_is_accounted(self, dynamic_cloud):
        svc = service_over(
            dynamic_cloud,
            default_quota=TenantQuota(max_vms=3, max_vfs=3),
            max_queue_depth=4,
            shed_queue_fraction=1.0,
        )
        for _ in range(6):  # some admitted, some quota-rejected
            svc.submit("t1", "boot")
        svc.submit("t1", "stop", name="no-such-vm")  # will fail
        svc.drain()
        assert svc.pending_accounted() == 0
        stats = svc.stats
        assert stats.submitted == (
            stats.completed
            + stats.failed
            + stats.rejected_quota
            + stats.rejected_overload
            + stats.timed_out
        )

    def test_dead_worker_refuses_everything(self, dynamic_cloud):
        svc = service_over(dynamic_cloud)
        svc.kill()
        with pytest.raises(ServiceError, match="dead"):
            svc.submit("t1", "boot")
        with pytest.raises(ServiceError, match="dead"):
            svc.pump()
