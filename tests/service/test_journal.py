"""Intent journal: append/replay semantics, crash arming, durability."""

import pytest

from repro.errors import ServiceError, ServiceKilled
from repro.service import IntentJournal


class TestAppend:
    def test_seqs_are_contiguous_from_one(self):
        j = IntentJournal()
        for k in range(5):
            entry = j.append("intent", f"r{k}", {"k": k})
            assert entry.seq == k + 1
        assert j.head_seq == 5

    def test_unknown_phase_rejected(self):
        with pytest.raises(ServiceError):
            IntentJournal().append("retired", "r0", {})

    def test_entries_since(self):
        j = IntentJournal()
        for k in range(4):
            j.append("intent", f"r{k}")
        assert [e.seq for e in j.entries_since(2)] == [3, 4]

    def test_genesis_payload_found(self):
        j = IntentJournal()
        j.append("genesis", "", {"profile": "2l-small"})
        j.append("intent", "r0")
        assert j.genesis() == {"profile": "2l-small"}
        assert IntentJournal().genesis() is None


class TestCrashArming:
    def test_crash_after_write_keeps_entry(self):
        j = IntentJournal()
        j.arm_crash(1)
        with pytest.raises(ServiceKilled):
            j.append("intent", "r0")
        assert j.head_seq == 1  # the write landed before the kill

    def test_crash_before_write_loses_entry(self):
        j = IntentJournal()
        j.arm_crash(1, before=True)
        with pytest.raises(ServiceKilled):
            j.append("intent", "r0")
        assert j.head_seq == 0  # the write was lost

    def test_crash_is_one_shot(self):
        j = IntentJournal()
        j.arm_crash(1)
        with pytest.raises(ServiceKilled):
            j.append("intent", "r0")
        j.append("intent", "r1")  # a recovered worker appends fine
        assert j.head_seq == 2

    def test_crash_seq_is_one_based(self):
        with pytest.raises(ServiceError):
            IntentJournal().arm_crash(0)


class TestFolding:
    def test_requests_fold_phases(self):
        j = IntentJournal()
        j.append("genesis", "", {})
        j.append("intent", "a", {"op": "boot"})
        j.append("intent", "b", {"op": "stop"})
        j.append("applied", "a", {"vm": "t-vm1"})
        j.append("completed", "a", {"status": "completed"})
        folded = j.requests()
        assert list(folded) == ["a", "b"]  # intent order preserved
        assert folded["a"]["phase"] == "completed"
        assert folded["a"]["applied"] == {"vm": "t-vm1"}
        assert folded["a"]["applied_seq"] == 4
        assert folded["a"]["terminal"] == {"status": "completed"}
        assert folded["b"]["phase"] == "intent"
        assert folded["b"]["applied"] is None

    def test_duplicate_intent_rejected(self):
        j = IntentJournal()
        j.append("intent", "a")
        j.append("intent", "a")
        with pytest.raises(ServiceError, match="duplicate intent"):
            j.requests()

    def test_phase_without_intent_rejected(self):
        j = IntentJournal()
        j.append("applied", "ghost")
        with pytest.raises(ServiceError, match="without intent"):
            j.requests()

    def test_clipped_view(self):
        j = IntentJournal()
        for k in range(6):
            j.append("intent", f"r{k}")
        clipped = j.clipped(3)
        assert clipped.head_seq == 3
        assert j.head_seq == 6  # original untouched


class TestDurability:
    def test_jsonl_round_trip(self, tmp_path):
        sink = tmp_path / "journal.jsonl"
        j = IntentJournal(sink)
        j.append("genesis", "", {"profile": "2l-small"})
        j.append("intent", "a", {"op": "boot", "deadline": None})
        j.append("applied", "a", {"lid": 41})
        loaded = IntentJournal.from_jsonl(sink)
        assert [e.as_dict() for e in loaded.entries] == [
            e.as_dict() for e in j.entries
        ]

    def test_jsonl_gap_detected(self, tmp_path):
        sink = tmp_path / "journal.jsonl"
        j = IntentJournal(sink)
        j.append("intent", "a")
        j.append("intent", "b")
        lines = sink.read_text(encoding="utf-8").splitlines()
        sink.write_text(lines[1] + "\n", encoding="utf-8")  # drop seq 1
        with pytest.raises(ServiceError, match="journal gap"):
            IntentJournal.from_jsonl(sink)

    def test_crash_before_write_leaves_sink_clean(self, tmp_path):
        sink = tmp_path / "journal.jsonl"
        j = IntentJournal(sink)
        j.append("intent", "a")
        j.arm_crash(2, before=True)
        with pytest.raises(ServiceKilled):
            j.append("applied", "a")
        loaded = IntentJournal.from_jsonl(sink)
        assert loaded.head_seq == 1
