"""The crash-recovery property: kill the worker anywhere, lose nothing.

The service's only durable state is the intent journal. These tests
state the PR's central guarantee two ways:

* **warm** — the fabric survived, the worker died. For *every* crash
  point (right after each journal append, and "instead of" each append —
  the applied-but-unjournaled case), recovering and letting the client
  retry its idempotency keys lands the cloud in a byte-identical state
  (:func:`cloud_fingerprint`) with a clean :func:`audit_cloud` — no
  orphaned VFs, no leaked LIDs, no double-booted VMs.
* **cold** — nothing but the journal survived. Rebuilding from genesis +
  replay reproduces the same fingerprint, and every crash *prefix* of
  the journal rebuilds to an audit-clean cloud.

The hypothesis test generalizes the fixed script to randomly drawn
multi-tenant op sequences and crash points.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceKilled
from repro.fabric.presets import scaled_fattree
from repro.obs import reset_hub
from repro.service import (
    ControlPlaneService,
    IntentJournal,
    audit_cloud,
    cloud_fingerprint,
    rebuild_from_journal,
    recover_service,
)
from repro.virt.cloud import CloudManager

GENESIS = {
    "profile": "2l-small",
    "scheme": "dynamic",
    "engine": "minhop",
    "num_vfs": 4,
    "placement": "first-fit",
}

#: Fixed reference workload: multi-tenant, all op kinds, with requests
#: that target both existing and not-yet-applied VMs.
SCRIPT = [
    ("t1", "boot", {}),
    ("t1", "boot", {}),
    ("t2", "boot", {}),
    ("t1", "migrate", {"name": "t1-vm1"}),
    ("t2", "boot", {}),
    ("t1", "stop", {"name": "t1-vm2"}),
    ("t2", "migrate", {"name": "t2-vm1"}),
    ("t1", "boot", {}),
]


def build_cloud():
    built = scaled_fattree(str(GENESIS["profile"]))
    cloud = CloudManager(
        built.topology,
        built=built,
        lid_scheme=str(GENESIS["scheme"]),
        num_vfs=int(GENESIS["num_vfs"]),
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    return cloud


def run_script(script, crash=None):
    """Drive *script* through a service worker; on a (seq, before) crash,
    recover warm and let the client retry its idempotency keys."""
    reset_hub()
    cloud = build_cloud()
    journal = IntentJournal()
    service = ControlPlaneService(cloud, journal=journal, genesis=GENESIS)
    if crash is not None:
        journal.arm_crash(crash[0], before=crash[1])
    k = 0
    while k < len(script):
        tenant, op, params = script[k]
        try:
            service.submit(tenant, op, request_id=f"req-{k}", **params)
            service.pump()
            k += 1
        except ServiceKilled:
            service, report = recover_service(journal, cloud, genesis=GENESIS)
            assert report.problems == []
    try:
        service.drain()
    except ServiceKilled:
        service, report = recover_service(journal, cloud, genesis=GENESIS)
        assert report.problems == []
        service.drain()
    return cloud, journal, service


class TestFixedScript:
    def test_reference_run_is_clean(self):
        cloud, journal, service = run_script(SCRIPT)
        assert audit_cloud(cloud) == []
        assert service.pending_accounted() == 0
        assert journal.head_seq > len(SCRIPT)  # intent + applied + terminal

    def test_warm_recovery_at_every_crash_point(self):
        """Exhaustive sweep: crash after and instead-of every append."""
        cloud_ref, journal_ref, _ = run_script(SCRIPT)
        fp_ref = cloud_fingerprint(cloud_ref)
        mismatches = []
        for seq in range(2, journal_ref.head_seq + 2):
            for before in (False, True):
                cloud, _, _ = run_script(SCRIPT, crash=(seq, before))
                problems = audit_cloud(cloud)
                if cloud_fingerprint(cloud) != fp_ref or problems:
                    mismatches.append((seq, before, problems))
        assert mismatches == []

    def test_cold_rebuild_matches_reference(self):
        cloud_ref, journal_ref, _ = run_script(SCRIPT)
        fp_ref = cloud_fingerprint(cloud_ref)
        reset_hub()
        cloud, service, report = rebuild_from_journal(journal_ref)
        assert report.mode == "cold"
        assert report.ok, report.problems
        assert report.replayed > 0
        assert cloud_fingerprint(cloud) == fp_ref
        assert service.queue_depth == 0

    def test_cold_rebuild_of_every_crash_prefix_is_audit_clean(self):
        """A journal truncated at any seq still rebuilds a sane cloud."""
        _, journal_ref, _ = run_script(SCRIPT)
        for seq in range(1, journal_ref.head_seq + 1):
            reset_hub()
            _, _, report = rebuild_from_journal(journal_ref.clipped(seq))
            assert report.ok, (seq, report.problems)

    def test_recovered_worker_replays_terminal_responses(self):
        """A client retrying a finished request after the crash gets the
        original answer, not a second execution."""
        cloud, journal, service = run_script(SCRIPT, crash=(6, False))
        before_vms = set(cloud.vms)
        response = service.submit("t1", "boot", request_id="req-0")
        assert response.status in ("completed", "failed")
        assert set(cloud.vms) == before_vms  # no double boot
        assert service.stats.duplicates >= 1


op_strategy = st.tuples(
    st.sampled_from(["t1", "t2"]),
    st.sampled_from(["boot", "boot", "stop", "migrate"]),
    st.integers(min_value=1, max_value=3),
)


def materialize(raw):
    script = []
    for tenant, op, serial in raw:
        params = {} if op == "boot" else {"name": f"{tenant}-vm{serial}"}
        script.append((tenant, op, params))
    return script


class TestRandomized:
    @settings(max_examples=25, deadline=None)
    @given(
        raw=st.lists(op_strategy, min_size=1, max_size=8),
        seq=st.integers(min_value=2, max_value=48),
        before=st.booleans(),
    )
    def test_random_script_random_crash_point(self, raw, seq, before):
        script = materialize(raw)
        cloud_ref, _, _ = run_script(script)
        fp_ref = cloud_fingerprint(cloud_ref)
        assert audit_cloud(cloud_ref) == []
        cloud, _, _ = run_script(script, crash=(seq, before))
        assert audit_cloud(cloud) == []
        assert cloud_fingerprint(cloud) == fp_ref
