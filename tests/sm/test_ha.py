"""Tests for the SM high-availability protocol: leases, failover,
replication, split-brain fencing — plus the property that losing the
master at *any* point during a transactional distribution leaves the
subnet in exactly the old or the new routing with exactly one master.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.verification import verify_sm_consistency
from repro.errors import DistributionError, HighAvailabilityError
from repro.fabric.node import Switch
from repro.fabric.presets import scaled_fattree
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.mad.reliable import ReliableSmpSender, RetryPolicy
from repro.sm.ha import (
    HighAvailabilityManager,
    ReplicationJournal,
    SmHaState,
    StandbyReplica,
)
from repro.sm.subnet_manager import SubnetManager


def lft_snapshot(sm):
    return {
        sw.name: np.array(sw.lft.as_array(), copy=True)
        for sw in sm.topology.switches
    }


def lfts_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(a[name], b[name]) for name in a
    )


def build_ha_sm(*, retries=1, lease_misses=2):
    """Configured fat-tree SM with three registered HA participants."""
    built = scaled_fattree("2l-small")
    sm = SubnetManager(built.topology, engine="minhop", built=built)
    sm.enable_resilience(RetryPolicy(retries=retries), transactional=True)
    sm.initial_configure(with_discovery=False)
    ha = HighAvailabilityManager(sm, lease_misses=lease_misses)
    hcas = built.topology.hcas
    ha.register(hcas[0].name, guid=10, priority=10)
    ha.register(hcas[1].name, guid=20, priority=5)
    ha.register(hcas[2].name, guid=30, priority=1)
    ha.bootstrap()
    return sm, ha


def first_interswitch_link(sm):
    for link in sm.topology.links:
        if all(isinstance(p.node, Switch) for p in link.ends):
            return link
    raise AssertionError("no inter-switch link")


class TestMembershipAndBootstrap:
    def test_bootstrap_elects_highest_priority(self):
        sm, ha = build_ha_sm()
        master = ha.master
        assert master is not None and master.priority == 10
        assert sm.transport.sm_node.name == master.node_name
        assert sm.ha is ha

    def test_bootstrap_seeds_standby_replicas(self):
        sm, ha = build_ha_sm()
        standbys = [
            p for p in ha.participants() if p.state is SmHaState.STANDBY
        ]
        assert len(standbys) == 2
        for p in standbys:
            replica = ha.replica(p.node_name)
            assert replica is not None
            assert replica.is_current(ha.journal)
            assert replica.tables_payload is not None

    def test_register_unknown_node_rejected(self):
        sm, ha = build_ha_sm()
        with pytest.raises(HighAvailabilityError):
            ha.register("no-such-node", guid=99)


class TestLeaseDetection:
    def test_healthy_master_is_not_suspected(self):
        sm, ha = build_ha_sm()
        for _ in range(4):
            assert ha.tick() is None
        assert ha.failovers == 0

    def test_dead_master_detected_only_after_lease_expiry(self):
        sm, ha = build_ha_sm(lease_misses=2)
        ha.kill_master()
        # First missed lease: still only a suspicion.
        assert ha.tick() is None
        assert ha.failovers == 0
        # Second miss expires the lease and triggers the takeover.
        report = ha.tick()
        assert report is not None
        assert ha.failovers == 1
        assert ha.has_master

    def test_current_replica_gives_light_sweep(self):
        sm, ha = build_ha_sm()
        ha.kill_master()
        report = None
        while report is None:
            report = ha.tick()
        assert report.sweep_mode == "light"
        assert report.path_compute_seconds == 0.0
        assert report.handshake_smps > 0
        assert report.journal_entries_replayed > 0
        # Acceptance: a light failover programs at most the pending diff.
        assert (
            ha.last_failover_distributed_blocks
            <= ha.last_failover_pending_blocks
        )
        assert verify_sm_consistency(sm, static=False).ok

    def test_stale_replica_forces_heavy_sweep(self):
        sm, ha = build_ha_sm()
        injector = FaultInjector(FaultPlan(seed=5))
        sm.transport.set_fault_injector(injector)
        successor = min(
            (p for p in ha.participants() if not p.is_master),
            key=lambda p: p.election_key(),
        )
        # Replication to the successor is lost: its replica goes stale.
        injector.isolate([successor.node_name])
        sm.compute_routing()
        assert ha.replication_failures > 0
        injector.heal()
        ha.kill_master()
        report = None
        while report is None:
            report = ha.tick()
        assert report.sweep_mode == "heavy"
        assert report.path_compute_seconds > 0
        assert verify_sm_consistency(sm, static=False).ok


class TestReplication:
    def test_journal_truncation_blocks_incremental_resync(self):
        journal = ReplicationJournal(capacity=4)
        for i in range(8):
            journal.append("lid", {"h": i})
        assert journal.oldest_seq == 5
        assert journal.entries_since(2) is None
        assert [e.seq for e in journal.entries_since(6)] == [7, 8]

    def test_replica_refuses_gaps(self):
        replica = StandbyReplica("h")
        replica.apply([{"seq": 1, "kind": "lid", "payload": {"a": 1}}])
        # Seq 2 was lost; 3 must be refused.
        applied = replica.apply(
            [{"seq": 3, "kind": "lid", "payload": {"b": 2}}]
        )
        assert applied == 0
        assert replica.gaps == 1
        assert replica.applied_seq == 1

    def test_replica_mirrors_vswitch_ops(self):
        replica = StandbyReplica("h")
        ports = np.arange(12, dtype=np.int16).reshape(3, 4)
        replica.apply(
            [
                {
                    "seq": 1,
                    "kind": "tables",
                    "payload": {"algorithm": "minhop", "ports": ports},
                },
                {
                    "seq": 2,
                    "kind": "vswitch",
                    "payload": {
                        "op": "swap",
                        "lid_a": 1,
                        "lid_b": 2,
                        "switches": None,
                    },
                },
            ]
        )
        got = replica.tables_payload["ports"]
        assert list(got[:, 1]) == [2, 6, 10]
        assert list(got[:, 2]) == [1, 5, 9]
        # The journal's own payload is untouched (replicas deep-copy).
        assert list(ports[:, 1]) == [1, 5, 9]

    def test_resync_catches_a_standby_up(self):
        sm, ha = build_ha_sm()
        injector = FaultInjector(FaultPlan(seed=5))
        sm.transport.set_fault_injector(injector)
        standby = next(
            p for p in ha.participants() if p.state is SmHaState.STANDBY
        )
        injector.isolate([standby.node_name])
        sm.assign_lids()
        injector.heal()
        replica = ha.replica(standby.node_name)
        assert not replica.is_current(ha.journal)
        sent = ha.resync_standby(standby.node_name)
        assert sent > 0
        assert ha.replica(standby.node_name).is_current(ha.journal)


class TestSplitBrainFencing:
    def test_partitioned_master_is_fenced_and_demoted(self):
        sm, ha = build_ha_sm()
        injector = FaultInjector(FaultPlan(seed=9))
        sm.transport.set_fault_injector(injector)
        old_master = ha.master
        injector.isolate([old_master.node_name])
        report = None
        for _ in range(5):
            report = ha.tick()
            if report is not None:
                break
        assert report is not None
        assert len(ha.masters()) == 2  # split brain while partitioned
        injector.heal()
        before = sm.transport.stats.snapshot()
        assert ha.reassert_stale_master(old_master.node_name) == "demoted"
        delta = sm.transport.stats.delta_since(before)
        assert delta.stale_rejected >= 1
        assert len(ha.masters()) == 1
        assert old_master.state is SmHaState.STANDBY
        assert ha.demotions == 1

    def test_generation_is_monotonic_across_failovers(self):
        sm, ha = build_ha_sm()
        g0 = ha.generation
        ha.kill_master()
        while ha.tick() is None:
            pass
        assert ha.generation > g0


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    victim_idx=st.integers(min_value=0, max_value=11),
    mode=st.sampled_from(["death", "partition"]),
)
def test_master_loss_mid_distribution_is_atomic(victim_idx, mode):
    """Losing the master at any point during a transactional LFT
    distribution leaves the subnet in exactly the old or the new routing,
    and the HA protocol converges on exactly one master.
    """
    sm, ha = build_ha_sm()
    old = lft_snapshot(sm)
    # A topology change makes the next routing genuinely different.
    events_link = first_interswitch_link(sm)
    from repro.sm.traps import FabricEventManager

    FabricEventManager(sm).report_link_down(events_link)
    sm.compute_routing()
    # The master dies after having programmed only the switches the
    # injector lets through: all writes to the victim switch are lost,
    # so the transactional pass rolls back partway in.
    victim = sm.topology.switches[victim_idx].name
    sm.transport.set_fault_injector(
        FaultInjector(FaultPlan(seed=3, per_target_drop={victim: 1.0}))
    )
    try:
        sm.distribute()
        interrupted = False
    except DistributionError:
        interrupted = True
    sm.transport.set_fault_injector(None)
    mid = lft_snapshot(sm)
    if interrupted:
        # Rolled back: still exactly the old routing, not a hybrid.
        assert lfts_equal(mid, old)
    old_master = ha.master
    if mode == "death":
        ha.kill_master()
    else:
        injector = FaultInjector(FaultPlan(seed=4))
        sm.transport.set_fault_injector(injector)
        injector.isolate([old_master.node_name])
    report = None
    for _ in range(2 * ha.lease_misses + 1):
        report = ha.tick()
        if report is not None:
            break
    assert report is not None, "lease expiry never triggered a failover"
    if mode == "partition":
        injector.heal()
        assert ha.reassert_stale_master(old_master.node_name) == "demoted"
        sm.transport.set_fault_injector(None)
    # Exactly one master, and it is alive.
    assert len(ha.masters()) == 1
    assert ha.has_master
    assert ha.master is not old_master
    # The successor completed the distribution: the fabric forwards
    # exactly the new routing (the transactional guarantee end-to-end).
    assert verify_sm_consistency(sm, static=False).ok
    new = lft_snapshot(sm)
    assert not lfts_equal(new, old)


def test_stale_sender_generation_blocks_lft_writes():
    """A sender stamped with an old generation cannot program LFTs."""
    from repro.errors import StaleGenerationError
    from repro.mad.smp import Smp, SmpKind, SmpMethod

    sm, ha = build_ha_sm()
    stale_gen = ha.generation
    ha.kill_master()
    while ha.tick() is None:
        pass
    stale = ReliableSmpSender(
        sm.transport, RetryPolicy(retries=1), generation=stale_gen
    )
    target = sm.topology.switches[0].name
    with pytest.raises(StaleGenerationError):
        stale.send(
            Smp(
                SmpMethod.SET,
                SmpKind.LFT_BLOCK,
                target,
                payload={"block": 0, "entries": [0] * 64},
            )
        )
