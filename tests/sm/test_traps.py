"""Tests for fabric-event traps driving SM reactions."""

import pytest

from repro.errors import ReproError, TopologyError
from repro.fabric.node import Switch
from repro.fabric.presets import scaled_fattree
from repro.sm.subnet_manager import SubnetManager
from repro.sm.traps import FabricEventManager, TrapType


@pytest.fixture
def running_sm(small_fattree):
    sm = SubnetManager(
        small_fattree.topology, built=small_fattree, engine="minhop"
    )
    sm.initial_configure(with_discovery=False)
    return sm


def inter_switch_link(topo):
    for link in topo.links:
        if isinstance(link.a.node, Switch) and isinstance(link.b.node, Switch):
            return link
    raise AssertionError("no inter-switch link")


class TestLinkDown:
    def test_both_ends_trap(self, running_sm):
        mgr = FabricEventManager(running_sm)
        link = inter_switch_link(running_sm.topology)
        mgr.link_down(link)
        downs = mgr.traps_of(TrapType.LINK_STATE_DOWN)
        assert len(downs) == 2
        assert {t.reporter for t in downs} == {
            link.a.node.name,
            link.b.node.name,
        }

    def test_reaction_reroutes(self, running_sm):
        mgr = FabricEventManager(running_sm)
        link = inter_switch_link(running_sm.topology)
        report = mgr.link_down(link)
        assert report.path_compute_seconds > 0
        assert report.lft_smps > 0
        assert mgr.reaction_count == 1

    def test_host_link_rejected(self, running_sm):
        mgr = FabricEventManager(running_sm)
        host_link = next(
            l
            for l in running_sm.topology.links
            if not isinstance(l.a.node, Switch)
            or not isinstance(l.b.node, Switch)
        )
        with pytest.raises(ReproError):
            mgr.link_down(host_link)

    def test_trap_sequence_numbers_increase(self, running_sm):
        mgr = FabricEventManager(running_sm)
        links = [
            l
            for l in running_sm.topology.links
            if isinstance(l.a.node, Switch) and isinstance(l.b.node, Switch)
        ]
        mgr.link_down(links[0])
        mgr.link_down(links[1])
        seqs = [t.seq for t in mgr.traps]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestLinkUp:
    def test_repair_cycle(self, running_sm):
        mgr = FabricEventManager(running_sm)
        link = inter_switch_link(running_sm.topology)
        a, pa = link.a.node, link.a.num
        b, pb = link.b.node, link.b.num
        mgr.link_down(link)
        report = mgr.link_up(a, pa, b, pb)
        assert len(mgr.traps_of(TrapType.LINK_STATE_UP)) == 2
        assert report.path_compute_seconds > 0
        assert mgr.reaction_count == 2
        # After repair the fabric view has its original edge count back.
        degrees = [
            running_sm.topology.fabric_view().degree(i)
            for i in range(running_sm.topology.num_switches)
        ]
        assert min(degrees) >= 1
