"""Tests for fabric-event traps driving SM reactions."""

import pytest

from repro.errors import ReproError, TopologyError
from repro.fabric.node import Switch
from repro.fabric.presets import scaled_fattree
from repro.fabric.topology import TopologyMutation
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager
from repro.sm.traps import FabricEventManager, TrapType


@pytest.fixture
def running_sm(small_fattree):
    sm = SubnetManager(
        small_fattree.topology, built=small_fattree, engine="minhop"
    )
    sm.initial_configure(with_discovery=False)
    return sm


def inter_switch_link(topo):
    for link in topo.links:
        if isinstance(link.a.node, Switch) and isinstance(link.b.node, Switch):
            return link
    raise AssertionError("no inter-switch link")


class TestLinkDown:
    def test_both_ends_trap(self, running_sm):
        mgr = FabricEventManager(running_sm)
        link = inter_switch_link(running_sm.topology)
        mgr.link_down(link)
        downs = mgr.traps_of(TrapType.LINK_STATE_DOWN)
        assert len(downs) == 2
        assert {t.reporter for t in downs} == {
            link.a.node.name,
            link.b.node.name,
        }

    def test_reaction_reroutes(self, running_sm):
        mgr = FabricEventManager(running_sm)
        link = inter_switch_link(running_sm.topology)
        report = mgr.link_down(link)
        assert report.path_compute_seconds > 0
        assert report.lft_smps > 0
        assert mgr.reaction_count == 1

    def test_host_link_rejected(self, running_sm):
        mgr = FabricEventManager(running_sm)
        host_link = next(
            l
            for l in running_sm.topology.links
            if not isinstance(l.a.node, Switch)
            or not isinstance(l.b.node, Switch)
        )
        with pytest.raises(ReproError):
            mgr.link_down(host_link)

    def test_trap_sequence_numbers_increase(self, running_sm):
        mgr = FabricEventManager(running_sm)
        links = [
            l
            for l in running_sm.topology.links
            if isinstance(l.a.node, Switch) and isinstance(l.b.node, Switch)
        ]
        mgr.link_down(links[0])
        mgr.link_down(links[1])
        seqs = [t.seq for t in mgr.traps]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestLinkUp:
    def test_repair_cycle(self, running_sm):
        mgr = FabricEventManager(running_sm)
        link = inter_switch_link(running_sm.topology)
        a, pa = link.a.node, link.a.num
        b, pb = link.b.node, link.b.num
        mgr.link_down(link)
        report = mgr.link_up(a, pa, b, pb)
        assert len(mgr.traps_of(TrapType.LINK_STATE_UP)) == 2
        assert report.path_compute_seconds > 0
        assert mgr.reaction_count == 2
        # After repair the fabric view has its original edge count back.
        degrees = [
            running_sm.topology.fabric_view().degree(i)
            for i in range(running_sm.topology.num_switches)
        ]
        assert min(degrees) >= 1


def spine_add_link(sm, pair=0):
    """A planned spine-spine shortcut (spines are never pre-cabled)."""
    spines = [
        sw
        for sw in sm.built.roots
        if next(sw.free_ports(), None) is not None
    ]
    a, b = spines[2 * pair], spines[2 * pair + 1]
    return TopologyMutation(
        kind="add_link",
        a=a.name,
        port_a=next(a.free_ports()).num,
        b=b.name,
        port_b=next(b.free_ports()).num,
    )


class TestServiceTrapCoalescing:
    """IBA 64/65 (IN_SERVICE / OUT_OF_SERVICE) for planned mutations."""

    def test_join_raises_in_service_notices(self, running_sm):
        mgr = FabricEventManager(running_sm)
        mgr.report_topology_change(spine_add_link(running_sm))
        joins = mgr.traps_of(TrapType.IN_SERVICE)
        assert len(joins) == 2  # one notice per cable end
        assert mgr.pending_events == 1

    def test_add_then_remove_link_coalesces_away(self, running_sm):
        mgr = FabricEventManager(running_sm)
        mutation = spine_add_link(running_sm)
        mgr.report_topology_change(mutation)
        mgr.report_topology_change(
            TopologyMutation(
                kind="remove_link",
                a=mutation.a,
                port_a=mutation.port_a,
                b=mutation.b,
                port_b=mutation.port_b,
            )
        )
        # Opposite service traps on the same link cancel like a flap: no
        # event surfaces and the pump has nothing to reroute.
        assert mgr.pending_events == 0
        assert mgr.traps_coalesced == 1
        assert mgr.pump() is None

    def test_add_then_remove_switch_coalesces_away(self, running_sm):
        mgr = FabricEventManager(running_sm)
        mutation = spine_add_link(running_sm)
        mgr.report_topology_change(
            TopologyMutation(
                kind="add_switch",
                a="tmp-sw",
                num_ports=4,
                cables=(
                    (1, mutation.a, mutation.port_a),
                    (2, mutation.b, mutation.port_b),
                ),
            )
        )
        assert len(mgr.traps_of(TrapType.IN_SERVICE)) == 1
        mgr.report_topology_change(
            TopologyMutation(kind="remove_switch", a="tmp-sw")
        )
        assert len(mgr.traps_of(TrapType.OUT_OF_SERVICE)) == 1
        assert mgr.pending_events == 0
        assert mgr.traps_coalesced == 1
        assert mgr.pump() is None
        assert "tmp-sw" not in running_sm.topology

    def test_batched_pump_converges_to_cold_routing(self, running_sm):
        mgr = FabricEventManager(running_sm)
        first = spine_add_link(running_sm)
        mgr.report_topology_change(first)
        second = spine_add_link(running_sm, pair=1)  # a different pair
        mgr.report_topology_change(second)
        assert mgr.pending_events == 2
        report = mgr.pump()
        assert report is not None
        assert mgr.pending_events == 0
        assert mgr.reaction_count == 1  # both joins, one batched reroute
        request = RoutingRequest.from_topology(
            running_sm.topology, built=running_sm.built
        )
        cold = create_engine("minhop").compute(request)
        assert (
            running_sm.current_tables.ports.tobytes()
            == cold.ports.tobytes()
        )

    def test_partitioning_removal_is_rolled_back(self, running_sm):
        mgr = FabricEventManager(running_sm)
        topo = running_sm.topology
        # Cut one leaf's spine uplinks one at a time; the cut that would
        # strand the leaf (and its hosts) must be refused with the cable
        # replugged by the inverse mutation.
        leaf = next(sw for sw in topo.switches if sw.attached_hcas())
        uplinks = [
            p.link
            for p in leaf.connected_ports()
            if isinstance(p.remote.node, Switch)
        ]
        refused = False
        for link in uplinks:
            end = link.a if link.a.node is leaf else link.b
            far = link.other_end(end)
            try:
                mgr.report_topology_change(
                    TopologyMutation(
                        kind="remove_link",
                        a=end.node.name,
                        port_a=end.num,
                        b=far.node.name,
                        port_b=far.num,
                    )
                )
            except TopologyError:
                refused = True
                break
        assert refused
        # The refused cable is back: the fabric still validates.
        topo.validate()


class TestIncrementalHeal:
    def test_flap_heal_is_repaired_not_recomputed(self, running_sm):
        mgr = FabricEventManager(running_sm)
        link = inter_switch_link(running_sm.topology)
        a, pa = link.a.node, link.a.num
        b, pb = link.b.node, link.b.num
        n = running_sm.topology.num_switches
        before = running_sm.routing_state.stats.snapshot()
        mgr.report_link_down(link)
        mgr.pump()
        mgr.report_link_up(a, pa, b, pb)
        mgr.pump()
        delta = running_sm.routing_state.stats.delta_since(before)
        # Both the failure and the heal chain into incremental repairs —
        # the heal rides the new link-addition predicate, no cold sweep.
        assert delta["full_recomputes"] == 0
        assert delta["repairs"] == 2
        assert 0 < delta["sources_repaired"] < 2 * n
