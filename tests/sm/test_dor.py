"""Tests for dimension-ordered (XY) routing on meshes and tori."""

import pytest

from repro.errors import RoutingError
from repro.fabric.builders.generic import build_mesh_2d, build_torus_2d
from repro.sm.deadlock import is_deadlock_free
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager


def request_for(built):
    sm = SubnetManager(built.topology, built=built)
    sm.assign_lids()
    return RoutingRequest.from_topology(built.topology, built=built)


class TestMesh:
    def test_valid_on_mesh(self):
        req = request_for(build_mesh_2d(3, 4, 1))
        tables = create_engine("dor").compute(req)
        tables.validate(req)
        assert tables.metadata["torus"] is False

    def test_mesh_is_deadlock_free(self):
        # The classic XY-routing result.
        req = request_for(build_mesh_2d(4, 4, 1))
        tables = create_engine("dor").compute(req)
        assert is_deadlock_free(tables.ports, req.view)

    def test_x_before_y(self):
        req = request_for(build_mesh_2d(3, 3, 1))
        tables = create_engine("dor").compute(req)
        # From (0,0) toward a terminal at (2,2): first hop must go along
        # the row (to (0,1)), never down first.
        dest = next(t for t in req.terminals if t.switch_index == 8)
        path = tables.trace_path(req, 0, dest.lid)
        assert path[1] == 1  # (0,1), not (1,0) which is index 3

    def test_single_row(self):
        req = request_for(build_mesh_2d(1, 5, 1))
        tables = create_engine("dor").compute(req)
        tables.validate(req)

    def test_non_mesh_rejected(self):
        from repro.fabric.presets import scaled_fattree

        req = request_for(scaled_fattree("2l-small"))
        with pytest.raises(RoutingError):
            create_engine("dor").compute(req)


class TestTorus:
    def test_valid_on_torus(self):
        req = request_for(build_torus_2d(3, 3, 1))
        tables = create_engine("dor").compute(req)
        tables.validate(req)
        assert tables.metadata["torus"] is True

    def test_torus_uses_wraparound(self):
        req = request_for(build_torus_2d(3, 5, 1))
        tables = create_engine("dor").compute(req)
        # (0,0) -> (0,4): the wrap (1 hop) beats walking the row (4 hops).
        dest = next(t for t in req.terminals if t.switch_index == 4)
        path = tables.trace_path(req, 0, dest.lid)
        assert len(path) == 2

    def test_torus_admits_cycles(self):
        # Wraparound reintroduces channel-dependency cycles.
        req = request_for(build_torus_2d(4, 4, 1))
        tables = create_engine("dor").compute(req)
        lids = [t.lid for t in req.terminals]
        assert not is_deadlock_free(tables.ports, req.view, lids=lids)

    def test_forced_torus_on_mesh_rejected(self):
        req = request_for(build_mesh_2d(3, 3, 1))
        with pytest.raises(RoutingError):
            create_engine("dor", torus=True).compute(req)

    def test_registered(self):
        from repro.sm.routing.registry import available_engines

        assert "dor" in available_engines()
