"""Byte-identity of the paper-scale fast paths against their references.

Three equivalences, each load-bearing for the Fig. 7 reproduction:

* vectorized LASH/DFSSSP == the pure-Python reference engines — same LFT
  bytes, same VL assignments, same metadata — on rings, tori, fat-trees
  and hypothesis-sampled random regular graphs (rings/tori exercise the
  multi-VL cyclic paths: relabel, rollback and layer rejection);
* sharded all-pairs computation (``workers > 1``) == the serial loop;
* the stacked numpy LFT block diff == the old per-switch block diff.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import LFT_BLOCK_SIZE, LFT_UNSET
from repro.fabric.builders.generic import (
    build_random_regular,
    build_ring,
    build_torus_2d,
)
from repro.fabric.graph import all_pairs_switch_distances
from repro.fabric.lft import lft_block_of
from repro.fabric.presets import paper_fattree, scaled_fattree
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.cache import RoutingState
from repro.sm.routing.dfsssp import DFSSSPRouting
from repro.sm.routing.lash import LashRouting
import repro.sm.routing.parallel as parallel_mod
from repro.sm.routing.parallel import ParallelRouter
from repro.sm.subnet_manager import SubnetManager

_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def request_for(built):
    sm = SubnetManager(built.topology, built=built)
    sm.assign_lids()
    return RoutingRequest.from_topology(built.topology, built=built)


def assert_tables_identical(a, b, label):
    assert a.ports.dtype == b.ports.dtype, label
    assert np.array_equal(a.ports, b.ports), label
    assert a.num_vls == b.num_vls, label
    assert set(a.metadata) == set(b.metadata), label
    for k in a.metadata:
        va, vb = a.metadata[k], b.metadata[k]
        if isinstance(va, np.ndarray):
            assert va.dtype == vb.dtype and np.array_equal(va, vb), (label, k)
        else:
            assert va == vb, (label, k)


PRESETS = {
    "ring8": lambda: build_ring(8, hosts_per_switch=1),
    "torus33": lambda: build_torus_2d(3, 3, hosts_per_switch=1),
    "ftree-2l": lambda: paper_fattree(324),
    "ftree-3l": lambda: scaled_fattree("3l-small"),
}


class TestVectorizedEngineIdentity:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("engine_cls", [LashRouting, DFSSSPRouting])
    def test_identity_on_presets(self, preset, engine_cls):
        request = request_for(PRESETS[preset]())
        fast = engine_cls(vectorized=True).compute(request)
        ref = engine_cls(vectorized=False).compute(request)
        assert_tables_identical(fast, ref, (preset, engine_cls.__name__))

    @_settings
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        half_n=st.integers(min_value=3, max_value=6),
    )
    def test_identity_on_random_regular(self, seed, half_n):
        # 3-regular graphs need an even switch count (handshake lemma).
        built = build_random_regular(2 * half_n, 3, 1, seed=seed)
        request = request_for(built)
        for engine_cls in (LashRouting, DFSSSPRouting):
            fast = engine_cls(vectorized=True).compute(request)
            ref = engine_cls(vectorized=False).compute(request)
            assert_tables_identical(fast, ref, (seed, engine_cls.__name__))


class TestShardedIdentity:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    @pytest.mark.parametrize("workers", [2, 4])
    def test_sharded_matrix_identical(self, preset, workers, monkeypatch):
        # Drop the spin-up threshold so the small test fabrics actually
        # exercise the process pool (or its sandbox fallback).
        monkeypatch.setattr(parallel_mod, "_MIN_PARALLEL_SWITCHES", 1)
        view = PRESETS[preset]().topology.fabric_view()
        serial = all_pairs_switch_distances(view)
        sharded = ParallelRouter(workers).all_pairs(view)
        assert sharded.dtype == serial.dtype
        assert np.array_equal(sharded, serial)

    def test_chunk_bounds_cover_range(self):
        for workers in (1, 2, 3, 7):
            for n in (1, 5, 64, 97, 1620):
                bounds = ParallelRouter(workers).chunk_bounds(n)
                assert bounds[0][0] == 0 and bounds[-1][1] == n
                for (_, hi), (lo2, _) in zip(bounds, bounds[1:]):
                    assert hi == lo2

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sharded_lfts_identical_end_to_end(self, workers, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_MIN_PARALLEL_SWITCHES", 1)
        built = scaled_fattree("3l-small")
        sm = SubnetManager(built.topology, built=built, workers=workers)
        sm.initial_configure(with_discovery=False)
        serial_built = scaled_fattree("3l-small")
        serial_sm = SubnetManager(serial_built.topology, built=serial_built)
        serial_sm.initial_configure(with_discovery=False)
        assert np.array_equal(
            sm.current_tables.ports, serial_sm.current_tables.ports
        )

    def test_routing_state_threads_workers(self):
        built = PRESETS["ftree-2l"]()
        state = RoutingState(built.topology, workers=3)
        assert state.router.workers == 3


class TestLftDiffEquivalence:
    """The stacked block diff must plan exactly the old per-switch sends."""

    def _plans_match(self, sm, tables, force_full):
        distributor = sm.distributor
        top_lid = tables.top_lid
        width = (lft_block_of(top_lid) + 1) * LFT_BLOCK_SIZE
        plan, _ = distributor._diff_plan(tables, force_full, width)
        got = {sw.name: blocks.tolist() for sw, blocks, _ in plan}
        expected = {}
        for sw in sm.topology.switches:
            current = sw.lft.as_array()
            full_width = max(width, len(current))
            desired = np.full(full_width, LFT_UNSET, dtype=np.int16)
            row = tables.ports[sw.index]
            desired[: len(row)] = row
            if force_full:
                blocks = distributor._used_blocks(desired)
            else:
                blocks = distributor._changed_blocks(current, desired)
            if blocks:
                expected[sw.name] = blocks
        assert got == expected

    @pytest.mark.parametrize("force_full", [False, True])
    def test_plan_matches_reference_diff(self, force_full):
        built = PRESETS["ftree-2l"]()
        sm = SubnetManager(built.topology, built=built)
        sm.assign_lids()
        tables = sm.compute_routing()
        # Cold switches: everything pending.
        self._plans_match(sm, tables, force_full)
        sm.distribute()
        # Warm switches: diff plan must now be empty / full respectively.
        self._plans_match(sm, tables, force_full)

    def test_plan_after_partial_mutation(self):
        built = PRESETS["torus33"]()
        sm = SubnetManager(built.topology, built=built)
        sm.initial_configure(with_discovery=False)
        tables = sm.current_tables
        # Corrupt one block on one switch; only that block may be resent.
        sw = sm.topology.switches[2]
        block = 0
        entries = np.array(sw.lft.get_block(block), dtype=np.int16)
        entries[0] = 1 if entries[0] != 1 else 2
        sw.lft.load_block(block, entries)
        self._plans_match(sm, tables, False)
        assert sm.distributor.pending_blocks(tables) == 1
