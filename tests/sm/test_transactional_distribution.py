"""Transactional LFT distribution: read-back verification and rollback."""

import numpy as np
import pytest

from repro.errors import DistributionError
from repro.fabric.presets import scaled_fattree
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, ScriptedFault
from repro.mad.reliable import ReliableSmpSender, RetryPolicy
from repro.sm.subnet_manager import SubnetManager


def lft_snapshot(sm):
    return {
        sw.name: np.array(sw.lft.as_array(), copy=True)
        for sw in sm.topology.switches
    }


def lfts_equal(a, b):
    return set(a) == set(b) and all(
        np.array_equal(a[name], b[name]) for name in a
    )


def fresh_sm(*, resilient=True, retries=16):
    built = scaled_fattree("2l-small")
    sm = SubnetManager(built.topology, engine="minhop", built=built)
    if resilient:
        sm.enable_resilience(RetryPolicy(retries=retries))
    return sm


class TestResilienceWiring:
    def test_enable_resilience_wraps_transport(self):
        sm = fresh_sm()
        assert isinstance(sm.smp_sender, ReliableSmpSender)
        assert sm.distributor.sender is sm.smp_sender
        assert sm.distributor.transactional is True

    def test_enable_resilience_is_idempotent(self):
        sm = fresh_sm()
        first = sm.smp_sender
        second = sm.enable_resilience(RetryPolicy(retries=2))
        assert second is first
        assert first.policy.retries == 2

    def test_default_sm_is_not_transactional(self):
        sm = fresh_sm(resilient=False)
        assert sm.smp_sender is sm.transport
        assert sm.distributor.transactional is False


class TestVerifiedDistribution:
    def test_lossless_transactional_matches_plain(self):
        plain = fresh_sm(resilient=False)
        plain.initial_configure(with_discovery=False)
        transactional = fresh_sm()
        report = transactional.initial_configure(with_discovery=False)
        assert lfts_equal(lft_snapshot(plain), lft_snapshot(transactional))
        assert report.distribution.verified_blocks > 0
        assert report.distribution.resyncs == 0

    def test_drop_and_corruption_survive_with_identical_lfts(self):
        reference = fresh_sm(resilient=False)
        reference.initial_configure(with_discovery=False)

        sm = fresh_sm(retries=16)
        sm.transport.set_fault_injector(
            FaultInjector(
                FaultPlan(seed=7, smp_drop_rate=0.2, smp_corrupt_rate=0.1)
            )
        )
        sm.initial_configure(with_discovery=False)
        sm.transport.set_fault_injector(None)
        assert lfts_equal(lft_snapshot(reference), lft_snapshot(sm))

    def test_corruption_triggers_resync(self):
        sm = fresh_sm()
        # Corrupt exactly one in-flight LFT write; the read-back must
        # catch it and force a re-sync round.
        sm.transport.set_fault_injector(
            FaultInjector(
                FaultPlan(
                    scripted=(
                        ScriptedFault(
                            action="corrupt", kind="lft_block", nth=1
                        ),
                    )
                )
            )
        )
        report = sm.initial_configure(with_discovery=False)
        sm.transport.set_fault_injector(None)
        assert report.distribution.resyncs >= 1
        # The end state is still exactly the computed routing.
        from repro.analysis.verification import verify_sm_consistency

        assert verify_sm_consistency(sm, static=False).ok


class TestRollback:
    def test_unreachable_switch_rolls_back_whole_pass(self):
        sm = fresh_sm(retries=1)
        sm.assign_lids()
        sm.compute_routing()
        before = lft_snapshot(sm)
        victim = sm.topology.switches[-1].name
        sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=3, per_target_drop={victim: 1.0}))
        )
        with pytest.raises(DistributionError, match="rolled back"):
            sm.distribute()
        sm.transport.set_fault_injector(None)
        assert lfts_equal(before, lft_snapshot(sm))

    def test_rolled_back_flag_set(self):
        sm = fresh_sm(retries=1)
        sm.assign_lids()
        sm.compute_routing()
        victim = sm.topology.switches[0].name
        sm.transport.set_fault_injector(
            FaultInjector(FaultPlan(seed=4, per_target_drop={victim: 1.0}))
        )
        try:
            sm.distribute()
        except DistributionError:
            pass
        finally:
            sm.transport.set_fault_injector(None)
        # A later fault-free pass completes the interrupted distribution.
        report = sm.distribute()
        assert not report.rolled_back
        from repro.analysis.verification import verify_sm_consistency

        assert verify_sm_consistency(sm, static=False).ok
