"""Tests for SM redundancy: election, polling, handover."""

import pytest

from repro.errors import ReproError
from repro.fabric.addressing import GuidAllocator
from repro.mad.smp import SmpKind
from repro.sm.handover import SmRedundancyManager, SmState
from repro.sm.subnet_manager import SubnetManager
from repro.sriov.shared_port import SharedPortHCA
from repro.sriov.vswitch import VSwitchHCA


@pytest.fixture
def redundant(small_fattree):
    sm = SubnetManager(small_fattree.topology, built=small_fattree)
    sm.initial_configure(with_discovery=False)
    mgr = SmRedundancyManager(sm)
    topo = small_fattree.topology
    mgr.register(topo.hcas[0].name, guid=100, priority=5)
    mgr.register(topo.hcas[1].name, guid=50, priority=5)
    mgr.register(topo.hcas[2].name, guid=10, priority=1)
    return sm, mgr


class TestElection:
    def test_priority_wins(self, redundant):
        sm, mgr = redundant
        winner = mgr.elect()
        # Priority 5 beats 1; among the two fives the lower GUID wins.
        assert winner.guid == 50
        assert winner.state is SmState.MASTER

    def test_losers_become_standby(self, redundant):
        sm, mgr = redundant
        mgr.elect()
        states = [c.state for c in mgr.candidates()]
        assert states.count(SmState.MASTER) == 1
        assert states.count(SmState.STANDBY) == 2

    def test_transport_follows_master(self, redundant):
        sm, mgr = redundant
        winner = mgr.elect()
        assert sm.transport.sm_node.name == winner.node_name

    def test_duplicate_registration_rejected(self, redundant):
        sm, mgr = redundant
        with pytest.raises(ReproError):
            mgr.register(mgr.candidates()[0].node_name, guid=1)

    def test_no_candidates_rejected(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        mgr = SmRedundancyManager(sm)
        with pytest.raises(ReproError):
            mgr.elect()


class TestPollingAndHandover:
    def test_poll_sends_sminfo(self, redundant):
        sm, mgr = redundant
        mgr.elect()
        before = sm.transport.stats.by_kind[SmpKind.SM_INFO]
        assert mgr.poll_master()
        assert sm.transport.stats.by_kind[SmpKind.SM_INFO] == before + 1

    def test_poll_detects_dead_master(self, redundant):
        sm, mgr = redundant
        mgr.elect()
        mgr.kill_master()
        assert not mgr.poll_master()

    def test_handover_promotes_next_candidate(self, redundant):
        sm, mgr = redundant
        first = mgr.elect()
        mgr.kill_master()
        mgr.handover()
        second = mgr.master
        assert second is not None and second is not first
        assert second.guid == 100  # same priority, next-lowest GUID
        assert mgr.handovers == 1

    def test_state_sharing_handover_is_cheap(self, redundant):
        # The vSwitch-era answer to ref [10]'s SM restart: the successor
        # inherits routing state, pays only a discovery sweep.
        sm, mgr = redundant
        mgr.elect()
        mgr.kill_master()
        report = mgr.handover(resweep=False)
        assert report.path_compute_seconds == 0.0
        assert report.lft_smps == 0
        assert report.discovery is not None

    def test_resweep_handover_pays_pct_but_no_lft_changes(self, redundant):
        sm, mgr = redundant
        mgr.elect()
        mgr.kill_master()
        report = mgr.handover(resweep=True)
        assert report.path_compute_seconds > 0
        # The routing is recomputed identically: diff distribution is empty.
        assert report.lft_smps == 0

    def test_kill_without_master_rejected(self, redundant):
        sm, mgr = redundant
        with pytest.raises(ReproError):
            mgr.kill_master()


class TestSmPlacementRules:
    def test_shared_port_vf_cannot_host_sm(self):
        from repro.fabric.node import HCA

        guids = GuidAllocator()
        sp = SharedPortHCA(HCA("h"), guids, num_vfs=2)
        assert SmRedundancyManager.can_host(sp.pf)
        assert not SmRedundancyManager.can_host(sp.vfs[0])

    def test_vswitch_vf_can_host_sm(self):
        from repro.fabric.node import HCA

        guids = GuidAllocator()
        vsw = VSwitchHCA(HCA("h"), guids, num_vfs=2)
        assert SmRedundancyManager.can_host(vsw.pf)
        assert SmRedundancyManager.can_host(vsw.vfs[0])
