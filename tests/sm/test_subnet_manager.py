"""Tests for discovery, LID management, LFT distribution and the SM flows."""

import pytest

from repro.errors import AddressingError, RoutingError, TopologyError
from repro.fabric.builders.generic import build_single_switch
from repro.fabric.presets import scaled_fattree
from repro.fabric.lft import min_blocks_for_lid_count
from repro.mad.transport import SmpTransport
from repro.sm.discovery import discover_subnet
from repro.sm.lid_manager import LidManager
from repro.sm.subnet_manager import SubnetManager


class TestDiscovery:
    def test_finds_everything(self, small_fattree):
        topo = small_fattree.topology
        report = discover_subnet(topo, SmpTransport(topo))
        assert len(report.switches) == topo.num_switches
        assert len(report.hcas) == topo.num_hcas
        assert report.num_nodes == topo.num_switches + topo.num_hcas

    def test_smp_cost_accounted(self, single_switch):
        topo = single_switch.topology
        tr = SmpTransport(topo)
        report = discover_subnet(topo, tr)
        # One NodeInfo per node plus one PortInfo per connected port.
        nodes = topo.num_switches + topo.num_hcas
        ports = 2 * len(topo.links)
        assert report.smps_sent == nodes + ports
        assert tr.stats.total_smps == report.smps_sent
        assert report.serial_time > 0


class TestLidManager:
    def test_base_assignment_switches_first(self, small_fattree):
        topo = small_fattree.topology
        lm = LidManager(topo)
        result = lm.assign_base_lids()
        assert len(result) == topo.num_switches + topo.num_hcas
        # Switch LIDs all precede HCA LIDs.
        max_switch = max(sw.lid for sw in topo.switches)
        min_hca = min(h.lid for h in topo.hcas)
        assert max_switch < min_hca

    def test_idempotent(self, small_fattree):
        topo = small_fattree.topology
        lm = LidManager(topo)
        first = lm.assign_base_lids()
        second = lm.assign_base_lids()
        assert first == second
        assert lm.lids_consumed == len(first)

    def test_extra_lid_on_port(self, small_fattree):
        topo = small_fattree.topology
        lm = LidManager(topo)
        lm.assign_base_lids()
        port = topo.hcas[0].port(1)
        extra = lm.assign_extra_lid(port)
        assert topo.port_of_lid(extra) is port
        assert sorted(lm.lids_on_port(port)) == sorted([port.lid, extra])

    def test_extra_specific_lid(self, small_fattree):
        topo = small_fattree.topology
        lm = LidManager(topo)
        port = topo.hcas[0].port(1)
        assert lm.assign_extra_lid(port, lid=500) == 500

    def test_extra_lid_rollback_on_bind_failure(self, small_fattree):
        topo = small_fattree.topology
        lm = LidManager(topo)
        port = topo.hcas[0].port(1)
        lm.assign_extra_lid(port, lid=500)
        other = topo.hcas[1].port(1)
        # Binding fails (LID taken in topology registry); allocator must
        # not leak... assign() raises first because the allocator owns it.
        with pytest.raises(AddressingError):
            lm.assign_extra_lid(other, lid=500)

    def test_release(self, small_fattree):
        topo = small_fattree.topology
        lm = LidManager(topo)
        port = topo.hcas[0].port(1)
        lid = lm.assign_extra_lid(port)
        lm.release_lid(lid)
        assert topo.port_of_lid(lid) is None
        assert not lm.allocator.is_allocated(lid)

    def test_move_lid(self, small_fattree):
        topo = small_fattree.topology
        lm = LidManager(topo)
        a, b = topo.hcas[0].port(1), topo.hcas[1].port(1)
        lid = lm.assign_extra_lid(a)
        lm.move_lid(lid, b)
        assert topo.port_of_lid(lid) is b
        assert lm.allocator.is_allocated(lid)  # still owned


class TestDistribution:
    def test_initial_distribution_programs_all_switches(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        report = sm.initial_configure(with_discovery=False)
        topo = small_fattree.topology
        assert report.distribution.switches_updated == topo.num_switches
        m = min_blocks_for_lid_count(sm.lids_consumed)
        assert report.lft_smps == topo.num_switches * m

    def test_second_distribution_is_noop(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        sm.initial_configure(with_discovery=False)
        report = sm.incremental_reroute()
        assert report.lft_smps == 0  # nothing changed

    def test_full_reconfigure_resends_everything(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        sm.initial_configure(with_discovery=False)
        report = sm.full_reconfigure()
        topo = small_fattree.topology
        m = min_blocks_for_lid_count(sm.lids_consumed)
        assert report.lft_smps == topo.num_switches * m

    def test_pipelined_not_slower_than_serial(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        report = sm.initial_configure(with_discovery=False)
        assert (
            report.total_seconds_pipelined <= report.total_seconds_serial
        )

    def test_switch_lfts_match_tables(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        sm.initial_configure(with_discovery=False)
        tables = sm.current_tables
        for sw in small_fattree.topology.switches:
            for lid in small_fattree.topology.bound_lids():
                assert sw.lft.get(lid) == tables.port_for(sw.index, lid)


class TestSubnetManagerFlows:
    def test_distribute_before_compute_rejected(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        with pytest.raises(RoutingError):
            sm.distribute()

    def test_engine_by_name_or_instance(self, small_fattree):
        from repro.sm.routing.minhop import MinHopRouting

        sm1 = SubnetManager(small_fattree.topology, engine="ftree")
        assert sm1.engine.name == "ftree"
        sm2 = SubnetManager(
            small_fattree.topology, engine=MinHopRouting("least-loaded")
        )
        assert sm2.engine.balance == "least-loaded"

    def test_compute_without_lids_rejected(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        with pytest.raises(RoutingError):
            sm.compute_routing()

    def test_discovery_in_initial_configure(self, single_switch):
        sm = SubnetManager(single_switch.topology, built=single_switch)
        report = sm.initial_configure(with_discovery=True)
        assert report.discovery is not None
        assert report.discovery.num_nodes == 5

    def test_counts(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        sm.initial_configure(with_discovery=False)
        topo = small_fattree.topology
        assert sm.num_switches == topo.num_switches
        assert sm.lids_consumed == topo.num_switches + topo.num_hcas

    def test_pct_recorded(self, small_fattree):
        sm = SubnetManager(small_fattree.topology, built=small_fattree)
        report = sm.initial_configure(with_discovery=False)
        assert report.path_compute_seconds > 0
        assert (
            report.total_seconds_serial
            == report.path_compute_seconds + report.distribution.serial_time
        )
