"""Tests for switch-failure handling, safe swap, and engine fallback."""

import pytest

from repro.analysis.verification import verify_subnet
from repro.core.reconfig import VSwitchReconfigurer
from repro.errors import RoutingError, TopologyError
from repro.fabric.builders.generic import build_ring
from repro.fabric.presets import scaled_fattree
from repro.sm.subnet_manager import SubnetManager


@pytest.fixture
def running(small_fattree):
    sm = SubnetManager(
        small_fattree.topology, built=small_fattree, engine="minhop"
    )
    sm.initial_configure(with_discovery=False)
    return sm


class TestSwitchFailure:
    def test_spine_failure_rerouted(self, running):
        topo = running.topology
        spine = next(sw for sw in topo.switches if not sw.is_leaf)
        n_before = topo.num_switches
        report = running.handle_switch_failure(spine)
        assert topo.num_switches == n_before - 1
        assert report.path_compute_seconds > 0
        assert verify_subnet(running).ok

    def test_leaf_failure_rejected(self, running):
        leaf = next(sw for sw in running.topology.switches if sw.is_leaf)
        # Releasing the leaf's LID happens before the HCA check would fire,
        # so pre-check here mirrors real operator flow: removal refuses.
        with pytest.raises(TopologyError):
            running.topology.remove_switch(leaf)

    def test_indices_stay_dense(self, running):
        topo = running.topology
        spine = next(sw for sw in topo.switches if not sw.is_leaf)
        running.handle_switch_failure(spine)
        assert [sw.index for sw in topo.switches] == list(
            range(topo.num_switches)
        )
        assert spine.index == -1

    def test_lid_released(self, running):
        topo = running.topology
        spine = next(sw for sw in topo.switches if not sw.is_leaf)
        lid = spine.lid
        running.handle_switch_failure(spine)
        assert topo.port_of_lid(lid) is None
        assert not running.lid_manager.allocator.is_allocated(lid)

    def test_multiple_spine_failures(self, running):
        topo = running.topology
        for _ in range(3):
            spine = next(sw for sw in topo.switches if not sw.is_leaf)
            running.handle_switch_failure(spine)
        assert verify_subnet(running).ok

    def test_switch_with_bound_extra_lid_rejected(self, running):
        # remove_switch refuses while the switch still holds its LID.
        topo = running.topology
        spine = next(sw for sw in topo.switches if not sw.is_leaf)
        with pytest.raises(TopologyError):
            topo.remove_switch(spine)


class TestSafeSwap:
    def test_safe_swap_costs_more_smps(self, running):
        topo = running.topology
        lid_a = running.lid_manager.assign_extra_lid(topo.hcas[0].port(1))
        lid_b = running.lid_manager.assign_extra_lid(topo.hcas[-1].port(1))
        running.compute_routing()
        running.distribute()
        rec = VSwitchReconfigurer(running)
        n_prime, plain_smps = rec.predict_swap(lid_a, lid_b)
        report = rec.safe_swap_lids(lid_a, lid_b)
        assert report.mode == "safe-swap"
        assert report.switches_updated == n_prime
        # The invalidation phase adds (roughly) one more SMP per switch.
        assert report.lft_smps > plain_smps
        assert report.lft_smps <= 2 * plain_smps

    def test_safe_swap_end_state_matches_plain_swap(self, running):
        topo = running.topology
        lid_a = running.lid_manager.assign_extra_lid(topo.hcas[0].port(1))
        lid_b = running.lid_manager.assign_extra_lid(topo.hcas[-1].port(1))
        running.compute_routing()
        running.distribute()
        rec = VSwitchReconfigurer(running)
        before = {
            sw.name: (sw.lft.get(lid_a), sw.lft.get(lid_b))
            for sw in topo.switches
        }
        rec.safe_swap_lids(lid_a, lid_b)
        for sw in topo.switches:
            pa, pb = before[sw.name]
            assert sw.lft.get(lid_a) == pb
            assert sw.lft.get(lid_b) == pa

    def test_safe_swap_validates_lids(self, running):
        rec = VSwitchReconfigurer(running)
        with pytest.raises(Exception):
            rec.safe_swap_lids(1, 1)


class TestEngineFallback:
    def test_ftree_falls_back_on_ring(self):
        built = build_ring(4, 1)
        sm = SubnetManager(
            built.topology, engine="ftree", fallback_engine="minhop"
        )
        sm.assign_lids()
        tables = sm.compute_routing()
        assert tables.algorithm == "minhop"
        assert tables.metadata["fallback_from"] == "ftree"

    def test_no_fallback_raises(self):
        built = build_ring(4, 1)
        sm = SubnetManager(built.topology, engine="ftree")
        sm.assign_lids()
        with pytest.raises(RoutingError):
            sm.compute_routing()

    def test_fallback_unused_when_primary_works(self, small_fattree):
        sm = SubnetManager(
            small_fattree.topology,
            built=small_fattree,
            engine="ftree",
            fallback_engine="minhop",
        )
        sm.assign_lids()
        tables = sm.compute_routing()
        assert tables.algorithm == "ftree"
        assert "fallback_from" not in tables.metadata
