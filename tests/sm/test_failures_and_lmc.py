"""Tests for link-failure handling and classic LMC assignment."""

import pytest

from repro.errors import AddressingError, LidExhaustedError, TopologyError
from repro.fabric.addressing import LidAllocator
from repro.fabric.builders.generic import build_ring
from repro.fabric.node import Switch
from repro.fabric.presets import scaled_fattree
from repro.sm.lid_manager import LidManager
from repro.sm.subnet_manager import SubnetManager
from repro.sim.dataplane import DataPlaneSimulator


class TestLinkFailure:
    def _inter_switch_link(self, topo):
        for link in topo.links:
            if isinstance(link.a.node, Switch) and isinstance(
                link.b.node, Switch
            ):
                return link
        raise AssertionError("no inter-switch link")

    def test_failure_triggers_recompute_and_diff(self, small_fattree):
        sm = SubnetManager(
            small_fattree.topology, built=small_fattree, engine="minhop"
        )
        sm.initial_configure(with_discovery=False)
        link = self._inter_switch_link(small_fattree.topology)
        report = sm.handle_link_failure(link)
        assert report.path_compute_seconds > 0
        assert report.lft_smps > 0  # some blocks genuinely changed

    def test_traffic_flows_after_failure(self, small_fattree):
        sm = SubnetManager(
            small_fattree.topology, built=small_fattree, engine="minhop"
        )
        sm.initial_configure(with_discovery=False)
        topo = small_fattree.topology
        link = self._inter_switch_link(topo)
        sm.handle_link_failure(link)
        sim = DataPlaneSimulator(topo)
        for dst in topo.hcas[1:13]:
            sim.inject(topo.hcas[0].lid, dst.lid)
        stats = sim.run()
        assert stats.delivered == stats.injected

    def test_partitioning_failure_rejected(self):
        # A ring loses one link fine, but a 2-switch chain cannot.
        from repro.fabric.topology import Topology

        topo = Topology("chain")
        a = topo.add_switch("a", 4)
        b = topo.add_switch("b", 4)
        ha = topo.add_hca("ha")
        hb = topo.add_hca("hb")
        topo.connect(a, 1, ha, 1)
        topo.connect(b, 1, hb, 1)
        bridge = topo.connect(a, 2, b, 2)
        sm = SubnetManager(topo, engine="minhop")
        sm.initial_configure(with_discovery=False)
        with pytest.raises(TopologyError):
            sm.handle_link_failure(bridge)

    def test_ring_survives_single_failure(self):
        built = build_ring(5, 1)
        sm = SubnetManager(built.topology, engine="minhop")
        sm.initial_configure(with_discovery=False)
        link = self._inter_switch_link(built.topology)
        report = sm.handle_link_failure(link)
        topo = built.topology
        sim = DataPlaneSimulator(topo)
        for dst in topo.hcas[1:]:
            sim.inject(topo.hcas[0].lid, dst.lid)
        assert sim.run().delivered == len(topo.hcas) - 1


class TestAlignedRuns:
    def test_find_free_aligned_run(self):
        alloc = LidAllocator()
        alloc.assign(1)
        alloc.assign(2)
        start = alloc.find_free_aligned_run(4, 4)
        assert start == 4
        alloc.assign_range(start, 4)
        assert alloc.find_free_aligned_run(4, 4) == 8

    def test_assign_range_atomic(self):
        alloc = LidAllocator()
        alloc.assign(6)
        with pytest.raises(AddressingError):
            alloc.assign_range(4, 4)  # 6 is taken
        # Nothing from the failed range leaked.
        assert not alloc.is_allocated(4)
        assert not alloc.is_allocated(5)

    def test_exhaustion(self):
        alloc = LidAllocator(first=1, last=7)
        with pytest.raises(LidExhaustedError):
            alloc.find_free_aligned_run(8, 8)

    def test_validation(self):
        alloc = LidAllocator()
        with pytest.raises(AddressingError):
            alloc.find_free_aligned_run(0, 4)


class TestLmc:
    def test_lmc_assigns_aligned_sequential_block(self, small_fattree):
        topo = small_fattree.topology
        lm = LidManager(topo)
        port = topo.hcas[0].port(1)
        lids = lm.assign_lmc_lids(port, lmc=2)
        assert len(lids) == 4
        assert lids == list(range(lids[0], lids[0] + 4))
        assert lids[0] % 4 == 0
        for lid in lids:
            assert topo.port_of_lid(lid) is port

    def test_lmc_zero_is_single_lid(self, small_fattree):
        lm = LidManager(small_fattree.topology)
        lids = lm.assign_lmc_lids(small_fattree.topology.hcas[0].port(1), 0)
        assert len(lids) == 1

    def test_lmc_bounds(self, small_fattree):
        lm = LidManager(small_fattree.topology)
        with pytest.raises(AddressingError):
            lm.assign_lmc_lids(small_fattree.topology.hcas[0].port(1), 8)

    def test_lmc_block_cannot_follow_a_vm(self, small_fattree):
        """The section V-A contrast: classic LMC LIDs are anchored to the
        aligned block, so per-VM migration with a sequential block is
        impossible once a *single* LID must move — while the vSwitch
        prepopulated scheme hands out non-sequential LIDs freely."""
        topo = small_fattree.topology
        lm = LidManager(topo)
        port_a = topo.hcas[0].port(1)
        port_b = topo.hcas[1].port(1)
        lids = lm.assign_lmc_lids(port_a, lmc=2)
        # Moving just one of the 4 LIDs to another port breaks the
        # sequential-block invariant: the remaining LIDs of port_a no
        # longer form a full 2^lmc block.
        lm.move_lid(lids[1], port_b)
        remaining = lm.lids_on_port(port_a)
        assert len(remaining) == 3
        base = remaining[0]
        assert remaining != list(range(base, base + 4))
        # The vSwitch scheme has no such invariant: any spread works.
        extra = lm.assign_extra_lid(port_a, lid=200)
        assert extra == 200
