"""Tests for the channel-dependency-graph deadlock analysis (section VI-C)."""

import pytest

from repro.errors import DeadlockError
from repro.fabric.builders.generic import build_ring
from repro.fabric.presets import scaled_fattree
from repro.sm.deadlock import (
    ChannelDependencyGraph,
    find_cycle,
    is_deadlock_free,
    routing_dependencies,
    transition_is_deadlock_free,
)
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager


def request_for(built):
    sm = SubnetManager(built.topology, built=built)
    sm.assign_lids()
    return RoutingRequest.from_topology(built.topology, built=built)


class TestCdg:
    def test_acyclic_chain(self):
        cdg = ChannelDependencyGraph()
        cdg.add_dependency(((0, 1), (1, 2)))
        cdg.add_dependency(((1, 2), (2, 3)))
        assert cdg.is_acyclic()
        assert cdg.num_channels == 3
        assert cdg.num_dependencies == 2

    def test_cycle_detected(self):
        cdg = ChannelDependencyGraph()
        cdg.add_dependency(((0, 1), (1, 0)))
        cdg.add_dependency(((1, 0), (0, 1)))
        cycle = cdg.find_cycle()
        assert cycle is not None
        assert set(cycle) == {(0, 1), (1, 0)}

    def test_non_consecutive_rejected(self):
        cdg = ChannelDependencyGraph()
        with pytest.raises(DeadlockError):
            cdg.add_dependency(((0, 1), (2, 3)))

    def test_transactional_insert_rolls_back(self):
        cdg = ChannelDependencyGraph()
        assert cdg.try_add_dependencies([((0, 1), (1, 2))])
        deps_before = cdg.num_dependencies
        # This batch closes a cycle: must be rejected atomically.
        bad = [((1, 2), (2, 0)), ((2, 0), (0, 1))]
        assert not cdg.try_add_dependencies(bad)
        assert cdg.num_dependencies == deps_before
        assert cdg.is_acyclic()

    def test_try_add_accepts_duplicates(self):
        cdg = ChannelDependencyGraph()
        dep = ((0, 1), (1, 2))
        assert cdg.try_add_dependencies([dep])
        assert cdg.try_add_dependencies([dep])
        assert cdg.num_dependencies == 1


class TestRoutingDeadlockFreedom:
    def test_updn_is_deadlock_free_everywhere(self):
        for built in [scaled_fattree("2l-small"), build_ring(6, 2)]:
            req = request_for(built)
            tables = create_engine("updn").compute(req)
            assert is_deadlock_free(tables.ports, req.view)

    def test_minhop_on_ring_deadlocks(self):
        # The canonical example: minimal routing around a ring produces a
        # cyclic channel dependency.
        req = request_for(build_ring(6, 2))
        tables = create_engine("minhop").compute(req)
        assert not is_deadlock_free(tables.ports, req.view)
        assert find_cycle(tables.ports, req.view) is not None

    def test_dfsssp_per_layer_freedom_on_ring(self):
        req = request_for(build_ring(6, 2))
        tables = create_engine("dfsssp").compute(req)
        term_lids = [t.lid for t in req.terminals]
        assert is_deadlock_free(
            tables.ports,
            req.view,
            lid_to_vl=tables.metadata["lid_to_vl"],
            lids=term_lids,
        )

    def test_minhop_terminal_traffic_on_fattree_free(self):
        # Host-to-host traffic in a fat-tree follows up/down paths.
        req = request_for(scaled_fattree("2l-small"))
        tables = create_engine("minhop").compute(req)
        term_lids = [t.lid for t in req.terminals]
        assert is_deadlock_free(tables.ports, req.view, lids=term_lids)

    def test_dependencies_terminate_at_delivery(self):
        req = request_for(scaled_fattree("2l-small"))
        tables = create_engine("minhop").compute(req)
        deps = routing_dependencies(
            tables.ports, req.view, [req.terminals[0].lid]
        )
        # 2-level fat-tree: longest chains are leaf->spine->leaf, so every
        # dependency's second channel ends at the destination leaf.
        dest = req.terminals[0].switch_index
        for (_, b) in deps:
            assert b[1] == dest


class TestTransition:
    def test_identity_transition_free(self):
        req = request_for(scaled_fattree("2l-small"))
        tables = create_engine("updn").compute(req)
        assert transition_is_deadlock_free(
            tables.ports, tables.ports.copy(), req.view
        )

    def test_swap_transition_union_checked(self):
        # Swapping two LIDs between leaves mixes old and new entries; the
        # union of dependencies is what decides transition safety
        # (section VI-C). With up/down routing both old and new paths are
        # legal, so the union stays acyclic.
        req = request_for(scaled_fattree("2l-small"))
        tables = create_engine("updn").compute(req)
        old = tables.ports.copy()
        new = tables.ports.copy()
        a = req.terminals[0].lid
        b = req.terminals[-1].lid
        new[:, [a, b]] = new[:, [b, a]]
        term_lids = [t.lid for t in req.terminals]
        assert transition_is_deadlock_free(old, new, req.view, lids=term_lids)

    def test_transition_can_deadlock_on_ring(self):
        # Two minhop routings on a ring: each may be cyclic already; the
        # union certainly is — the risk the paper accepts and defers to IB
        # timeouts.
        req = request_for(build_ring(6, 2))
        tables = create_engine("minhop").compute(req)
        assert not transition_is_deadlock_free(
            tables.ports, tables.ports.copy(), req.view
        )
