"""The versioned routing cache: warm hits, incremental repair, equivalence.

The acceptance criteria of the incremental-routing work, asserted through
the cache's own counters:

* a warm-cache ``compute_routing`` performs **zero** BFS sweeps;
* after a link failure the repair recomputes strictly fewer than ``n``
  source trees (and more than zero);
* cached / incrementally repaired tables are **byte-identical** to a
  from-scratch computation — including under randomized failure + VM-churn
  sequences (property-based, below).
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.fabric.builders.generic import build_ring
from repro.fabric.graph import all_pairs_switch_distances
from repro.fabric.node import Switch
from repro.fabric.presets import scaled_fattree
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.cache import RoutingState
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager

#: Engines that opt into the shared cache on arbitrary topologies.
CACHED_ENGINES = ("minhop", "updn")


def switch_graph(topology) -> nx.Graph:
    """The inter-switch graph as networkx, for bridge/cut-vertex queries."""
    view = topology.fabric_view()
    g = nx.Graph()
    g.add_nodes_from(range(view.num_switches))
    for s in range(view.num_switches):
        for nb, _ in view.neighbors(s):
            g.add_edge(s, nb)
    return g


def safe_links(topology):
    """Inter-switch cables whose loss cannot partition the switch graph."""
    bridges = set()
    for u, v in nx.bridges(switch_graph(topology)):
        bridges.add((u, v))
        bridges.add((v, u))
    out = []
    for link in topology.links:
        a, b = link.ends
        if isinstance(a.node, Switch) and isinstance(b.node, Switch):
            if (a.node.index, b.node.index) not in bridges:
                out.append(link)
    return out


def safe_switches(topology):
    """Hostless switches whose removal cannot partition the switch graph."""
    cuts = set(nx.articulation_points(switch_graph(topology)))
    hosted = set()
    for link in topology.links:
        a, b = link.ends
        if isinstance(a.node, Switch) != isinstance(b.node, Switch):
            sw = a.node if isinstance(a.node, Switch) else b.node
            hosted.add(sw.index)
    return [
        sw
        for sw in topology.switches
        if sw.index not in cuts and sw.index not in hosted
    ]


def fresh_tables(topology, built, engine: str):
    """From-scratch compute with no cache attached (the reference)."""
    request = RoutingRequest.from_topology(topology, built=built)
    return create_engine(engine).compute(request)


def make_sm(engine: str = "minhop"):
    built = scaled_fattree("2l-small")
    sm = SubnetManager(built.topology, engine=engine, built=built)
    sm.initial_configure(with_discovery=False)
    return built, sm


class TestVersionCounter:
    def test_switch_graph_mutations_bump(self):
        topo = scaled_fattree("2l-small").topology
        v = topo.version
        a = topo.add_switch("vx1", 4)
        b = topo.add_switch("vx2", 4)
        assert topo.version > v
        v = topo.version
        topo.connect(a, 1, b, 1)
        assert topo.version > v
        v = topo.version
        topo.remove_switch(a)
        assert topo.version > v

    def test_hca_cabling_and_lids_do_not_bump(self):
        from repro.fabric.topology import Topology

        topo = Topology()
        sw = topo.add_switch("s0", 4)
        hca = topo.add_hca("h0")
        v = topo.version
        topo.connect(hca, 1, sw, 1)  # HCA cabling: switch graph unchanged
        assert topo.version == v
        sm = SubnetManager(topo)
        sm.assign_lids()
        lid = sm.lid_manager.assign_extra_lid(hca.port(1))
        sm.lid_manager.release_lid(lid)
        assert topo.version == v  # LID churn never bumps

    def test_explicit_invalidation_bumps(self):
        topo = scaled_fattree("2l-small").topology
        v = topo.version
        topo.invalidate_fabric_view()
        assert topo.version > v


class TestWarmCache:
    @pytest.mark.parametrize("engine", ("minhop", "updn", "ftree"))
    def test_second_compute_does_zero_bfs_sweeps(self, engine):
        _, sm = make_sm(engine)
        before = sm.routing_state.stats.snapshot()
        tables = sm.compute_routing()
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["bfs_sweeps"] == 0
        assert delta["misses"] == 0
        assert delta["hits"] > 0
        assert tables is sm.current_tables

    def test_warm_tables_equal_cold_tables(self):
        built, sm = make_sm("minhop")
        cold = sm.current_tables.ports.tobytes()
        warm = sm.compute_routing().ports.tobytes()
        scratch = fresh_tables(built.topology, built, "minhop").ports.tobytes()
        assert cold == warm == scratch

    def test_lid_churn_keeps_cache_warm(self):
        built, sm = make_sm("minhop")
        topo = built.topology
        # VM-churn stand-in: extra LIDs come and go on HCA ports, exactly
        # what boot/shutdown does under the vSwitch schemes.
        port = topo.terminals()[0]
        hca_port = topo.port_of_lid(port.lid)
        extra = sm.lid_manager.assign_extra_lid(hca_port)
        before = sm.routing_state.stats.snapshot()
        sm.compute_routing()
        sm.lid_manager.release_lid(extra)
        sm.compute_routing()
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["bfs_sweeps"] == 0
        assert delta["misses"] == 0

    def test_candidate_arrays_cached(self):
        _, sm = make_sm("minhop")
        before = sm.routing_state.stats.snapshot()
        sm.compute_routing()
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["candidate_misses"] == 0
        assert delta["candidate_hits"] > 0


class TestIncrementalRepair:
    def test_link_failure_repairs_fewer_than_n_sources(self):
        built, sm = make_sm("minhop")
        n = built.topology.num_switches
        link = safe_links(built.topology)[0]
        before = sm.routing_state.stats.snapshot()
        sm.handle_link_failure(link)
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["repairs"] == 1
        assert delta["full_recomputes"] == 0
        assert 0 < delta["sources_repaired"] < n
        assert delta["bfs_sweeps"] == delta["sources_repaired"]

    def test_repaired_tables_byte_identical(self):
        built, sm = make_sm("minhop")
        link = safe_links(built.topology)[0]
        sm.handle_link_failure(link)
        scratch = fresh_tables(built.topology, built, "minhop")
        assert sm.current_tables.ports.tobytes() == scratch.ports.tobytes()

    def test_repaired_matrix_equals_recomputed(self):
        built, sm = make_sm("minhop")
        sm.handle_link_failure(safe_links(built.topology)[0])
        repaired = sm.routing_state.distances()
        full = all_pairs_switch_distances(built.topology.fabric_view())
        assert np.array_equal(repaired, full)

    def test_switch_failure_repairs_incrementally(self):
        built, sm = make_sm("minhop")
        n = built.topology.num_switches
        victim = safe_switches(built.topology)[0]
        before = sm.routing_state.stats.snapshot()
        sm.handle_switch_failure(victim)
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["repairs"] == 1
        assert delta["full_recomputes"] == 0
        assert delta["sources_repaired"] < n
        scratch = fresh_tables(built.topology, built, "minhop")
        assert sm.current_tables.ports.tobytes() == scratch.ports.tobytes()

    def test_consecutive_failures_chain(self):
        built, sm = make_sm("minhop")
        for _ in range(3):
            links = safe_links(built.topology)
            if not links:
                break
            sm.handle_link_failure(links[0])
        scratch = fresh_tables(built.topology, built, "minhop")
        assert sm.current_tables.ports.tobytes() == scratch.ports.tobytes()
        assert sm.routing_state.stats.full_recomputes == 1  # the cold start

    def test_unrecorded_mutation_falls_back_to_full(self):
        built, sm = make_sm("minhop")
        topo = built.topology
        # Bump the version behind the SM's back: no RepairEvent recorded,
        # so the repair chain is broken and the cache must drop the matrix.
        topo.invalidate_fabric_view()
        before = sm.routing_state.stats.snapshot()
        dist = sm.routing_state.distances()
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["full_recomputes"] == 1
        assert np.array_equal(dist, all_pairs_switch_distances(topo.fabric_view()))

    def test_metadata_matrix_is_frozen_snapshot(self):
        built, sm = make_sm("minhop")
        old = sm.current_tables.metadata["switch_distances"]
        old_bytes = old.tobytes()
        sm.handle_link_failure(safe_links(built.topology)[0])
        # The repair must not mutate matrices already handed out.
        assert old.tobytes() == old_bytes


class TestAdditionRepair:
    """Addition-side repair events: links and switches appearing live."""

    @staticmethod
    def _spines_with_free_ports(built):
        return [
            sw
            for sw in built.roots
            if next(sw.free_ports(), None) is not None
        ]

    def test_link_addition_repairs_fewer_than_n_sources(self):
        built, sm = make_sm("minhop")
        topo = built.topology
        n = topo.num_switches
        a, b = self._spines_with_free_ports(built)[:2]
        before = sm.routing_state.stats.snapshot()
        topo.add_link(a, next(a.free_ports()).num, b, next(b.free_ports()).num)
        sm.routing_state.note_link_addition(a.index, b.index)
        dist = sm.routing_state.distances()
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["repairs"] == 1
        assert delta["full_recomputes"] == 0
        assert 0 < delta["sources_repaired"] < n
        assert np.array_equal(
            dist, all_pairs_switch_distances(topo.fabric_view())
        )

    def test_link_addition_tables_byte_identical(self):
        built, sm = make_sm("minhop")
        topo = built.topology
        a, b = self._spines_with_free_ports(built)[:2]
        topo.add_link(a, next(a.free_ports()).num, b, next(b.free_ports()).num)
        sm.routing_state.note_link_addition(a.index, b.index)
        sm.compute_routing()
        scratch = fresh_tables(topo, built, "minhop")
        assert sm.current_tables.ports.tobytes() == scratch.ports.tobytes()
        assert sm.routing_state.stats.full_recomputes == 1  # cold start only

    def test_switch_addition_repairs_incrementally(self):
        built, sm = make_sm("minhop")
        topo = built.topology
        peers = self._spines_with_free_ports(built)[:2]
        sw = topo.add_switch("grown", 4)
        sm.routing_state.note_switch_addition(sw.index)
        for local_port, peer in enumerate(peers, start=1):
            topo.add_link(sw, local_port, peer, next(peer.free_ports()).num)
            sm.routing_state.note_link_addition(sw.index, peer.index)
        before = sm.routing_state.stats.snapshot()
        dist = sm.routing_state.distances()
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["repairs"] == 1
        assert delta["full_recomputes"] == 0
        assert dist.shape == (topo.num_switches, topo.num_switches)
        assert np.array_equal(
            dist, all_pairs_switch_distances(topo.fabric_view())
        )

    def test_restore_after_failure_chains_in_one_sync(self):
        built, sm = make_sm("minhop")
        topo = built.topology
        link = safe_links(topo)[0]
        end_a, end_b = link.ends
        u, v = end_a.node.index, end_b.node.index
        topo.remove_link(link)
        sm.routing_state.note_link_failure(u, v)
        topo.restore_link(link)
        sm.routing_state.note_link_restored(u, v)
        before = sm.routing_state.stats.snapshot()
        dist = sm.routing_state.distances()
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["repairs"] == 1
        assert delta["full_recomputes"] == 0
        assert np.array_equal(
            dist, all_pairs_switch_distances(topo.fabric_view())
        )

    def test_cable_between_two_added_switches_bails_to_full(self):
        built, sm = make_sm("minhop")
        topo = built.topology
        peers = self._spines_with_free_ports(built)[:2]
        added = []
        for i, peer in enumerate(peers):
            sw = topo.add_switch(f"pair{i}", 4)
            sm.routing_state.note_switch_addition(sw.index)
            topo.add_link(sw, 1, peer, next(peer.free_ports()).num)
            sm.routing_state.note_link_addition(sw.index, peer.index)
            added.append(sw)
        # A cable between the two new switches: both columns are still
        # placeholders, so the repair must refuse and recompute fully.
        topo.add_link(added[0], 2, added[1], 2)
        sm.routing_state.note_link_addition(added[0].index, added[1].index)
        before = sm.routing_state.stats.snapshot()
        dist = sm.routing_state.distances()
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["full_recomputes"] == 1
        assert np.array_equal(
            dist, all_pairs_switch_distances(topo.fabric_view())
        )

    def test_remove_added_switch_in_same_chain_bails_to_full(self):
        built, sm = make_sm("minhop")
        topo = built.topology
        peers = self._spines_with_free_ports(built)[:2]
        sw = topo.add_switch("ephemeral", 4)
        sm.routing_state.note_switch_addition(sw.index)
        for local_port, peer in enumerate(peers, start=1):
            topo.add_link(sw, local_port, peer, next(peer.free_ports()).num)
            sm.routing_state.note_link_addition(sw.index, peer.index)
        removed_index = sw.index
        topo.remove_switch(sw)
        sm.routing_state.note_switch_removal(removed_index)
        before = sm.routing_state.stats.snapshot()
        dist = sm.routing_state.distances()
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["full_recomputes"] == 1
        assert np.array_equal(
            dist, all_pairs_switch_distances(topo.fabric_view())
        )

    def test_hca_cabling_records_nothing(self):
        built, sm = make_sm("minhop")
        topo = built.topology
        sm.routing_state.distances()
        hca = topo.add_hca("late-host")
        # Leaves are fully cabled at this profile; any switch with a free
        # port works — HCA cabling never touches the switch graph.
        attach = self._spines_with_free_ports(built)[0]
        v = topo.version
        topo.add_link(hca, 1, attach, next(attach.free_ports()).num)
        sm.routing_state.note_link_addition(-1, attach.index)
        assert topo.version == v  # no bump, and...
        before = sm.routing_state.stats.snapshot()
        sm.routing_state.distances()
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["repairs"] == 0  # ...no event recorded: cache warm
        assert delta["bfs_sweeps"] == 0


class TestTransportSharing:
    def test_transport_uses_shared_state(self):
        _, sm = make_sm("minhop")
        assert sm.transport._distance_source is sm.routing_state

    def test_transport_distances_cost_no_extra_sweeps(self):
        _, sm = make_sm("minhop")
        sm.transport.invalidate_distances()
        before = sm.routing_state.stats.snapshot()
        dist = sm.transport._switch_distances()
        delta = sm.routing_state.stats.delta_since(before)
        assert delta["bfs_sweeps"] == 0
        root = sm.transport._sm_root_switch().index
        assert np.array_equal(dist, sm.routing_state.distances()[root])


class TestRequestCaches:
    def test_terminal_map_built_once(self, routed_fattree):
        _, _, request = routed_fattree
        assert request.terminal_map() is request.terminal_map()
        assert request.port_maps() is request.port_maps()

    def test_trace_path_survives_later_mutations(self):
        built, sm = make_sm("minhop")
        tables = sm.current_tables
        request = sm.last_request
        t = request.terminals[0]
        path_before = tables.trace_path(request, 0, t.lid)
        # Mutate the topology after the fact: the old request must keep
        # describing the graph it was computed on.
        built.topology.add_switch("late-switch", 4)
        assert tables.trace_path(request, 0, t.lid) == path_before


class TestObservability:
    def test_span_and_metrics_report_cache_activity(self):
        from repro.obs import get_hub

        _, sm = make_sm("minhop")
        sm.compute_routing()
        exposition = get_hub().metrics.render_prometheus()
        assert "repro_routing_cache_hits_total" in exposition
        assert "repro_routing_bfs_sweeps_total" in exposition
        spans = [s for s in get_hub().all_spans() if s.name == "path_compute"]
        assert spans[-1].attributes.get("cache_hit") is True
        assert spans[-1].attributes.get("bfs_sweeps") == 0


# -- property-based equivalence under random failures + churn -----------------


@pytest.mark.parametrize("engine", CACHED_ENGINES)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_cached_tables_equal_scratch_after_random_churn(engine, data):
    """After any survivable failure/churn sequence, cached == from-scratch."""
    built = scaled_fattree("2l-small")
    topo = built.topology
    sm = SubnetManager(topo, engine=engine, built=built)
    sm.initial_configure(with_discovery=False)
    extra_lids = []

    ops = data.draw(
        st.lists(
            st.sampled_from(
                ["fail_link", "fail_switch", "boot", "stop", "reroute"]
            ),
            min_size=1,
            max_size=6,
        )
    )
    for op in ops:
        if op == "fail_link":
            links = safe_links(topo)
            if not links:
                continue
            link = links[data.draw(st.integers(0, len(links) - 1))]
            sm.handle_link_failure(link)
        elif op == "fail_switch":
            victims = safe_switches(topo)
            if not victims or topo.num_switches <= 4:
                continue
            victim = victims[data.draw(st.integers(0, len(victims) - 1))]
            try:
                sm.handle_switch_failure(victim)
            except TopologyError:
                # Leaf/hosted guard tightened elsewhere; never expected here.
                raise
        elif op == "boot":
            terms = topo.terminals()
            t = terms[data.draw(st.integers(0, len(terms) - 1))]
            port = topo.port_of_lid(t.lid)
            extra_lids.append(sm.lid_manager.assign_extra_lid(port))
        elif op == "stop":
            if not extra_lids:
                continue
            sm.lid_manager.release_lid(extra_lids.pop())
        elif op == "reroute":
            sm.incremental_reroute()

    tables = sm.compute_routing()
    scratch = fresh_tables(topo, built, engine)
    assert tables.ports.tobytes() == scratch.ports.tobytes()


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(seed=st.integers(0, 2**32 - 1))
def test_ring_link_failures_repair_correctly(seed):
    """Non-tree graphs: repaired distances stay exact on cyclic fabrics."""
    rng = np.random.default_rng(seed)
    built = build_ring(6, 1)
    topo = built.topology
    sm = SubnetManager(topo, engine="minhop", built=built)
    sm.initial_configure(with_discovery=False)
    links = safe_links(topo)
    if links:
        sm.handle_link_failure(links[int(rng.integers(len(links)))])
    assert np.array_equal(
        sm.routing_state.distances(),
        all_pairs_switch_distances(topo.fabric_view()),
    )
