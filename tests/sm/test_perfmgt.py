"""Tests for PMA counters and the performance manager."""

import pytest

from repro.errors import ReproError, TopologyError
from repro.fabric.node import PortCounters, Switch
from repro.fabric.presets import scaled_fattree
from repro.sim.dataplane import DataPlaneSimulator
from repro.sm.perfmgt import PerformanceManager
from repro.sm.subnet_manager import SubnetManager
from repro.workloads.traffic import all_to_all_flows


@pytest.fixture
def loaded_subnet(small_fattree):
    sm = SubnetManager(small_fattree.topology, built=small_fattree)
    sm.initial_configure(with_discovery=False)
    topo = small_fattree.topology
    sim = DataPlaneSimulator(topo, channel_credits=4)
    lids = [h.lid for h in topo.hcas[:10]]
    sim.inject_flows(all_to_all_flows(lids), spacing=1e-7)
    sim.run()
    return sm, sim


class TestPortCounters:
    def test_counters_increment_on_traffic(self, loaded_subnet):
        sm, sim = loaded_subnet
        total_xmit = sum(
            c.xmit_packets
            for sw in sm.topology.switches
            for c in sw.counters.values()
        )
        assert total_xmit > 0

    def test_xmit_equals_rcv_fabric_wide(self, loaded_subnet):
        # Every transit transmit is someone's receive. Port 0 is the
        # management endpoint where MAD traffic *terminates* (the SM's
        # LFT writes land there as receives with no matching switch
        # transmit), so only external ports are conserved.
        sm, _ = loaded_subnet
        xmit = sum(
            c.xmit_packets
            for sw in sm.topology.switches
            for num, c in sw.counters.items()
            if num >= 1
        )
        rcv = sum(
            c.rcv_packets
            for sw in sm.topology.switches
            for num, c in sw.counters.items()
            if num >= 1
        )
        assert xmit == rcv

    def test_no_discards_on_clean_run(self, loaded_subnet):
        sm, _ = loaded_subnet
        discards = sum(
            c.xmit_discards
            for sw in sm.topology.switches
            for c in sw.counters.values()
        )
        assert discards == 0

    def test_bad_port_rejected(self):
        sw = Switch("s", 4)
        with pytest.raises(TopologyError):
            sw.port_counters(9)

    def test_reset(self):
        c = PortCounters()
        c.xmit_packets = 5
        c.hoq_discards = 2
        c.add_wait(1e-6)
        c.reset()
        assert all(v == 0 for v in c.as_dict().values())
        assert set(c.as_dict()) == set(PortCounters.FIELDS)

    def test_xmit_discards_sums_causes(self):
        c = PortCounters()
        c.hoq_discards = 3
        c.unroutable_discards = 4
        assert c.xmit_discards == 7
        assert c.as_dict()["xmit_discards"] == 7

    def test_pma_view_wraps_at_32_bits(self):
        c = PortCounters()
        c.xmit_packets = 2**32 + 5
        c.rcv_data = 2**33 + 7
        view = c.pma_view()
        assert view["xmit_packets"] == 5
        assert view["rcv_data"] == 7
        # The live field keeps the unwrapped total.
        assert c.xmit_packets == 2**32 + 5

    def test_add_wait_accumulates_nanosecond_ticks(self):
        c = PortCounters()
        c.add_wait(1.5e-6)
        c.add_wait(0.5e-6)
        c.add_wait(-1.0)  # ignored: waits are non-negative
        assert c.xmit_wait == 2000


class TestPerformanceManager:
    def test_sweep_accounts_mads(self, loaded_subnet):
        sm, _ = loaded_subnet
        perf = PerformanceManager(sm)
        before = sm.transport.stats.total_smps
        rows = perf.sweep()
        assert rows, "loaded fabric must show utilization"
        assert (
            sm.transport.stats.total_smps
            == before + sm.topology.num_switches
        )
        assert perf.sweeps == 1

    def test_hot_links_sorted(self, loaded_subnet):
        sm, _ = loaded_subnet
        perf = PerformanceManager(sm)
        hot = perf.hot_links(top=3)
        assert len(hot) == 3
        assert hot[0].xmit_packets >= hot[1].xmit_packets >= hot[2].xmit_packets
        with pytest.raises(ReproError):
            perf.hot_links(top=0)

    def test_discard_hotspots_after_invalidation(self, loaded_subnet):
        from repro.core.reconfig import VSwitchReconfigurer

        sm, _ = loaded_subnet
        topo = sm.topology
        victim = topo.hcas[-1].lid
        VSwitchReconfigurer(sm).invalidate_lid(victim)
        sim = DataPlaneSimulator(topo)
        sim.inject(topo.hcas[0].lid, victim)
        sim.run()
        perf = PerformanceManager(sm)
        spots = perf.discard_hotspots()
        assert len(spots) >= 1
        assert spots[0].xmit_discards >= 1

    def test_utilization_skew_reasonable(self, loaded_subnet):
        sm, _ = loaded_subnet
        perf = PerformanceManager(sm)
        skew = perf.utilization_skew()
        assert skew >= 1.0
        assert skew < 10.0  # minhop lid-mod keeps all-to-all fairly flat

    def test_reset_all(self, loaded_subnet):
        sm, _ = loaded_subnet
        perf = PerformanceManager(sm)
        perf.reset_all()
        assert perf.utilization_skew() == 0.0
