"""Property-based check for live topology mutation.

The invariant: after *any* viable sequence of runtime mutations —
applied one at a time through the deferred trap pipeline, each followed
by a reroute — the warm (incrementally repaired) routing tables are
byte-identical to a cold recompute on the final topology, for the
vectorized minhop engine and for the structured ftree engine, with and
without sharded path-computation workers.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.fabric.builders.generic import build_random_regular
from repro.fabric.node import Switch
from repro.fabric.presets import scaled_fattree
from repro.fabric.topology import TopologyMutation
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager
from repro.sm.traps import FabricEventManager

# Op codes the hypothesis sequence draws from; the interpreter skips any
# op that is not viable in the current state, so every sequence is legal.
REMOVE_LINK, RESTORE_LINK, ADD_LINK, ADD_SWITCH, REMOVE_SWITCH = range(5)


def switch_links(topo):
    return [
        link
        for link in topo.links
        if isinstance(link.a.node, Switch) and isinstance(link.b.node, Switch)
    ]


def removal_keeps_connected(topo, link):
    """BFS over the switch graph without *link*."""
    adjacency = {}
    for other in switch_links(topo):
        if other is link:
            continue
        a, b = other.a.node.name, other.b.node.name
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    names = [sw.name for sw in topo.switches]
    if not names:
        return True
    seen = {names[0]}
    frontier = [names[0]]
    while frontier:
        nxt = frontier.pop()
        for peer in adjacency.get(nxt, ()):
            if peer not in seen:
                seen.add(peer)
                frontier.append(peer)
    return len(seen) == len(names)


def free_switch_ports(topo):
    out = []
    for sw in topo.switches:
        port = next(sw.free_ports(), None)
        if port is not None:
            out.append((sw, port.num))
    return out


def plan_op(sm, code, pick, removed, grown, *, link_ops_only):
    """Turn (op code, pick) into a viable mutation, or None to skip."""
    topo = sm.topology
    if code == REMOVE_LINK:
        viable = [
            link
            for link in switch_links(topo)
            if removal_keeps_connected(topo, link)
        ]
        if not viable:
            return None
        link = viable[pick % len(viable)]
        return TopologyMutation(
            kind="remove_link",
            a=link.a.node.name,
            port_a=link.a.num,
            b=link.b.node.name,
            port_b=link.b.num,
        )
    if code == RESTORE_LINK:
        if not removed:
            return None
        candidate = removed.pop(pick % len(removed))
        return TopologyMutation(
            kind="restore_link",
            a=candidate.a,
            port_a=candidate.port_a,
            b=candidate.b,
            port_b=candidate.port_b,
        )
    if link_ops_only:
        return None
    if code == ADD_LINK:
        frees = free_switch_ports(topo)
        pairs = [
            (a, pa, b, pb)
            for i, (a, pa) in enumerate(frees)
            for (b, pb) in frees[i + 1 :]
            if topo.node(a.name).port(pa).link is None
        ]
        pairs = [
            (a, pa, b, pb)
            for (a, pa, b, pb) in pairs
            if b.name
            not in {
                p.remote.node.name
                for p in a.connected_ports()
                if p.remote is not None
            }
        ]
        if not pairs:
            return None
        a, pa, b, pb = pairs[pick % len(pairs)]
        return TopologyMutation(
            kind="add_link", a=a.name, port_a=pa, b=b.name, port_b=pb
        )
    if code == ADD_SWITCH:
        frees = free_switch_ports(topo)
        if len(frees) < 2:
            return None
        (a, pa), (b, pb) = frees[pick % len(frees)], frees[(pick + 1) % len(frees)]
        if a is b:
            return None
        name = f"grown{len(grown)}"
        grown.append(name)
        return TopologyMutation(
            kind="add_switch",
            a=name,
            num_ports=4,
            cables=((1, a.name, pa), (2, b.name, pb)),
        )
    if code == REMOVE_SWITCH:
        victims = [
            name
            for name in grown
            if name in topo
            and removal_ok_for_switch(topo, topo.node(name))
        ]
        if not victims:
            return None
        return TopologyMutation(
            kind="remove_switch", a=victims[pick % len(victims)]
        )
    return None


def removal_ok_for_switch(topo, sw):
    """All cables of *sw* can go and the rest stays connected."""
    adjacency = {}
    for link in switch_links(topo):
        a, b = link.a.node.name, link.b.node.name
        if sw.name in (a, b):
            continue
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    names = [s.name for s in topo.switches if s is not sw]
    if not names:
        return False
    seen = {names[0]}
    frontier = [names[0]]
    while frontier:
        nxt = frontier.pop()
        for peer in adjacency.get(nxt, ()):
            if peer not in seen:
                seen.add(peer)
                frontier.append(peer)
    return len(seen) == len(names)


def run_sequence(sm, engine, ops, *, link_ops_only=False):
    events = FabricEventManager(sm)
    removed = []
    grown = []
    performed = 0
    for code, pick in ops:
        mutation = plan_op(
            sm, code, pick, removed, grown, link_ops_only=link_ops_only
        )
        if mutation is None:
            continue
        try:
            events.report_topology_change(mutation)
        except TopologyError:
            continue  # refused and rolled back — state unchanged
        if mutation.kind == "remove_link":
            removed.append(mutation)
        events.pump(force=True)
        performed += 1
    # Warm (event-chain repaired) tables vs a from-scratch cold compute.
    # Compare with whatever algorithm the SM actually selected: a
    # degraded tree makes ftree fall back, and the fallback must be
    # byte-stable too.
    request = RoutingRequest.from_topology(sm.topology, built=sm.built)
    cold = create_engine(sm.current_tables.algorithm).compute(request)
    assert sm.current_tables.ports.shape == cold.ports.shape
    assert sm.current_tables.ports.tobytes() == cold.ports.tobytes()
    from repro.analysis.verification import verify_subnet

    # static=False: minhop on an unstructured (Jellyfish) graph is
    # legitimately deadlock-prone — the CDG finding is an engine
    # property, not a mutation-repair defect. Delivery and SM/hardware
    # consistency still run in full.
    verify_subnet(sm, static=False).raise_if_failed()
    return performed


ops_strategy = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 63)),
    min_size=1,
    max_size=6,
)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=ops_strategy, seed=st.integers(0, 3))
@pytest.mark.parametrize("workers", (1, 2))
def test_minhop_mutation_sequences_match_cold(ops, seed, workers):
    built = build_random_regular(8, 3, 2, seed=seed)
    sm = SubnetManager(
        built.topology, engine="minhop", built=built, workers=workers
    )
    sm.initial_configure(with_discovery=False)
    run_sequence(sm, "minhop", ops)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=ops_strategy)
@pytest.mark.parametrize("workers", (1, 2))
def test_ftree_flap_sequences_match_cold(ops, workers):
    """Structure-preserving sequences (cable out / cable back) on a real
    fat-tree keep the structured engine byte-stable too."""
    built = scaled_fattree("2l-small")
    sm = SubnetManager(
        built.topology,
        engine="ftree",
        built=built,
        workers=workers,
        fallback_engine="minhop",
    )
    sm.initial_configure(with_discovery=False)
    run_sequence(sm, "ftree", ops, link_ops_only=True)
