"""Cross-engine routing tests: validity, determinism, balancing, structure.

Every engine must produce complete, loop-free, correctly-delivering tables
on every topology it supports — checked with the slow reference validator.
"""

import numpy as np
import pytest

from repro.constants import LFT_UNSET
from repro.errors import RoutingError
from repro.fabric.builders.generic import (
    build_mesh_2d,
    build_random_regular,
    build_ring,
    build_single_switch,
    build_torus_2d,
)
from repro.fabric.presets import scaled_fattree
from repro.sm.routing.base import (
    RoutingRequest,
    all_pairs_switch_distances,
    bfs_distances,
    equal_cost_candidates,
)
from repro.sm.routing.registry import available_engines, create_engine, register_engine
from repro.sm.subnet_manager import SubnetManager

ALL_ENGINES = ("minhop", "ftree", "updn", "dfsssp", "lash")
#: Engines usable on arbitrary (non-tree) topologies.
AGNOSTIC_ENGINES = ("minhop", "updn", "dfsssp", "lash")


def request_for(built):
    sm = SubnetManager(built.topology, built=built)
    sm.assign_lids()
    return RoutingRequest.from_topology(built.topology, built=built)


@pytest.fixture(scope="module")
def ft_request():
    return request_for(scaled_fattree("2l-small"))


class TestValidityOnFatTree:
    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_routes_deliver_everything(self, engine, ft_request):
        tables = create_engine(engine).compute(ft_request)
        tables.validate(ft_request)

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_all_lids_programmed_on_all_switches(self, engine, ft_request):
        tables = create_engine(engine).compute(ft_request)
        lids = [t.lid for t in ft_request.terminals] + list(
            ft_request.switch_lids
        )
        sub = tables.ports[:, lids]
        assert (sub != LFT_UNSET).all()

    @pytest.mark.parametrize("engine", ALL_ENGINES)
    def test_deterministic(self, engine, ft_request):
        a = create_engine(engine).compute(ft_request)
        b = create_engine(engine).compute(ft_request)
        assert np.array_equal(a.ports, b.ports)


class TestValidityOnIrregular:
    @pytest.mark.parametrize("engine", AGNOSTIC_ENGINES)
    @pytest.mark.parametrize(
        "builder",
        [
            lambda: build_single_switch(3),
            lambda: build_ring(5, 2),
            lambda: build_mesh_2d(3, 3, 1),
            lambda: build_torus_2d(3, 3, 1),
            lambda: build_random_regular(8, 3, 1, seed=3),
        ],
        ids=["single", "ring", "mesh", "torus", "randreg"],
    )
    def test_engine_on_topology(self, engine, builder):
        req = request_for(builder())
        tables = create_engine(engine).compute(req)
        tables.validate(req)

    def test_ftree_rejects_unstructured(self):
        # A ring has no levels once built metadata is dropped.
        built = build_ring(4, 1)
        sm = SubnetManager(built.topology)
        sm.assign_lids()
        req = RoutingRequest.from_topology(built.topology)  # no built
        with pytest.raises(RoutingError):
            create_engine("ftree").compute(req)


class TestMinHop:
    def test_paths_are_minimal(self, ft_request):
        tables = create_engine("minhop").compute(ft_request)
        dist = tables.metadata["switch_distances"]
        for t in ft_request.terminals[:10]:
            for src in range(ft_request.num_switches):
                path = tables.trace_path(ft_request, src, t.lid)
                assert len(path) - 1 == dist[src, t.switch_index]

    def test_lid_mod_spreads_consecutive_lids(self, ft_request):
        # The LMC-like multipathing of section V-A: consecutive LIDs on one
        # leaf leave a remote leaf through different up ports.
        tables = create_engine("minhop").compute(ft_request)
        groups = ft_request.terminals_by_switch()
        leaf, terms = next(iter(groups.items()))
        other_leaf = next(l for l in groups if l != leaf)
        ports = {tables.port_for(other_leaf, t.lid) for t in terms}
        assert len(ports) > 1

    def test_least_loaded_variant_valid(self, ft_request):
        tables = create_engine("minhop", balance="least-loaded").compute(
            ft_request
        )
        tables.validate(ft_request)

    def test_least_loaded_balances_evenly(self, ft_request):
        tables = create_engine("minhop", balance="least-loaded").compute(
            ft_request
        )
        # Up-port usage at one leaf should be near-uniform across spines.
        groups = ft_request.terminals_by_switch()
        leaf = next(iter(groups))
        all_lids = [t.lid for t in ft_request.terminals if t.switch_index != leaf]
        counts = {}
        for lid in all_lids:
            p = tables.port_for(leaf, lid)
            counts[p] = counts.get(p, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_unknown_balance_rejected(self):
        with pytest.raises(RoutingError):
            create_engine("minhop", balance="nope")


class TestFatTreeEngine:
    def test_down_paths_unique(self, ft_request):
        tables = create_engine("ftree").compute(ft_request)
        # From a spine, every LID of one leaf exits the same (unique) port.
        groups = ft_request.terminals_by_switch()
        leaf, terms = next(iter(groups.items()))
        level = tables.metadata["levels"]
        spines = [s for s in range(ft_request.num_switches) if level[s] == 1]
        for spine in spines:
            ports = {tables.port_for(spine, t.lid) for t in terms}
            assert len(ports) == 1

    def test_up_ports_spread_by_lid(self, ft_request):
        tables = create_engine("ftree").compute(ft_request)
        groups = ft_request.terminals_by_switch()
        leaf, terms = next(iter(groups.items()))
        other = next(l for l in groups if l != leaf)
        ports = {tables.port_for(other, t.lid) for t in terms}
        assert len(ports) == min(len(terms), 6)  # 6 spines in 2l-small

    def test_three_level_valid(self):
        req = request_for(scaled_fattree("3l-small"))
        tables = create_engine("ftree").compute(req)
        # Full validation is expensive; spot-check paths from every pod.
        for src in range(0, req.num_switches, 7):
            for t in req.terminals[::29]:
                tables.trace_path(req, src, t.lid)


class TestUpDown:
    def test_no_down_up_turns(self, ft_request):
        tables = create_engine("updn").compute(ft_request)
        rank = tables.metadata["rank"]
        for t in ft_request.terminals[::3]:
            for src in range(ft_request.num_switches):
                path = tables.trace_path(ft_request, src, t.lid)
                gone_down = False
                for a, b in zip(path, path[1:]):
                    going_down = (rank[b], b) > (rank[a], a)
                    if gone_down and not going_down:
                        pytest.fail(f"down->up turn in {path}")
                    gone_down = gone_down or going_down

    def test_root_override(self, ft_request):
        tables = create_engine("updn", root_index=3).compute(ft_request)
        assert tables.metadata["root"] == 3
        tables.validate(ft_request)

    def test_bad_root_rejected(self, ft_request):
        with pytest.raises(RoutingError):
            create_engine("updn", root_index=99).compute(ft_request)


class TestDfsssp:
    def test_few_vls_on_fattree(self, ft_request):
        tables = create_engine("dfsssp").compute(ft_request)
        assert tables.num_vls <= 2

    def test_vl_assignment_covers_all_lids(self, ft_request):
        tables = create_engine("dfsssp").compute(ft_request)
        vl = tables.metadata["lid_to_vl"]
        for t in ft_request.terminals:
            assert t.lid in vl
        for lid in ft_request.switch_lids:
            assert vl[lid] == 15  # management lane

    def test_weights_grow(self, ft_request):
        tables = create_engine("dfsssp").compute(ft_request)
        weights = tables.metadata["edge_weights"]
        assert (weights >= 1).all()
        assert weights.max() > 1  # some edge carried traffic

    def test_works_on_ring(self):
        req = request_for(build_ring(6, 2))
        tables = create_engine("dfsssp").compute(req)
        tables.validate(req)
        # A ring needs >1 VL to stay deadlock free.
        assert tables.num_vls >= 2

    def test_vl_exhaustion_raises(self):
        req = request_for(build_ring(8, 2))
        with pytest.raises(RoutingError):
            create_engine("dfsssp", max_vls=1).compute(req)


class TestLash:
    def test_layers_assigned_per_leaf_pair(self, ft_request):
        tables = create_engine("lash").compute(ft_request)
        pair_to_vl = tables.metadata["pair_to_vl"]
        leaf_switches = {t.switch_index for t in ft_request.terminals}
        expected = len(leaf_switches) * (len(leaf_switches) - 1)
        assert len(pair_to_vl) == expected

    def test_single_layer_on_fattree(self, ft_request):
        # Leaf-to-leaf shortest paths in a fat-tree are up/down => acyclic.
        tables = create_engine("lash").compute(ft_request)
        assert tables.num_vls == 1

    def test_multiple_layers_on_ring(self):
        req = request_for(build_ring(6, 1))
        tables = create_engine("lash").compute(req)
        tables.validate(req)
        assert tables.num_vls >= 2


class TestRegistry:
    def test_available(self):
        names = available_engines()
        for expected in ALL_ENGINES:
            assert expected in names

    def test_unknown_engine(self):
        with pytest.raises(RoutingError):
            create_engine("nope")

    def test_register_custom_and_duplicate(self):
        from repro.sm.routing.minhop import MinHopRouting

        register_engine("custom-test-engine", MinHopRouting)
        assert "custom-test-engine" in available_engines()
        with pytest.raises(RoutingError):
            register_engine("custom-test-engine", MinHopRouting)


class TestGraphHelpers:
    def test_bfs_distances(self):
        built = build_ring(6, 1)
        view = built.topology.fabric_view()
        dist = bfs_distances(view, 0)
        assert list(dist) == [0, 1, 2, 3, 2, 1]

    def test_all_pairs_symmetric(self):
        built = build_mesh_2d(3, 3, 1)
        view = built.topology.fabric_view()
        dist = all_pairs_switch_distances(view)
        assert (dist == dist.T).all()
        assert (np.diag(dist) == 0).all()

    def test_equal_cost_candidates_counts(self):
        built = build_ring(4, 1)
        view = built.topology.fabric_view()
        dist = bfs_distances(view, 0)
        cand, counts = equal_cost_candidates(view, dist)
        assert counts[0] == 0  # destination itself
        assert counts[1] == 1 and counts[3] == 1
        assert counts[2] == 2  # two equal-cost ways around the ring

    def test_timed_compute_stamps_pct(self, ft_request):
        tables = create_engine("minhop").timed_compute(ft_request)
        assert tables.compute_seconds > 0
