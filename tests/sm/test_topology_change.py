"""SubnetManager.handle_topology_change: the converge-and-verify flow.

Each live mutation must (a) repair paths incrementally when the event
chain allows, (b) distribute only the changed LFT blocks, (c) replicate
the mutation to hot standbys through the HA journal, and (d) pass the
full subnet audit afterwards.
"""

import pytest

from repro.errors import TopologyError
from repro.fabric.presets import scaled_fattree
from repro.fabric.topology import TopologyMutation
from repro.mad.reliable import RetryPolicy
from repro.obs import get_hub, reset_hub
from repro.sm.ha import HighAvailabilityManager, SmHaState
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager


@pytest.fixture(autouse=True)
def _fresh_hub():
    reset_hub()
    yield
    reset_hub()


def make_sm(engine="minhop"):
    built = scaled_fattree("2l-small")
    sm = SubnetManager(built.topology, engine=engine, built=built)
    sm.initial_configure(with_discovery=False)
    return built, sm


def spine_pair(built):
    """Two spines with free ports (spines are never cabled together in
    the preset, so an added cable between them is a genuine new edge)."""
    spines = [
        sw for sw in built.roots if next(sw.free_ports(), None) is not None
    ]
    return spines[0], spines[1]


def add_link_mutation(built):
    a, b = spine_pair(built)
    return TopologyMutation(
        kind="add_link",
        a=a.name,
        port_a=next(a.free_ports()).num,
        b=b.name,
        port_b=next(b.free_ports()).num,
    )


def cold_ports(built, engine):
    request = RoutingRequest.from_topology(built.topology, built=built)
    return create_engine(engine).compute(request).ports


class TestIncrementalRepair:
    def test_add_link_repairs_incrementally(self):
        built, sm = make_sm()
        n = built.topology.num_switches
        report = sm.handle_topology_change(add_link_mutation(built))
        assert report.repair_mode == "incremental"
        assert 0 < report.sources_repaired < n
        # The repaired warm tables are byte-identical to a cold compute.
        assert (
            sm.current_tables.ports.tobytes()
            == cold_ports(built, "minhop").tobytes()
        )

    def test_add_link_distributes_only_the_diff(self):
        built, sm = make_sm()
        report = sm.handle_topology_change(add_link_mutation(built))
        # A spine-spine shortcut reroutes a couple of sources, not the
        # whole fabric: the batched LFT diff must skip untouched switches.
        assert 0 < report.distribution.switches_updated
        assert (
            report.distribution.switches_updated
            < built.topology.num_switches
        )

    def test_remove_then_restore_chains_incrementally(self):
        built, sm = make_sm()
        mutation = add_link_mutation(built)
        sm.handle_topology_change(mutation)
        removed = sm.handle_topology_change(
            TopologyMutation(
                kind="remove_link",
                a=mutation.a,
                port_a=mutation.port_a,
                b=mutation.b,
                port_b=mutation.port_b,
            )
        )
        restored = sm.handle_topology_change(
            TopologyMutation(
                kind="restore_link",
                a=mutation.a,
                port_a=mutation.port_a,
                b=mutation.b,
                port_b=mutation.port_b,
            )
        )
        assert removed.repair_mode == "incremental"
        assert restored.repair_mode == "incremental"
        assert (
            sm.current_tables.ports.tobytes()
            == cold_ports(built, "minhop").tobytes()
        )

    def test_add_switch_converges_and_assigns_a_lid(self):
        built, sm = make_sm()
        a, b = spine_pair(built)
        report = sm.handle_topology_change(
            TopologyMutation(
                kind="add_switch",
                a="grown0",
                num_ports=4,
                cables=(
                    (1, a.name, next(a.free_ports()).num),
                    (2, b.name, next(b.free_ports()).num),
                ),
            )
        )
        sw = built.topology.node("grown0")
        assert sw.lid is not None
        assert report.repair_mode == "incremental"
        assert (
            sm.current_tables.ports.tobytes()
            == cold_ports(built, "minhop").tobytes()
        )

    def test_remove_switch_with_hcas_is_refused(self):
        built, sm = make_sm()
        leaf = next(
            sw
            for sw in built.topology.switches
            if sw.attached_hcas()
        )
        with pytest.raises(TopologyError):
            sm.handle_topology_change(
                TopologyMutation(kind="remove_switch", a=leaf.name)
            )

    def test_mutation_counters_are_labelled_by_kind(self):
        built, sm = make_sm()
        sm.handle_topology_change(add_link_mutation(built))
        metrics = get_hub().metrics
        assert (
            metrics.counter(
                "repro_topology_mutations_total", kind="add_link"
            ).value
            == 1
        )
        assert (
            metrics.counter(
                "repro_routing_repair_mode_total", mode="incremental"
            ).value
            == 1
        )


class TestHaReplication:
    def build_ha(self):
        built, sm = make_sm()
        sm.enable_resilience(RetryPolicy(retries=1), transactional=True)
        ha = HighAvailabilityManager(sm, lease_misses=2)
        hcas = built.topology.hcas
        ha.register(hcas[0].name, guid=10, priority=10)
        ha.register(hcas[1].name, guid=20, priority=5)
        ha.bootstrap()
        return built, sm, ha

    def test_mutation_is_journaled_and_mirrored_to_standbys(self):
        built, sm, ha = self.build_ha()
        mutation = add_link_mutation(built)
        sm.handle_topology_change(mutation)
        entries = [
            e for e in ha.journal.entries_since(0) if e.kind == "topology"
        ]
        assert len(entries) == 1
        assert TopologyMutation.from_dict(entries[0].payload) == mutation
        standby = next(
            p for p in ha.participants() if p.state is SmHaState.STANDBY
        )
        replica = ha.replica(standby.node_name)
        assert replica.topology_mutations == [mutation.as_dict()]

    def test_failover_after_mutation_converges(self):
        built, sm, ha = self.build_ha()
        sm.handle_topology_change(add_link_mutation(built))
        ha.kill_master()
        report = None
        while report is None:
            report = ha.tick()
        assert ha.has_master
        from repro.analysis.verification import verify_subnet

        verify_subnet(sm).raise_if_failed()
