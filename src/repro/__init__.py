"""repro — reproduction of "Towards the InfiniBand SR-IOV vSwitch
Architecture" (Tasoulas et al., CLUSTER 2015).

The package provides a complete simulated InfiniBand substrate (topologies,
addressing, LFTs, SMP transport, an OpenSM-like subnet manager with five
routing engines, deadlock analysis) and, on top of it, the paper's
contribution: the two vSwitch SR-IOV LID schemes and the topology-agnostic
dynamic reconfiguration method that makes VM live migration practical in
large IB subnets.

Quickstart::

    from repro import CloudManager, scaled_fattree

    built = scaled_fattree("2l-small", attach_hosts=True)
    cloud = CloudManager(built.topology, built=built, lid_scheme="prepopulated")
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    vm = cloud.boot_vm()
    report = cloud.live_migrate(vm.name, dest_name)
    print(report.total_smps, report.reconfig.switches_updated)
"""

from repro import (
    analysis,
    core,
    fabric,
    mad,
    obs,
    sim,
    sm,
    sriov,
    virt,
    workloads,
)
from repro.constants import (
    DEFAULT_NUM_VFS,
    LFT_BLOCK_SIZE,
    MAX_UNICAST_LID,
    UNICAST_LID_COUNT,
)
from repro.core import (
    DynamicLidScheme,
    LiveMigrationOrchestrator,
    MigrationReport,
    PrepopulatedLidScheme,
    ReconfigReport,
    VSwitchReconfigurer,
    paper_table1,
    table1_row,
    traditional_rc_time,
    vswitch_rc_time,
)
from repro.errors import ReproError
from repro.fabric import LinearForwardingTable, Topology
from repro.fabric.builders import (
    build_three_level_fattree,
    build_two_level_fattree,
)
from repro.fabric.presets import paper_fattree, scaled_fattree
from repro.sm import SubnetManager
from repro.sriov import SharedPortHCA, VSwitchHCA
from repro.virt import CloudManager

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # substrate
    "Topology",
    "LinearForwardingTable",
    "SubnetManager",
    "SharedPortHCA",
    "VSwitchHCA",
    "build_two_level_fattree",
    "build_three_level_fattree",
    "paper_fattree",
    "scaled_fattree",
    # contribution
    "PrepopulatedLidScheme",
    "DynamicLidScheme",
    "VSwitchReconfigurer",
    "ReconfigReport",
    "LiveMigrationOrchestrator",
    "MigrationReport",
    "CloudManager",
    "table1_row",
    "paper_table1",
    "traditional_rc_time",
    "vswitch_rc_time",
    # constants
    "LFT_BLOCK_SIZE",
    "MAX_UNICAST_LID",
    "UNICAST_LID_COUNT",
    "DEFAULT_NUM_VFS",
    # subpackages
    "analysis",
    "core",
    "fabric",
    "mad",
    "obs",
    "sim",
    "sm",
    "sriov",
    "virt",
    "workloads",
]
