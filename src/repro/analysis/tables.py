"""Text renderers for the paper's tables."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.cost_model import Table1Row

__all__ = ["render_table", "render_table1"]


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Monospace table with right-aligned numeric columns."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Render rows in the exact column layout of the paper's Table I."""
    headers = [
        "Nodes",
        "Switches",
        "LIDs",
        "Min LFT Blocks/Switch",
        "Min SMPs Full RC",
        "Min SMPs LID Swap/Copy",
        "Max SMPs LID Swap/Copy",
    ]
    body = [
        [
            r.nodes,
            r.switches,
            r.lids,
            r.min_lft_blocks_per_switch,
            r.min_smps_full_reconfig,
            r.min_smps_vswitch,
            r.max_smps_swap,
        ]
        for r in rows
    ]
    return render_table(headers, body)
