"""Subnet verification: prove a fabric's hardware state is consistent.

Downstream users (and this repository's own integration tests) need to
answer "is this subnet actually correct right now?" after arbitrary
sequences of migrations, reconfigurations and failures. The checks here
operate on the *switches' LFT contents* — the hardware truth — rather than
any controller bookkeeping:

* every bound LID is deliverable from every switch (loop-free, correct
  final port);
* the hardware LFTs agree with the SM's recorded routing function;
* the full :mod:`repro.analysis.static` pass — CDG deadlock-freedom,
  vectorized reachability, and any engine-specific legality checks —
  whose structured findings ride along in :attr:`VerificationReport
  .findings` and surface through :meth:`VerificationReport
  .raise_if_failed` with per-switch detail.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.constants import LFT_UNSET
from repro.errors import ReproError
from repro.fabric.node import Switch
from repro.fabric.topology import Topology
from repro.sm.subnet_manager import SubnetManager
from repro.analysis.static import Finding, analyze_subnet

__all__ = ["VerificationReport", "verify_delivery", "verify_sm_consistency", "verify_subnet"]


@dataclass
class VerificationReport:
    """Outcome of a subnet audit."""

    lids_checked: int = 0
    switches_checked: int = 0
    failures: List[str] = field(default_factory=list)
    #: Structured static-analysis findings (CDG cycles, loops, legality).
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True iff every check passed."""
        return not self.failures and not self.findings

    def problems(self) -> List[str]:
        """Every failure as a string — walk failures plus rendered findings
        (``CDG001 [sw 3/leaf-1, lid 42] ...``, per-switch detail included)."""
        return self.failures + [f.render() for f in self.findings]

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.errors.ReproError` listing the failures."""
        problems = self.problems()
        if problems:
            raise ReproError(
                f"subnet verification failed ({len(problems)} problems):"
                f" {problems[:5]}"
            )


def _delivery_map(topology: Topology) -> Dict[int, Tuple[int, int]]:
    """LID -> (destination switch index, delivery port [0 = self])."""
    out: Dict[int, Tuple[int, int]] = {}
    for lid in topology.bound_lids():
        port = topology.port_of_lid(lid)
        assert port is not None
        if isinstance(port.node, Switch) and port.num == 0:
            out[lid] = (port.node.index, 0)
        else:
            attach = port.remote
            if attach is None or not isinstance(attach.node, Switch):
                raise ReproError(f"LID {lid} bound to an unattached port")
            out[lid] = (attach.node.index, attach.num)
    return out


def verify_delivery(
    topology: Topology, *, sample_every: int = 1
) -> VerificationReport:
    """Walk the hardware LFTs: every bound LID from every switch.

    ``sample_every`` > 1 checks only every n-th source switch (for large
    fabrics); destinations are always all checked.
    """
    if sample_every < 1:
        raise ReproError("sample_every must be >= 1")
    report = VerificationReport()
    switches = topology.switches
    p2p: Dict[Tuple[int, int], int] = {}
    for sw in switches:
        for port in sw.connected_ports():
            peer = port.remote
            assert peer is not None
            if isinstance(peer.node, Switch):
                p2p[(sw.index, port.num)] = peer.node.index
    targets = _delivery_map(topology)
    sources = switches[::sample_every]
    report.switches_checked = len(sources)
    for lid, (dest_sw, dest_port) in targets.items():
        report.lids_checked += 1
        for start in sources:
            cur = start
            hops = 0
            while True:
                if cur.index == dest_sw:
                    if dest_port != 0 and cur.lft.get(lid) != dest_port:
                        report.failures.append(
                            f"LID {lid}: wrong delivery port at {cur.name}"
                        )
                    break
                out = cur.lft.get(lid)
                if out == LFT_UNSET:
                    report.failures.append(
                        f"LID {lid}: unroutable at {cur.name}"
                    )
                    break
                nxt = p2p.get((cur.index, out))
                if nxt is None:
                    report.failures.append(
                        f"LID {lid}: misdelivered off-fabric at {cur.name}"
                    )
                    break
                cur = switches[nxt]
                hops += 1
                if hops > len(switches):
                    report.failures.append(
                        f"LID {lid}: forwarding loop from {start.name}"
                    )
                    break
    return report


def verify_sm_consistency(
    sm: SubnetManager, *, static: bool = True
) -> VerificationReport:
    """Hardware LFTs must equal the SM's recorded routing for bound LIDs.

    With ``static=True`` (the default) the full
    :func:`~repro.analysis.static.analyze_subnet` pass also runs over the
    hardware LFTs, attaching its CDG/loop/legality findings to the report.
    """
    report = VerificationReport()
    tables = sm.current_tables
    if tables is None:
        report.failures.append("SM has no recorded routing")
        return report
    lids = sm.topology.bound_lids()
    report.lids_checked = len(lids)
    report.switches_checked = sm.topology.num_switches
    for sw in sm.topology.switches:
        for lid in lids:
            hw = sw.lft.get(lid)
            soft = tables.port_for(sw.index, lid)
            if hw != soft:
                report.failures.append(
                    f"LID {lid} at {sw.name}: hardware={hw} recorded={soft}"
                )
    if static:
        # Faults only: META notices (e.g. "CDG001 superseded by per-VL
        # checks" on LASH/DFSSSP fabrics) are context, not failures.
        report.findings.extend(
            analyze_subnet(sm, source="hardware").faults
        )
    return report


def verify_subnet(
    sm: SubnetManager, *, sample_every: int = 1, static: bool = True
) -> VerificationReport:
    """Full audit: delivery walk, SM/hardware consistency, static analysis."""
    delivery = verify_delivery(sm.topology, sample_every=sample_every)
    consistency = verify_sm_consistency(sm, static=static)
    merged = VerificationReport(
        lids_checked=delivery.lids_checked,
        switches_checked=delivery.switches_checked,
        failures=delivery.failures + consistency.failures,
        findings=consistency.findings,
    )
    return merged
