"""Cost-model calibration: recover k and r from observed SMP timings.

The paper's equations use two constants — ``k``, the average SMP traversal
time, and ``r``, the directed-routing surcharge — without measuring them.
Given a transport's observation log (per-SMP hop count, latency and routing
mode), these helpers fit the per-hop constants by least squares and derive
the paper-level averages, closing the loop between the analytic model (E5)
and anything the simulator (or, in principle, a real fabric probe) records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.mad.transport import TransportStats

__all__ = ["CalibratedConstants", "calibrate"]


@dataclass(frozen=True)
class CalibratedConstants:
    """Fitted per-hop constants and derived paper-level averages."""

    #: Per-hop traversal time (latency/hop on destination-routed SMPs).
    k_per_hop: float
    #: Per-hop directed-routing surcharge.
    r_per_hop: float
    #: Mean hops per SMP in the observation window.
    mean_hops: float
    #: The paper's k: average per-SMP traversal time.
    k: float
    #: The paper's r: average per-SMP directed-routing overhead.
    r: float
    #: Observations used.
    samples: int

    def lftd_time(self, n: int, m: int) -> float:
        """Equation (2) with the calibrated constants."""
        return n * m * (self.k + self.r)


def calibrate(stats: TransportStats) -> CalibratedConstants:
    """Least-squares fit of ``latency = hops*k_hop + directed*hops*r_hop``.

    Needs at least one directed and one destination-routed observation with
    non-zero hops (otherwise k and r are not separable) — send a couple of
    destination-routed probes if the log is all-directed.
    """
    if len(stats.latencies) != len(stats.hops) or len(stats.latencies) != len(
        stats.directed_flags
    ):
        raise ReproError("stats observation lists are misaligned")
    hops = np.asarray(stats.hops, dtype=np.float64)
    lat = np.asarray(stats.latencies, dtype=np.float64)
    directed = np.asarray(stats.directed_flags, dtype=np.float64)
    mask = hops > 0
    hops, lat, directed = hops[mask], lat[mask], directed[mask]
    if len(lat) < 2:
        raise ReproError("need at least two non-trivial SMP observations")
    if directed.min() == directed.max():
        raise ReproError(
            "need both directed and destination-routed observations to"
            " separate k from r"
        )
    # Design matrix: [hops, directed*hops] @ [k_hop, r_hop] = latency.
    design = np.column_stack([hops, directed * hops])
    coeffs, *_ = np.linalg.lstsq(design, lat, rcond=None)
    k_hop, r_hop = (float(c) for c in coeffs)
    if k_hop < 0 or r_hop < -1e-12:
        raise ReproError(
            f"nonphysical fit (k_hop={k_hop:g}, r_hop={r_hop:g});"
            " observations are inconsistent"
        )
    mean_hops = float(hops.mean())
    return CalibratedConstants(
        k_per_hop=k_hop,
        r_per_hop=max(r_hop, 0.0),
        mean_hops=mean_hops,
        k=k_hop * mean_hops,
        r=max(r_hop, 0.0) * mean_hops,
        samples=int(len(lat)),
    )
