"""Experiment harnesses, table/figure renderers, and fabric verification.

The :mod:`repro.analysis.static` subpackage is the static verification
suite (``repro check-fabric``): CDG deadlock-freedom, vectorized
reachability, routing-legality and vSwitch-addressing invariants proven
from routing tables alone — no packets sent.
"""

from repro.analysis.experiments import (
    FIG7_ENGINES,
    fig7_topologies,
    measure_path_computation,
    measured_full_reconfig_smps,
    paper_scale_enabled,
    run_fig7,
    table1_for_topology,
)
from repro.analysis.figures import PAPER_FIG7_SECONDS, Fig7Series, render_fig7
from repro.analysis.calibration import CalibratedConstants, calibrate
from repro.analysis.plots import ascii_bars, render_fig7_chart
from repro.analysis.report import generate_report
from repro.analysis.sweeps import VfCapacityPoint, subnet_cost_sweep, vf_capacity_sweep
from repro.analysis.static import (
    Finding,
    StaticAnalysisReport,
    analyze_cloud,
    analyze_fabric,
    analyze_subnet,
    analyze_transition,
)
from repro.analysis.verification import (
    VerificationReport,
    verify_delivery,
    verify_sm_consistency,
    verify_subnet,
)
from repro.analysis.tables import render_table, render_table1

__all__ = [
    "FIG7_ENGINES",
    "fig7_topologies",
    "measure_path_computation",
    "measured_full_reconfig_smps",
    "paper_scale_enabled",
    "run_fig7",
    "table1_for_topology",
    "PAPER_FIG7_SECONDS",
    "Fig7Series",
    "render_fig7",
    "generate_report",
    "ascii_bars",
    "CalibratedConstants",
    "calibrate",
    "render_fig7_chart",
    "VfCapacityPoint",
    "vf_capacity_sweep",
    "subnet_cost_sweep",
    "Finding",
    "StaticAnalysisReport",
    "analyze_fabric",
    "analyze_subnet",
    "analyze_cloud",
    "analyze_transition",
    "VerificationReport",
    "verify_delivery",
    "verify_sm_consistency",
    "verify_subnet",
    "render_table",
    "render_table1",
]
