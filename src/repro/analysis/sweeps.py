"""Parameter sweeps over the paper's capacity arithmetic (section V-A/V-B).

The prepopulated scheme's capacity is ruled by the unicast LID budget:
``hypervisors <= floor(49151 / (VFs + 1))`` and ``VMs = hypervisors * VFs``.
These helpers sweep that trade-off (reproducing the paper's 16-VF example:
2891 hypervisors, 46256 VMs) and the subnet-size scaling of the
reconfiguration costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.constants import UNICAST_LID_COUNT
from repro.core.cost_model import Table1Row, table1_row
from repro.errors import ReproError
from repro.fabric.addressing import (
    theoretical_hypervisor_limit,
    theoretical_vm_limit,
)

__all__ = ["VfCapacityPoint", "vf_capacity_sweep", "subnet_cost_sweep"]


@dataclass(frozen=True)
class VfCapacityPoint:
    """Capacity limits for one VFs-per-hypervisor choice (prepopulated)."""

    vfs_per_hypervisor: int
    max_hypervisors: int
    max_vms: int
    lids_per_hypervisor: int

    @property
    def lid_utilization(self) -> float:
        """Fraction of the unicast LID space the full fleet would consume."""
        return (
            self.max_hypervisors * self.lids_per_hypervisor
            / UNICAST_LID_COUNT
        )


def vf_capacity_sweep(
    vf_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 126),
) -> List[VfCapacityPoint]:
    """Sweep the section V-A capacity arithmetic over VF counts."""
    points = []
    for vfs in vf_counts:
        if vfs < 1:
            raise ReproError("VF counts must be positive")
        points.append(
            VfCapacityPoint(
                vfs_per_hypervisor=vfs,
                max_hypervisors=theoretical_hypervisor_limit(vfs),
                max_vms=theoretical_vm_limit(vfs),
                lids_per_hypervisor=vfs + 1,
            )
        )
    return points


def subnet_cost_sweep(
    sizes: Sequence[tuple] = ((324, 36), (648, 54), (5832, 972), (11664, 1620)),
    *,
    extra_lids_per_node: int = 0,
) -> List[Table1Row]:
    """Table-I rows across subnet sizes, optionally with prepopulated VF
    LIDs included (``extra_lids_per_node`` VFs per compute node)."""
    rows = []
    for nodes, switches in sizes:
        rows.append(
            table1_row(
                nodes, switches, extra_lids=extra_lids_per_node * nodes
            )
        )
    return rows
