"""Orchestration of the static fabric checks into one analysis pass.

Entry points, from most to least context:

* :func:`analyze_cloud` — a :class:`~repro.virt.cloud.CloudManager`: adds
  the vSwitch LID-consistency check on top of everything below;
* :func:`analyze_subnet` — a live :class:`~repro.sm.subnet_manager
  .SubnetManager`: analyses the hardware LFTs (or the SM's recorded
  tables), inferring which legality checks apply from the active engine;
* :func:`analyze_fabric` — a bare topology + port matrix, with every
  topology-specific check opt-in;
* :func:`analyze_transition` — two port matrices (before/after a
  reconfiguration): the section VI-C union-CDG condition.

Every pass returns a
:class:`~repro.analysis.static.findings.StaticAnalysisReport` and
publishes finding counters to the observability metrics registry, so a
CI run of ``repro check-fabric`` and an in-test
``verify_subnet`` surface through the same exposition.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.fabric.graph import bfs_distances
from repro.fabric.topology import Topology
from repro.analysis.static.checks import (
    FabricSnapshot,
    check_deadlock_freedom,
    check_dor_order,
    check_reachability,
    check_skyline_disjointness,
    check_transition_deadlock,
    check_updn_legality,
    check_vswitch_lids,
)
from repro.analysis.static.findings import StaticAnalysisReport

__all__ = [
    "analyze_fabric",
    "analyze_subnet",
    "analyze_cloud",
    "analyze_transition",
]

#: Engines whose routed paths must satisfy Up*/Down* legality.
_UPDN_ENGINES = ("updn",)
#: Engines whose routed paths must satisfy XY dimension order.
_DOR_ENGINES = ("dor",)


def _updn_rank(
    snap: FabricSnapshot, metadata: dict, root_indices: Sequence[int]
) -> Optional[np.ndarray]:
    """Recover the Up*/Down* BFS rank for legality checking."""
    rank = metadata.get("rank")
    if rank is not None:
        return np.asarray(rank, dtype=np.int64)
    root = metadata.get("root")
    if root is None:
        root = root_indices[0] if root_indices else 0
    return bfs_distances(snap.view, int(root)).astype(np.int64)


def _grid_hints(metadata: dict, hints: dict) -> Optional[Tuple[int, int]]:
    """(rows, cols) of a mesh/torus, from engine metadata or builder hints."""
    rows = int(metadata.get("rows", hints.get("rows", 0)) or 0)
    cols = int(metadata.get("cols", hints.get("cols", 0)) or 0)
    if rows > 0 and cols > 0:
        return rows, cols
    return None


def analyze_fabric(
    topology: Topology,
    *,
    ports: Optional[np.ndarray] = None,
    engine: Optional[str] = None,
    metadata: Optional[dict] = None,
    hints: Optional[dict] = None,
    root_indices: Sequence[int] = (),
    vswitches: Sequence[object] = (),
    scheme: Optional[str] = None,
    skylines: Sequence[object] = (),
    lids: Optional[Sequence[int]] = None,
    fabric: Optional[str] = None,
    emit_metrics: bool = True,
) -> StaticAnalysisReport:
    """Run every applicable static check over one fabric state.

    ``ports`` defaults to the switches' hardware LFTs; pass an engine's
    ``RoutingTables.ports`` to analyse intent instead. ``engine`` selects
    the extra legality checks (``"updn"`` -> UPDN001, ``"dor"`` ->
    DOR001); ``metadata``/``hints`` supply their rank and grid inputs.
    """
    metadata = metadata or {}
    hints = hints or {}
    snap = FabricSnapshot.from_topology(topology, ports)
    report = StaticAnalysisReport(
        fabric=fabric or topology.name,
        lids_analyzed=int(snap.lids.size),
        switches_analyzed=snap.num_switches,
    )
    report.extend("reachability", check_reachability(snap, lids=lids))
    report.extend("cdg", check_deadlock_freedom(snap, lids=lids))
    if engine in _UPDN_ENGINES:
        rank = _updn_rank(snap, metadata, root_indices)
        if rank is not None:
            report.extend(
                "updn-legality",
                check_updn_legality(snap, rank, lids=lids),
            )
    if engine in _DOR_ENGINES:
        grid = _grid_hints(metadata, hints)
        if grid is not None:
            report.extend(
                "dor-order",
                check_dor_order(snap, grid[0], grid[1], lids=lids),
            )
    if vswitches:
        report.extend(
            "vswitch-lids",
            check_vswitch_lids(topology, vswitches, scheme=scheme),
        )
    if skylines:
        report.extend(
            "skyline-disjointness", check_skyline_disjointness(skylines)
        )
    if emit_metrics:
        report.emit_metrics()
    return report


def analyze_subnet(
    sm: object,
    *,
    source: str = "hardware",
    vswitches: Sequence[object] = (),
    scheme: Optional[str] = None,
    skylines: Sequence[object] = (),
    lids: Optional[Sequence[int]] = None,
    emit_metrics: bool = True,
) -> StaticAnalysisReport:
    """Analyse a live subnet manager's fabric.

    ``source`` selects what is proven: ``"hardware"`` (default) reads the
    switches' programmed LFTs — the state packets actually follow;
    ``"recorded"`` reads the SM's last computed
    :class:`~repro.sm.routing.base.RoutingTables`.
    """
    from repro.errors import StaticAnalysisError

    tables = getattr(sm, "current_tables", None)
    if source == "recorded":
        if tables is None:
            raise StaticAnalysisError(
                "SM has no recorded routing tables to analyse"
            )
        ports: Optional[np.ndarray] = tables.ports
    elif source == "hardware":
        ports = None
    else:
        raise StaticAnalysisError(
            f"unknown analysis source {source!r}; use 'hardware' or 'recorded'"
        )
    engine = getattr(getattr(sm, "engine", None), "name", None)
    metadata = dict(tables.metadata) if tables is not None else {}
    request = getattr(sm, "last_request", None)
    hints = dict(getattr(request, "hints", {}) or {})
    roots = list(getattr(request, "root_indices", []) or [])
    return analyze_fabric(
        sm.topology,
        ports=ports,
        engine=engine,
        metadata=metadata,
        hints=hints,
        root_indices=roots,
        vswitches=vswitches,
        scheme=scheme,
        skylines=skylines,
        lids=lids,
        fabric=f"{sm.topology.name}:{source}",
        emit_metrics=emit_metrics,
    )


def analyze_cloud(
    cloud: object,
    *,
    source: str = "hardware",
    skylines: Sequence[object] = (),
    emit_metrics: bool = True,
) -> StaticAnalysisReport:
    """Analyse a cloud's subnet plus its vSwitch addressing invariants."""
    vswitches = [h.vswitch for h in cloud.hypervisors.values()]
    return analyze_subnet(
        cloud.sm,
        source=source,
        vswitches=vswitches,
        scheme=cloud.scheme.name,
        skylines=skylines,
        emit_metrics=emit_metrics,
    )


def analyze_transition(
    topology: Topology,
    old_ports: np.ndarray,
    new_ports: np.ndarray,
    *,
    lids: Optional[Sequence[int]] = None,
    emit_metrics: bool = True,
) -> StaticAnalysisReport:
    """Section VI-C: is the old/new routing *union* deadlock-free?

    Both matrices must describe the current switch graph. The result's
    CDG002 findings carry the offending dependency cycle.
    """
    old = FabricSnapshot.from_topology(topology, old_ports)
    new = FabricSnapshot.from_topology(topology, new_ports)
    report = StaticAnalysisReport(
        fabric=f"{topology.name}:transition",
        lids_analyzed=int(new.lids.size),
        switches_analyzed=new.num_switches,
    )
    report.extend(
        "transition-cdg",
        check_transition_deadlock(old, new, lids=lids),
    )
    if emit_metrics:
        report.emit_metrics()
    return report
