"""Orchestration of the static fabric checks into one analysis pass.

Entry points, from most to least context:

* :func:`analyze_cloud` — a :class:`~repro.virt.cloud.CloudManager`: adds
  the vSwitch LID-consistency check on top of everything below;
* :func:`analyze_subnet` — a live :class:`~repro.sm.subnet_manager
  .SubnetManager`: analyses the hardware LFTs (or the SM's recorded
  tables), inferring which legality checks apply from the active engine;
* :func:`analyze_fabric` — a bare topology + port matrix, with every
  topology-specific check opt-in;
* :func:`analyze_transition` — two port matrices (before/after a
  reconfiguration): the section VI-C union-CDG condition.

Every pass returns a
:class:`~repro.analysis.static.findings.StaticAnalysisReport` and
publishes finding counters to the observability metrics registry, so a
CI run of ``repro check-fabric`` and an in-test
``verify_subnet`` surface through the same exposition.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.fabric.graph import bfs_distances
from repro.fabric.topology import Topology
from repro.sm.routing.vl import VlAssignment
from repro.analysis.static.checks import (
    FabricSnapshot,
    check_deadlock_freedom,
    check_dor_order,
    check_reachability,
    check_skyline_disjointness,
    check_transition_deadlock,
    check_updn_legality,
    check_vswitch_lids,
)
from repro.analysis.static.findings import Finding, StaticAnalysisReport
from repro.analysis.static.vl_checks import (
    build_per_vl_dependencies,
    check_vl_capacity,
    check_vl_consistency,
    check_vl_deadlock_freedom,
    check_vl_transition_deadlock,
)

__all__ = [
    "analyze_fabric",
    "analyze_subnet",
    "analyze_cloud",
    "analyze_transition",
]

#: Engines whose routed paths must satisfy Up*/Down* legality.
_UPDN_ENGINES = ("updn",)
#: Engines whose routed paths must satisfy XY dimension order.
_DOR_ENGINES = ("dor",)


def _updn_rank(
    snap: FabricSnapshot, metadata: dict, root_indices: Sequence[int]
) -> Optional[np.ndarray]:
    """Recover the Up*/Down* BFS rank for legality checking."""
    rank = metadata.get("rank")
    if rank is not None:
        return np.asarray(rank, dtype=np.int64)
    root = metadata.get("root")
    if root is None:
        root = root_indices[0] if root_indices else 0
    return bfs_distances(snap.view, int(root)).astype(np.int64)


def _grid_hints(metadata: dict, hints: dict) -> Optional[Tuple[int, int]]:
    """(rows, cols) of a mesh/torus, from engine metadata or builder hints."""
    rows = int(metadata.get("rows", hints.get("rows", 0)) or 0)
    cols = int(metadata.get("cols", hints.get("cols", 0)) or 0)
    if rows > 0 and cols > 0:
        return rows, cols
    return None


def _emit_vl_metrics(fabric: str, vl, per_vl) -> None:
    """Publish ``repro_static_vl_*`` gauges for one per-VL pass."""
    from repro.obs import get_hub

    metrics = get_hub().metrics
    metrics.counter("repro_static_vl_checks_total").add(1)
    metrics.gauge("repro_static_vl_layers", fabric=fabric).set(
        float(vl.num_vls)
    )
    for v, count in enumerate(per_vl.dependency_counts()):
        metrics.gauge(
            "repro_static_vl_dependencies", fabric=fabric, vl=str(v)
        ).set(float(count))


def analyze_fabric(
    topology: Topology,
    *,
    ports: Optional[np.ndarray] = None,
    engine: Optional[str] = None,
    metadata: Optional[dict] = None,
    hints: Optional[dict] = None,
    root_indices: Sequence[int] = (),
    vswitches: Sequence[object] = (),
    scheme: Optional[str] = None,
    skylines: Sequence[object] = (),
    lids: Optional[Sequence[int]] = None,
    fabric: Optional[str] = None,
    emit_metrics: bool = True,
    workers: int = 1,
) -> StaticAnalysisReport:
    """Run every applicable static check over one fabric state.

    ``ports`` defaults to the switches' hardware LFTs; pass an engine's
    ``RoutingTables.ports`` to analyse intent instead. ``engine`` selects
    the extra legality checks (``"updn"`` -> UPDN001, ``"dor"`` ->
    DOR001); ``metadata``/``hints`` supply their rank and grid inputs.

    When ``metadata`` carries a VL assignment (LASH/DFSSSP), the
    single-VL CDG001 pass is replaced by the per-VL rules VLC001-VLC003
    — CDG001 would false-positive on lane-layered routing — and a
    META002 notice records the downgrade. ``workers`` shards the per-VL
    dependency construction (pair-keyed assignments on large fabrics).
    """
    metadata = metadata or {}
    hints = hints or {}
    vl = VlAssignment.from_metadata(metadata)
    snap = FabricSnapshot.from_topology(topology, ports, vl=vl)
    report = StaticAnalysisReport(
        fabric=fabric or topology.name,
        lids_analyzed=int(snap.lids.size),
        switches_analyzed=snap.num_switches,
    )
    report.extend("reachability", check_reachability(snap, lids=lids))
    if vl is None:
        report.extend("cdg", check_deadlock_freedom(snap, lids=lids))
    else:
        report.extend(
            "cdg",
            [
                Finding(
                    rule="META002",
                    message=(
                        f"single-VL CDG001 skipped:"
                        f" {engine or 'the engine'} declares"
                        f" {vl.num_vls} data VL(s) ({vl.kind}-keyed);"
                        " per-VL checks cover deadlock freedom"
                    ),
                    detail={"num_vls": vl.num_vls, "kind": vl.kind},
                )
            ],
        )
        report.extend("vl-consistency", check_vl_consistency(snap))
        report.extend("vl-capacity", check_vl_capacity(snap))
        per_vl = build_per_vl_dependencies(snap, workers=workers)
        report.extend(
            "cdg-per-vl",
            check_vl_deadlock_freedom(snap, deps=per_vl),
        )
        if emit_metrics:
            _emit_vl_metrics(report.fabric, vl, per_vl)
    if engine in _UPDN_ENGINES:
        rank = _updn_rank(snap, metadata, root_indices)
        if rank is not None:
            report.extend(
                "updn-legality",
                check_updn_legality(snap, rank, lids=lids),
            )
    if engine in _DOR_ENGINES:
        grid = _grid_hints(metadata, hints)
        if grid is not None:
            report.extend(
                "dor-order",
                check_dor_order(snap, grid[0], grid[1], lids=lids),
            )
    if vswitches:
        report.extend(
            "vswitch-lids",
            check_vswitch_lids(topology, vswitches, scheme=scheme),
        )
    if skylines:
        report.extend(
            "skyline-disjointness", check_skyline_disjointness(skylines)
        )
    if emit_metrics:
        report.emit_metrics()
    return report


def analyze_subnet(
    sm: object,
    *,
    source: str = "hardware",
    vswitches: Sequence[object] = (),
    scheme: Optional[str] = None,
    skylines: Sequence[object] = (),
    lids: Optional[Sequence[int]] = None,
    emit_metrics: bool = True,
    workers: int = 1,
) -> StaticAnalysisReport:
    """Analyse a live subnet manager's fabric.

    ``source`` selects what is proven: ``"hardware"`` (default) reads the
    switches' programmed LFTs — the state packets actually follow;
    ``"recorded"`` reads the SM's last computed
    :class:`~repro.sm.routing.base.RoutingTables`. Either way the SM's
    recorded metadata supplies the VL assignment, so VL-routed fabrics
    get the per-VL deadlock rules.
    """
    from repro.errors import StaticAnalysisError

    tables = getattr(sm, "current_tables", None)
    if source == "recorded":
        if tables is None:
            raise StaticAnalysisError(
                "SM has no recorded routing tables to analyse"
            )
        ports: Optional[np.ndarray] = tables.ports
    elif source == "hardware":
        ports = None
    else:
        raise StaticAnalysisError(
            f"unknown analysis source {source!r}; use 'hardware' or 'recorded'"
        )
    engine = getattr(getattr(sm, "engine", None), "name", None)
    metadata = dict(tables.metadata) if tables is not None else {}
    request = getattr(sm, "last_request", None)
    hints = dict(getattr(request, "hints", {}) or {})
    roots = list(getattr(request, "root_indices", []) or [])
    return analyze_fabric(
        sm.topology,
        ports=ports,
        engine=engine,
        metadata=metadata,
        hints=hints,
        root_indices=roots,
        vswitches=vswitches,
        scheme=scheme,
        skylines=skylines,
        lids=lids,
        fabric=f"{sm.topology.name}:{source}",
        emit_metrics=emit_metrics,
        workers=workers,
    )


def analyze_cloud(
    cloud: object,
    *,
    source: str = "hardware",
    skylines: Sequence[object] = (),
    emit_metrics: bool = True,
) -> StaticAnalysisReport:
    """Analyse a cloud's subnet plus its vSwitch addressing invariants."""
    vswitches = [h.vswitch for h in cloud.hypervisors.values()]
    return analyze_subnet(
        cloud.sm,
        source=source,
        vswitches=vswitches,
        scheme=cloud.scheme.name,
        skylines=skylines,
        emit_metrics=emit_metrics,
    )


def analyze_transition(
    topology: Topology,
    old_ports: np.ndarray,
    new_ports: np.ndarray,
    *,
    old_metadata: Optional[dict] = None,
    new_metadata: Optional[dict] = None,
    lids: Optional[Sequence[int]] = None,
    emit_metrics: bool = True,
    workers: int = 1,
) -> StaticAnalysisReport:
    """Section VI-C: is the old/new routing *union* deadlock-free?

    Both matrices must describe the current switch graph. The result's
    CDG002 findings carry the offending dependency cycle. When either
    side's metadata declares a VL assignment, the check generalizes to
    the per-lane VLC004 rule: old and new dependencies must union
    acyclically on every data VL (a side without an assignment
    contributes its whole dependency set on lane 0).
    """
    old_vl = VlAssignment.from_metadata(old_metadata)
    new_vl = VlAssignment.from_metadata(new_metadata)
    old = FabricSnapshot.from_topology(topology, old_ports, vl=old_vl)
    new = FabricSnapshot.from_topology(topology, new_ports, vl=new_vl)
    report = StaticAnalysisReport(
        fabric=f"{topology.name}:transition",
        lids_analyzed=int(new.lids.size),
        switches_analyzed=new.num_switches,
    )
    if old_vl is None and new_vl is None:
        report.extend(
            "transition-cdg",
            check_transition_deadlock(old, new, lids=lids),
        )
    else:
        report.extend(
            "transition-cdg-per-vl",
            check_vl_transition_deadlock(old, new, workers=workers),
        )
    if emit_metrics:
        report.emit_metrics()
    return report
