"""Per-virtual-lane channel-dependency checks (VLC001-VLC004).

The single-VL CDG001 check treats all traffic as sharing one buffer pool,
so LASH- or DFSSSP-routed rings/tori — deadlock-free *by construction*
through virtual-lane layering — looked deadlocked to PR 3's analyzer.
This module rebuilds each data lane's channel-dependency graph from the
engine's exported :class:`~repro.sm.routing.vl.VlAssignment` and proves
Duato's condition per lane:

* **VLC001** — every data VL's CDG is acyclic (CDG001 generalized to
  "acyclic on every lane").
* **VLC002** — escape-channel sufficiency: every assignment references a
  lane that exists and is applied consistently along the whole path.
  (Routing is destination-based, so one assignment governs a path
  end-to-end; the per-port lane table built here is the SL2VL-style
  artifact switches would be programmed with.)
* **VLC003** — capacity legality: layer count within ``max_vls`` and no
  terminal pair/LID left without an assignment.
* **VLC004** — the §VI-C union-CDG transition check per lane: during a
  reconfiguration, old and new dependency sets must union acyclically on
  every data VL.

Construction rides the same machinery as the reachability checks: one
:func:`~repro.analysis.static.checks._successor_matrices` pass (CSR
kernels underneath), channel ids via the sorted
:func:`~repro.sm.routing.cdg_array.channel_table`, and acyclicity via
the frontier-vectorized Kahn kernel that powers
:class:`~repro.sm.routing.cdg_array.ArrayCdg`. The only Python loop is
per *destination switch* (pair-keyed assignments) — never per edge — and
that loop shards over worker processes exactly like
:class:`~repro.sm.routing.parallel.ParallelRouter`, with a byte-identical
serial fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.errors import StaticAnalysisError
from repro.sm.routing.cdg_array import (
    _kahn_acyclic,
    channel_ids,
    channel_table,
)
from repro.sm.routing.vl import MANAGEMENT_VL, VlAssignment
from repro.analysis.static.checks import (
    MAX_FINDINGS_PER_RULE,
    FabricSnapshot,
    _cycle_finding,
    _dependency_pairs,
    _successor_matrices,
)
from repro.analysis.static.findings import Finding

__all__ = [
    "PerVlDependencies",
    "build_per_vl_dependencies",
    "check_vl_deadlock_freedom",
    "check_vl_consistency",
    "check_vl_capacity",
    "check_vl_transition_deadlock",
]

#: Data lanes are tracked as bits of an int64 mask; IB's 4-bit VL field
#: tops out at 15 anyway, so this bound is never the binding one.
MAX_DATA_VLS = 62

#: Below this many destination switches the sharded build is all overhead.
_MIN_PARALLEL_DESTS = 64

#: Shards per worker — small enough to amortize pickling, large enough to
#: smooth uneven per-destination work (same constant as ParallelRouter).
_CHUNKS_PER_WORKER = 4


@dataclass
class PerVlDependencies:
    """Each data lane's dependency set, plus the per-port lane table.

    ``keys_by_vl[v]`` holds VL ``v``'s sorted unique dependency keys
    (``from_cid * num_channels + to_cid`` over the dense channel ids of
    ``channel_tbl``) — exactly the encoding the Kahn kernel consumes.
    ``port_lanes`` is the SL2VL-style artifact: bit ``v`` of
    ``port_lanes[s, p]`` is set iff some flow crosses switch ``s``'s port
    ``p`` on data VL ``v``.
    """

    num_vls: int
    num_channels: int
    #: Sorted unique cable keys (``src * n + peer``), shared by all lanes.
    channel_tbl: np.ndarray
    keys_by_vl: List[np.ndarray]
    #: ``(num_switches, 256)`` int64 bitmask of data VLs per out port.
    port_lanes: np.ndarray

    def dependency_counts(self) -> List[int]:
        """Dependencies per data lane (metrics feed)."""
        return [int(k.size) for k in self.keys_by_vl]


def _require_vl(snap: FabricSnapshot) -> VlAssignment:
    vl = snap.vl
    if vl is None:
        raise StaticAnalysisError(
            "snapshot carries no VL assignment; single-VL fabrics are"
            " covered by check_deadlock_freedom (CDG001)"
        )
    if vl.num_vls > MAX_DATA_VLS:
        raise StaticAnalysisError(
            f"{vl.num_vls} data VLs exceed the {MAX_DATA_VLS}-lane"
            " analysis bound"
        )
    return vl


def build_per_vl_dependencies(
    snap: FabricSnapshot, *, workers: int = 1
) -> PerVlDependencies:
    """Split the fabric's channel dependencies by assigned data lane.

    Dest-keyed assignments (DFSSSP) resolve in one fully vectorized
    successor-matrix pass. Pair-keyed assignments (LASH) need per-path
    lane attribution: for each destination's in-tree the source lane
    masks are propagated root-ward in depth order (``bitwise_or.at``
    scatters — no per-edge Python), which marks every tree edge with the
    union of lanes crossing it; the per-destination loop shards over
    *workers* processes when the fabric is large enough.
    """
    vl = _require_vl(snap)
    tbl = channel_table(snap.view)
    if vl.kind == "dest":
        return _build_dest(snap, vl, tbl)
    return _build_pair(snap, vl, tbl, workers=workers)


# -- dest-keyed (DFSSSP) ------------------------------------------------------


def _build_dest(
    snap: FabricSnapshot, vl: VlAssignment, tbl: np.ndarray
) -> PerVlDependencies:
    n = snap.num_switches
    num_vls = vl.num_vls
    c_count = len(tbl)
    cols = snap.terminal_lids
    lid_map = vl.lid_to_vl or {}
    col_vl = np.asarray(
        [lid_map.get(int(lid), -1) for lid in cols.tolist()], dtype=np.int64
    )
    keys_by_vl: List[np.ndarray] = [
        np.empty(0, dtype=np.int64) for _ in range(num_vls)
    ]
    lanes = np.zeros((n, 256), dtype=np.int64)
    if cols.size == 0:
        return PerVlDependencies(num_vls, c_count, tbl, keys_by_vl, lanes)
    _, nxt = _successor_matrices(snap, cols)
    col = np.arange(cols.size, dtype=np.int64)[None, :]
    b = nxt
    c = np.where(b >= 0, nxt[np.clip(b, 0, None), col], -1)
    a = np.broadcast_to(np.arange(n, dtype=np.int64)[:, None], b.shape)
    # Columns on an invalid/management lane contribute nothing here; they
    # are VLC002/VLC003's findings, not silent dependency mass.
    in_range = (col_vl >= 0) & (col_vl < num_vls)
    hop = (b >= 0) & in_range[None, :]
    dep = hop & (c >= 0)
    if dep.any():
        cid1 = channel_ids(tbl, a[dep], b[dep], n)
        cid2 = channel_ids(tbl, b[dep], c[dep], n)
        enc = cid1 * np.int64(c_count) + cid2
        dep_vl = np.broadcast_to(col_vl[None, :], b.shape)[dep]
        for v in range(num_vls):
            keys_by_vl[v] = np.unique(enc[dep_vl == v])
    if hop.any():
        prt = snap.ports[:, cols].astype(np.int64)
        bit = np.int64(1) << np.broadcast_to(col_vl[None, :], b.shape)[hop]
        np.bitwise_or.at(
            lanes.reshape(-1), a[hop] * np.int64(256) + prt[hop], bit
        )
    return PerVlDependencies(num_vls, c_count, tbl, keys_by_vl, lanes)


# -- pair-keyed (LASH) --------------------------------------------------------


def _tree_depths(parent: np.ndarray, n: int) -> np.ndarray:
    """Hop count of every switch toward the in-tree root (vectorized chase).

    Bounded at ``n + 1`` sweeps so a corrupted (cyclic) table terminates;
    the reachability checks own reporting such a loop.
    """
    depth = np.zeros(n, dtype=np.int64)
    cur = parent.copy()
    for _ in range(n + 1):
        live = cur >= 0
        if not live.any():
            break
        depth[live] += 1
        cur[live] = parent[cur[live]]
    return depth


def _pair_state(
    snap: FabricSnapshot, vl: VlAssignment, tbl: np.ndarray
) -> Tuple[Any, ...]:
    """The picklable shard-invariant inputs of the pair-keyed build."""
    n = snap.num_switches
    term_sw = snap.dest_switch[snap.terminal_lids]
    dests, first = np.unique(term_sw, return_index=True)
    rep_cols = snap.terminal_lids[first]
    if dests.size:
        _, nxt = _successor_matrices(snap, rep_cols)
        rep_ports = snap.ports[:, rep_cols].astype(np.int64)
    else:
        nxt = np.empty((n, 0), dtype=np.int64)
        rep_ports = np.empty((n, 0), dtype=np.int64)
    items = vl.items()
    if items:
        arr = np.asarray(
            [[s, t, v] for (s, t), v in items], dtype=np.int64
        )
        keep = (arr[:, 2] >= 0) & (arr[:, 2] < vl.num_vls)
        arr = arr[keep]
        order = np.lexsort((arr[:, 0], arr[:, 1]))
        src_a, dst_a, vl_a = arr[order, 0], arr[order, 1], arr[order, 2]
    else:
        src_a = dst_a = vl_a = np.empty(0, dtype=np.int64)
    return (n, vl.num_vls, tbl, nxt, rep_ports, dests, src_a, dst_a, vl_a)


def _pair_chunk_state(
    state: Tuple[Any, ...], lo: int, hi: int
) -> Tuple[List[List[np.ndarray]], np.ndarray]:
    """Dependency keys and lane bits of destination shard ``[lo, hi)``."""
    n, num_vls, tbl, nxt, rep_ports, dests, src_a, dst_a, vl_a = state
    c_count = len(tbl)
    chunks: List[List[np.ndarray]] = [[] for _ in range(num_vls)]
    lanes = np.zeros((n, 256), dtype=np.int64)
    flat = lanes.reshape(-1)
    for j in range(lo, hi):
        t = int(dests[j])
        s_lo = int(np.searchsorted(dst_a, t, side="left"))
        s_hi = int(np.searchsorted(dst_a, t, side="right"))
        if s_lo == s_hi:
            continue
        srcs = src_a[s_lo:s_hi]
        vls = vl_a[s_lo:s_hi]
        ok = (srcs >= 0) & (srcs < n)
        srcs, vls = srcs[ok], vls[ok]
        parent = nxt[:, j]
        mask = np.zeros(n, dtype=np.int64)
        np.bitwise_or.at(mask, srcs, np.int64(1) << vls)
        # Root-ward lane propagation in strict depth order: each node's
        # parent is exactly one hop shallower, so processing deepest
        # first marks every tree edge with all lanes crossing it.
        depth = _tree_depths(parent, n)
        order = np.argsort(depth, kind="stable")
        dsort = depth[order]
        maxd = int(dsort[-1]) if dsort.size else 0
        bounds = np.searchsorted(dsort, np.arange(maxd + 2))
        for h in range(maxd, 0, -1):
            nodes = order[bounds[h]:bounds[h + 1]]
            if nodes.size == 0:
                continue
            par = parent[nodes]
            live = par >= 0
            if live.any():
                np.bitwise_or.at(mask, par[live], mask[nodes[live]])
        active = np.flatnonzero((parent >= 0) & (mask != 0))
        if active.size == 0:
            continue
        np.bitwise_or.at(
            flat,
            active * np.int64(256) + rep_ports[active, j],
            mask[active],
        )
        b = parent[active]
        has2 = parent[b] >= 0
        a2, b2 = active[has2], b[has2]
        if not a2.size:
            continue
        c2 = parent[b2]
        cid1 = channel_ids(tbl, a2, b2, n)
        cid2 = channel_ids(tbl, b2, c2, n)
        enc = cid1 * np.int64(c_count) + cid2
        m = mask[a2]
        for v in range(num_vls):
            sel = ((m >> np.int64(v)) & 1).astype(bool)
            if sel.any():
                chunks[v].append(enc[sel])
    return chunks, lanes


# Module-global worker state, installed once per pool worker by the fork
# initializer (same pattern as repro.sm.routing.parallel).
_VL_WORKER_STATE: Optional[Tuple[Any, ...]] = None


def _init_vl_worker(state: Tuple[Any, ...]) -> None:
    global _VL_WORKER_STATE
    _VL_WORKER_STATE = state


def _vl_pair_chunk(
    bounds: Tuple[int, int]
) -> Tuple[List[List[np.ndarray]], np.ndarray]:
    lo, hi = bounds
    assert _VL_WORKER_STATE is not None
    return _pair_chunk_state(_VL_WORKER_STATE, lo, hi)


def _chunk_bounds(n: int, workers: int) -> List[Tuple[int, int]]:
    chunks = min(max(workers * _CHUNKS_PER_WORKER, 1), n)
    size = -(-n // chunks)  # ceil
    return [(lo, min(lo + size, n)) for lo in range(0, n, size)]


def _pair_chunks_sharded(
    state: Tuple[Any, ...], total: int, workers: int
) -> List[Tuple[List[List[np.ndarray]], np.ndarray]]:
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    ctx = multiprocessing.get_context("fork")
    with ProcessPoolExecutor(
        max_workers=workers,
        mp_context=ctx,
        initializer=_init_vl_worker,
        initargs=(state,),
    ) as pool:
        # Ordered map; the merge below is order-independent anyway
        # (set union per lane, bitwise OR for lane tables).
        return list(pool.map(_vl_pair_chunk, _chunk_bounds(total, workers)))


def _build_pair(
    snap: FabricSnapshot,
    vl: VlAssignment,
    tbl: np.ndarray,
    *,
    workers: int = 1,
) -> PerVlDependencies:
    n = snap.num_switches
    num_vls = vl.num_vls
    state = _pair_state(snap, vl, tbl)
    total = int(state[5].size)
    results: List[Tuple[List[List[np.ndarray]], np.ndarray]]
    if workers > 1 and total >= _MIN_PARALLEL_DESTS:
        try:
            results = _pair_chunks_sharded(state, total, workers)
        except (OSError, PermissionError, ValueError, RuntimeError):
            # Sandboxes without fork/pipes land here; the serial pass is
            # the same computation, destination for destination.
            results = [_pair_chunk_state(state, 0, total)]
    else:
        results = [_pair_chunk_state(state, 0, total)]
    keys_by_vl: List[np.ndarray] = []
    for v in range(num_vls):
        parts = [arr for chunks, _ in results for arr in chunks[v]]
        keys_by_vl.append(
            np.unique(np.concatenate(parts))
            if parts
            else np.empty(0, dtype=np.int64)
        )
    lanes = np.zeros((n, 256), dtype=np.int64)
    for _, shard_lanes in results:
        lanes |= shard_lanes
    return PerVlDependencies(num_vls, len(tbl), tbl, keys_by_vl, lanes)


# -- rule checks --------------------------------------------------------------


def _with_vl_detail(findings: List[Finding], v: int) -> List[Finding]:
    return [
        replace(f, detail={**dict(f.detail), "vl": v}) for f in findings
    ]


def check_vl_deadlock_freedom(
    snap: FabricSnapshot,
    *,
    deps: Optional[PerVlDependencies] = None,
    workers: int = 1,
) -> List[Finding]:
    """VLC001: Duato's acyclicity condition on every data lane.

    Passing a prebuilt *deps* avoids recomputing the split when the
    caller also feeds metrics from it.
    """
    _require_vl(snap)
    pv = deps if deps is not None else build_per_vl_dependencies(
        snap, workers=workers
    )
    findings: List[Finding] = []
    for v, keys in enumerate(pv.keys_by_vl):
        if keys.size == 0:
            continue
        if _kahn_acyclic(keys, pv.num_channels):
            continue
        # Failure path only: decode dense ids back to switch pairs and
        # let the tuple CDG extract a concrete cycle for the finding.
        from_ch = pv.channel_tbl[keys // np.int64(pv.num_channels)]
        to_ch = pv.channel_tbl[keys % np.int64(pv.num_channels)]
        findings.extend(
            _with_vl_detail(
                _cycle_finding(
                    snap,
                    from_ch,
                    to_ch,
                    rule="VLC001",
                    context=f"data VL {v} is deadlock-prone",
                ),
                v,
            )
        )
    return findings


def _capped(findings: List[Finding], rule: str) -> List[Finding]:
    if len(findings) <= MAX_FINDINGS_PER_RULE:
        return findings
    suppressed = len(findings) - MAX_FINDINGS_PER_RULE
    return findings[:MAX_FINDINGS_PER_RULE] + [
        Finding(
            rule="META001",
            message=f"{suppressed} further {rule} findings suppressed",
            detail={"suppressed_by_rule": {rule: suppressed}},
        )
    ]


def check_vl_consistency(snap: FabricSnapshot) -> List[Finding]:
    """VLC002: every assignment names an existing lane, consistently.

    Routing is destination-based, so one assignment governs each path
    end-to-end; what can still go wrong is the assignment itself — a
    nonexistent lane, a terminal riding the management lane (or vice
    versa), or an entry dangling off the fabric's terminal set.
    """
    vl = _require_vl(snap)
    findings: List[Finding] = []
    if vl.kind == "pair":
        term_set = set(
            np.unique(snap.dest_switch[snap.terminal_lids]).tolist()
        )
        # VlAssignment.items() returns a key-sorted list by contract.
        for (s, t), v in vl.items():  # noqa: DET005
            if v < 0 or v >= vl.num_vls:
                findings.append(
                    Finding(
                        rule="VLC002",
                        switch=s,
                        switch_name=snap.name_of(s),
                        message=(
                            f"pair ({s}, {t}) assigned nonexistent data"
                            f" VL {v} (fabric exposes"
                            f" VL0..VL{vl.num_vls - 1})"
                        ),
                        detail={"pair": [s, t], "vl": v},
                    )
                )
            elif s == t:
                findings.append(
                    Finding(
                        rule="VLC002",
                        switch=s,
                        switch_name=snap.name_of(s),
                        message=f"self-pair ({s}, {t}) carries VL {v}",
                        detail={"pair": [s, t], "vl": v},
                    )
                )
            elif s not in term_set or t not in term_set:
                findings.append(
                    Finding(
                        rule="VLC002",
                        switch=s if s not in term_set else t,
                        message=(
                            f"pair ({s}, {t}) references a switch without"
                            " terminals; no data path exists to layer"
                        ),
                        detail={"pair": [s, t], "vl": v},
                    )
                )
        return _capped(findings, "VLC002")
    term_lids = set(snap.terminal_lids.tolist())
    switch_lids = set(snap.lids.tolist()) - term_lids
    for lid, v in vl.items():
        if lid in term_lids:
            if v == MANAGEMENT_VL:
                findings.append(
                    Finding(
                        rule="VLC002",
                        lid=lid,
                        message=(
                            f"terminal LID {lid} assigned the management"
                            f" lane VL{MANAGEMENT_VL}; data traffic would"
                            " starve the escape channel"
                        ),
                        detail={"vl": v},
                    )
                )
            elif v < 0 or v >= vl.num_vls:
                findings.append(
                    Finding(
                        rule="VLC002",
                        lid=lid,
                        message=(
                            f"terminal LID {lid} assigned nonexistent"
                            f" data VL {v} (fabric exposes"
                            f" VL0..VL{vl.num_vls - 1})"
                        ),
                        detail={"vl": v},
                    )
                )
        elif lid in switch_lids:
            if v != MANAGEMENT_VL:
                findings.append(
                    Finding(
                        rule="VLC002",
                        lid=lid,
                        message=(
                            f"switch self-LID {lid} assigned data VL {v};"
                            " management traffic must ride"
                            f" VL{MANAGEMENT_VL}"
                        ),
                        detail={"vl": v},
                    )
                )
        else:
            findings.append(
                Finding(
                    rule="VLC002",
                    lid=lid,
                    message=(
                        f"dangling VL assignment: LID {lid} is not bound"
                        " in the fabric"
                    ),
                    detail={"vl": v},
                )
            )
    return _capped(findings, "VLC002")


def check_vl_capacity(snap: FabricSnapshot) -> List[Finding]:
    """VLC003: layer count within ``max_vls``, no unassigned terminal.

    Missing assignments aggregate into one finding per class — a fabric
    that lost a whole layer should read as one actionable fault, not
    thousands of repeats.
    """
    vl = _require_vl(snap)
    findings: List[Finding] = []
    if vl.num_vls > vl.max_vls:
        findings.append(
            Finding(
                rule="VLC003",
                message=(
                    f"{vl.num_vls} virtual layers exceed the engine's"
                    f" max_vls={vl.max_vls}; hardware cannot be"
                    " programmed with this assignment"
                ),
                detail={"num_vls": vl.num_vls, "max_vls": vl.max_vls},
            )
        )
    if vl.kind == "pair":
        term = np.unique(snap.dest_switch[snap.terminal_lids]).tolist()
        present = set(vl.pair_to_vl or {})
        missing = [
            (s, t)
            for s in term
            for t in term
            if s != t and (s, t) not in present
        ]
        if missing:
            findings.append(
                Finding(
                    rule="VLC003",
                    switch=missing[0][0],
                    switch_name=snap.name_of(missing[0][0]),
                    message=(
                        f"{len(missing)} terminal switch pair(s) lack a VL"
                        f" assignment (e.g. {missing[:8]})"
                    ),
                    detail={
                        "missing_pairs": [list(p) for p in missing[:32]],
                        "missing_count": len(missing),
                    },
                )
            )
        return findings
    assigned = set(vl.lid_to_vl or {})
    missing_term = [
        lid for lid in snap.terminal_lids.tolist() if lid not in assigned
    ]
    if missing_term:
        findings.append(
            Finding(
                rule="VLC003",
                lid=missing_term[0],
                message=(
                    f"{len(missing_term)} terminal LID(s) lack a VL"
                    f" assignment (e.g. {missing_term[:8]})"
                ),
                detail={
                    "missing_lids": missing_term[:32],
                    "missing_count": len(missing_term),
                },
            )
        )
    term_lids = set(snap.terminal_lids.tolist())
    missing_sw = [
        lid
        for lid in snap.lids.tolist()
        if lid not in term_lids and lid not in assigned
    ]
    if missing_sw:
        findings.append(
            Finding(
                rule="VLC003",
                lid=missing_sw[0],
                message=(
                    f"{len(missing_sw)} switch self-LID(s) lack their"
                    f" VL{MANAGEMENT_VL} assignment"
                    f" (e.g. {missing_sw[:8]})"
                ),
                detail={
                    "missing_lids": missing_sw[:32],
                    "missing_count": len(missing_sw),
                },
            )
        )
    return findings


def _per_vl_dep_pairs(
    snap: FabricSnapshot, *, workers: int = 1
) -> List[np.ndarray]:
    """Per-lane dependency sets in global ``(a*n+b)`` channel encoding.

    A snapshot without a VL assignment contributes its whole (single-VL)
    dependency set on lane 0 — the conservative model for transitions
    between a single-VL and a VL-routed configuration.
    """
    n = snap.num_switches
    n2 = np.int64(n) * np.int64(n)
    if snap.vl is None:
        f, t = _dependency_pairs(snap, snap.terminal_lids)
        return [f * n2 + t]
    pv = build_per_vl_dependencies(snap, workers=workers)
    out: List[np.ndarray] = []
    for keys in pv.keys_by_vl:
        from_ch = pv.channel_tbl[keys // np.int64(pv.num_channels)]
        to_ch = pv.channel_tbl[keys % np.int64(pv.num_channels)]
        out.append(from_ch * n2 + to_ch)
    return out


def check_vl_transition_deadlock(
    old: FabricSnapshot,
    new: FabricSnapshot,
    *,
    workers: int = 1,
) -> List[Finding]:
    """VLC004: the §VI-C union CDG must be acyclic on every data lane.

    While a reconfiguration is in flight some switches forward per the
    old tables and some per the new, but a flow's lane does not change
    mid-flight — so the deadlock-freedom obligation splits per VL: for
    every data lane, the union of old and new dependencies on that lane
    must be acyclic. Either side may be single-VL (its dependencies all
    land on lane 0), which covers engine-change reconfigurations too.
    """
    if old.num_switches != new.num_switches:
        raise StaticAnalysisError(
            "transition analysis needs snapshots of the same switch graph"
        )
    n = new.num_switches
    n2 = np.int64(n) * np.int64(n)
    old_sets = _per_vl_dep_pairs(old, workers=workers)
    new_sets = _per_vl_dep_pairs(new, workers=workers)
    findings: List[Finding] = []
    for v in range(max(len(old_sets), len(new_sets))):
        parts = []
        if v < len(old_sets):
            parts.append(old_sets[v])
        if v < len(new_sets):
            parts.append(new_sets[v])
        union = np.unique(np.concatenate(parts))
        if union.size == 0:
            continue
        from_ch = union // n2
        to_ch = union % n2
        chans = np.unique(np.concatenate([from_ch, to_ch]))
        keys = np.unique(
            np.searchsorted(chans, from_ch) * np.int64(chans.size)
            + np.searchsorted(chans, to_ch)
        )
        if _kahn_acyclic(keys, int(chans.size)):
            continue
        findings.extend(
            _with_vl_detail(
                _cycle_finding(
                    new,
                    from_ch,
                    to_ch,
                    rule="VLC004",
                    context=(
                        f"reconfiguration transition on data VL {v} is"
                        " deadlock-prone"
                    ),
                ),
                v,
            )
        )
    return findings
