"""Static fabric invariant checks over LFT contents — no packet simulation.

Every check here works on a :class:`FabricSnapshot`: the CSR switch graph
plus one dense ``(num_switches, top_lid + 1)`` port matrix (either the
switches' hardware LFTs or a routing engine's
:class:`~repro.sm.routing.base.RoutingTables`). The reachability checks
iterate a **successor matrix** — state ``succ[s, j]`` is where a packet
sitting at switch ``s`` for destination column ``j`` goes next — by
repeated composition (``succ = succ[succ]``), so after ``ceil(log2 n)``
doublings every packet has either been absorbed (delivered, black-holed,
misdelivered) or is provably on a forwarding loop. One pass classifies
all ``n * |LIDs|`` (source, destination) pairs with NumPy gathers; no
per-path Python walk happens (contrast
:func:`repro.analysis.verification.verify_delivery`, the slow runtime
walker this module statically subsumes).

The deadlock checks extract the channel dependency set with the same
successor matrices and reuse the cycle finder of
:class:`repro.sm.deadlock.ChannelDependencyGraph`. By convention the CDG
checks cover **terminal (endpoint) LIDs only**: traffic to switch
management LIDs travels on VL15, which has dedicated buffering and so
cannot participate in a data-VL credit cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import LFT_UNSET
from repro.errors import StaticAnalysisError
from repro.fabric.topology import SwitchFabricView, Topology
from repro.sm.deadlock import Channel, ChannelDependencyGraph
from repro.sm.routing.vl import VlAssignment
from repro.analysis.static.findings import Finding

__all__ = [
    "FabricSnapshot",
    "check_reachability",
    "check_deadlock_freedom",
    "check_transition_deadlock",
    "check_updn_legality",
    "check_dor_order",
    "check_vswitch_lids",
    "check_skyline_disjointness",
]

#: Cap on per-rule findings so a badly broken fabric stays readable.
MAX_FINDINGS_PER_RULE = 50


@dataclass
class FabricSnapshot:
    """One fabric's routing state, frozen for offline analysis."""

    view: SwitchFabricView
    #: ``(num_switches, top_lid + 1)`` output-port matrix (LFT_UNSET = hole).
    ports: np.ndarray
    #: Destination switch per LID (-1 for unbound LIDs).
    dest_switch: np.ndarray
    #: Delivery port on the destination switch (0 = switch self-LID).
    dest_port: np.ndarray
    #: All bound LIDs, ascending.
    lids: np.ndarray
    #: Endpoint (non-switch) LIDs, ascending — the data-VL destinations.
    terminal_lids: np.ndarray
    switch_names: List[str] = field(default_factory=list)
    #: The routing engine's virtual-lane assignment, when exported
    #: (LASH/DFSSSP); drives the per-VL checks of
    #: :mod:`repro.analysis.static.vl_checks`.
    vl: Optional[VlAssignment] = None
    #: Dense ``(num_switches, 256)`` port -> peer-switch map (-1 = exit).
    _p2p: Optional[np.ndarray] = None

    @property
    def num_switches(self) -> int:
        """Switch count."""
        return self.view.num_switches

    def name_of(self, switch_index: int) -> Optional[str]:
        """Best-effort switch name for findings."""
        if 0 <= switch_index < len(self.switch_names):
            return self.switch_names[switch_index]
        return None

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        ports: Optional[np.ndarray] = None,
        *,
        vl: Optional[VlAssignment] = None,
    ) -> "FabricSnapshot":
        """Snapshot *topology*; ``ports`` defaults to the hardware LFTs.

        Passing an engine's ``RoutingTables.ports`` analyses the *intended*
        routing instead of the programmed one — both views matter: the SM's
        function must be correct, and the switches must agree with it.
        ``vl`` carries the engine's virtual-lane assignment into the
        snapshot for the per-VL deadlock checks.
        """
        switches = topology.switches
        n = len(switches)
        terminals = topology.terminals()
        switch_lids = topology.switch_lids()
        all_lids = sorted(
            [t.lid for t in terminals] + list(switch_lids)
        )
        if ports is not None and all_lids and all_lids[-1] >= ports.shape[1]:
            uncovered = [lid for lid in all_lids if lid >= ports.shape[1]]
            raise StaticAnalysisError(
                f"supplied port table is {ports.shape[1]} columns wide but"
                f" the fabric binds {len(uncovered)} LID(s) beyond it"
                f" (e.g. {uncovered[:8]}); widen the table — those LIDs"
                " would otherwise be silently skipped"
            )
        if ports is None:
            width = max(
                [t.lid for t in terminals] + list(switch_lids) + [0]
            ) + 1
            width = max(
                [width] + [len(sw.lft.as_array()) for sw in switches]
            )
            ports = np.full((n, width), LFT_UNSET, dtype=np.int16)
            for sw in switches:
                arr = sw.lft.as_array()
                ports[sw.index, : len(arr)] = arr
        width = ports.shape[1]
        dest_switch = np.full(width, -1, dtype=np.int32)
        dest_port = np.full(width, -1, dtype=np.int32)
        for t in terminals:
            if t.lid < width:
                dest_switch[t.lid] = t.switch_index
                dest_port[t.lid] = t.switch_port
        for lid, sw_idx in switch_lids.items():
            if lid < width:
                dest_switch[lid] = sw_idx
                dest_port[lid] = 0
        return cls(
            view=topology.fabric_view(),
            ports=ports,
            dest_switch=dest_switch,
            dest_port=dest_port,
            lids=np.asarray(
                [lid for lid in all_lids if lid < width], dtype=np.int64
            ),
            terminal_lids=np.asarray(
                sorted(t.lid for t in terminals if t.lid < width),
                dtype=np.int64,
            ),
            switch_names=[sw.name for sw in switches],
            vl=vl,
        )

    # -- derived arrays ------------------------------------------------------

    def port_to_peer(self) -> np.ndarray:
        """Dense ``(n, 256)`` matrix: out-port -> neighbour switch (-1 exit)."""
        if self._p2p is None:
            view = self.view
            n = view.num_switches
            p2p = np.full((n, 256), -1, dtype=np.int32)
            degrees = np.diff(view.indptr)
            edge_src = np.repeat(np.arange(n, dtype=np.int64), degrees)
            p2p[edge_src, view.out_port] = view.peer
            self._p2p = p2p
        return self._p2p

    def select_lids(self, lids: Optional[Sequence[int]]) -> np.ndarray:
        """Validated LID column selection (default: every bound LID)."""
        if lids is None:
            return self.lids
        arr = np.asarray(sorted(set(int(lid) for lid in lids)), dtype=np.int64)
        if arr.size and (arr.min() < 0 or arr.max() >= self.ports.shape[1]):
            raise StaticAnalysisError(
                f"LID selection out of table range 0..{self.ports.shape[1] - 1}"
            )
        return arr


# Absorbing states of the successor iteration, offsets past the switches.
_DELIVERED = 0
_BLACKHOLE = 1
_MISDELIVERED = 2


def _successor_matrices(
    snap: FabricSnapshot, cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(succ, nxt)`` for the selected LID columns.

    ``succ[s, j]`` is the packet's next state: a switch index, or one of
    the absorbing states ``n + _DELIVERED`` / ``n + _BLACKHOLE`` /
    ``n + _MISDELIVERED``. ``nxt[s, j]`` is the next *switch* (or -1 when
    the packet leaves the switch graph) — the hop relation the dependency
    and legality checks consume.
    """
    n = snap.num_switches
    k = cols.size
    sub = snap.ports[:, cols].astype(np.int64)  # (n, k)
    valid = sub != LFT_UNSET
    p2p = snap.port_to_peer()
    peer = p2p[
        np.arange(n)[:, None], np.where(valid, sub, 0)
    ]  # (n, k); -1 = exits the switch graph
    succ = np.where(valid, np.where(peer >= 0, peer, n + _MISDELIVERED),
                    n + _BLACKHOLE)
    # Destination-switch overrides: reaching the destination terminates the
    # walk. A terminal LID must exit through its exact attachment port; a
    # switch self-LID is delivered by arrival (port 0 is the management
    # port, same convention as verify_delivery).
    ds = snap.dest_switch[cols]  # (k,)
    dp = snap.dest_port[cols]
    at_dest = np.arange(n)[:, None] == ds[None, :]
    delivered_ok = at_dest & (
        (dp[None, :] == 0) | (valid & (sub == dp[None, :]))
    )
    # Only *programmed* entries at the destination switch can misdeliver;
    # an LFT_UNSET hole there is still a black hole (LFT002, not LFT003).
    succ = np.where(at_dest & valid, n + _MISDELIVERED, succ)
    succ = np.where(delivered_ok, n + _DELIVERED, succ)
    nxt = np.where((succ < n) & ~at_dest, succ, -1).astype(np.int64)
    return succ, nxt


def _absorb(succ: np.ndarray, n: int) -> np.ndarray:
    """Iterate the successor matrix to its absorbing classification.

    Each round composes the current map **with itself** (absorbing states
    stay fixed points), so the walked path length doubles per round:
    after ``ceil(log2(n + 1)) + 1`` rounds the walk covers more than
    ``n`` hops, and any state still inside the switch graph is on (or
    feeding) a cycle.
    """
    k = succ.shape[1]
    absorbing = np.tile(n + np.arange(3, dtype=np.int64)[:, None], (1, k))
    state = succ.copy()
    col = np.arange(k, dtype=np.int64)[None, :]
    rounds = max(1, int(np.ceil(np.log2(n + 1))) + 1)
    for _ in range(rounds):
        state = np.vstack([state, absorbing])[state, col]
    return state


def _extract_cycle(
    nxt_col: np.ndarray, start: int
) -> List[int]:
    """Follow one looping column from *start* and return the cycle switches."""
    seen: Dict[int, int] = {}
    order: List[int] = []
    cur = start
    while cur >= 0 and cur not in seen:
        seen[cur] = len(order)
        order.append(cur)
        cur = int(nxt_col[cur])
    if cur < 0:  # pragma: no cover - callers only pass looping sources
        return []
    return order[seen[cur]:]


def check_reachability(
    snap: FabricSnapshot, *, lids: Optional[Sequence[int]] = None
) -> List[Finding]:
    """LFT001-LFT004: loops, black holes, misdelivery, unreachable LIDs.

    Classifies every (source switch, destination LID) pair in one
    vectorized successor iteration and aggregates the failures per LID so
    a broken fabric produces a handful of actionable findings rather than
    ``n`` repeats.
    """
    cols = snap.select_lids(lids)
    if cols.size == 0:
        return []
    n = snap.num_switches
    succ, nxt = _successor_matrices(snap, cols)
    final = _absorb(succ, n)
    findings: List[Finding] = []
    kept: Dict[str, int] = {}
    suppressed: Dict[str, int] = {}

    def add(finding: Finding) -> None:
        # Cap findings *per rule* so one pathological rule cannot crowd
        # out (or get blamed for) the others' suppression.
        if kept.get(finding.rule, 0) >= MAX_FINDINGS_PER_RULE:
            suppressed[finding.rule] = suppressed.get(finding.rule, 0) + 1
        else:
            kept[finding.rule] = kept.get(finding.rule, 0) + 1
            findings.append(finding)

    looping = final < n
    blackholed = final == n + _BLACKHOLE
    misdelivered = final == n + _MISDELIVERED
    ds = snap.dest_switch[cols]
    rows = np.arange(n)[:, None]
    non_dest = rows != ds[None, :]
    failing = (looping | blackholed | misdelivered) & non_dest
    bad_cols = np.flatnonzero(failing.any(axis=0))
    for j in bad_cols:
        lid = int(cols[j])
        dest = int(ds[j])
        fail_sources = np.flatnonzero(failing[:, j])
        if fail_sources.size == np.count_nonzero(non_dest[:, j]):
            causes = []
            for mask, label in (
                (looping[:, j], "looping"),
                (blackholed[:, j], "black-holed"),
                (misdelivered[:, j], "misdelivered"),
            ):
                hit = int(np.count_nonzero(mask & non_dest[:, j]))
                if hit:
                    causes.append(f"{hit} {label}")
            add(
                Finding(
                    rule="LFT004",
                    lid=lid,
                    switch=dest if dest >= 0 else None,
                    switch_name=snap.name_of(dest) if dest >= 0 else None,
                    message=(
                        f"LID {lid} is unreachable from every other switch"
                        f" ({', '.join(causes)})"
                    ),
                    detail={"sources_affected": int(fail_sources.size)},
                )
            )
            continue
        if looping[:, j].any():
            src = int(np.flatnonzero(looping[:, j])[0])
            cycle = _extract_cycle(nxt[:, j], src)
            if not cycle:
                # A looping-classified source must reach a cycle by
                # following ``nxt``; walking off the graph instead means
                # the classifier and the hop relation disagree — an
                # analyzer bug, not a fabric finding.
                raise StaticAnalysisError(
                    "internal analyzer inconsistency: switch"
                    f" {src} is classified as looping for LID {lid}"
                    " but no cycle is reachable from it"
                )
            add(
                Finding(
                    rule="LFT001",
                    lid=lid,
                    switch=cycle[0],
                    switch_name=snap.name_of(cycle[0]),
                    message=(
                        f"forwarding loop for LID {lid}:"
                        f" {' -> '.join(map(str, cycle + cycle[:1]))}"
                        f" ({int(np.count_nonzero(looping[:, j]))} sources"
                        " affected)"
                    ),
                    detail={
                        "cycle": cycle,
                        "sources_affected": int(
                            np.count_nonzero(looping[:, j])
                        ),
                    },
                )
            )
        if blackholed[:, j].any():
            direct = np.flatnonzero(
                (succ[:, j] == n + _BLACKHOLE) & non_dest[:, j]
            )
            site = int(direct[0]) if direct.size else int(
                np.flatnonzero(blackholed[:, j])[0]
            )
            add(
                Finding(
                    rule="LFT002",
                    lid=lid,
                    switch=site,
                    switch_name=snap.name_of(site),
                    message=(
                        f"LID {lid} black-holes at"
                        f" {direct.size} switch(es), e.g. switch {site}"
                        f" ({int(np.count_nonzero(blackholed[:, j]))}"
                        " sources affected)"
                    ),
                    detail={
                        "direct_sites": direct.tolist()[:16],
                        "sources_affected": int(
                            np.count_nonzero(blackholed[:, j])
                        ),
                    },
                )
            )
        if misdelivered[:, j].any():
            direct = np.flatnonzero(
                (succ[:, j] == n + _MISDELIVERED) & non_dest[:, j]
            )
            at_dest_mis = bool((~non_dest[:, j] & misdelivered[:, j]).any())
            site = int(direct[0]) if direct.size else dest
            add(
                Finding(
                    rule="LFT003",
                    lid=lid,
                    switch=site,
                    switch_name=snap.name_of(site) if site >= 0 else None,
                    message=(
                        f"LID {lid} exits the fabric at the wrong endpoint"
                        + (
                            " (wrong delivery port at destination switch)"
                            if at_dest_mis and not direct.size
                            else f" at switch {site}"
                        )
                    ),
                    detail={
                        "direct_sites": direct.tolist()[:16],
                        "sources_affected": int(
                            np.count_nonzero(misdelivered[:, j])
                        ),
                    },
                )
            )
    if suppressed:
        summary = ", ".join(
            f"{count} {rule}" for rule, count in sorted(suppressed.items())
        )
        findings.append(
            Finding(
                rule="META001",
                message=(
                    f"further reachability findings suppressed ({summary};"
                    f" {bad_cols.size} LIDs affected in total)"
                ),
                detail={
                    "suppressed_by_rule": dict(sorted(suppressed.items())),
                    "lids_affected": int(bad_cols.size),
                },
            )
        )
    return findings


def _dependency_pairs(
    snap: FabricSnapshot, cols: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Unique channel-dependency pairs induced by the selected columns.

    Channels are encoded ``a * n + b``; a dependency exists whenever some
    destination routes ``a -> b`` then ``b -> c``. Fully vectorized over
    the successor matrices.
    """
    n = snap.num_switches
    _, nxt = _successor_matrices(snap, cols)
    col = np.arange(cols.size, dtype=np.int64)[None, :]
    b = nxt  # (n, k)
    c = np.where(b >= 0, nxt[np.clip(b, 0, None), col], -1)
    mask = (b >= 0) & (c >= 0)
    if not mask.any():
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    a_idx = np.broadcast_to(np.arange(n, dtype=np.int64)[:, None], b.shape)
    from_ch = (a_idx * n + b)[mask]
    to_ch = (b * n + c)[mask]
    pairs = np.unique(np.stack([from_ch, to_ch], axis=1), axis=0)
    return pairs[:, 0], pairs[:, 1]


def _decode(channel: int, n: int) -> Channel:
    return (channel // n, channel % n)


def _cycle_finding(
    snap: FabricSnapshot,
    from_ch: np.ndarray,
    to_ch: np.ndarray,
    *,
    rule: str,
    context: str,
) -> List[Finding]:
    """Run cycle detection over encoded dependency pairs."""
    n = snap.num_switches
    cdg = ChannelDependencyGraph()
    for f, t in zip(from_ch.tolist(), to_ch.tolist()):
        cdg.add_dependency((_decode(f, n), _decode(t, n)))
    cycle = cdg.find_cycle()
    if cycle is None:
        return []
    rendered = " -> ".join(f"({a}->{b})" for a, b in cycle)
    anchor = cycle[0][0]
    return [
        Finding(
            rule=rule,
            switch=anchor,
            switch_name=snap.name_of(anchor),
            message=(
                f"{context}: channel dependency cycle {rendered}"
                f" ({cdg.num_channels} channels,"
                f" {cdg.num_dependencies} dependencies analysed)"
            ),
            detail={"cycle": [list(ch) for ch in cycle]},
        )
    ]


def check_deadlock_freedom(
    snap: FabricSnapshot, *, lids: Optional[Sequence[int]] = None
) -> List[Finding]:
    """CDG001: Duato's acyclicity condition over the data-VL destinations.

    Defaults to terminal LIDs only — switch self-LID traffic rides VL15
    and cannot hold data-VL credits (see module docstring).
    """
    cols = (
        snap.select_lids(lids) if lids is not None else snap.terminal_lids
    )
    if cols.size == 0:
        return []
    from_ch, to_ch = _dependency_pairs(snap, cols)
    return _cycle_finding(
        snap, from_ch, to_ch, rule="CDG001", context="routing is deadlock-prone"
    )


def check_transition_deadlock(
    old: FabricSnapshot,
    new: FabricSnapshot,
    *,
    lids: Optional[Sequence[int]] = None,
) -> List[Finding]:
    """CDG002: the union CDG of an in-flight reconfiguration (section VI-C).

    While switches are updated asynchronously some forward per the old
    tables and some per the new, so the union of both dependency sets must
    be acyclic for the transition to be provably deadlock-free.
    """
    if old.num_switches != new.num_switches:
        raise StaticAnalysisError(
            "transition analysis needs snapshots of the same switch graph"
        )
    cols_old = (
        old.select_lids(lids) if lids is not None else old.terminal_lids
    )
    cols_new = (
        new.select_lids(lids) if lids is not None else new.terminal_lids
    )
    f1, t1 = _dependency_pairs(old, cols_old)
    f2, t2 = _dependency_pairs(new, cols_new)
    return _cycle_finding(
        new,
        np.concatenate([f1, f2]),
        np.concatenate([t1, t2]),
        rule="CDG002",
        context="reconfiguration transition is deadlock-prone",
    )


def check_updn_legality(
    snap: FabricSnapshot,
    rank: np.ndarray,
    *,
    lids: Optional[Sequence[int]] = None,
) -> List[Finding]:
    """UPDN001: no down->up transition anywhere in the routed paths.

    *rank* is the BFS rank from the Up*/Down* root (smaller = closer to
    the root); ties break by switch index, exactly as the engine orients
    cables. A hop ``a -> b`` is *down* when ``key[b] > key[a]``; once a
    packet has moved down it must never move up again.
    """
    cols = (
        snap.select_lids(lids) if lids is not None else snap.terminal_lids
    )
    if cols.size == 0:
        return []
    n = snap.num_switches
    rank = np.asarray(rank, dtype=np.int64)
    if rank.shape != (n,):
        raise StaticAnalysisError(
            f"rank must have one entry per switch ({n}), got {rank.shape}"
        )
    key = rank * n + np.arange(n, dtype=np.int64)
    _, nxt = _successor_matrices(snap, cols)
    col = np.arange(cols.size, dtype=np.int64)[None, :]
    a = np.broadcast_to(np.arange(n, dtype=np.int64)[:, None], nxt.shape)
    b = nxt
    c = np.where(b >= 0, nxt[np.clip(b, 0, None), col], -1)
    mask = (b >= 0) & (c >= 0)
    down_then_up = mask & (key[np.clip(b, 0, None)] > key[a]) & (
        np.where(c >= 0, key[np.clip(c, 0, None)], 0)
        < key[np.clip(b, 0, None)]
    )
    if not down_then_up.any():
        return []
    findings: List[Finding] = []
    viol_a = a[down_then_up]
    viol_b = b[down_then_up]
    viol_c = c[down_then_up]
    viol_lid = np.broadcast_to(cols[None, :], nxt.shape)[down_then_up]
    triples = np.unique(
        np.stack([viol_a, viol_b, viol_c], axis=1), axis=0
    )
    for ta, tb, tc in triples[:MAX_FINDINGS_PER_RULE].tolist():
        example = viol_lid[
            (viol_a == ta) & (viol_b == tb) & (viol_c == tc)
        ]
        findings.append(
            Finding(
                rule="UPDN001",
                switch=int(tb),
                switch_name=snap.name_of(int(tb)),
                lid=int(example[0]) if example.size else None,
                message=(
                    f"down->up transition {ta} -> {tb} -> {tc}"
                    f" ({example.size} destination LIDs take it)"
                ),
                detail={"hops": [int(ta), int(tb), int(tc)]},
            )
        )
    if triples.shape[0] > MAX_FINDINGS_PER_RULE:
        findings.append(
            Finding(
                rule="META001",
                message=(
                    f"{triples.shape[0] - MAX_FINDINGS_PER_RULE} further"
                    " down->up transitions suppressed"
                ),
                detail={
                    "suppressed_by_rule": {
                        "UPDN001": int(
                            triples.shape[0] - MAX_FINDINGS_PER_RULE
                        )
                    }
                },
            )
        )
    return findings


def check_dor_order(
    snap: FabricSnapshot,
    rows: int,
    cols_dim: int,
    *,
    lids: Optional[Sequence[int]] = None,
) -> List[Finding]:
    """DOR001: XY dimension order — no X hop after a Y hop.

    Expects the row-major switch indexing of the mesh/torus builders
    (dense index = row * cols + col), the same convention
    :class:`~repro.sm.routing.dor.DimensionOrderedRouting` routes by.
    """
    n = snap.num_switches
    if rows * cols_dim != n:
        raise StaticAnalysisError(
            f"grid {rows}x{cols_dim} does not match {n} switches"
        )
    sel = (
        snap.select_lids(lids) if lids is not None else snap.terminal_lids
    )
    if sel.size == 0:
        return []
    _, nxt = _successor_matrices(snap, sel)
    col = np.arange(sel.size, dtype=np.int64)[None, :]
    a = np.broadcast_to(np.arange(n, dtype=np.int64)[:, None], nxt.shape)
    b = nxt
    c = np.where(b >= 0, nxt[np.clip(b, 0, None), col], -1)
    mask = (b >= 0) & (c >= 0)
    ra, rb = a // cols_dim, np.clip(b, 0, None) // cols_dim
    rc = np.clip(c, 0, None) // cols_dim
    hop1_y = mask & (ra != rb)  # row changed: a Y-phase hop
    hop2_x = mask & (rb == rc) & (b != c)  # col changed: an X-phase hop
    bad = hop1_y & hop2_x
    if not bad.any():
        return []
    viol = np.unique(
        np.stack([a[bad], b[bad], c[bad]], axis=1), axis=0
    )
    findings: List[Finding] = []
    for ta, tb, tc in viol[:MAX_FINDINGS_PER_RULE].tolist():
        findings.append(
            Finding(
                rule="DOR001",
                switch=int(tb),
                switch_name=snap.name_of(int(tb)),
                message=(
                    f"Y-phase hop {ta} -> {tb} followed by X-phase hop"
                    f" {tb} -> {tc} violates XY dimension order"
                ),
                detail={"hops": [int(ta), int(tb), int(tc)]},
            )
        )
    return findings


def check_vswitch_lids(
    topology: Topology,
    vswitches: Sequence[object],
    *,
    scheme: Optional[str] = None,
) -> List[Finding]:
    """VSW001/VSW002: every vSwitch function LID resolves to its uplink.

    The vSwitch architecture's core addressing invariant (paper section
    V): the PF shares the uplink port's LID, and every VF LID — always
    present under the prepopulated scheme, present while a VM runs under
    the dynamic scheme — must be bound to the *same physical uplink port*
    so the fabric delivers all of the hypervisor's traffic through the one
    shared cable.
    """
    findings: List[Finding] = []
    for vsw in vswitches:
        uplink = vsw.uplink_port
        attach = uplink.remote
        leaf_idx = (
            attach.node.index
            if attach is not None and hasattr(attach.node, "lft")
            else None
        )
        if vsw.pf.lid != uplink.lid:
            findings.append(
                Finding(
                    rule="VSW002",
                    switch=leaf_idx,
                    message=(
                        f"{vsw.hca.name}: PF LID {vsw.pf.lid!r} disagrees"
                        f" with uplink port LID {uplink.lid!r}"
                    ),
                    detail={"hca": vsw.hca.name},
                )
            )
        for vf in vsw.vfs:
            if vf.lid is None:
                must_have = scheme == "prepopulated" or not vf.is_free
                if must_have:
                    findings.append(
                        Finding(
                            rule="VSW001",
                            switch=leaf_idx,
                            message=(
                                f"{vf.name} has no LID but"
                                + (
                                    " the prepopulated scheme requires one"
                                    if scheme == "prepopulated"
                                    else " hosts a running VM"
                                )
                            ),
                            detail={"vf": vf.name, "hca": vsw.hca.name},
                        )
                    )
                continue
            bound = topology.port_of_lid(vf.lid)
            if bound is not uplink:
                findings.append(
                    Finding(
                        rule="VSW001",
                        switch=leaf_idx,
                        lid=vf.lid,
                        message=(
                            f"{vf.name} LID {vf.lid} is bound to"
                            f" {bound!r}, not its hypervisor uplink"
                            f" {uplink!r}"
                        ),
                        detail={"vf": vf.name, "hca": vsw.hca.name},
                    )
                )
    return findings


def check_skyline_disjointness(
    skylines: Sequence[object],
) -> List[Finding]:
    """SKY001: a proposed concurrent-migration batch must be interference-free.

    Section VI-D admits concurrent migrations only when their switch
    skylines (and LID pairs) are pairwise disjoint; overlapping skylines
    would interleave SMP streams on the same switch state.
    """
    findings: List[Finding] = []
    for i in range(len(skylines)):
        for j in range(i + 1, len(skylines)):
            a, b = skylines[i], skylines[j]
            shared_switches = sorted(a.switches & b.switches)
            shared_lids = sorted(
                {a.vm_lid, a.other_lid} & {b.vm_lid, b.other_lid}
            )
            if not shared_switches and not shared_lids:
                continue
            parts = []
            if shared_switches:
                parts.append(f"switches {shared_switches[:8]}")
            if shared_lids:
                parts.append(f"LIDs {shared_lids}")
            findings.append(
                Finding(
                    rule="SKY001",
                    switch=shared_switches[0] if shared_switches else None,
                    lid=shared_lids[0] if shared_lids else None,
                    message=(
                        f"migrations #{i} (LID {a.vm_lid}) and #{j}"
                        f" (LID {b.vm_lid}) overlap on"
                        f" {' and '.join(parts)}; they must run in"
                        " separate rounds"
                    ),
                    detail={
                        "migrations": [i, j],
                        "shared_switches": shared_switches[:32],
                        "shared_lids": shared_lids,
                    },
                )
            )
    return findings
