"""The ``repro check-fabric`` preset x engine verification matrix.

Builds each shipped preset topology, brings a subnet up with each
applicable routing engine, and runs the full static analysis pass over
the *hardware* LFTs — proving loop-freedom, reachability and (CDG)
deadlock-freedom for every routing the repository ships. The matrix only
pairs engines with topologies they are legal on: ``ftree`` requires a
fat-tree, ``dor`` a mesh (on a torus its wraparound column dependencies
close a CDG cycle — that expected failure lives in the test suite, not
here), and ``minhop`` is excluded from ring/torus for the same reason.

``--inject-fault`` corrupts one hardware LFT entry into a two-switch
forwarding loop after bring-up, demonstrating the analyzer's failure
reporting (LFT001 + CDG001 with per-switch detail); the command then
exits non-zero, which CI uses as a negative test.

The VL engines (``lash``/``dfsssp``) appear on every row PR 3's
single-VL CDG had to exclude them from — ring, torus, the fat-trees —
because the analyzer now verifies their layered routing per data lane
(VLC001-VLC003). ``--corrupt-vl`` is their negative mode: one VL
assignment is corrupted after bring-up and the per-VL rules must fire.
The ``paper-5832`` preset is the time-gated large LASH instance; it
analyzes the *recorded* tables (full hardware bring-up at that size is
a benchmark, not a check).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import LFT_UNSET
from repro.errors import StaticAnalysisError
from repro.fabric.builders.fattree import BuiltTopology
from repro.fabric.builders.generic import build_mesh_2d, build_ring, build_torus_2d
from repro.fabric.presets import paper_fattree, scaled_fattree
from repro.fabric.topology import Topology
from repro.analysis.static.analyzer import analyze_subnet
from repro.analysis.static.checks import FabricSnapshot
from repro.analysis.static.findings import StaticAnalysisReport

__all__ = [
    "FabricCheckCase",
    "FabricCheckResult",
    "VL_ENGINES",
    "corrupt_vl_assignment",
    "default_cases",
    "inject_forwarding_loop",
    "preset_builders",
    "run_case",
    "run_matrix",
]

#: Engines proven on every fat-tree preset.
_FATTREE_ENGINES: Tuple[str, ...] = ("minhop", "updn", "ftree")

#: Engines whose deadlock freedom is proven per data VL (VLC001-VLC003).
VL_ENGINES: Tuple[str, ...] = ("dfsssp", "lash")


def preset_builders() -> Dict[str, Callable[[], BuiltTopology]]:
    """Name -> builder for every preset the matrix can check."""
    return {
        "2l-small": lambda: scaled_fattree("2l-small"),
        "2l-wide": lambda: scaled_fattree("2l-wide"),
        "3l-small": lambda: scaled_fattree("3l-small"),
        "mesh4x4": lambda: build_mesh_2d(4, 4, 1),
        "torus4x4": lambda: build_torus_2d(4, 4, 1),
        "ring6": lambda: build_ring(6, 1),
        "paper-324": lambda: paper_fattree(324),
        "paper-648": lambda: paper_fattree(648),
        "paper-5832": lambda: paper_fattree(5832),
    }


#: preset -> engines that must verify clean on it.
_MATRIX: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("2l-small", _FATTREE_ENGINES + VL_ENGINES),
    ("2l-wide", _FATTREE_ENGINES),
    ("3l-small", _FATTREE_ENGINES + VL_ENGINES),
    ("mesh4x4", ("dor", "updn")),
    ("torus4x4", ("updn",) + VL_ENGINES),
    ("ring6", ("updn",) + VL_ENGINES),
)

#: The paper-scale instances (Table I sizes small enough for CI).
_PAPER_MATRIX: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("paper-324", _FATTREE_ENGINES + VL_ENGINES),
    ("paper-648", _FATTREE_ENGINES + VL_ENGINES),
)

#: Extra-large rows, run only when their preset is named explicitly
#: (the CI step time-gates them with ``timeout``).
_XL_MATRIX: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("paper-5832", VL_ENGINES),
)

#: Presets analyzed from the SM's recorded tables instead of a full
#: hardware bring-up (the LFT distribution at 5832 nodes is a benchmark
#: concern, not a static-analysis one).
_RECORDED_PRESETS = frozenset({"paper-5832"})


@dataclass(frozen=True)
class FabricCheckCase:
    """One (preset, engine) cell of the verification matrix."""

    preset: str
    engine: str
    #: What is analyzed: ``"hardware"`` (programmed LFTs after a full
    #: bring-up) or ``"recorded"`` (the engine's computed tables).
    source: str = "hardware"


@dataclass
class FabricCheckResult:
    """Outcome of one matrix cell."""

    case: FabricCheckCase
    report: StaticAnalysisReport
    #: Description of the injected corruption, when ``--inject-fault``.
    injected: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True iff the static analysis found nothing."""
        return self.report.ok


def default_cases(
    *,
    paper_scale: bool = False,
    preset: Optional[str] = None,
    engine: Optional[str] = None,
) -> List[FabricCheckCase]:
    """The matrix, optionally narrowed to one preset and/or engine.

    The XL rows (``paper-5832``) join only when named via ``preset`` —
    they are deliberately absent from full-matrix runs.
    """
    rows = _MATRIX + (_PAPER_MATRIX if paper_scale else ())
    if preset is not None and preset in {name for name, _ in _XL_MATRIX}:
        rows = rows + _XL_MATRIX
    if preset is not None and preset not in {name for name, _ in rows}:
        known = sorted(
            {name for name, _ in rows} | {name for name, _ in _XL_MATRIX}
        )
        raise StaticAnalysisError(
            f"unknown preset {preset!r}; choose one of {known}"
        )
    cases = [
        FabricCheckCase(
            preset=name,
            engine=eng,
            source=(
                "recorded" if name in _RECORDED_PRESETS else "hardware"
            ),
        )
        for name, engines in rows
        for eng in engines
        if (preset is None or name == preset)
        and (engine is None or eng == engine)
    ]
    if not cases:
        raise StaticAnalysisError(
            f"no matrix cell pairs preset={preset!r} with engine={engine!r}"
        )
    return cases


def inject_forwarding_loop(topology: Topology) -> str:
    """Corrupt one hardware LFT entry into a two-switch forwarding loop.

    Picks a terminal LID and an en-route switch pair (s -> t, with t not
    the destination) and points t's entry for that LID back at s. Returns
    a description of the corruption for the report header.
    """
    snap = FabricSnapshot.from_topology(topology)
    p2p = snap.port_to_peer()
    for lid in snap.terminal_lids:
        dest = int(snap.dest_switch[lid])
        for s in range(snap.num_switches):
            if s == dest:
                continue
            out = int(snap.ports[s, lid])
            if out == LFT_UNSET:
                continue
            t = int(p2p[s, out])
            if t < 0 or t == dest:
                continue
            back_ports = np.where(p2p[t] == s)[0]
            if back_ports.size == 0:
                continue
            topology.switches[t].lft.set(int(lid), int(back_ports[0]))
            return (
                f"LID {int(lid)}: pointed {snap.name_of(t)} back at"
                f" {snap.name_of(s)} (forwarding loop)"
            )
    raise StaticAnalysisError("found no LFT entry suitable for loop injection")


def corrupt_vl_assignment(sm: object, *, mode: str = "remap") -> str:
    """Corrupt one entry of the SM's recorded VL assignment in place.

    The negative mode of the per-VL checks: ``"remap"`` points an entry
    at a nonexistent lane (VLC002 fires), ``"drop"`` removes one (VLC003
    fires), ``"collapse"`` squashes all layers onto VL0 (VLC001 fires on
    cyclic topologies). Returns a description for the report header.
    """
    from repro.sm.routing.vl import corrupt_assignment

    tables = getattr(sm, "current_tables", None)
    vl = tables.vl if tables is not None else None
    if vl is None:
        raise StaticAnalysisError(
            "engine exports no VL assignment to corrupt; --corrupt-vl"
            f" applies to the VL engines {list(VL_ENGINES)}"
        )
    return corrupt_assignment(vl, mode)


def run_case(
    case: FabricCheckCase,
    *,
    inject_fault: bool = False,
    corrupt_vl: bool = False,
    emit_metrics: bool = True,
    workers: int = 1,
) -> FabricCheckResult:
    """Build the preset, bring the subnet up, analyse per ``case.source``."""
    from repro.sm.subnet_manager import SubnetManager

    built = preset_builders()[case.preset]()
    sm = SubnetManager(
        built.topology, built=built, engine=case.engine, workers=workers
    )
    if case.source == "recorded":
        if inject_fault:
            raise StaticAnalysisError(
                "--inject-fault corrupts hardware LFTs; the recorded-source"
                f" preset {case.preset!r} never programs them"
            )
        sm.assign_lids()
        sm.compute_routing()
    else:
        sm.initial_configure()
    injected = (
        inject_forwarding_loop(built.topology) if inject_fault else None
    )
    if corrupt_vl:
        desc = corrupt_vl_assignment(sm)
        injected = f"{injected}; {desc}" if injected else desc
    report = analyze_subnet(
        sm, source=case.source, emit_metrics=emit_metrics, workers=workers
    )
    return FabricCheckResult(case=case, report=report, injected=injected)


def run_matrix(
    cases: Optional[Sequence[FabricCheckCase]] = None,
    *,
    inject_fault: bool = False,
    corrupt_vl: bool = False,
    emit_metrics: bool = True,
    workers: int = 1,
) -> List[FabricCheckResult]:
    """Run every matrix cell (default: :func:`default_cases`)."""
    if cases is None:
        cases = default_cases()
    return [
        run_case(
            c,
            inject_fault=inject_fault,
            corrupt_vl=corrupt_vl,
            emit_metrics=emit_metrics,
            workers=workers,
        )
        for c in cases
    ]
