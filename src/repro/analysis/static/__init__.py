"""Static verification of fabric routing state — no packets sent.

Layer 1 of the repository's static-analysis suite (layer 2 is the
``tools.lint`` determinism linter): given a topology and routing tables,
prove loop-freedom, black-hole-freedom, reachability, deadlock-freedom
(channel-dependency-graph acyclicity), Up*/Down* and dimension-order
legality, vSwitch LID-table consistency, and section VI-D skyline
disjointness for concurrent migrations. See docs/STATIC_ANALYSIS.md.
"""

from repro.analysis.static.analyzer import (
    analyze_cloud,
    analyze_fabric,
    analyze_subnet,
    analyze_transition,
)
from repro.analysis.static.checks import (
    FabricSnapshot,
    check_deadlock_freedom,
    check_dor_order,
    check_reachability,
    check_skyline_disjointness,
    check_transition_deadlock,
    check_updn_legality,
    check_vswitch_lids,
)
from repro.analysis.static.findings import RULES, Finding, StaticAnalysisReport
from repro.analysis.static.suite import (
    FabricCheckCase,
    FabricCheckResult,
    default_cases,
    inject_forwarding_loop,
    run_case,
    run_matrix,
)

__all__ = [
    "Finding",
    "StaticAnalysisReport",
    "RULES",
    "FabricSnapshot",
    "FabricCheckCase",
    "FabricCheckResult",
    "default_cases",
    "inject_forwarding_loop",
    "run_case",
    "run_matrix",
    "analyze_fabric",
    "analyze_subnet",
    "analyze_cloud",
    "analyze_transition",
    "check_reachability",
    "check_deadlock_freedom",
    "check_transition_deadlock",
    "check_updn_legality",
    "check_dor_order",
    "check_vswitch_lids",
    "check_skyline_disjointness",
]
