"""Static verification of fabric routing state — no packets sent.

Layer 1 of the repository's static-analysis suite (layer 2 is the
``tools.lint`` determinism linter): given a topology and routing tables,
prove loop-freedom, black-hole-freedom, reachability, deadlock-freedom
(channel-dependency-graph acyclicity — per virtual lane for the VL
engines), Up*/Down* and dimension-order legality, vSwitch LID-table
consistency, and section VI-D skyline disjointness for concurrent
migrations. See docs/STATIC_ANALYSIS.md.
"""

from repro.analysis.static.analyzer import (
    analyze_cloud,
    analyze_fabric,
    analyze_subnet,
    analyze_transition,
)
from repro.analysis.static.checks import (
    FabricSnapshot,
    check_deadlock_freedom,
    check_dor_order,
    check_reachability,
    check_skyline_disjointness,
    check_transition_deadlock,
    check_updn_legality,
    check_vswitch_lids,
)
from repro.analysis.static.findings import (
    NOTICE_RULES,
    RULES,
    Finding,
    StaticAnalysisReport,
)
from repro.analysis.static.suite import (
    VL_ENGINES,
    FabricCheckCase,
    FabricCheckResult,
    corrupt_vl_assignment,
    default_cases,
    inject_forwarding_loop,
    run_case,
    run_matrix,
)
from repro.analysis.static.vl_checks import (
    PerVlDependencies,
    build_per_vl_dependencies,
    check_vl_capacity,
    check_vl_consistency,
    check_vl_deadlock_freedom,
    check_vl_transition_deadlock,
)

__all__ = [
    "Finding",
    "StaticAnalysisReport",
    "RULES",
    "NOTICE_RULES",
    "FabricSnapshot",
    "FabricCheckCase",
    "FabricCheckResult",
    "VL_ENGINES",
    "corrupt_vl_assignment",
    "default_cases",
    "inject_forwarding_loop",
    "run_case",
    "run_matrix",
    "analyze_fabric",
    "analyze_subnet",
    "analyze_cloud",
    "analyze_transition",
    "check_reachability",
    "check_deadlock_freedom",
    "check_transition_deadlock",
    "check_updn_legality",
    "check_dor_order",
    "check_vswitch_lids",
    "check_skyline_disjointness",
    "PerVlDependencies",
    "build_per_vl_dependencies",
    "check_vl_deadlock_freedom",
    "check_vl_consistency",
    "check_vl_capacity",
    "check_vl_transition_deadlock",
]
