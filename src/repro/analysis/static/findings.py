"""Structured findings of the static fabric analyzer.

Every check in :mod:`repro.analysis.static.checks` returns a list of
:class:`Finding` objects — one per violated invariant, carrying a stable
rule identifier, the switch/LID it anchors to, and free-form detail. The
:class:`StaticAnalysisReport` aggregates them per run, renders them for
humans, merges them into the runtime
:class:`~repro.analysis.verification.VerificationReport`, and exposes
counts through the observability metrics registry.

Rule identifiers (see docs/STATIC_ANALYSIS.md for the full rationale):

========  ==============================================================
LFT001    forwarding loop: following the tables never leaves the fabric
LFT002    black hole: an unprogrammed entry drops traffic mid-path
LFT003    misdelivery: traffic exits the fabric at the wrong endpoint
LFT004    unreachable LID: no switch can deliver the LID at all
CDG001    channel-dependency cycle: the routing admits a deadlock
CDG002    transition CDG cycle: the union of old+new routing admits one
UPDN001   down->up transition: an Up*/Down*-illegal hop sequence
DOR001    dimension-order violation: a Y-phase hop followed by an X hop
VSW001    vSwitch VF LID does not resolve to its hypervisor's PF port
VSW002    vSwitch PF LID disagrees with the uplink port's LID
SKY001    concurrent migrations with overlapping switch skylines
VLC001    per-VL channel-dependency cycle: a data lane admits a deadlock
VLC002    VL assignment inconsistent: nonexistent lane or dangling entry
VLC003    VL capacity violation: layer overflow or unassigned pair/LID
VLC004    per-VL transition CDG cycle: old+new union deadlocks on a lane
META001   suppression notice: per-rule finding cap reached (not a fault)
META002   notice: single-VL CDG001 skipped, per-VL checks cover the CDG
========  ==============================================================

META-class rules are *notices*: they carry context, never fail a report
(:attr:`StaticAnalysisReport.ok` ignores them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

__all__ = ["Finding", "StaticAnalysisReport", "RULES", "NOTICE_RULES"]

#: rule id -> one-line description (kept in sync with the module docstring).
RULES: Dict[str, str] = {
    "LFT001": "forwarding loop",
    "LFT002": "black hole (unprogrammed entry on a used path)",
    "LFT003": "misdelivery (wrong endpoint or off-fabric exit)",
    "LFT004": "unreachable LID (no switch delivers it)",
    "CDG001": "channel-dependency cycle (deadlock)",
    "CDG002": "transition channel-dependency cycle (deadlock)",
    "UPDN001": "Up*/Down* legality violation (down->up hop)",
    "DOR001": "dimension-order violation (Y hop before X hop)",
    "VSW001": "VF LID not bound to its hypervisor's PF port",
    "VSW002": "PF LID inconsistent with uplink port LID",
    "SKY001": "overlapping concurrent-migration skylines",
    "VLC001": "per-VL channel-dependency cycle (deadlock on a data lane)",
    "VLC002": "VL assignment inconsistent (nonexistent lane or dangling entry)",
    "VLC003": "VL capacity violation (layer overflow or unassigned pair)",
    "VLC004": "per-VL transition channel-dependency cycle (deadlock)",
    "META001": "per-rule finding cap reached; further findings suppressed",
    "META002": "single-VL CDG001 skipped; per-VL checks cover deadlock freedom",
}

#: Rules that are informational notices, not faults: a report consisting
#: only of these is still ``ok``.
NOTICE_RULES = frozenset({"META002"})


@dataclass(frozen=True)
class Finding:
    """One violated invariant, anchored to fabric state."""

    rule: str
    message: str
    #: Dense index of the switch the violation anchors to (if any).
    switch: Optional[int] = None
    #: Human-readable switch name (if resolvable).
    switch_name: Optional[str] = None
    #: Destination LID involved (if any).
    lid: Optional[int] = None
    #: Free-form structured context (cycle channels, affected sources, ...).
    detail: Mapping[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """One-line human rendering, e.g. ``CDG001 [sw 3/leaf-1, lid 42] ...``."""
        where = []
        if self.switch is not None:
            name = f"/{self.switch_name}" if self.switch_name else ""
            where.append(f"sw {self.switch}{name}")
        if self.lid is not None:
            where.append(f"lid {self.lid}")
        anchor = f" [{', '.join(where)}]" if where else ""
        return f"{self.rule}{anchor} {self.message}"


@dataclass
class StaticAnalysisReport:
    """Aggregated outcome of one static-analysis pass over a fabric."""

    fabric: str = "subnet"
    #: Check names that actually ran (in run order).
    checks_run: List[str] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    lids_analyzed: int = 0
    switches_analyzed: int = 0

    @property
    def faults(self) -> List[Finding]:
        """Findings that constitute actual violations (notices excluded)."""
        return [f for f in self.findings if f.rule not in NOTICE_RULES]

    @property
    def notices(self) -> List[Finding]:
        """Informational findings (META002-class); never fail a report."""
        return [f for f in self.findings if f.rule in NOTICE_RULES]

    @property
    def ok(self) -> bool:
        """True iff every executed check held (notices don't count)."""
        return not self.faults

    def findings_for(self, rule: str) -> List[Finding]:
        """All findings of one rule."""
        return [f for f in self.findings if f.rule == rule]

    def count_by_rule(self) -> Dict[str, int]:
        """rule id -> number of findings, sorted by rule id."""
        out: Dict[str, int] = {}
        for f in sorted(self.findings, key=lambda f: f.rule):
            out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def extend(self, check: str, findings: List[Finding]) -> None:
        """Record one executed check and its findings."""
        self.checks_run.append(check)
        self.findings.extend(findings)

    def render(self, *, max_findings: int = 20) -> str:
        """Multi-line human summary."""
        head = (
            f"static analysis of {self.fabric!r}:"
            f" {self.switches_analyzed} switches,"
            f" {self.lids_analyzed} LIDs,"
            f" checks: {', '.join(self.checks_run) or 'none'}"
        )
        if self.ok:
            lines = [head, "  OK — all invariants hold"]
            for f in self.notices:
                lines.append(f"  note: {f.render()}")
            return "\n".join(lines)
        faults = self.faults
        lines = [head, f"  {len(faults)} finding(s):"]
        for f in faults[:max_findings]:
            lines.append(f"  - {f.render()}")
        if len(faults) > max_findings:
            lines.append(f"  ... and {len(faults) - max_findings} more")
        for f in self.notices:
            lines.append(f"  note: {f.render()}")
        return "\n".join(lines)

    def failure_messages(self) -> List[str]:
        """Faults rendered as flat strings (VerificationReport format)."""
        return [f.render() for f in self.faults]

    def emit_metrics(self) -> None:
        """Publish finding counts to the process-wide metrics registry."""
        from repro.obs import get_hub

        metrics = get_hub().metrics
        metrics.counter("repro_static_checks_total").add(len(self.checks_run))
        for rule, count in self.count_by_rule().items():
            metrics.counter(
                "repro_static_findings_total", rule=rule
            ).add(count)
        metrics.gauge("repro_static_fabric_ok", fabric=self.fabric).set(
            1.0 if self.ok else 0.0
        )

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.errors.StaticAnalysisError` on faults."""
        faults = self.faults
        if faults:
            from repro.errors import StaticAnalysisError

            shown = "; ".join(f.render() for f in faults[:5])
            raise StaticAnalysisError(
                f"static analysis found {len(faults)} violation(s):"
                f" {shown}"
            )
