"""Experiment harnesses — one function per paper artifact (see DESIGN.md).

These are the library-level entry points the benchmarks and examples call;
each returns structured results so callers can render, assert or sweep.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.figures import Fig7Series
from repro.core.cost_model import Table1Row, table1_row
from repro.fabric.builders.fattree import BuiltTopology
from repro.fabric.presets import (
    PAPER_FATTREE_NODES,
    SCALED_TO_PAPER,
    paper_fattree,
    scaled_fattree,
)
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager

__all__ = [
    "paper_scale_enabled",
    "fig7_topologies",
    "fig7_budget_seconds",
    "measure_path_computation",
    "run_fig7",
    "table1_for_topology",
    "measured_full_reconfig_smps",
]

#: Engines timed in Fig. 7, in the figure's bar order.
FIG7_ENGINES: Tuple[str, ...] = ("ftree", "minhop", "dfsssp", "lash")

#: Default wall-clock budget of one full Fig. 7 sweep, seconds.
DEFAULT_FIG7_BUDGET = 1800.0

#: Sentinel distinguishing "caller passed nothing" from an explicit None
#: (= unlimited) for :func:`run_fig7`'s ``budget_seconds``.
_BUDGET_UNSET = object()


def fig7_budget_seconds() -> Optional[float]:
    """Wall-clock budget for one Fig. 7 sweep, or ``None`` for unlimited.

    ``REPRO_FIG7_BUDGET`` overrides the default; ``0``/``off``/``none``
    disables the guard entirely.
    """
    raw = os.environ.get("REPRO_FIG7_BUDGET", "").strip().lower()
    if not raw:
        return DEFAULT_FIG7_BUDGET
    if raw in ("0", "off", "none", "unlimited"):
        return None
    return float(raw)


def paper_scale_enabled() -> bool:
    """Whether benchmarks should use the paper's full-size topologies.

    Controlled by the ``REPRO_PAPER_SCALE`` environment variable; the
    default (off) uses structurally identical scaled-down fat-trees so a
    benchmark run stays interactive (see DESIGN.md).
    """
    return os.environ.get("REPRO_PAPER_SCALE", "").strip() in ("1", "true", "yes")


def fig7_topologies(*, paper_scale: Optional[bool] = None) -> List[BuiltTopology]:
    """The four Fig. 7 fat-trees (full size or scaled twins)."""
    scale = paper_scale_enabled() if paper_scale is None else paper_scale
    if scale:
        return [paper_fattree(n) for n in PAPER_FATTREE_NODES]
    return [scaled_fattree(p) for p in SCALED_TO_PAPER]


def measure_path_computation(
    built: BuiltTopology,
    engines: Sequence[str] = FIG7_ENGINES,
    *,
    workers: int = 1,
) -> Fig7Series:
    """Time each routing engine's path computation on one topology.

    Mirrors the paper's ibsim methodology: LIDs are assigned once, then
    each engine computes routes for the identical subnet; only the
    computation (PCt) is timed, not LFT distribution. Every engine gets a
    *fresh* routing state (sharded over *workers* processes when > 1), so
    each bar is a cold PCt — no engine rides a predecessor's warm distance
    matrix.
    """
    from repro.sm.routing.cache import RoutingState

    topo = built.topology
    sm = SubnetManager(topo, built=built, workers=workers)
    sm.assign_lids()
    series = Fig7Series(
        label=topo.name,
        num_nodes=topo.num_hcas,
        num_switches=topo.num_switches,
    )
    for name in engines:
        engine = create_engine(name)
        state = RoutingState(topo, workers=workers)
        request = RoutingRequest.from_topology(
            topo, built=built, state=state
        )
        tables = engine.timed_compute(request)
        series.record(name, tables.compute_seconds)
        series.record_vls(name, tables.vl_summary())
    # The vSwitch reconfiguration performs zero path computation for any
    # topology and any engine — the paper's headline Fig. 7 bar.
    series.record("vswitch-reconfig", 0.0)
    return series


def run_fig7(
    *,
    engines: Sequence[str] = FIG7_ENGINES,
    paper_scale: Optional[bool] = None,
    workers: int = 1,
    budget_seconds: object = _BUDGET_UNSET,
) -> List[Fig7Series]:
    """The full Fig. 7 sweep: all four topologies, all engines.

    A wall-clock *budget* (default :func:`fig7_budget_seconds`) guards the
    paper-scale sizes: before each engine runs, its time is projected from
    the previous size's measurement with the engine-agnostic
    ``(switches ratio)^2`` growth of the all-pairs work, and rows that
    cannot fit are *skipped with a printed message* instead of hanging the
    sweep. Skipped cells render as ``-``.
    """
    if budget_seconds is _BUDGET_UNSET:
        budget_seconds = fig7_budget_seconds()
    start = time.perf_counter()
    prev_times: Dict[str, float] = {}
    prev_switches = 0
    out: List[Fig7Series] = []
    for built in fig7_topologies(paper_scale=paper_scale):
        topo = built.topology
        n_sw = topo.num_switches
        keep: List[str] = []
        for name in engines:
            if budget_seconds is not None:
                elapsed = time.perf_counter() - start
                est = 0.0
                if prev_switches and name in prev_times:
                    est = prev_times[name] * (n_sw / prev_switches) ** 2
                if elapsed + est > budget_seconds:
                    print(
                        f"fig7: skipping {name} on {topo.name}: projected"
                        f" ~{est:.0f}s with {elapsed:.0f}s already spent"
                        f" would exceed the {budget_seconds:.0f}s budget"
                        " (set REPRO_FIG7_BUDGET to raise or disable)"
                    )
                    continue
            keep.append(name)
        series = measure_path_computation(built, keep, workers=workers)
        for name in keep:
            prev_times[name] = series.seconds_by_engine[name]
        prev_switches = n_sw
        out.append(series)
    return out


def table1_for_topology(built: BuiltTopology) -> Table1Row:
    """Compute a Table I row from an actually constructed topology.

    Counts come from the topology itself (not the closed-form preset
    parameters), so this validates the builders against the paper's
    arithmetic.
    """
    topo = built.topology
    return table1_row(topo.num_hcas, topo.num_switches)


def measured_full_reconfig_smps(built: BuiltTopology, engine: str = "ftree") -> int:
    """Actually run a full reconfiguration and count its LFT SMPs.

    Brings the subnet up (which programs every LFT), then triggers the
    traditional full reconfiguration and returns the SubnSet(LFT) count —
    the measured counterpart of Table I's "Min SMPs Full RC" column.
    """
    topo = built.topology
    sm = SubnetManager(topo, engine=engine, built=built)
    sm.initial_configure(with_discovery=False)
    report = sm.full_reconfigure()
    return report.lft_smps
