"""Experiment harnesses — one function per paper artifact (see DESIGN.md).

These are the library-level entry points the benchmarks and examples call;
each returns structured results so callers can render, assert or sweep.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.analysis.figures import Fig7Series
from repro.core.cost_model import Table1Row, table1_row
from repro.fabric.builders.fattree import BuiltTopology
from repro.fabric.presets import (
    PAPER_FATTREE_NODES,
    SCALED_TO_PAPER,
    paper_fattree,
    scaled_fattree,
)
from repro.sm.routing.base import RoutingRequest
from repro.sm.routing.registry import create_engine
from repro.sm.subnet_manager import SubnetManager

__all__ = [
    "paper_scale_enabled",
    "fig7_topologies",
    "measure_path_computation",
    "run_fig7",
    "table1_for_topology",
    "measured_full_reconfig_smps",
]

#: Engines timed in Fig. 7, in the figure's bar order.
FIG7_ENGINES: Tuple[str, ...] = ("ftree", "minhop", "dfsssp", "lash")


def paper_scale_enabled() -> bool:
    """Whether benchmarks should use the paper's full-size topologies.

    Controlled by the ``REPRO_PAPER_SCALE`` environment variable; the
    default (off) uses structurally identical scaled-down fat-trees so a
    benchmark run stays interactive (see DESIGN.md).
    """
    return os.environ.get("REPRO_PAPER_SCALE", "").strip() in ("1", "true", "yes")


def fig7_topologies(*, paper_scale: Optional[bool] = None) -> List[BuiltTopology]:
    """The four Fig. 7 fat-trees (full size or scaled twins)."""
    scale = paper_scale_enabled() if paper_scale is None else paper_scale
    if scale:
        return [paper_fattree(n) for n in PAPER_FATTREE_NODES]
    return [scaled_fattree(p) for p in SCALED_TO_PAPER]


def measure_path_computation(
    built: BuiltTopology,
    engines: Sequence[str] = FIG7_ENGINES,
) -> Fig7Series:
    """Time each routing engine's path computation on one topology.

    Mirrors the paper's ibsim methodology: LIDs are assigned once, then
    each engine computes routes for the identical subnet; only the
    computation (PCt) is timed, not LFT distribution.
    """
    topo = built.topology
    sm = SubnetManager(topo, built=built)
    sm.assign_lids()
    request = RoutingRequest.from_topology(topo, built=built)
    series = Fig7Series(
        label=topo.name,
        num_nodes=topo.num_hcas,
        num_switches=topo.num_switches,
    )
    for name in engines:
        engine = create_engine(name)
        tables = engine.timed_compute(request)
        series.record(name, tables.compute_seconds)
    # The vSwitch reconfiguration performs zero path computation for any
    # topology and any engine — the paper's headline Fig. 7 bar.
    series.record("vswitch-reconfig", 0.0)
    return series


def run_fig7(
    *,
    engines: Sequence[str] = FIG7_ENGINES,
    paper_scale: Optional[bool] = None,
) -> List[Fig7Series]:
    """The full Fig. 7 sweep: all four topologies, all engines."""
    return [
        measure_path_computation(built, engines)
        for built in fig7_topologies(paper_scale=paper_scale)
    ]


def table1_for_topology(built: BuiltTopology) -> Table1Row:
    """Compute a Table I row from an actually constructed topology.

    Counts come from the topology itself (not the closed-form preset
    parameters), so this validates the builders against the paper's
    arithmetic.
    """
    topo = built.topology
    return table1_row(topo.num_hcas, topo.num_switches)


def measured_full_reconfig_smps(built: BuiltTopology, engine: str = "ftree") -> int:
    """Actually run a full reconfiguration and count its LFT SMPs.

    Brings the subnet up (which programs every LFT), then triggers the
    traditional full reconfiguration and returns the SubnSet(LFT) count —
    the measured counterpart of Table I's "Min SMPs Full RC" column.
    """
    topo = built.topology
    sm = SubnetManager(topo, engine=engine, built=built)
    sm.initial_configure(with_discovery=False)
    report = sm.full_reconfigure()
    return report.lft_smps
