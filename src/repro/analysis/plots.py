"""Terminal plots: log-scale ASCII bar charts for the figure reproductions.

No plotting dependency is available offline, so the figure harnesses render
Fig. 7-style grouped bar charts as text. Bars are scaled logarithmically
(the paper's timings span seven orders of magnitude) with explicit values
at the bar ends, so nothing hides behind resolution.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.errors import ReproError

__all__ = ["ascii_bars", "render_fig7_chart"]


def ascii_bars(
    values: Dict[str, float],
    *,
    width: int = 50,
    log: bool = True,
    unit: str = "s",
) -> str:
    """Render a labelled bar chart.

    Zero values render as a pinned ``|`` bar (there is no log of 0 — and a
    zero bar is the whole point of the vSwitch reconfiguration's Fig. 7
    entry).
    """
    if width < 10:
        raise ReproError("chart width must be >= 10")
    if not values:
        return "(no data)"
    positives = [v for v in values.values() if v > 0]
    label_w = max(len(k) for k in values)
    lines: List[str] = []
    if positives:
        vmax = max(positives)
        vmin = min(positives)
        if log:
            lo = math.log10(vmin) - 0.2
            hi = math.log10(vmax)
            span = max(hi - lo, 1e-9)
        else:
            span = max(vmax, 1e-12)
    for name, value in values.items():
        if value < 0:
            raise ReproError(f"negative bar value for {name!r}")
        if value == 0:
            bar = "|"
        elif not positives:  # pragma: no cover - unreachable
            bar = "|"
        elif log:
            frac = (math.log10(value) - lo) / span
            bar = "#" * max(1, int(round(frac * width)))
        else:
            bar = "#" * max(1, int(round(value / span * width)))
        lines.append(f"{name.ljust(label_w)}  {bar} {value:g}{unit}")
    return "\n".join(lines)


def render_fig7_chart(series, *, width: int = 40) -> str:
    """Grouped log-scale chart of Fig. 7 series (one group per topology)."""
    blocks: List[str] = []
    for s in series:
        blocks.append(
            f"{s.label} ({s.num_nodes} nodes, {s.num_switches} switches)"
        )
        blocks.append(
            ascii_bars(dict(s.seconds_by_engine), width=width, log=True)
        )
        blocks.append("")
    return "\n".join(blocks).rstrip()
