"""One-shot reproduction report: every paper artifact, regenerated.

``generate_report()`` runs the complete (scaled-by-default) evaluation —
Table I, the Fig. 7 sweep, per-migration reconfiguration statistics, the
scheme comparison and the Shared-Port-vs-vSwitch motivation experiment —
and renders a single markdown document. The CLI exposes it as
``python -m repro report [--output results.md]``.
"""

from __future__ import annotations

import io
from typing import Optional

from repro.analysis.experiments import FIG7_ENGINES, run_fig7
from repro.analysis.figures import PAPER_FIG7_SECONDS, render_fig7
from repro.analysis.tables import render_table, render_table1
from repro.core.cost_model import improvement_percent, paper_table1
from repro.fabric.presets import scaled_fattree
from repro.virt.cloud import CloudManager
from repro.virt.connections import ConnectionManager
from repro.virt.shared_port_fleet import SharedPortFleet

__all__ = ["generate_report"]


def _section_table1(out: io.StringIO) -> None:
    rows = paper_table1()
    out.write("## Table I (regenerated, paper-exact)\n\n```\n")
    out.write(render_table1(rows))
    out.write("\n```\n\n")
    out.write(
        "Worst-case SMP improvement vs full reconfiguration: "
        + ", ".join(
            f"{r.nodes}n = "
            f"{improvement_percent(r.min_smps_full_reconfig, r.max_smps_swap):.2f}%"
            for r in rows
        )
        + "; best case: 1 SMP at any size.\n\n"
    )


def _section_fig7(out: io.StringIO, *, paper_scale: bool) -> None:
    series = run_fig7(engines=FIG7_ENGINES, paper_scale=paper_scale)
    out.write("## Fig. 7 (path computation time)\n\n```\n")
    out.write(render_fig7(series))
    out.write("\n```\n\nPaper values (seconds):\n\n```\n")
    sizes = (324, 648, 5832, 11664)
    out.write(
        render_table(
            ["engine"] + [f"{n}n" for n in sizes],
            [
                [eng] + [PAPER_FIG7_SECONDS[eng][n] for n in sizes]
                for eng in list(FIG7_ENGINES) + ["vswitch-reconfig"]
            ],
        )
    )
    out.write("\n```\n\n")


def _section_migrations(out: io.StringIO) -> None:
    built = scaled_fattree("2l-wide")
    cloud = CloudManager(
        built.topology, built=built, lid_scheme="prepopulated", num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    vm = cloud.boot_vm(on="l0h0")
    inter = cloud.live_migrate(vm.name, "l11h5")
    intra = cloud.live_migrate(vm.name, "l11h4")
    cloud.orchestrator.minimal_intra_leaf = True
    minimal = cloud.live_migrate(vm.name, "l11h5")
    full = cloud.sm.full_reconfigure()
    out.write("## Per-migration reconfiguration (2l-wide twin)\n\n```\n")
    out.write(
        render_table(
            ["operation", "LFT SMPs", "n'", "PCt"],
            [
                ("inter-leaf swap", inter.reconfig.lft_smps, inter.switches_updated, 0),
                ("intra-leaf swap", intra.reconfig.lft_smps, intra.switches_updated, 0),
                (
                    "minimal intra-leaf",
                    minimal.reconfig.lft_smps,
                    minimal.switches_updated,
                    0,
                ),
                (
                    "traditional full RC",
                    full.lft_smps,
                    built.topology.num_switches,
                    f"{full.path_compute_seconds:.4f}s",
                ),
            ],
        )
    )
    out.write("\n```\n\n")


def _section_motivation(out: io.StringIO) -> None:
    peers = 6
    # Shared Port.
    built = scaled_fattree("2l-small")
    fleet = SharedPortFleet(built.topology, num_vfs=4)
    fleet.adopt_all_hcas()
    vm = fleet.boot_vm(on="l0h0")
    cm = ConnectionManager(fleet.sa)
    for i in range(1, peers + 1):
        peer = fleet.boot_vm(on=f"l{i % 6}h{i % 6}")
        cm.connect(peer.gid, vm.gid)
    fleet.migrate_vm(vm.name, "l5h5")
    sp_broken = cm.audit().broken_count
    sp_queries = cm.repair()
    # vSwitch.
    built2 = scaled_fattree("2l-small")
    cloud = CloudManager(
        built2.topology, built=built2, lid_scheme="prepopulated", num_vfs=4
    )
    cloud.adopt_all_hcas()
    cloud.bring_up_subnet()
    vvm = cloud.boot_vm(on="l0h0")
    vcm = ConnectionManager(cloud.sa)
    for i in range(1, peers + 1):
        peer = cloud.boot_vm(on=f"l{i % 6}h{i % 6}")
        vcm.connect(peer.gid, vvm.gid)
    cloud.live_migrate(vvm.name, "l5h5")
    vs_broken = vcm.audit().broken_count
    vs_queries = vcm.repair()
    out.write("## Motivation: what one migration breaks\n\n```\n")
    out.write(
        render_table(
            ["architecture", "connections broken", "SA repair queries"],
            [
                ("Shared Port (ref [9])", sp_broken, sp_queries),
                ("vSwitch (this paper)", vs_broken, vs_queries),
            ],
        )
    )
    out.write("\n```\n")


def generate_report(
    *, paper_scale: bool = False, output: Optional[str] = None
) -> str:
    """Run the evaluation and return (and optionally write) markdown."""
    out = io.StringIO()
    out.write(
        "# Reproduction report — Towards the InfiniBand SR-IOV vSwitch"
        " Architecture (CLUSTER 2015)\n\n"
    )
    scale = "paper-size" if paper_scale else "scaled-twin"
    out.write(f"Topology scale: **{scale}** instances.\n\n")
    _section_table1(out)
    _section_fig7(out, paper_scale=paper_scale)
    _section_migrations(out)
    _section_motivation(out)
    text = out.getvalue()
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text
