"""Data series for the paper's Fig. 7 (path-computation time per routing
algorithm across fat-tree sizes), plus the paper's published values for
side-by-side comparison."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.tables import render_table

__all__ = ["Fig7Series", "PAPER_FIG7_SECONDS", "render_fig7"]

#: The values printed in the paper's Fig. 7, in seconds, keyed by routing
#: algorithm then number of nodes. "LID Copying/Swapping" is identically 0.
PAPER_FIG7_SECONDS: Dict[str, Dict[int, float]] = {
    "ftree": {324: 0.012, 648: 0.04, 5832: 16.5, 11664: 67.0},
    "minhop": {324: 0.017, 648: 0.06, 5832: 18.81, 11664: 71.0},
    "dfsssp": {324: 0.142, 648: 0.63, 5832: 123.0, 11664: 625.0},
    # LASH is *cheaper* than DFSSSP on the small 2-level subnets (its cost
    # scales with switch pairs, DFSSSP's with LID count) and explodes on the
    # 3-level ones — the crossover visible in the figure.
    "lash": {324: 0.012, 648: 0.045, 5832: 3859.0, 11664: 39145.0},
    "vswitch-reconfig": {324: 0.0, 648: 0.0, 5832: 0.0, 11664: 0.0},
}


@dataclass
class Fig7Series:
    """Measured path-computation times for one topology size."""

    label: str
    num_nodes: int
    num_switches: int
    seconds_by_engine: Dict[str, float] = field(default_factory=dict)
    #: Engine -> :meth:`RoutingTables.vl_summary` dict, for the VL engines
    #: (LASH layer counts at scale are a Fig. 7 reporting artifact).
    vls_by_engine: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def record(self, engine: str, seconds: float) -> None:
        """Store one engine's PCt."""
        self.seconds_by_engine[engine] = seconds

    def record_vls(self, engine: str, summary: Optional[Dict[str, Any]]) -> None:
        """Store one engine's lane-usage summary (multi-VL engines only)."""
        if summary and summary.get("kind") in ("pair", "dest"):
            self.vls_by_engine[engine] = summary


def render_fig7(series: Sequence[Fig7Series]) -> str:
    """Tabular rendering of the Fig. 7 reproduction.

    One row per engine, one column per topology, with the vSwitch
    reconfiguration row pinned at 0 (no path computation ever happens).
    """
    engines: List[str] = []
    for s in series:
        for e in s.seconds_by_engine:
            # The zero vswitch-reconfig row is pinned last, below.
            if e != "vswitch-reconfig" and e not in engines:
                engines.append(e)
    headers = ["engine"] + [
        f"{s.label} ({s.num_nodes}n/{s.num_switches}sw)" for s in series
    ]
    rows = []
    for e in engines:
        cells = []
        for s in series:
            if e not in s.seconds_by_engine:
                cells.append("-")
                continue
            cell = f"{s.seconds_by_engine[e]:.4f}s"
            vls = s.vls_by_engine.get(e)
            if vls:
                cell += f" [{vls['num_vls']}VL]"
            cells.append(cell)
        rows.append([e] + cells)
    rows.append(["vswitch-reconfig"] + ["0.0000s"] * len(series))
    return render_table(headers, rows)
