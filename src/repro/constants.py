"""InfiniBand architecture constants used throughout the reproduction.

Values follow the InfiniBand Architecture Specification 1.2.1 (as cited by
the paper, section II-B) and the OpenSM implementation conventions the paper
builds on (section V/VI).
"""

from __future__ import annotations

#: Lowest valid unicast LID. LID 0 is reserved ("no LID assigned").
MIN_UNICAST_LID: int = 0x0001

#: Topmost unicast LID (0xBFFF). LIDs above this are multicast.
MAX_UNICAST_LID: int = 0xBFFF

#: Number of usable unicast LIDs in one IB subnet (49151). This rules the
#: maximum subnet size (paper section II-B).
UNICAST_LID_COUNT: int = MAX_UNICAST_LID - MIN_UNICAST_LID + 1

#: First multicast LID.
MIN_MULTICAST_LID: int = 0xC000

#: Linear Forwarding Tables are read and written in blocks of 64 LIDs
#: (paper sections V-C1 and VI-A): one SubnSet(LinearForwardingTable) SMP
#: updates exactly one block.
LFT_BLOCK_SIZE: int = 64

#: Total number of LFT blocks needed to cover the full unicast LID space
#: (used for the "fully populated subnet needs 768 SMPs per switch" figure
#: in section VI-A).
LFT_BLOCKS_FULL_SUBNET: int = -(-(MAX_UNICAST_LID + 1) // LFT_BLOCK_SIZE)

#: Sentinel port meaning "no route / drop" in an LFT entry. The paper's
#: partially-static reconfiguration discussion (section VI-C) uses port 255
#: to force packets towards a migrating LID to be dropped.
LFT_DROP_PORT: int = 255

#: Sentinel stored in LFT arrays for "entry never programmed".
LFT_UNSET: int = 255

#: Default number of SR-IOV Virtual Functions enabled per HCA. The paper's
#: running example (section V-A) uses the Mellanox ConnectX-3 default of 16
#: (the hardware supports up to 126).
DEFAULT_NUM_VFS: int = 16

#: Maximum VFs supported by the modelled adapter (ConnectX-3).
MAX_NUM_VFS: int = 126

#: Radix of the switches used in the paper's simulations (SUN DCS 36 /
#: generic 36-port switches building the fat-trees of Fig. 7 / Table I).
PAPER_SWITCH_RADIX: int = 36

#: Special-purpose management Queue Pair numbers (section IV-A).
QP0: int = 0
QP1: int = 1
