"""LID assignment: who gets which LID, and the topology binding registry.

The LidManager is the SM component both LID schemes of the paper talk to:

* base assignment — every switch and every HCA primary port gets one LID
  (Table I's "LIDs" column is exactly nodes + switches);
* extra assignment — additional LIDs bound to an *already-LID-ed* HCA port,
  which is how vSwitch VFs appear (prepopulated scheme assigns them at boot,
  dynamic scheme when a VM starts);
* targeted assignment — claim one specific LID (a migrating VM carrying its
  LID to the destination hypervisor).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import AddressingError
from repro.fabric.addressing import LidAllocator
from repro.fabric.node import Port
from repro.fabric.topology import Topology

__all__ = ["LidManager"]


class LidManager:
    """Owns the subnet's LID space and the LID->port bindings."""

    def __init__(
        self, topology: Topology, *, allocator: Optional[LidAllocator] = None
    ) -> None:
        self.topology = topology
        self.allocator = allocator or LidAllocator()

    # -- base assignment -----------------------------------------------------

    def assign_base_lids(self) -> Dict[str, int]:
        """Give every switch and every HCA primary port a LID.

        Existing assignments are kept (idempotent); returns the full
        name -> LID map after assignment. Switches are assigned first, then
        HCAs, each in registration order — mirroring OpenSM's discovery-
        order assignment.
        """
        result: Dict[str, int] = {}
        for sw in self.topology.switches:
            if sw.lid is None:
                lid = self.allocator.allocate()
                sw.lid = lid
                self.topology.bind_lid(lid, sw.management_port)
            result[sw.name] = sw.lid
        for hca in self.topology.hcas:
            port = hca.port(1)
            if port.lid is None:
                lid = self.allocator.allocate()
                port.lid = lid
                self.topology.bind_lid(lid, port)
            result[hca.name] = port.lid
        return result

    # -- vSwitch-style extra LIDs ---------------------------------------------

    def assign_extra_lid(self, port: Port, *, lid: Optional[int] = None) -> int:
        """Bind one more LID to *port* (a VF behind a vSwitch HCA).

        With *lid* given, that exact LID is claimed (LidInUseError if taken);
        otherwise the next free LID is used.
        """
        if lid is None:
            lid = self.allocator.allocate()
        else:
            self.allocator.assign(lid)
        try:
            self.topology.bind_lid(lid, port)
        except Exception:
            self.allocator.release(lid)
            raise
        return lid

    def assign_lmc_lids(self, port: Port, lmc: int) -> List[int]:
        """Assign the 2^lmc *sequential, aligned* LIDs of classic LMC.

        This is the legacy multipathing the prepopulated vSwitch scheme
        imitates without the sequentiality requirement (section V-A: the
        freedom to use non-sequential LIDs is what lets a migrating VM
        carry its LID). The base LID must have its low ``lmc`` bits zero,
        so after any LID moves away the block can never be re-formed —
        the limitation the paper's scheme removes.
        """
        if not 0 <= lmc <= 7:
            raise AddressingError("LMC must be in 0..7")
        count = 1 << lmc
        base = self.allocator.find_free_aligned_run(count, count)
        lids = self.allocator.assign_range(base, count)
        try:
            for lid in lids:
                self.topology.bind_lid(lid, port)
        except Exception:
            for lid in lids:
                if self.topology.port_of_lid(lid) is port:
                    self.topology.unbind_lid(lid)
                self.allocator.release(lid)
            raise
        if port.lid is None:
            port.lid = base
        return lids

    def release_lid(self, lid: int) -> None:
        """Unbind and free one LID."""
        self.topology.unbind_lid(lid)
        self.allocator.release(lid)

    def move_lid(self, lid: int, new_port: Port) -> None:
        """Rebind an existing LID to a different port (LID migration).

        The allocator state is untouched — the LID stays owned; only its
        location changes, which is precisely what a VM live migration does
        to its LID under the vSwitch architecture.
        """
        self.topology.rebind_lid(lid, new_port)

    # -- queries ---------------------------------------------------------------

    @property
    def lids_consumed(self) -> int:
        """Number of LIDs currently assigned (Table I "LIDs" column)."""
        return self.allocator.allocated_count

    def lids_on_port(self, port: Port) -> List[int]:
        """All LIDs bound to one port, ascending."""
        return [
            lid
            for lid in self.topology.bound_lids()
            if self.topology.port_of_lid(lid) is port
        ]
