"""Routing engines: MinHop, fat-tree, Up*/Down*, DFSSSP, LASH — plus the
versioned routing-state cache that makes repeat computations incremental."""

from repro.sm.routing.base import (
    RoutingAlgorithm,
    RoutingRequest,
    RoutingTables,
    all_pairs_switch_distances,
    bfs_distances,
    equal_cost_candidates,
    equal_cost_candidates_batch,
)
from repro.sm.routing.cache import RoutingCacheStats, RoutingState
from repro.sm.routing.dfsssp import DFSSSPRouting
from repro.sm.routing.dor import DimensionOrderedRouting
from repro.sm.routing.fattree import FatTreeRouting
from repro.sm.routing.lash import LashRouting
from repro.sm.routing.minhop import MinHopRouting
from repro.sm.routing.registry import available_engines, create_engine, register_engine
from repro.sm.routing.updn import UpDownRouting

__all__ = [
    "RoutingAlgorithm",
    "RoutingRequest",
    "RoutingTables",
    "bfs_distances",
    "all_pairs_switch_distances",
    "equal_cost_candidates",
    "equal_cost_candidates_batch",
    "RoutingState",
    "RoutingCacheStats",
    "MinHopRouting",
    "FatTreeRouting",
    "UpDownRouting",
    "DFSSSPRouting",
    "DimensionOrderedRouting",
    "LashRouting",
    "available_engines",
    "create_engine",
    "register_engine",
]
