"""MinHop routing — OpenSM's default engine.

Computes all-pairs minimal hop distances on the switch graph, then for every
destination LID picks, at each switch, a neighbour on a minimal path. Equal
cost choices are balanced across LIDs, which is what lets the prepopulated
vSwitch scheme "calculate and use different paths to reach different VMs
hosted by the same hypervisor" (paper section V-A, the LMC-like feature).

Two balancing policies are provided:

* ``"lid-mod"`` (default) — destination-indexed spreading: candidate ports
  are chosen by ``lid % num_candidates``. Deterministic, vectorized, and
  spreads consecutive LIDs over distinct ports.
* ``"least-loaded"`` — OpenSM-like greedy: track per (switch, port) path
  counts and pick the least-loaded minimal port. Exact but scalar; intended
  for small fabrics and tests of balancing properties.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.errors import RoutingError
from repro.sm.routing.base import (
    RoutingAlgorithm,
    RoutingRequest,
    RoutingTables,
)

__all__ = ["MinHopRouting"]


class MinHopRouting(RoutingAlgorithm):
    """Minimal-hop routing with equal-cost balancing."""

    name = "minhop"

    def __init__(self, balance: str = "lid-mod") -> None:
        if balance not in ("lid-mod", "least-loaded"):
            raise RoutingError(f"unknown balance policy {balance!r}")
        self.balance = balance

    def compute(self, request: RoutingRequest) -> RoutingTables:
        # All-pairs distances come from the shared RoutingState when the
        # request carries one: a warm cache turns the O(n * E) sweep into a
        # dictionary hit, and after failures only the repaired rows differ.
        dist = request.switch_distances()
        if (dist < 0).any():
            raise RoutingError("switch graph is disconnected")
        ports = self._empty_tables(request)
        self._program_local_entries(ports, request)

        # Destination switch index -> LIDs that terminate there (or at an
        # endpoint hanging off it).
        dest_groups = request.dest_groups()

        if self.balance == "lid-mod":
            self._assign_lid_mod(request, dist, ports, dest_groups)
        else:
            self._assign_least_loaded(request, dist, ports, dest_groups)

        return RoutingTables(
            algorithm=self.name,
            ports=ports,
            metadata={"switch_distances": dist, "balance": self.balance},
        )

    def _assign_lid_mod(
        self,
        request: RoutingRequest,
        dist: np.ndarray,
        ports: np.ndarray,
        dest_groups: Dict[int, List[int]],
    ) -> None:
        n = request.num_switches
        rows = np.arange(n)
        # One batched CSR pass produces every destination's candidate
        # arrays; the per-destination fill is a single 2D fancy-indexed
        # scatter over all of its LIDs (no scalar LID loop).
        cand_map = request.prefetch_candidates(sorted(dest_groups))
        for dest_sw, lids in dest_groups.items():
            cand, counts = cand_map[dest_sw]
            mask = counts > 0
            sel_rows = rows[mask]
            sel_counts = counts[mask]
            lid_arr = np.asarray(lids, dtype=np.int64)
            sel = lid_arr[None, :] % sel_counts[:, None]
            ports[np.ix_(sel_rows, lid_arr)] = cand[sel_rows[:, None], sel]

    def _assign_least_loaded(
        self,
        request: RoutingRequest,
        dist: np.ndarray,
        ports: np.ndarray,
        dest_groups: Dict[int, List[int]],
    ) -> None:
        view = request.view
        n = request.num_switches
        # load[(switch, port)] = number of destination LIDs routed via it.
        load: Dict[tuple, int] = {}
        for dest_sw in sorted(dest_groups):
            lids = sorted(dest_groups[dest_sw])
            col = dist[:, dest_sw]
            for lid in lids:
                for s in range(n):
                    if col[s] <= 0:
                        continue
                    best_port = -1
                    best_load = None
                    lo, hi = view.indptr[s], view.indptr[s + 1]
                    for k in range(lo, hi):
                        nb = int(view.peer[k])
                        if col[nb] != col[s] - 1:
                            continue
                        p = int(view.out_port[k])
                        l = load.get((s, p), 0)
                        if best_load is None or l < best_load:
                            best_load, best_port = l, p
                    if best_port < 0:
                        raise RoutingError(
                            f"no minimal neighbour at switch {s} for {dest_sw}"
                        )
                    ports[s, lid] = best_port
                    load[(s, best_port)] = load.get((s, best_port), 0) + 1
