"""The versioned routing-state cache and incremental BFS repair.

The paper's Fig. 7 argument is that reconfiguration cost is dominated by
path computation (PCt): every ``compute_routing`` re-ran an O(n * E) BFS
sweep even when nothing about the *switch graph* had changed (VM churn,
migrations, incremental reroutes). :class:`RoutingState` removes that cost:

* **versioned caching** — the all-pairs switch distance matrix, single BFS
  rows, per-destination equal-cost candidate arrays and the port lookup
  maps are all keyed by :attr:`repro.fabric.topology.Topology.version`,
  which only switch-graph mutations bump. On an unchanged graph a repeat
  ``compute_routing`` performs **zero** BFS sweeps.

* **incremental repair** — after a link or switch failure the subnet
  manager records a :class:`RepairEvent`; on the next access the cache
  recomputes only the BFS source trees whose shortest paths could have
  used the failed element (see
  :func:`repro.fabric.graph.link_failure_affected_sources` /
  :func:`~repro.fabric.graph.switch_removal_affected_sources`) instead of
  all ``n`` sources. Repaired matrices are *exactly* equal to a
  from-scratch recomputation, so the routing tables built from them are
  byte-identical — the property-based tests assert this.

All activity is counted in :class:`RoutingCacheStats`; the subnet manager
exposes the counters as ``repro_routing_cache_*`` metrics and span
attributes so PCt savings are observable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.fabric.graph import (
    bfs_distances,
    edge_sources,
    equal_cost_candidates,
    equal_cost_candidates_batch,
    link_addition_affected_sources,
    link_failure_affected_sources,
    switch_addition_affected_sources,
    switch_removal_affected_sources,
)
from repro.fabric.topology import Topology
from repro.sm.routing.parallel import ParallelRouter

__all__ = ["RoutingCacheStats", "RepairEvent", "RoutingState"]

#: Above this switch count, per-destination candidate arrays are computed
#: transiently (still batched) instead of being kept in the cache, bounding
#: the cache's memory to O(n^2) at paper scale.
DEFAULT_CANDIDATE_CACHE_LIMIT = 512


@dataclass
class RoutingCacheStats:
    """Monotonic event counters for one :class:`RoutingState`."""

    #: Distance-matrix requests served from cache (incl. right after repair).
    hits: int = 0
    #: Distance-matrix requests that forced a full O(n * E) recompute.
    misses: int = 0
    #: Incremental repairs applied (one per sync that consumed events).
    repairs: int = 0
    #: Single-source BFS sweeps actually executed, from any code path.
    bfs_sweeps: int = 0
    #: BFS source trees recomputed by incremental repair (subset of sweeps).
    sources_repaired: int = 0
    #: Full matrix recomputations (same events as ``misses``).
    full_recomputes: int = 0
    #: Candidate-array requests served from cache.
    candidate_hits: int = 0
    #: Candidate-array requests that had to be (re)computed.
    candidate_misses: int = 0

    def snapshot(self) -> "RoutingCacheStats":
        """A frozen copy for before/after diffing."""
        return RoutingCacheStats(**vars(self))

    def delta_since(self, before: "RoutingCacheStats") -> Dict[str, int]:
        """Counter increments since *before* was snapshot."""
        now = vars(self)
        return {k: now[k] - v for k, v in vars(before).items()}


class RepairEvent(NamedTuple):
    """One recorded topology mutation the cache can repair around.

    ``version`` is the topology version *after* the mutation. ``a``/``b``
    are switch indices in the frame right before the mutation: the cable's
    endpoints for ``kind == "link"``, the removed switch (and -1) for
    ``kind == "switch"``. The addition-side kinds mirror them:
    ``"link_add"`` records a new (or restored) inter-switch cable with
    its endpoint indices in the frame right *after* the mutation (link
    additions never re-index), and ``"switch_add"`` records a new switch
    appended at dense index ``a``. ``kind == "noop"`` advances the
    version chain without touching distances (e.g. an HCA cable failure
    handled through the same SM path).
    """

    kind: str
    a: int
    b: int
    version: int


class RoutingState:
    """Version-keyed routing caches for one topology.

    One instance is shared by the subnet manager (all-pairs distances and
    candidate arrays for the routing engines) and the SMP transport (the
    single BFS row from the SM's root switch). Every public accessor first
    synchronizes with ``topology.version``: unchanged -> serve cached
    arrays; a chain of recorded :class:`RepairEvent`\\ s -> incremental
    repair; anything else -> drop and recompute lazily.
    """

    def __init__(
        self,
        topology: Topology,
        *,
        candidate_cache_limit: int = DEFAULT_CANDIDATE_CACHE_LIMIT,
        workers: int = 1,
    ) -> None:
        self.topology = topology
        self.stats = RoutingCacheStats()
        self.candidate_cache_limit = candidate_cache_limit
        #: Sharded full recomputes (``workers > 1``); repairs stay serial —
        #: they resweep only a handful of sources by design.
        self.router = ParallelRouter(workers)
        self._version = -1
        self._pending: List[RepairEvent] = []
        self._dist: Optional[np.ndarray] = None
        self._rows: Dict[int, np.ndarray] = {}
        self._cand: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._port_maps: Optional[Tuple[dict, dict]] = None

    # -- failure notifications ------------------------------------------------

    def note_link_failure(self, u: int, v: int) -> None:
        """Record a removed inter-switch cable (indices of its endpoints).

        Must be called right after the mutation bumped ``topology.version``.
        Pass a negative index for a non-switch endpoint; the event then
        degrades to a no-op version advance (the switch graph is unchanged
        by an HCA cable failure).
        """
        if u < 0 or v < 0:
            self._pending.append(
                RepairEvent("noop", -1, -1, self.topology.version)
            )
        else:
            self._pending.append(
                RepairEvent("link", u, v, self.topology.version)
            )

    def note_switch_removal(self, w: int) -> None:
        """Record a removed switch (its dense index *before* removal)."""
        self._pending.append(RepairEvent("switch", w, -1, self.topology.version))

    # -- addition notifications -----------------------------------------------

    def note_link_addition(self, u: int, v: int) -> None:
        """Record a newly cabled inter-switch link (endpoint indices).

        Must be called right after the ``connect`` that bumped
        ``topology.version``. A cable with a non-switch endpoint never
        bumps the version (the switch graph is untouched), so passing a
        negative index records nothing at all — the cache simply stays
        warm.
        """
        if u < 0 or v < 0:
            return
        self._pending.append(
            RepairEvent("link_add", u, v, self.topology.version)
        )

    def note_link_restored(self, u: int, v: int) -> None:
        """Record a restored (re-plugged) inter-switch cable.

        Semantically an alias of :meth:`note_link_addition` — a restored
        cable repairs exactly like a new one — kept as its own entry
        point so failure/heal call sites mirror each other.
        """
        self.note_link_addition(u, v)

    def note_switch_addition(self, w: int) -> None:
        """Record a newly added switch (its dense index *after* the add).

        New switches are appended, so existing indices are stable; the
        repair grows the matrix by one row/column, marks the new row for
        a BFS sweep, and tracks the switch's cables as they are recorded
        by subsequent :meth:`note_link_addition` calls (the through-paths
        test needs the accumulated neighbour set).
        """
        self._pending.append(
            RepairEvent("switch_add", w, -1, self.topology.version)
        )

    # -- cached accessors -------------------------------------------------------

    def distances(self) -> np.ndarray:
        """All-pairs switch hop distances, repaired or recomputed as needed."""
        self._sync()
        if self._dist is None:
            view = self.topology.fabric_view()
            self._dist = self.router.all_pairs(view)
            self.stats.bfs_sweeps += view.num_switches
            self.stats.misses += 1
            self.stats.full_recomputes += 1
        else:
            self.stats.hits += 1
        return self._dist

    def row(self, source: int) -> np.ndarray:
        """Hop distances from one switch (a single row of the matrix).

        Served from the full matrix when present, else from the per-row
        cache, else by one BFS sweep (which is then cached).
        """
        self._sync()
        if self._dist is not None:
            self.stats.hits += 1
            return self._dist[source]
        cached = self._rows.get(source)
        if cached is not None:
            self.stats.hits += 1
            return cached
        row = bfs_distances(self.topology.fabric_view(), source)
        self.stats.bfs_sweeps += 1
        self.stats.misses += 1
        self._rows[source] = row
        return row

    def candidates(self, dest: int) -> Tuple[np.ndarray, np.ndarray]:
        """Equal-cost candidate ports toward one destination switch."""
        self._sync()
        hit = self._cand.get(dest)
        if hit is not None:
            self.stats.candidate_hits += 1
            return hit
        self.stats.candidate_misses += 1
        pair = equal_cost_candidates(
            self.topology.fabric_view(), self.row(dest)
        )
        if self._cacheable():
            self._cand[dest] = pair
        return pair

    def prefetch_candidates(
        self, dests: Sequence[int]
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Candidate arrays for many destinations, batched in one CSR pass."""
        self._sync()
        out: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        missing: List[int] = []
        for d in dests:
            hit = self._cand.get(d)
            if hit is not None:
                self.stats.candidate_hits += 1
                out[d] = hit
            else:
                missing.append(d)
        if missing:
            self.stats.candidate_misses += len(missing)
            dist = self.distances()
            cols = dist[:, missing].copy()
            pairs = equal_cost_candidates_batch(
                self.topology.fabric_view(), cols
            )
            cache = self._cacheable()
            for d, pair in zip(missing, pairs):
                out[d] = pair
                if cache:
                    self._cand[d] = pair
        return out

    def port_maps(self) -> Tuple[dict, dict]:
        """``(port_to_neighbor, neighbor_via_port)`` lookup dicts.

        ``port_to_neighbor[(s, peer)]`` is the output port on ``s`` toward
        adjacent switch ``peer``; ``neighbor_via_port[(s, port)]`` is the
        switch reached through that port. Shared by DOR (forward lookup)
        and ``RoutingTables.trace_path`` (reverse lookup).
        """
        self._sync()
        if self._port_maps is None:
            view = self.topology.fabric_view()
            srcs = edge_sources(view)
            fwd: dict = {}
            rev: dict = {}
            for s, peer, port in zip(
                srcs.tolist(), view.peer.tolist(), view.out_port.tolist()
            ):
                fwd[(s, peer)] = port
                rev[(s, port)] = peer
            self._port_maps = (fwd, rev)
        return self._port_maps

    # -- synchronization --------------------------------------------------------

    def _cacheable(self) -> bool:
        return self.topology.num_switches <= self.candidate_cache_limit

    def _drop_derived(self) -> None:
        self._rows.clear()
        self._cand.clear()
        self._port_maps = None

    def _invalidate(self) -> None:
        self._dist = None
        self._drop_derived()

    def _sync(self) -> None:
        v = self.topology.version
        if v == self._version:
            return
        events, self._pending = self._pending, []
        self._drop_derived()
        if self._dist is None:
            self._version = v
            return
        if not self._try_repair(events, v):
            self._invalidate()
        self._version = v

    def _try_repair(self, events: List[RepairEvent], target: int) -> bool:
        """Apply *events* to the cached matrix; False forces a recompute.

        Events must form an unbroken ``version`` chain from the cached
        version to *target* — any interleaved unrecorded mutation breaks
        the chain and the incremental path is abandoned.

        Affected-source sets are unioned first and the BFS sweeps run once
        at the end against the final fabric view. That is sound because a
        row left out of the union is (inductively) already correct at each
        event's frame, so every per-event affectedness test reads accurate
        distances for exactly the rows it gets to decide about. The one
        case where a test would read stale data — removing a switch whose
        own row is already dirty — conservatively bails to a full
        recompute.
        """
        cur = self._version
        expected = [cur + i + 1 for i in range(len(events))]
        if [e.version for e in events] != expected or (
            not events or events[-1].version != target
        ):
            return False
        assert self._dist is not None
        # Copy-on-write: previously returned matrices (engines keep one in
        # RoutingTables.metadata) must stay frozen snapshots.
        dist = self._dist.copy()
        affected = np.zeros(dist.shape[0], dtype=bool)
        view = self.topology.fabric_view()
        # Link-removal events can use the exact unique-predecessor
        # refinement only while their frame's adjacency is a superset of
        # the final view's with matching indexing: after every deletion of
        # the chain (indexing) and before no addition (an edge added later
        # would offer "alternative predecessors" that did not exist yet).
        last_switch = max(
            (i for i, e in enumerate(events) if e.kind == "switch"),
            default=-1,
        )
        last_add = max(
            (
                i
                for i, e in enumerate(events)
                if e.kind in ("link_add", "switch_add")
            ),
            default=-1,
        )
        #: Switches appended by this chain whose rows/columns are still
        #: placeholders (swept at the end), mapped to the neighbour
        #: indices their cables have accumulated so far.
        dirty: Dict[int, List[int]] = {}
        for i, ev in enumerate(events):
            if ev.kind == "noop":
                continue
            if ev.kind == "link":
                if ev.a in dirty or ev.b in dirty:
                    # Removing a cable of a switch added earlier in the
                    # same chain: its placeholder column makes every
                    # affectedness test unreliable.
                    return False
                refine = (
                    view
                    if i > last_switch
                    and i > last_add
                    and dist.shape[0] == view.num_switches
                    else None
                )
                affected |= link_failure_affected_sources(
                    dist, ev.a, ev.b, view=refine
                )
            elif ev.kind == "link_add":
                in_a, in_b = ev.a in dirty, ev.b in dirty
                if in_a and in_b:
                    # A cable between two switches added in the same
                    # chain: through-paths would cross two placeholder
                    # columns — bail to a full recompute.
                    return False
                if in_a or in_b:
                    w, x = (ev.a, ev.b) if in_a else (ev.b, ev.a)
                    if not 0 <= x < dist.shape[0]:
                        return False
                    dirty[w].append(x)
                    affected |= switch_addition_affected_sources(
                        dist, np.asarray(dirty[w], dtype=np.int64)
                    )
                else:
                    if not (
                        0 <= ev.a < dist.shape[0]
                        and 0 <= ev.b < dist.shape[0]
                    ):
                        return False
                    affected |= link_addition_affected_sources(
                        dist, ev.a, ev.b
                    )
            elif ev.kind == "switch_add":
                if ev.a != dist.shape[0]:
                    return False
                dist = np.pad(
                    dist, ((0, 1), (0, 1)), constant_values=-1
                )
                dist[ev.a, ev.a] = 0
                affected = np.append(affected, True)
                dirty[ev.a] = []
            elif ev.kind == "switch":
                w = ev.a
                if dirty or not 0 <= w < dist.shape[0] or affected[w]:
                    # Row w is stale, a placeholder column would poison
                    # the through-w test, or the index is off.
                    return False
                affected |= switch_removal_affected_sources(dist, w)
                dist = np.delete(np.delete(dist, w, axis=0), w, axis=1)
                affected = np.delete(affected, w)
            else:  # pragma: no cover - future event kinds
                return False
        if dist.shape[0] != view.num_switches:
            return False
        srcs = np.flatnonzero(affected)
        for s in srcs:
            dist[s] = bfs_distances(view, int(s))
        # Unaffected rows still hold placeholder entries toward switches
        # added by this chain; hop distances are symmetric, so their
        # freshly swept rows fill those columns exactly.
        for w in dirty:
            dist[:, w] = dist[w, :]
        self._dist = dist
        self.stats.bfs_sweeps += len(srcs)
        self.stats.sources_repaired += len(srcs)
        self.stats.repairs += 1
        return True
