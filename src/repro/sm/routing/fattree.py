"""Fat-tree routing — the structure-exploiting engine (OpenSM's ftree).

Uses the tree levels recorded by the fat-tree builders: traffic to a
destination LID goes *down* along the unique down-path wherever the current
switch is an ancestor of the destination's leaf, and *up* otherwise, with
the up port chosen by destination index (``lid % num_up_ports``) so that
consecutive LIDs fan out over distinct spines. That destination-indexed
spreading is what gives the prepopulated vSwitch scheme its LMC-like
multipathing (paper section V-A).

Because the down-paths are discovered by a short upward walk from each leaf
(O(ancestors) per leaf) instead of all-pairs BFS, this engine is the fastest
of the four — matching its position in the paper's Fig. 7.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

import numpy as np

from repro.errors import RoutingError
from repro.sm.routing.base import (
    RoutingAlgorithm,
    RoutingRequest,
    RoutingTables,
)

__all__ = ["FatTreeRouting"]


class FatTreeRouting(RoutingAlgorithm):
    """Up/down fat-tree routing with destination-indexed up-port choice."""

    name = "ftree"

    def compute(self, request: RoutingRequest) -> RoutingTables:
        if request.level is None:
            raise RoutingError(
                "ftree needs tree levels; build the topology with a fat-tree"
                " builder (or use minhop/dfsssp for unstructured fabrics)"
            )
        view = request.view
        n = request.num_switches
        level = np.full(n, -1, dtype=np.int32)
        for idx, lvl in request.level.items():
            level[idx] = lvl
        if (level < 0).any():
            raise RoutingError("every switch needs a level for ftree")

        ports = self._empty_tables(request)
        self._program_local_entries(ports, request)

        # Per-switch up ports (to any higher-level neighbour), sorted for
        # determinism; up_adj additionally keeps (peer, reverse port) pairs
        # so the per-leaf ancestor walks touch only up edges.
        up_ports: List[List[int]] = [[] for _ in range(n)]
        up_adj: List[List[tuple]] = [[] for _ in range(n)]
        degrees = np.diff(view.indptr)
        edge_src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        going_up = level[view.peer] > level[edge_src]
        for k in np.nonzero(going_up)[0]:
            s = int(edge_src[k])
            up_ports[s].append(int(view.out_port[k]))
            up_adj[s].append((int(view.peer[k]), int(view.in_port[k])))
        for lst in up_ports:
            lst.sort()
        max_up = max((len(u) for u in up_ports), default=0)
        up_matrix = np.full((n, max(max_up, 1)), -1, dtype=np.int32)
        up_counts = np.zeros(n, dtype=np.int32)
        for s, lst in enumerate(up_ports):
            up_counts[s] = len(lst)
            up_matrix[s, : len(lst)] = lst

        rows = np.arange(n)
        # LIDs handled structurally, grouped by destination leaf: every
        # terminal, plus the self-LIDs of level-0 switches (routing toward a
        # leaf switch is identical to routing toward a host below it — the
        # leaf's own LFT entry is port 0, set by _program_local_entries).
        leaf_groups: Dict[int, List[int]] = {}
        for t in request.terminals:
            leaf_groups.setdefault(t.switch_index, []).append(t.lid)
        upper_switch_lids: Dict[int, List[int]] = {}
        for lid, dest_sw in request.switch_lids.items():
            if level[dest_sw] == 0:
                leaf_groups.setdefault(dest_sw, []).append(lid)
            else:
                upper_switch_lids.setdefault(dest_sw, []).append(lid)

        for leaf_idx, lid_list in leaf_groups.items():
            down_col = self._down_ports_toward(up_adj, n, leaf_idx)
            down_mask = down_col >= 0
            up_mask = ~down_mask & (up_counts > 0) & (rows != leaf_idx)
            bad = ~down_mask & (up_counts == 0) & (rows != leaf_idx)
            if bad.any():
                raise RoutingError(
                    f"switch {int(np.nonzero(bad)[0][0])} can reach leaf"
                    f" {leaf_idx} neither up nor down; not a fat-tree?"
                )
            ur = rows[up_mask]
            dr = rows[down_mask]
            lids = np.array(lid_list, dtype=np.int64)
            # All of this leaf's LIDs in one 2D fancy-index per direction:
            # down entries are LID-independent; up entries spread by
            # lid % up_count per switch.
            if dr.size:
                ports[np.ix_(dr, lids)] = down_col[dr][:, None]
            if ur.size:
                sel = lids[None, :] % up_counts[ur][:, None]
                ports[np.ix_(ur, lids)] = up_matrix[ur[:, None], sel]

        # Upper-level switch self-LIDs: equal-cost BFS columns (management
        # traffic is not bandwidth critical). Only aggregation/core switches
        # need a BFS — this is where ftree undercuts MinHop's all-pairs —
        # and both the BFS row and the candidate arrays come from the
        # shared cache when one is attached.
        for dest_sw, lids in upper_switch_lids.items():
            dist = request.bfs_row(dest_sw)
            if (dist < 0).any():
                raise RoutingError("switch graph is disconnected")
            cand, counts = request.candidates(dest_sw)
            mask = counts > 0
            sel = rows[mask]
            cnt = counts[mask]
            lid_arr = np.asarray(lids, dtype=np.int64)
            pick = lid_arr[None, :] % cnt[:, None]
            ports[np.ix_(sel, lid_arr)] = cand[sel[:, None], pick]

        return RoutingTables(
            algorithm=self.name,
            ports=ports,
            metadata={"levels": level},
        )

    @staticmethod
    def _down_ports_toward(
        up_adj: List[List[tuple]], n: int, leaf_idx: int
    ) -> np.ndarray:
        """For every ancestor of *leaf_idx*, the down port toward it.

        Walks up from the leaf along the precomputed up-edge adjacency;
        each newly reached higher-level switch records the (reverse) port
        through which it was reached. Non-ancestors keep -1.
        """
        down = np.full(n, -1, dtype=np.int32)
        q = deque([leaf_idx])
        while q:
            cur = q.popleft()
            for nb, in_port in up_adj[cur]:
                if down[nb] < 0:
                    down[nb] = in_port
                    q.append(nb)
        return down
