"""LASH routing (LAyered SHortest path).

LASH guarantees deadlock freedom on arbitrary topologies by assigning each
source/destination *switch pair* to a virtual layer such that every layer's
channel dependency graph stays acyclic; paths themselves are plain shortest
paths. The layer search tries each existing layer in turn (with an
acyclicity test per attempt) and opens a new one on failure — an
O(pairs x layers x CDG) procedure that makes LASH by far the slowest engine
in the paper's Fig. 7 (39145 s at 11664 nodes vs 67 s for MinHop).

Destination-based LFTs force all sources' paths to one destination to form
an in-tree, so we derive per-destination BFS trees first and the pair
(s, t) path is the tree path — exactly how OpenSM's LASH keeps LFT
consistency.

Two implementations share this class. The default (``vectorized=True``)
computes the in-trees with the frontier-vectorized
:func:`repro.fabric.graph.bfs_tree` kernel and runs the per-pair layer
search against :class:`~repro.sm.routing.cdg_array.ArrayCdg` — the
pair-by-pair structure (the paper's LASH cost model) is preserved, only
the per-pair acyclicity bookkeeping moves from tuple dicts + DFS onto
integer arrays. ``vectorized=False`` is the original pure-Python
reference; the two produce byte-identical tables and VL assignments
(asserted by tests/sm/test_vectorized_identity.py).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.fabric.graph import bfs_tree
from repro.sm.deadlock import ChannelDependencyGraph, Dependency
from repro.sm.routing.base import (
    RoutingAlgorithm,
    RoutingRequest,
    RoutingTables,
)
from repro.sm.routing.cdg_array import ArrayCdg, channel_ids, channel_table
from repro.sm.routing.vl import VlAssignment

__all__ = ["LashRouting"]


class LashRouting(RoutingAlgorithm):
    """Shortest-path routing with per-(src,dst) virtual-layer assignment."""

    name = "lash"

    def __init__(self, max_vls: int = 8, *, vectorized: bool = True) -> None:
        if max_vls < 1:
            raise RoutingError("need at least one virtual lane")
        self.max_vls = max_vls
        self.vectorized = vectorized

    def compute(self, request: RoutingRequest) -> RoutingTables:
        if not self.vectorized:
            return self._compute_reference(request)
        view = request.view
        n = request.num_switches
        ports = self._empty_tables(request)
        self._program_local_entries(ports, request)

        dest_groups = request.dest_groups()

        # Per-destination-switch BFS in-trees (CSR kernel, parent choice
        # identical to the reference deque BFS): nxt[t][s] = next-hop
        # switch, port_to[t][s] = out port at s.
        trees: Dict[int, np.ndarray] = {}
        for t in dest_groups:
            nxt, port_arr, dist = bfs_tree(view, t)
            if (dist < 0).any():
                raise RoutingError("switch graph is disconnected")
            trees[t] = nxt
            rows = np.flatnonzero(nxt >= 0)
            cols = np.asarray(dest_groups[t], dtype=np.int64)
            ports[rows[:, None], cols[None, :]] = port_arr[rows][:, None]

        # Layer assignment per (source, destination) switch pair. Traffic
        # originates at hosts and terminates at hosts, so only pairs of
        # terminal-bearing (leaf) switches need data-VL layering; paths to
        # switch self-LIDs carry management traffic on VL15 (as in
        # :mod:`repro.sm.routing.dfsssp`).
        terminal_switches = sorted({t.switch_index for t in request.terminals})
        table = channel_table(view)
        # "kahn" mode = a full acyclicity test per pair attempt, the
        # published LASH cost model (and what keeps it Fig. 7's slowest).
        layers = [
            ArrayCdg(len(table), mode="kahn") for _ in range(self.max_vls)
        ]
        pair_to_vl: Dict[Tuple[int, int], int] = {}
        num_vls_used = 1
        for t in terminal_switches:
            nxt = trees[t]
            # Channel id of the tree hop out of each switch, as a plain
            # list for the pointer-chasing pair loop below.
            hop_nodes = np.flatnonzero(nxt >= 0)
            cid_arr = np.full(n, -1, dtype=np.int64)
            cid_arr[hop_nodes] = channel_ids(
                table, hop_nodes, nxt[hop_nodes], n
            )
            nxt_l = nxt.tolist()
            cid_l = cid_arr.tolist()
            for s in terminal_switches:
                if s == t:
                    continue
                chain: List[int] = []
                cur = s
                while cur != t:
                    chain.append(cid_l[cur])
                    cur = nxt_l[cur]
                d1 = np.asarray(chain[:-1], dtype=np.int64)
                d2 = np.asarray(chain[1:], dtype=np.int64)
                for vl, cdg in enumerate(layers):
                    if cdg.try_add(d1, d2):
                        pair_to_vl[(s, t)] = vl
                        num_vls_used = max(num_vls_used, vl + 1)
                        break
                else:
                    raise RoutingError(
                        f"LASH exceeded {self.max_vls} layers at pair {(s, t)}"
                    )

        return RoutingTables(
            algorithm=self.name,
            ports=ports,
            num_vls=num_vls_used,
            metadata={
                "pair_to_vl": pair_to_vl,
                "vl": VlAssignment(
                    kind="pair",
                    num_vls=num_vls_used,
                    max_vls=self.max_vls,
                    pair_to_vl=pair_to_vl,
                ),
            },
        )

    # -- reference implementation -------------------------------------------

    def _compute_reference(self, request: RoutingRequest) -> RoutingTables:
        """Original pure-Python LASH; kept as the byte-identity oracle."""
        view = request.view
        ports = self._empty_tables(request)
        self._program_local_entries(ports, request)

        # Destination switch -> LIDs terminating there.
        dest_groups: Dict[int, List[int]] = {}
        for t in request.terminals:
            dest_groups.setdefault(t.switch_index, []).append(t.lid)
        for lid, sw in request.switch_lids.items():
            dest_groups.setdefault(sw, []).append(lid)

        trees: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        for t in dest_groups:
            trees[t] = self._bfs_tree(view, t)
            nxt, port_arr = trees[t]
            for lid in dest_groups[t]:
                mask = nxt >= 0
                ports[mask, lid] = port_arr[mask]

        terminal_switches = sorted({t.switch_index for t in request.terminals})
        layers = [ChannelDependencyGraph() for _ in range(self.max_vls)]
        pair_to_vl: Dict[Tuple[int, int], int] = {}
        num_vls_used = 1
        for t in terminal_switches:
            nxt, _ = trees[t]
            for s in terminal_switches:
                if s == t:
                    continue
                deps = self._path_dependencies(nxt, s, t)
                for vl, cdg in enumerate(layers):
                    if cdg.try_add_dependencies(deps):
                        pair_to_vl[(s, t)] = vl
                        num_vls_used = max(num_vls_used, vl + 1)
                        break
                else:
                    raise RoutingError(
                        f"LASH exceeded {self.max_vls} layers at pair {(s, t)}"
                    )

        return RoutingTables(
            algorithm=self.name,
            ports=ports,
            num_vls=num_vls_used,
            metadata={
                "pair_to_vl": pair_to_vl,
                "vl": VlAssignment(
                    kind="pair",
                    num_vls=num_vls_used,
                    max_vls=self.max_vls,
                    pair_to_vl=pair_to_vl,
                ),
            },
        )

    @staticmethod
    def _bfs_tree(view, dest: int) -> Tuple[np.ndarray, np.ndarray]:
        """BFS in-tree toward *dest*: (next_hop_switch, out_port) per switch."""
        n = view.num_switches
        nxt = np.full(n, -1, dtype=np.int64)
        port = np.full(n, -1, dtype=np.int32)
        dist = np.full(n, -1, dtype=np.int64)
        dist[dest] = 0
        q = deque([dest])
        while q:
            cur = q.popleft()
            lo, hi = view.indptr[cur], view.indptr[cur + 1]
            for k in range(lo, hi):
                nb = int(view.peer[k])
                if dist[nb] < 0:
                    dist[nb] = dist[cur] + 1
                    nxt[nb] = cur
                    # Forward edge nb->cur uses the reverse port of cur->nb.
                    port[nb] = int(view.in_port[k])
                    q.append(nb)
        if (dist < 0).any():
            raise RoutingError("switch graph is disconnected")
        return nxt, port

    @staticmethod
    def _path_dependencies(
        nxt: np.ndarray, src: int, dest: int
    ) -> List[Dependency]:
        """Dependencies of the tree path src -> dest."""
        chans: List[Tuple[int, int]] = []
        cur = src
        while cur != dest:
            b = int(nxt[cur])
            chans.append((cur, b))
            cur = b
        return [(chans[i], chans[i + 1]) for i in range(len(chans) - 1)]
