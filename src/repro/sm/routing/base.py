"""Routing engine infrastructure.

A routing engine consumes a :class:`RoutingRequest` (compact switch graph +
endpoint terminals) and produces :class:`RoutingTables`: one output port per
(switch, destination LID). The subnet manager then diffs these against the
switches' current LFTs to derive the SubnSet(LFT) SMPs to send.

The helpers here are shared across engines and are written against the CSR
arrays of :class:`~repro.fabric.topology.SwitchFabricView` so the hot loops
are NumPy-vectorized (see DESIGN.md performance notes).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.constants import LFT_UNSET
from repro.errors import RoutingError, UnreachableLidError
from repro.fabric.graph import (
    all_pairs_switch_distances,
    bfs_distances,
    equal_cost_candidates,
    equal_cost_candidates_batch,
)
from repro.fabric.topology import SwitchFabricView, Terminal, Topology
from repro.sm.routing.cache import RoutingState
from repro.sm.routing.vl import VlAssignment

__all__ = [
    "RoutingRequest",
    "RoutingTables",
    "RoutingAlgorithm",
    "bfs_distances",
    "all_pairs_switch_distances",
    "equal_cost_candidates",
    "equal_cost_candidates_batch",
]


@dataclass
class RoutingRequest:
    """Everything a routing engine needs to compute paths.

    ``terminals`` lists every endpoint LID with its attachment switch/port;
    ``switch_lids`` maps switch self-LIDs to switch indices. ``level`` (when
    the topology was built by a fat-tree builder) maps switch index -> tree
    level for engines that exploit structure (ftree, Up*/Down* root choice).
    """

    view: SwitchFabricView
    terminals: List[Terminal]
    switch_lids: Dict[int, int]
    top_lid: int
    level: Optional[Dict[int, int]] = None
    root_indices: List[int] = field(default_factory=list)
    #: Builder parameters (e.g. mesh rows/cols) for structure-aware engines.
    hints: Dict[str, int] = field(default_factory=dict)
    #: Shared :class:`~repro.sm.routing.cache.RoutingState`; engines route
    #: all BFS/candidate work through it so repeated computations on an
    #: unchanged switch graph cost zero sweeps. ``None`` falls back to
    #: direct (still batched/vectorized) computation.
    state: Optional[RoutingState] = field(default=None, repr=False)
    _terminal_map: Optional[Dict[Tuple[int, int], frozenset]] = field(
        default=None, repr=False, compare=False
    )
    _terminal_arrays: Optional[Tuple[np.ndarray, ...]] = field(
        default=None, repr=False, compare=False
    )
    _port_maps: Optional[Tuple[dict, dict]] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        *,
        built: Optional[object] = None,
        state: Optional[RoutingState] = None,
    ) -> "RoutingRequest":
        """Snapshot *topology* into a request.

        *built* may be a :class:`~repro.fabric.builders.fattree.BuiltTopology`
        whose level/root metadata is translated to dense switch indices.
        """
        terminals = topology.terminals()
        switch_lids = topology.switch_lids()
        lids = [t.lid for t in terminals] + list(switch_lids)
        if not lids:
            raise RoutingError("no LIDs assigned; run LID assignment first")
        level = None
        roots: List[int] = []
        hints: Dict[str, int] = {}
        if built is not None:
            # Builder metadata may reference switches that have since been
            # removed (failures); skip those.
            level = {
                topology.node(name).index: lvl
                for name, lvl in built.level.items()
                if name in topology
            }
            # Resolve roots by NAME, not by captured object: a root that
            # was removed and later re-added at runtime is a fresh Switch
            # instance, and the stale object's index (-1) would silently
            # drop it from the root set.
            roots = [
                topology.node(sw.name).index
                for sw in built.roots
                if sw.name in topology
            ]
            hints = dict(getattr(built, "params", {}) or {})
        return cls(
            view=topology.fabric_view(),
            terminals=terminals,
            switch_lids=switch_lids,
            top_lid=max(lids),
            level=level,
            root_indices=roots,
            hints=hints,
            state=state,
        )

    @property
    def num_switches(self) -> int:
        """Switch count (the paper's ``n``)."""
        return self.view.num_switches

    @property
    def num_lids(self) -> int:
        """Total consumed LIDs."""
        return len(self.terminals) + len(self.switch_lids)

    def terminals_by_switch(self) -> Dict[int, List[Terminal]]:
        """Group endpoint terminals by their attachment switch index."""
        groups: Dict[int, List[Terminal]] = {}
        for t in self.terminals:
            groups.setdefault(t.switch_index, []).append(t)
        return groups

    def dest_groups(self) -> Dict[int, List[int]]:
        """Destination switch index -> every LID terminating there.

        Covers endpoint terminals and switch self-LIDs — the grouping every
        destination-routed engine iterates.
        """
        groups: Dict[int, List[int]] = {}
        for t in self.terminals:
            groups.setdefault(t.switch_index, []).append(t.lid)
        for lid, sw in self.switch_lids.items():
            groups.setdefault(sw, []).append(lid)
        return groups

    # -- shared-cache accessors (fall back to direct computation) -----------

    def switch_distances(self) -> np.ndarray:
        """All-pairs switch distances, via the shared cache when attached."""
        if self.state is not None:
            return self.state.distances()
        return all_pairs_switch_distances(self.view)

    def bfs_row(self, source: int) -> np.ndarray:
        """Distances from one switch, via the shared cache when attached."""
        if self.state is not None:
            return self.state.row(source)
        return bfs_distances(self.view, source)

    def candidates(self, dest: int) -> Tuple[np.ndarray, np.ndarray]:
        """Equal-cost candidates toward one destination switch."""
        if self.state is not None:
            return self.state.candidates(dest)
        return equal_cost_candidates(self.view, self.bfs_row(dest))

    def prefetch_candidates(
        self, dests: List[int]
    ) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Candidate arrays for many destinations in one batched CSR pass."""
        if self.state is not None:
            return self.state.prefetch_candidates(dests)
        dist = self.switch_distances()
        pairs = equal_cost_candidates_batch(self.view, dist[:, dests].copy())
        return dict(zip(dests, pairs))

    # -- cached lookup structures -------------------------------------------

    def terminal_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(lids, switch_indices, switch_ports)`` of every terminal."""
        if self._terminal_arrays is None:
            lids = np.fromiter(
                (t.lid for t in self.terminals), dtype=np.int64,
                count=len(self.terminals),
            )
            sws = np.fromiter(
                (t.switch_index for t in self.terminals), dtype=np.int64,
                count=len(self.terminals),
            )
            prts = np.fromiter(
                (t.switch_port for t in self.terminals), dtype=np.int16,
                count=len(self.terminals),
            )
            self._terminal_arrays = (lids, sws, prts)
        return self._terminal_arrays

    def terminal_map(self) -> Dict[Tuple[int, int], frozenset]:
        """``(switch_index, switch_port) -> {LIDs delivered there}``.

        Built once per request — ``trace_path``/``validate`` call it per
        hop, and rebuilding it per call made validation quadratic in the
        number of terminals on large fabrics.
        """
        if self._terminal_map is None:
            acc: Dict[Tuple[int, int], set] = {}
            for t in self.terminals:
                acc.setdefault((t.switch_index, t.switch_port), set()).add(
                    t.lid
                )
            self._terminal_map = {
                key: frozenset(lids) for key, lids in acc.items()
            }
        return self._terminal_map

    def port_maps(self) -> Tuple[dict, dict]:
        """``(port_to_neighbor, neighbor_via_port)`` dicts for this view.

        Delegates to the shared cache only while the topology still serves
        the exact view this request snapshot — a request may be traced long
        after later mutations, and must keep describing *its* graph.
        """
        if (
            self.state is not None
            and getattr(self.state.topology, "_fabric_view", None) is self.view
        ):
            return self.state.port_maps()
        if self._port_maps is None:
            fwd: dict = {}
            rev: dict = {}
            for s in range(self.num_switches):
                for nb, out in self.view.neighbors(s):
                    fwd[(s, nb)] = out
                    rev[(s, out)] = nb
            self._port_maps = (fwd, rev)
        return self._port_maps


@dataclass
class RoutingTables:
    """The routing function R: (switch, dest LID) -> output port.

    ``ports`` has shape ``(num_switches, top_lid + 1)``; unroutable entries
    hold :data:`~repro.constants.LFT_UNSET`. ``compute_seconds`` is the
    engine's path-computation time — the paper's ``PCt`` (Fig. 7).
    """

    algorithm: str
    ports: np.ndarray
    compute_seconds: float = 0.0
    num_vls: int = 1
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_switches(self) -> int:
        """Number of switch rows."""
        return self.ports.shape[0]

    @property
    def top_lid(self) -> int:
        """Largest representable LID."""
        return self.ports.shape[1] - 1

    @property
    def vl(self) -> Optional[VlAssignment]:
        """The engine's exported virtual-lane assignment, if any.

        ``None`` for single-VL engines (minhop/updn/ftree/dor); a
        :class:`~repro.sm.routing.vl.VlAssignment` for LASH/DFSSSP. The
        static analyzer keys its per-VL checks off this.
        """
        return VlAssignment.from_metadata(self.metadata)

    def vl_summary(self) -> Dict[str, Any]:
        """Lane usage summary (VLs used, pairs per VL, max layer).

        Engines that export no assignment summarize as a single data lane
        (``kind: "single"``) so Fig. 7 report rows stay uniform.
        """
        vl = self.vl
        if vl is not None:
            return vl.vl_summary()
        return {
            "kind": "single",
            "num_vls": self.num_vls,
            "max_vls": self.num_vls,
            "assignments": 0,
            "pairs_per_vl": {},
            "max_layer": max(self.num_vls - 1, 0),
        }

    def port_for(self, switch_index: int, lid: int) -> int:
        """Output port on *switch_index* for destination *lid*."""
        if lid > self.top_lid:
            return LFT_UNSET
        return int(self.ports[switch_index, lid])

    def trace_path(
        self,
        request: RoutingRequest,
        src_switch: int,
        dest_lid: int,
        *,
        max_hops: int = 256,
    ) -> List[int]:
        """Follow the routing from *src_switch* to *dest_lid*.

        Returns the list of switch indices visited (starting at
        *src_switch*). Raises :class:`UnreachableLidError` on unprogrammed
        entries and :class:`RoutingError` on loops. Used by the reference
        validity checker and the skyline analysis.
        """
        # Both lookup maps are built once per request and shared across
        # every traced path (validate() traces n * LIDs of them).
        term_at = request.terminal_map()
        _, neighbor_via_port = request.port_maps()
        dest_switch = request.switch_lids.get(dest_lid)
        path = [src_switch]
        cur = src_switch
        for _ in range(max_hops):
            if dest_switch is not None and cur == dest_switch:
                return path
            out = self.port_for(cur, dest_lid)
            if out == LFT_UNSET:
                raise UnreachableLidError(
                    f"switch {cur} has no route for LID {dest_lid}"
                )
            if out == 0 and dest_switch == cur:
                return path
            lids_here = term_at.get((cur, out))
            if lids_here is not None:
                # Delivered off the fabric; verify it is the right endpoint.
                if dest_lid in lids_here:
                    return path
                raise RoutingError(
                    f"LID {dest_lid} delivered to wrong endpoint at switch"
                    f" {cur} port {out}"
                )
            nxt = neighbor_via_port.get((cur, out))
            if nxt is None:
                raise RoutingError(
                    f"switch {cur} port {out} for LID {dest_lid} leads nowhere"
                )
            cur = nxt
            path.append(cur)
        raise RoutingError(
            f"routing loop for LID {dest_lid} starting at switch {src_switch}:"
            f" {path[:12]}..."
        )

    def validate(self, request: RoutingRequest) -> None:
        """Reference checker: every LID reachable from every switch, loop-free.

        Deliberately slow and obvious; used in tests, never in benchmarks.
        """
        all_lids = [t.lid for t in request.terminals] + list(request.switch_lids)
        for src in range(request.num_switches):
            for lid in all_lids:
                self.trace_path(request, src, lid)


class RoutingAlgorithm(abc.ABC):
    """Base class for routing engines."""

    #: Registry/display name, e.g. "minhop".
    name: str = "abstract"

    @abc.abstractmethod
    def compute(self, request: RoutingRequest) -> RoutingTables:
        """Compute the routing function for *request*."""

    def timed_compute(self, request: RoutingRequest) -> RoutingTables:
        """Run :meth:`compute`, stamping ``compute_seconds`` (PCt)."""
        t0 = time.perf_counter()
        tables = self.compute(request)
        tables.compute_seconds = time.perf_counter() - t0
        return tables

    def _empty_tables(self, request: RoutingRequest) -> np.ndarray:
        return np.full(
            (request.num_switches, request.top_lid + 1),
            LFT_UNSET,
            dtype=np.int16,
        )

    def _program_local_entries(
        self, ports: np.ndarray, request: RoutingRequest
    ) -> None:
        """Fill the entries every engine agrees on.

        Terminal LIDs exit at their attachment ports on their own leaf
        switch; a switch's own LID maps to port 0 (the management port).
        One fancy-indexed scatter per class of entry.
        """
        lids, sws, prts = request.terminal_arrays()
        ports[sws, lids] = prts
        if request.switch_lids:
            sl = np.fromiter(
                request.switch_lids, dtype=np.int64,
                count=len(request.switch_lids),
            )
            si = np.fromiter(
                request.switch_lids.values(), dtype=np.int64,
                count=len(request.switch_lids),
            )
            ports[si, sl] = 0


# bfs_distances / all_pairs_switch_distances / equal_cost_candidates /
# equal_cost_candidates_batch live in repro.fabric.graph (shared with the
# SMP transport and the routing cache) and are re-exported above.
