"""Routing engine infrastructure.

A routing engine consumes a :class:`RoutingRequest` (compact switch graph +
endpoint terminals) and produces :class:`RoutingTables`: one output port per
(switch, destination LID). The subnet manager then diffs these against the
switches' current LFTs to derive the SubnSet(LFT) SMPs to send.

The helpers here are shared across engines and are written against the CSR
arrays of :class:`~repro.fabric.topology.SwitchFabricView` so the hot loops
are NumPy-vectorized (see DESIGN.md performance notes).
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.constants import LFT_UNSET
from repro.errors import RoutingError, UnreachableLidError
from repro.fabric.topology import SwitchFabricView, Terminal, Topology

__all__ = [
    "RoutingRequest",
    "RoutingTables",
    "RoutingAlgorithm",
    "bfs_distances",
    "all_pairs_switch_distances",
    "equal_cost_candidates",
]


@dataclass
class RoutingRequest:
    """Everything a routing engine needs to compute paths.

    ``terminals`` lists every endpoint LID with its attachment switch/port;
    ``switch_lids`` maps switch self-LIDs to switch indices. ``level`` (when
    the topology was built by a fat-tree builder) maps switch index -> tree
    level for engines that exploit structure (ftree, Up*/Down* root choice).
    """

    view: SwitchFabricView
    terminals: List[Terminal]
    switch_lids: Dict[int, int]
    top_lid: int
    level: Optional[Dict[int, int]] = None
    root_indices: List[int] = field(default_factory=list)
    #: Builder parameters (e.g. mesh rows/cols) for structure-aware engines.
    hints: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_topology(
        cls,
        topology: Topology,
        *,
        built: Optional[object] = None,
    ) -> "RoutingRequest":
        """Snapshot *topology* into a request.

        *built* may be a :class:`~repro.fabric.builders.fattree.BuiltTopology`
        whose level/root metadata is translated to dense switch indices.
        """
        terminals = topology.terminals()
        switch_lids = topology.switch_lids()
        lids = [t.lid for t in terminals] + list(switch_lids)
        if not lids:
            raise RoutingError("no LIDs assigned; run LID assignment first")
        level = None
        roots: List[int] = []
        hints: Dict[str, int] = {}
        if built is not None:
            # Builder metadata may reference switches that have since been
            # removed (failures); skip those.
            level = {
                topology.node(name).index: lvl
                for name, lvl in built.level.items()
                if name in topology
            }
            roots = [sw.index for sw in built.roots if sw.index >= 0]
            hints = dict(getattr(built, "params", {}) or {})
        return cls(
            view=topology.fabric_view(),
            terminals=terminals,
            switch_lids=switch_lids,
            top_lid=max(lids),
            level=level,
            root_indices=roots,
            hints=hints,
        )

    @property
    def num_switches(self) -> int:
        """Switch count (the paper's ``n``)."""
        return self.view.num_switches

    @property
    def num_lids(self) -> int:
        """Total consumed LIDs."""
        return len(self.terminals) + len(self.switch_lids)

    def terminals_by_switch(self) -> Dict[int, List[Terminal]]:
        """Group endpoint terminals by their attachment switch index."""
        groups: Dict[int, List[Terminal]] = {}
        for t in self.terminals:
            groups.setdefault(t.switch_index, []).append(t)
        return groups


@dataclass
class RoutingTables:
    """The routing function R: (switch, dest LID) -> output port.

    ``ports`` has shape ``(num_switches, top_lid + 1)``; unroutable entries
    hold :data:`~repro.constants.LFT_UNSET`. ``compute_seconds`` is the
    engine's path-computation time — the paper's ``PCt`` (Fig. 7).
    """

    algorithm: str
    ports: np.ndarray
    compute_seconds: float = 0.0
    num_vls: int = 1
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def num_switches(self) -> int:
        """Number of switch rows."""
        return self.ports.shape[0]

    @property
    def top_lid(self) -> int:
        """Largest representable LID."""
        return self.ports.shape[1] - 1

    def port_for(self, switch_index: int, lid: int) -> int:
        """Output port on *switch_index* for destination *lid*."""
        if lid > self.top_lid:
            return LFT_UNSET
        return int(self.ports[switch_index, lid])

    def trace_path(
        self,
        request: RoutingRequest,
        src_switch: int,
        dest_lid: int,
        *,
        max_hops: int = 256,
    ) -> List[int]:
        """Follow the routing from *src_switch* to *dest_lid*.

        Returns the list of switch indices visited (starting at
        *src_switch*). Raises :class:`UnreachableLidError` on unprogrammed
        entries and :class:`RoutingError` on loops. Used by the reference
        validity checker and the skyline analysis.
        """
        # Map (switch, out_port) -> neighbour switch.
        view = request.view
        term_at = {
            (t.switch_index, t.switch_port): t.lid for t in request.terminals
        }
        dest_switch = request.switch_lids.get(dest_lid)
        path = [src_switch]
        cur = src_switch
        for _ in range(max_hops):
            if dest_switch is not None and cur == dest_switch:
                return path
            out = self.port_for(cur, dest_lid)
            if out == LFT_UNSET:
                raise UnreachableLidError(
                    f"switch {cur} has no route for LID {dest_lid}"
                )
            if out == 0 and dest_switch == cur:
                return path
            if term_at.get((cur, out)) is not None:
                # Delivered off the fabric; verify it is the right endpoint.
                lids_here = {
                    t.lid
                    for t in request.terminals
                    if (t.switch_index, t.switch_port) == (cur, out)
                }
                if dest_lid in lids_here:
                    return path
                raise RoutingError(
                    f"LID {dest_lid} delivered to wrong endpoint at switch"
                    f" {cur} port {out}"
                )
            nxt = None
            lo, hi = view.indptr[cur], view.indptr[cur + 1]
            for k in range(lo, hi):
                if int(view.out_port[k]) == out:
                    nxt = int(view.peer[k])
                    break
            if nxt is None:
                raise RoutingError(
                    f"switch {cur} port {out} for LID {dest_lid} leads nowhere"
                )
            cur = nxt
            path.append(cur)
        raise RoutingError(
            f"routing loop for LID {dest_lid} starting at switch {src_switch}:"
            f" {path[:12]}..."
        )

    def validate(self, request: RoutingRequest) -> None:
        """Reference checker: every LID reachable from every switch, loop-free.

        Deliberately slow and obvious; used in tests, never in benchmarks.
        """
        all_lids = [t.lid for t in request.terminals] + list(request.switch_lids)
        for src in range(request.num_switches):
            for lid in all_lids:
                self.trace_path(request, src, lid)


class RoutingAlgorithm(abc.ABC):
    """Base class for routing engines."""

    #: Registry/display name, e.g. "minhop".
    name: str = "abstract"

    @abc.abstractmethod
    def compute(self, request: RoutingRequest) -> RoutingTables:
        """Compute the routing function for *request*."""

    def timed_compute(self, request: RoutingRequest) -> RoutingTables:
        """Run :meth:`compute`, stamping ``compute_seconds`` (PCt)."""
        t0 = time.perf_counter()
        tables = self.compute(request)
        tables.compute_seconds = time.perf_counter() - t0
        return tables

    def _empty_tables(self, request: RoutingRequest) -> np.ndarray:
        return np.full(
            (request.num_switches, request.top_lid + 1),
            LFT_UNSET,
            dtype=np.int16,
        )

    def _program_local_entries(
        self, ports: np.ndarray, request: RoutingRequest
    ) -> None:
        """Fill the entries every engine agrees on.

        Terminal LIDs exit at their attachment ports on their own leaf
        switch; a switch's own LID maps to port 0 (the management port).
        """
        for t in request.terminals:
            ports[t.switch_index, t.lid] = t.switch_port
        for lid, sw in request.switch_lids.items():
            ports[sw, lid] = 0


def bfs_distances(view: SwitchFabricView, source: int) -> np.ndarray:
    """Hop distances from *source* to every switch (frontier-vectorized BFS)."""
    n = view.num_switches
    dist = np.full(n, -1, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    d = 0
    while frontier.size:
        starts = view.indptr[frontier]
        ends = view.indptr[frontier + 1]
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            break
        # Expand CSR slices: absolute edge indices for the whole frontier.
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        idx = np.repeat(starts, counts) + (np.arange(total) - offsets)
        nbrs = view.peer[idx]
        fresh = nbrs[dist[nbrs] < 0]
        if fresh.size == 0:
            break
        d += 1
        dist[fresh] = d
        # Deduplicate the next frontier without a sort: every switch at
        # distance d was just stamped, so select them by value.
        frontier = np.flatnonzero(dist == d)
    return dist


def all_pairs_switch_distances(view: SwitchFabricView) -> np.ndarray:
    """Dense (n x n) switch hop-distance matrix."""
    n = view.num_switches
    out = np.empty((n, n), dtype=np.int32)
    for s in range(n):
        out[s] = bfs_distances(view, s)
    return out


def equal_cost_candidates(
    view: SwitchFabricView, dist_to_dest: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-switch minimal next-hop ports toward one destination switch.

    Given the distance column ``dist_to_dest`` (hops from every switch to
    the destination), returns ``(cand_ports, cand_counts)`` where row ``s``
    of ``cand_ports`` holds the output ports of all neighbours one hop
    closer to the destination (padded with -1) and ``cand_counts[s]`` how
    many there are. The destination switch itself has zero candidates.

    Fully vectorized over the CSR edge arrays.
    """
    n = view.num_switches
    degrees = np.diff(view.indptr)
    edge_src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    good = dist_to_dest[view.peer] == dist_to_dest[edge_src] - 1
    good &= dist_to_dest[edge_src] > 0
    idx = np.nonzero(good)[0]  # ascending => grouped by source switch
    srcs = edge_src[idx]
    counts = np.bincount(srcs, minlength=n)
    maxc = int(counts.max()) if idx.size else 0
    cand = np.full((n, max(maxc, 1)), -1, dtype=np.int32)
    if idx.size:
        first = np.cumsum(counts) - counts
        pos = np.arange(idx.size) - first[srcs]
        cand[srcs, pos] = view.out_port[idx]
    return cand, counts.astype(np.int32)
