"""Virtual-lane assignment model shared by routing engines and the analyzer.

LASH and DFSSSP buy deadlock freedom on arbitrary topologies by splitting
traffic over virtual lanes: LASH assigns each *(source switch, destination
switch)* pair to a virtual layer (``pair_to_vl``), DFSSSP assigns each
*destination LID* to one (``lid_to_vl``, with switch self-LIDs pinned to
the IB management lane VL15). Until PR 8 those assignments were computed,
used to keep each layer's channel-dependency graph acyclic, and then
discarded — so the static analyzer could not tell a LASH-routed ring from
a genuinely deadlocked MinHop one.

:class:`VlAssignment` is the exported form both engines now attach to
:class:`~repro.sm.routing.base.RoutingTables` (``metadata["vl"]``,
alongside the raw ``pair_to_vl``/``lid_to_vl`` dicts older consumers
read). The static suite's per-VL checks (VLC001-VLC004, see
``repro.analysis.static.vl_checks``) consume it to rebuild each data
lane's dependency graph and prove every layer acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "MANAGEMENT_VL",
    "VlAssignment",
    "corrupt_assignment",
]

#: Virtual lane tag for switch-destined (management) traffic — IB's VL15.
#: (Re-exported by :mod:`repro.sm.routing.dfsssp` for compatibility.)
MANAGEMENT_VL = 15


@dataclass
class VlAssignment:
    """One engine's virtual-lane assignment, keyed per pair or per LID.

    ``kind`` is ``"pair"`` (LASH: ``pair_to_vl[(src_switch, dst_switch)]``)
    or ``"dest"`` (DFSSSP: ``lid_to_vl[dest_lid]``; switch self-LIDs carry
    :data:`MANAGEMENT_VL`). ``num_vls`` is the number of data lanes the
    engine actually opened; ``max_vls`` the configured ceiling. Data lanes
    are numbered ``0 .. num_vls - 1``.
    """

    kind: str
    num_vls: int
    max_vls: int
    pair_to_vl: Optional[Dict[Tuple[int, int], int]] = None
    lid_to_vl: Optional[Dict[int, int]] = None

    def __post_init__(self) -> None:
        if self.kind not in ("pair", "dest"):
            raise ValueError(f"unknown VL assignment kind {self.kind!r}")
        if self.kind == "pair" and self.pair_to_vl is None:
            raise ValueError("pair-keyed assignment needs pair_to_vl")
        if self.kind == "dest" and self.lid_to_vl is None:
            raise ValueError("dest-keyed assignment needs lid_to_vl")

    # -- deterministic iteration --------------------------------------------

    def items(self) -> List[Tuple[Any, int]]:
        """Every assignment as a sorted list — the only sanctioned iteration
        order (tools.lint DET005 flags unsorted tuple-keyed dict loops)."""
        if self.kind == "pair":
            assert self.pair_to_vl is not None
            return sorted(self.pair_to_vl.items())
        assert self.lid_to_vl is not None
        return sorted(self.lid_to_vl.items())

    def data_items(self) -> List[Tuple[Any, int]]:
        """Sorted assignments excluding the management lane."""
        return [(k, v) for k, v in self.items() if v != MANAGEMENT_VL]

    # -- summaries -----------------------------------------------------------

    def pairs_per_vl(self) -> Dict[int, int]:
        """Data lane -> number of pairs/LIDs it carries."""
        counts: Dict[int, int] = {}
        for _, v in self.data_items():
            counts[v] = counts.get(v, 0) + 1
        return dict(sorted(counts.items()))

    def max_layer(self) -> int:
        """Highest data lane actually referenced (0 when none)."""
        layers = [v for _, v in self.data_items()]
        return max(layers) if layers else 0

    def vl_summary(self) -> Dict[str, Any]:
        """JSON-friendly summary: lanes used, pairs per lane, max layer."""
        return {
            "kind": self.kind,
            "num_vls": self.num_vls,
            "max_vls": self.max_vls,
            "assignments": len(self.data_items()),
            "pairs_per_vl": {str(k): v for k, v in self.pairs_per_vl().items()},
            "max_layer": self.max_layer(),
        }

    def copy(self) -> "VlAssignment":
        """Independent deep copy (corruption helpers mutate in place)."""
        return VlAssignment(
            kind=self.kind,
            num_vls=self.num_vls,
            max_vls=self.max_vls,
            pair_to_vl=(
                dict(self.pair_to_vl) if self.pair_to_vl is not None else None
            ),
            lid_to_vl=(
                dict(self.lid_to_vl) if self.lid_to_vl is not None else None
            ),
        )

    # -- recovery from tables metadata --------------------------------------

    @classmethod
    def from_metadata(
        cls, metadata: Optional[Dict[str, Any]]
    ) -> Optional["VlAssignment"]:
        """The assignment an engine exported, or ``None`` (single-VL engine).

        Prefers the first-class ``metadata["vl"]`` object; falls back to
        reconstructing from a raw ``pair_to_vl``/``lid_to_vl`` dict so
        hand-built metadata (tests, recorded runs predating the export)
        still analyzes per-VL.
        """
        if not metadata:
            return None
        vl = metadata.get("vl")
        if isinstance(vl, cls):
            return vl
        pair = metadata.get("pair_to_vl")
        if pair is not None:
            layers = [v for v in pair.values() if v != MANAGEMENT_VL]
            num = max(layers) + 1 if layers else 1
            return cls(
                kind="pair",
                num_vls=num,
                max_vls=max(num, 8),
                pair_to_vl=pair,
            )
        dest = metadata.get("lid_to_vl")
        if dest is not None:
            layers = [v for v in dest.values() if v != MANAGEMENT_VL]
            num = max(layers) + 1 if layers else 1
            return cls(
                kind="dest",
                num_vls=num,
                max_vls=max(num, 8),
                lid_to_vl=dest,
            )
        return None


def corrupt_assignment(
    vl: VlAssignment, mode: str = "remap", *, index: int = 0
) -> str:
    """Corrupt one VL assignment in place; returns a description.

    Negative-mode fault injection for the per-VL checks (``repro
    check-fabric --corrupt-vl`` and the property tests). Modes:

    * ``"remap"`` — point one entry at a lane that does not exist
      (``num_vls + max_vls``): VLC002 must fire;
    * ``"drop"`` — delete one entry: VLC003 must fire;
    * ``"collapse"`` — squash every data assignment onto lane 0: on a
      cyclic topology the collapsed layer's CDG closes and VLC001 fires.

    ``index`` selects the victim entry from the sorted assignment list
    (wrapped modulo its length), so property tests can corrupt a random
    but reproducible path.
    """
    entries = vl.data_items()
    if not entries:
        raise ValueError("assignment has no data-VL entries to corrupt")
    backing: Dict[Any, int]
    if vl.kind == "pair":
        assert vl.pair_to_vl is not None
        backing = vl.pair_to_vl
    else:
        assert vl.lid_to_vl is not None
        backing = vl.lid_to_vl
    key, old = entries[index % len(entries)]
    if mode == "remap":
        bogus = vl.num_vls + vl.max_vls
        backing[key] = bogus
        return f"remapped {key} from VL {old} to nonexistent VL {bogus}"
    if mode == "drop":
        del backing[key]
        return f"dropped the VL assignment of {key} (was VL {old})"
    if mode == "collapse":
        for k, _ in entries:
            backing[k] = 0
        return f"collapsed {len(entries)} assignments onto VL 0"
    raise ValueError(f"unknown corruption mode {mode!r}")
