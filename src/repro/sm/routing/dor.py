"""Dimension-ordered routing (DOR) for meshes and tori.

Routes first along the X dimension, then along Y. On a *mesh* the induced
channel dependencies are acyclic (the classic XY-routing result), so DOR is
deadlock free there; on a *torus* the wraparound links reintroduce cycles —
a textbook pair of cases the deadlock-analysis tests exploit alongside the
paper's section VI-C discussion.

The engine expects the row-major switch ordering produced by
:func:`repro.fabric.builders.generic.build_mesh_2d` /
:func:`~repro.fabric.builders.generic.build_torus_2d` and takes the grid
dimensions from the builder hints carried in the routing request.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.sm.routing.base import (
    RoutingAlgorithm,
    RoutingRequest,
    RoutingTables,
)

__all__ = ["DimensionOrderedRouting"]


class DimensionOrderedRouting(RoutingAlgorithm):
    """XY routing on 2D meshes/tori built by the generic builders."""

    name = "dor"

    def __init__(self, *, torus: Optional[bool] = None) -> None:
        #: Force torus (wraparound-aware) distance; autodetected when None.
        self.torus = torus

    def compute(self, request: RoutingRequest) -> RoutingTables:
        coords, rows, cols = self._coordinates(request)
        wraps = self._has_wraparound(request, coords, rows, cols)
        torus = self.torus if self.torus is not None else wraps
        if torus and not wraps:
            raise RoutingError("torus mode requested on a mesh")

        ports = self._empty_tables(request)
        self._program_local_entries(ports, request)

        n = request.num_switches
        view = request.view
        # Dense (switch, neighbour) -> out-port lookup straight from the
        # CSR arrays; -1 marks "no cable".
        degrees = np.diff(view.indptr)
        srcs = np.repeat(np.arange(n, dtype=np.int64), degrees)
        port_matrix = np.full((n, n), -1, dtype=np.int32)
        port_matrix[srcs, view.peer] = view.out_port

        idx = np.arange(n, dtype=np.int64)
        r_all = idx // cols
        c_all = idx % cols

        # One vectorized next-hop column per destination switch; all LIDs
        # terminating there land in a single 2D scatter.
        for dest_sw, lids in request.dest_groups().items():
            dr, dc = coords[dest_sw]
            nc = self._step_vec(c_all, dc, cols, torus)
            nr = self._step_vec(r_all, dr, rows, torus)
            move_x = c_all != dc
            nxt = np.where(move_x, r_all * cols + nc, nr * cols + c_all)
            sel = idx != dest_sw
            out_col = port_matrix[idx, nxt]
            bad = sel & (out_col < 0)
            if bad.any():
                s = int(np.flatnonzero(bad)[0])
                raise RoutingError(
                    f"no cable from {coords[s]} toward"
                    f" {coords[int(nxt[s])]}; not a full mesh/torus"
                )
            lid_arr = np.asarray(lids, dtype=np.int64)
            ports[np.ix_(idx[sel], lid_arr)] = out_col[sel][:, None]
        return RoutingTables(
            algorithm=self.name,
            ports=ports,
            metadata={"rows": rows, "cols": cols, "torus": torus},
        )

    @staticmethod
    def _step(cur: int, dest: int, size: int, torus: bool) -> int:
        """Next coordinate along one dimension (shortest way on a torus)."""
        if not torus:
            return cur + 1 if dest > cur else cur - 1
        forward = (dest - cur) % size
        backward = (cur - dest) % size
        if forward <= backward:
            return (cur + 1) % size
        return (cur - 1) % size

    @staticmethod
    def _step_vec(
        cur: np.ndarray, dest: int, size: int, torus: bool
    ) -> np.ndarray:
        """Vectorized :meth:`_step` over a coordinate array."""
        if not torus:
            return np.where(dest > cur, cur + 1, cur - 1)
        forward = (dest - cur) % size
        backward = (cur - dest) % size
        return np.where(forward <= backward, (cur + 1) % size, (cur - 1) % size)

    def _coordinates(
        self, request: RoutingRequest
    ) -> Tuple[Dict[int, Tuple[int, int]], int, int]:
        """Derive coordinates from the builders' row-major index order.

        The mesh/torus builders register switches row by row, so dense
        index = row * cols + col; the dimensions come from the builder's
        hints carried in the request.
        """
        n = request.num_switches
        rows = int(request.hints.get("rows", 0))
        cols = int(request.hints.get("cols", 0))
        if rows <= 0 or cols <= 0:
            raise RoutingError(
                "dor needs rows/cols hints; build the topology with"
                " build_mesh_2d/build_torus_2d and pass built= to the request"
            )
        if rows * cols != n:
            raise RoutingError(
                f"hints say {rows}x{cols} but the fabric has {n} switches"
            )
        coords = {idx: divmod(idx, cols) for idx in range(n)}
        return coords, rows, cols

    @staticmethod
    def _has_wraparound(
        request: RoutingRequest,
        coords: Dict[int, Tuple[int, int]],
        rows: int,
        cols: int,
    ) -> bool:
        for s in range(request.num_switches):
            r, c = coords[s]
            for nb, _ in request.view.neighbors(s):
                nr, nc = coords[nb]
                if abs(nr - r) > 1 or abs(nc - c) > 1:
                    return True
        return False
