"""Up*/Down* routing.

Classic deadlock-free routing for irregular fabrics: switches are ranked by
BFS from a root, every cable is oriented (its end closer to the root is the
"up" end), and a legal path makes zero or more *up* moves followed by zero
or more *down* moves — once a packet has gone down it may never go up again
(paper section VI-C). The resulting channel dependency graph is acyclic, so
the routing is deadlock free by construction; the deadlock tests use this
engine as the known-good baseline.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.sm.routing.base import (
    RoutingAlgorithm,
    RoutingRequest,
    RoutingTables,
)

__all__ = ["UpDownRouting"]

_INF = 1 << 30


class UpDownRouting(RoutingAlgorithm):
    """BFS-ranked Up*/Down* with destination-indexed balancing."""

    name = "updn"

    def __init__(self, root_index: Optional[int] = None) -> None:
        self.root_index = root_index

    def compute(self, request: RoutingRequest) -> RoutingTables:
        view = request.view
        n = request.num_switches
        root = self._pick_root(request)
        # The BFS ranking comes from the shared distance cache when one is
        # attached (zero sweeps on a warm cache).
        rank = request.bfs_row(root)
        if (rank < 0).any():
            raise RoutingError("switch graph is disconnected")

        ports = self._empty_tables(request)
        self._program_local_entries(ports, request)

        # Orientation key: (rank, index); the smaller key is the up end.
        key = rank.astype(np.int64) * n + np.arange(n)

        # Destination switch -> LIDs terminating there.
        dest_groups = request.dest_groups()

        rows = np.arange(n)
        order_up = np.argsort(key)  # root-most first: the up-move DAG order
        for dest_sw, lids in dest_groups.items():
            cand, counts = self._legal_candidates(view, key, order_up, dest_sw)
            # Pad the per-switch candidate lists into a matrix so all of
            # this destination's LIDs land in one fancy-indexed scatter.
            maxc = int(counts.max()) if n else 0
            cand_mat = np.full((n, max(maxc, 1)), -1, dtype=np.int32)
            for s, lst in enumerate(cand):
                if lst:
                    cand_mat[s, : len(lst)] = lst
            mask = counts > 0
            sel_rows = rows[mask]
            sel_counts = counts[mask]
            lid_arr = np.asarray(lids, dtype=np.int64)
            sel = lid_arr[None, :] % sel_counts[:, None]
            ports[np.ix_(sel_rows, lid_arr)] = cand_mat[sel_rows[:, None], sel]

        return RoutingTables(
            algorithm=self.name,
            ports=ports,
            metadata={"rank": rank, "root": root},
        )

    def _pick_root(self, request: RoutingRequest) -> int:
        if self.root_index is not None:
            if not 0 <= self.root_index < request.num_switches:
                raise RoutingError(f"bad root index {self.root_index}")
            return self.root_index
        if request.root_indices:
            return request.root_indices[0]
        return 0

    def _legal_candidates(
        self,
        view,
        key: np.ndarray,
        order_up: np.ndarray,
        dest: int,
    ) -> Tuple[List[List[int]], np.ndarray]:
        """Destination-based legal next hops toward *dest* for every switch.

        Because an LFT cannot encode "I already went down", per-switch
        choices must be *globally consistent*: a switch may only send a
        packet down into a neighbour that itself keeps going down. The
        construction therefore partitions the switches:

        * the **down region** — switches with a down-only path to *dest*
          (``d_down < inf``). Members always route down along shortest
          down-only paths, so any packet entering the region descends to
          the destination;
        * everyone else routes **up**, minimizing the distance to the
          region over the acyclic up-move DAG. Up moves strictly approach
          the root, which always belongs to the region, so entry is
          guaranteed.

        The result is up*/down*-legal end to end (the property the
        deadlock tests verify), at the cost of occasionally longer paths
        than the phase-aware optimum — the standard price of LFT-encoded
        Up*/Down*.
        """
        n = view.num_switches
        d_down = np.full(n, _INF, dtype=np.int64)
        d_down[dest] = 0
        # Down-only distances: reverse BFS from dest along up-moves (a down
        # move s->x means key[x] > key[s], so its reverse is an up move).
        q = deque([dest])
        while q:
            cur = q.popleft()
            lo, hi = view.indptr[cur], view.indptr[cur + 1]
            for k in range(lo, hi):
                nb = int(view.peer[k])
                # nb -> cur must be a down move: key[cur] > key[nb].
                if key[cur] > key[nb] and d_down[nb] > d_down[cur] + 1:
                    d_down[nb] = d_down[cur] + 1
                    q.append(nb)

        # Up-phase distances for non-region switches: steps to reach the
        # down region going only up, plus the descent. Processed root-most
        # first so up-neighbours are final before their dependants.
        d_up = np.full(n, _INF, dtype=np.int64)
        for s in order_up:
            if d_down[s] < _INF:
                d_up[s] = d_down[s]  # already in the region
                continue
            lo, hi = view.indptr[s], view.indptr[s + 1]
            best = _INF
            for k in range(lo, hi):
                nb = int(view.peer[k])
                if key[nb] < key[s] and d_up[nb] < _INF:
                    best = min(best, d_up[nb] + 1)
            d_up[s] = best

        cand: List[List[int]] = [[] for _ in range(n)]
        counts = np.zeros(n, dtype=np.int64)
        for s in range(n):
            if s == dest:
                continue
            lo, hi = view.indptr[s], view.indptr[s + 1]
            in_region = d_down[s] < _INF
            for k in range(lo, hi):
                nb = int(view.peer[k])
                p = int(view.out_port[k])
                if in_region:
                    # Region members only ever go down, along shortest
                    # down-only paths (which stay inside the region).
                    if key[nb] > key[s] and d_down[nb] + 1 == d_down[s]:
                        cand[s].append(p)
                else:
                    # Everyone else goes up toward the region.
                    if key[nb] < key[s] and d_up[nb] + 1 == d_up[s]:
                        cand[s].append(p)
            if not cand[s]:
                raise RoutingError(
                    f"no legal Up*/Down* next hop at switch {s} toward {dest}"
                )
            cand[s].sort()
            counts[s] = len(cand[s])
        return cand, counts
