"""DFSSSP routing (deadlock-free single-source shortest path).

Re-implementation of the engine of Domke, Hoefler and Nagel ("Deadlock-free
oblivious routing for arbitrary topologies", IPDPS 2011 — the paper's
reference [28]), the topology-agnostic algorithm timed in Fig. 7:

1. **SSSP phase** — destinations are processed one by one; for each, a
   Dijkstra run over the *weighted* switch graph yields the shortest-path
   in-tree, and the weight of every tree edge is increased by the number of
   sources whose path crosses it, so later destinations avoid loaded links
   (global balancing).
2. **Layering phase** — destination by destination, the channel dependencies
   induced by its in-tree are added to the current virtual layer's channel
   dependency graph; if a cycle would appear, the destination is moved to
   the next layer (escalating VL use instead of lengthening paths).

Per-destination Dijkstra plus incremental cycle checking is what makes
DFSSSP markedly slower than MinHop while staying far below LASH — the
ordering Fig. 7 shows.

Two implementations share this class. The default (``vectorized=True``)
exploits that the metric is lexicographic (hop count first): every
shortest-path tree is level-structured by the destination's BFS
distances, so the Dijkstra relaxation collapses into one edge-array sweep
per hop level with an ``np.lexsort`` winner selection that reproduces the
reference heap's ``(hops, dist, node)`` pop order bit-for-bit. Subtree
sizes, weight updates and CDG ingestion run on the same arrays
(:class:`~repro.sm.routing.cdg_array.ArrayCdg`). ``vectorized=False`` is
the original heapq implementation; the two produce byte-identical tables,
VL assignments and edge weights (tests/sm/test_vectorized_identity.py).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.fabric.graph import edge_sources
from repro.sm.deadlock import ChannelDependencyGraph
from repro.sm.routing.base import (
    RoutingAlgorithm,
    RoutingRequest,
    RoutingTables,
)
from repro.sm.routing.cdg_array import ArrayCdg, channel_ids, channel_table
from repro.sm.routing.vl import MANAGEMENT_VL, VlAssignment

__all__ = ["DFSSSPRouting", "MANAGEMENT_VL"]


class DFSSSPRouting(RoutingAlgorithm):
    """Weighted-SSSP routing with virtual-layer deadlock avoidance."""

    name = "dfsssp"

    def __init__(self, max_vls: int = 8, *, vectorized: bool = True) -> None:
        if max_vls < 1:
            raise RoutingError("need at least one virtual lane")
        self.max_vls = max_vls
        self.vectorized = vectorized

    def compute(self, request: RoutingRequest) -> RoutingTables:
        view = request.view
        n = request.num_switches
        ports = self._empty_tables(request)
        self._program_local_entries(ports, request)

        # Edge weights, aligned with the CSR edge arrays. Symmetric updates
        # use the reverse-edge index map.
        weights = np.ones(len(view.peer), dtype=np.float64)
        rev = _reverse_edge_index(view)

        # Destination order: every consumed LID, ascending (OpenSM order).
        # Switch self-LIDs carry only management traffic, which IB segregates
        # onto the dedicated management lane (VL15); like the production
        # implementation we keep data-VL layering to endpoint destinations
        # and tag switch LIDs with the management lane.
        terminal_lids = {t.lid for t in request.terminals}
        dests: List[Tuple[int, int]] = []  # (lid, dest switch)
        for t in request.terminals:
            dests.append((t.lid, t.switch_index))
        for lid, sw in request.switch_lids.items():
            dests.append((lid, sw))
        dests.sort()

        lid_to_vl: Dict[int, int] = {}
        num_vls_used = 1

        if self.vectorized:
            esrc = edge_sources(view)
            table = channel_table(view)
            cid_edge = channel_ids(table, esrc, view.peer, n)
            layers_v = [ArrayCdg(len(table)) for _ in range(self.max_vls)]
            sweep = _LevelSweep(request, esrc)
            for lid, dest_sw in dests:
                parent_edge = sweep.tree(weights, dest_sw)
                self._apply_tree(
                    request, view, ports, lid, dest_sw, parent_edge
                )
                sweep.update_weights(weights, rev, dest_sw, parent_edge)
                if lid in terminal_lids:
                    vl = self._assign_layer_vec(
                        layers_v, esrc, cid_edge, rev, parent_edge
                    )
                    lid_to_vl[lid] = vl
                    num_vls_used = max(num_vls_used, vl + 1)
                else:
                    lid_to_vl[lid] = MANAGEMENT_VL
        else:
            layers = [ChannelDependencyGraph() for _ in range(self.max_vls)]
            for lid, dest_sw in dests:
                parent_edge = self._dijkstra_tree(view, weights, dest_sw)
                self._apply_tree(
                    request, view, ports, lid, dest_sw, parent_edge
                )
                self._update_weights(view, weights, rev, dest_sw, parent_edge)
                if lid in terminal_lids:
                    vl = self._assign_layer(view, layers, dest_sw, parent_edge)
                    lid_to_vl[lid] = vl
                    num_vls_used = max(num_vls_used, vl + 1)
                else:
                    lid_to_vl[lid] = MANAGEMENT_VL

        return RoutingTables(
            algorithm=self.name,
            ports=ports,
            num_vls=num_vls_used,
            metadata={
                "lid_to_vl": lid_to_vl,
                "edge_weights": weights,
                "vl": VlAssignment(
                    kind="dest",
                    num_vls=num_vls_used,
                    max_vls=self.max_vls,
                    lid_to_vl=lid_to_vl,
                ),
            },
        )

    # -- phase 1: weighted SSSP --------------------------------------------

    @staticmethod
    def _dijkstra_tree(
        view, weights: np.ndarray, dest: int
    ) -> np.ndarray:
        """Shortest-path in-tree toward *dest* (reference implementation).

        Returns ``parent_edge``: for each switch, the CSR index of the edge
        (next hop -> switch) on its shortest path to *dest* (-1 at *dest*).
        Run *from* the destination over the reversed graph — identical
        because the graph is symmetric.

        The metric is lexicographic (hop count, accumulated weight): paths
        stay *minimal in hops* and the balancing weights only break ties
        among minimal paths. This is what keeps per-destination trees
        up/down-shaped on fat-trees (few virtual layers) while still
        spreading load — longer detours would both lengthen paths and
        manufacture avoidable dependency cycles.
        """
        n = view.num_switches
        hops = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        dist = np.full(n, np.inf)
        parent_edge = np.full(n, -1, dtype=np.int64)
        hops[dest] = 0
        dist[dest] = 0.0
        heap: List[Tuple[int, float, int]] = [(0, 0.0, dest)]
        done = np.zeros(n, dtype=bool)
        while heap:
            h, d, cur = heapq.heappop(heap)
            if done[cur]:
                continue
            done[cur] = True
            lo, hi = view.indptr[cur], view.indptr[cur + 1]
            for k in range(lo, hi):
                nb = int(view.peer[k])
                if done[nb]:
                    continue
                # Relax the edge nb -> cur (the forward edge out of nb).
                nh, nd = h + 1, d + weights[k]
                if nh < hops[nb] or (nh == hops[nb] and nd < dist[nb]):
                    hops[nb] = nh
                    dist[nb] = nd
                    parent_edge[nb] = k
                    heapq.heappush(heap, (nh, nd, nb))
        if (~done).any():
            raise RoutingError("switch graph is disconnected")
        return parent_edge

    def _apply_tree(
        self,
        request: RoutingRequest,
        view,
        ports: np.ndarray,
        lid: int,
        dest_sw: int,
        parent_edge: np.ndarray,
    ) -> None:
        """Program next hops for *lid* from the in-tree."""
        # parent_edge stores the cur->s edge discovered during the reverse
        # Dijkstra; the out port at s for the forward hop is that edge's
        # in_port (the port on s).
        rows = np.flatnonzero(parent_edge >= 0)
        ports[rows, lid] = view.in_port[parent_edge[rows]]

    @staticmethod
    def _update_weights(
        view, weights: np.ndarray, rev: np.ndarray, dest_sw: int,
        parent_edge: np.ndarray,
    ) -> None:
        """Add each tree edge's traffic share (its subtree size) to both
        directions of the cable."""
        n = view.num_switches
        # Subtree sizes via reverse topological accumulation: children count
        # into parents. Order switches by decreasing distance is implicit in
        # repeated passes; a simple child->parent accumulation works because
        # parent pointers form a DAG toward dest.
        size = np.ones(n, dtype=np.int64)
        order = _tree_order(view, parent_edge, dest_sw)
        for s in order:  # leaves of the tree first
            k = parent_edge[s]
            if k < 0:
                continue
            parent = int(view.peer[rev[k]])  # forward edge s->parent
            size[parent] += size[s]
            weights[rev[k]] += size[s]
            weights[k] += size[s]

    # -- phase 2: virtual-layer assignment ----------------------------------

    def _assign_layer(
        self,
        view,
        layers: List[ChannelDependencyGraph],
        dest_sw: int,
        parent_edge: np.ndarray,
    ) -> int:
        """First layer that stays acyclic with this destination's deps."""
        deps = self._tree_dependencies(view, parent_edge)
        for vl, cdg in enumerate(layers):
            if cdg.try_add_dependencies(deps):
                return vl
        raise RoutingError(
            f"DFSSSP exceeded {self.max_vls} virtual lanes; fabric too twisted"
        )

    def _assign_layer_vec(
        self,
        layers: List[ArrayCdg],
        esrc: np.ndarray,
        cid_edge: np.ndarray,
        rev: np.ndarray,
        parent_edge: np.ndarray,
    ) -> int:
        """Array form of :meth:`_assign_layer` over the same dependency set.

        The forward hop out of switch ``s`` is the reverse of
        ``parent_edge[s]``; consecutive hops ``s -> b -> c`` yield the
        channel dependency ``cid(s,b) -> cid(b,c)``.
        """
        has = parent_edge >= 0
        nxt = np.full(parent_edge.shape[0], -1, dtype=np.int64)
        nxt[has] = esrc[parent_edge[has]]
        s_nodes = np.flatnonzero(has)
        b_nodes = nxt[s_nodes]
        chained = nxt[b_nodes] >= 0
        s_nodes = s_nodes[chained]
        b_nodes = b_nodes[chained]
        d1 = cid_edge[rev[parent_edge[s_nodes]]]
        d2 = cid_edge[rev[parent_edge[b_nodes]]]
        for vl, cdg in enumerate(layers):
            if cdg.try_add(d1, d2):
                return vl
        raise RoutingError(
            f"DFSSSP exceeded {self.max_vls} virtual lanes; fabric too twisted"
        )

    @staticmethod
    def _tree_dependencies(
        view, parent_edge: np.ndarray
    ) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
        """Channel dependencies ((a,b) -> (b,c)) induced by the in-tree.

        ``parent_edge[s]`` encodes the edge parent->s discovered by the
        reverse Dijkstra, so the forward next hop of ``s`` is that edge's
        CSR source switch.
        """
        n = view.num_switches
        nxt = np.full(n, -1, dtype=np.int64)
        for s in range(n):
            k = parent_edge[s]
            if k >= 0:
                nxt[s] = _edge_source(view, k)
        out: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
        for s in range(n):
            b = int(nxt[s])
            if b < 0:
                continue
            c = int(nxt[b])
            if c < 0:
                continue
            out.append(((s, b), (b, c)))
        return out


class _LevelSweep:
    """Level-synchronous shortest-path trees for one compute() run.

    The lexicographic (hops, weight) metric means a destination's tree is
    layered by its unweighted BFS distances: every tree edge goes from hop
    level ``h-1`` to ``h``, and all level-``h-1`` labels are final before
    any level-``h`` switch is settled. One pass per level then selects, for
    every level-``h`` switch, the candidate edge minimizing
    ``(dist, parent dist, edge index)`` — exactly the order the reference
    heap pops and relaxes, so the chosen ``parent_edge`` is bit-identical.

    Distances are sums of edge weights, weights start at one and only ever
    receive integer subtree-size increments, so every distance is an exact
    integer in float64. The sweep therefore runs on an int64 weight mirror
    and selects winners with one segmented ``np.minimum.reduceat`` over
    packed ``(dist, parent dist)`` keys — no per-level sort at all. (If a
    level's packed key would overflow int64, an equivalent stable-lexsort
    winner selection takes over; distances that large cannot occur on
    fabrics this code targets, but correctness never depends on that.)

    Hop rows are cached per destination switch (several LIDs share one),
    and the per-level edge grouping is reused while consecutive
    destinations stay on the same switch — LID assignment groups them.
    """

    def __init__(self, request: RoutingRequest, esrc: np.ndarray) -> None:
        self.request = request
        self.view = request.view
        self.esrc = esrc
        self._rows: Dict[int, np.ndarray] = {}
        self._part_sw = -1
        self._part: Optional[Tuple] = None
        #: Integer mirror of the float64 weights (kept in lock-step by
        #: :meth:`update_weights`).
        self.weights_int = np.ones(len(request.view.peer), dtype=np.int64)

    def _row(self, dest_sw: int) -> np.ndarray:
        row = self._rows.get(dest_sw)
        if row is None:
            row = self.request.bfs_row(dest_sw)
            if (row < 0).any():
                raise RoutingError("switch graph is disconnected")
            self._rows[dest_sw] = row
        return row

    def _partition(self, dest_sw: int) -> Tuple:
        """Tree edges of one destination, grouped for the level sweep.

        Edges are ordered by (child level, child switch, CSR index); groups
        are the children. Returns ``(gseg, gsrc, gw_slot, gstarts,
        gchildren, gidx, estart, gstart_of_level, node_order, nbounds,
        max_h)`` — see :meth:`tree` for how each piece is consumed.
        """
        if self._part_sw == dest_sw and self._part is not None:
            return self._part
        view = self.view
        n = np.int64(view.num_switches)
        hops = self._row(dest_sw).astype(np.int64)
        tree_mask = hops[view.peer] == hops[self.esrc] + 1
        tedges = np.flatnonzero(tree_mask)
        child = view.peer[tedges].astype(np.int64)
        # One composite stable sort: (level, child) major, CSR order kept
        # within each child's group.
        comp = hops[child] * n + child
        order = np.argsort(comp, kind="stable")
        gseg = tedges[order]
        comp_sorted = comp[order]
        gcomp, gstarts = np.unique(comp_sorted, return_index=True)
        gchildren = gcomp % n
        counts = np.diff(np.append(gstarts, comp_sorted.size))
        gidx = np.repeat(np.arange(gcomp.size, dtype=np.int64), counts)
        max_h = int(hops.max())
        # Element/group ranges per level h: levels are contiguous because
        # the sort is level-major.
        estart = np.searchsorted(comp_sorted, np.arange(1, max_h + 2) * n)
        gstart_of_level = np.searchsorted(gcomp, np.arange(1, max_h + 2) * n)
        gsrc = self.esrc[gseg]
        node_order = np.argsort(hops, kind="stable")
        nbounds = np.searchsorted(hops[node_order], np.arange(max_h + 2))
        self._part = (
            gseg, gsrc, gstarts, gchildren, gidx,
            estart, gstart_of_level, node_order, nbounds, max_h,
        )
        self._part_sw = dest_sw
        return self._part

    def tree(self, weights: np.ndarray, dest_sw: int) -> np.ndarray:
        """``parent_edge`` of the weighted shortest-path in-tree."""
        view = self.view
        n = view.num_switches
        (
            gseg, gsrc, gstarts, gchildren, gidx,
            estart, gstart_of_level, _, _, max_h,
        ) = self._partition(dest_sw)
        w_int = self.weights_int
        dist = np.zeros(n, dtype=np.int64)
        parent_edge = np.full(n, -1, dtype=np.int64)
        e_lo = 0
        g_lo = 0
        for h in range(1, max_h + 1):
            # estart[h-1] is the first edge into level h, estart[h] the
            # first into level h+1 — but levels with no edges collapse, so
            # track the low bound incrementally.
            e_hi = int(estart[h])
            g_hi = int(gstart_of_level[h])
            if e_hi == e_lo:
                e_lo, g_lo = e_hi, g_hi
                continue
            seg = gseg[e_lo:e_hi]
            pd = dist[gsrc[e_lo:e_hi]]
            nd = pd + w_int[seg]
            starts = gstarts[g_lo:g_hi] - e_lo
            children = gchildren[g_lo:g_hi]
            grp = gidx[e_lo:e_hi] - g_lo
            # Winner per child = lexicographic min (dist, parent dist,
            # CSR edge). Pack (nd, pd) into one int64 key; equal keys fall
            # back to the first (lowest CSR index) candidate because the
            # grouping preserves CSR order.
            span = int(pd.max()) + 1
            shift = span.bit_length()
            if int(nd.max()) >> (63 - shift) == 0:
                key = (nd << shift) | pd
                best = np.minimum.reduceat(key, starts)
                pos = np.arange(key.size, dtype=np.int64)
                first = np.minimum.reduceat(
                    np.where(key == best[grp], pos, key.size), starts
                )
            else:  # pragma: no cover - distances beyond 2**63 / span
                order = np.lexsort((pd, nd))
                order = order[np.argsort(grp[order], kind="stable")]
                first = order[np.searchsorted(grp[order], np.arange(len(starts)))]
            dist[children] = nd[first]
            parent_edge[children] = seg[first]
            e_lo, g_lo = e_hi, g_hi
        return parent_edge

    def update_weights(
        self,
        weights: np.ndarray,
        rev: np.ndarray,
        dest_sw: int,
        parent_edge: np.ndarray,
    ) -> None:
        """Array form of :meth:`DFSSSPRouting._update_weights`.

        Levels are processed deepest-first, so every subtree size is final
        when added to its parent and to both cable directions; the sums are
        integers in float64, making the result independent of the in-level
        accumulation order and byte-identical to the reference.
        """
        n = self.view.num_switches
        part = self._partition(dest_sw)
        node_order, nbounds, max_h = part[7], part[8], part[9]
        size = np.ones(n, dtype=np.int64)
        for h in range(max_h, 0, -1):
            nodes = node_order[nbounds[h] : nbounds[h + 1]]
            ke = parent_edge[nodes]
            live = ke >= 0
            if not live.all():
                nodes = nodes[live]
                ke = ke[live]
            if ke.size == 0:
                continue
            contrib = size[nodes]
            np.add.at(size, self.esrc[ke], contrib)
            kr = rev[ke]
            self.weights_int[ke] += contrib
            self.weights_int[kr] += contrib
            fcontrib = contrib.astype(np.float64)
            weights[ke] += fcontrib
            weights[kr] += fcontrib
        # Levels partition the switches, so every tree edge was visited
        # exactly once — same single symmetric increment as the reference.


def _edge_source(view, edge_idx: int) -> int:
    """The source switch of CSR edge *edge_idx* (binary search on indptr)."""
    return int(np.searchsorted(view.indptr, edge_idx, side="right") - 1)


def _reverse_edge_index(view) -> np.ndarray:
    """For each CSR edge a->b, the index of the matching b->a edge.

    Each directed edge is keyed by (src, out_port); its reverse carries the
    key (peer, in_port). One argsort + searchsorted resolves every edge at
    once.
    """
    esrc = edge_sources(view)
    out_port = view.out_port.astype(np.int64)
    in_port = view.in_port.astype(np.int64)
    port_span = np.int64(max(int(out_port.max()), int(in_port.max())) + 1) if len(
        view.peer
    ) else np.int64(1)
    fwd_key = esrc * port_span + out_port
    rev_key = view.peer.astype(np.int64) * port_span + in_port
    order = np.argsort(fwd_key)
    return order[np.searchsorted(fwd_key[order], rev_key)]


def _tree_order(view, parent_edge: np.ndarray, dest: int) -> List[int]:
    """Switches ordered children-before-parents along the in-tree."""
    n = view.num_switches
    children: List[List[int]] = [[] for _ in range(n)]
    for s in range(n):
        k = parent_edge[s]
        if k >= 0:
            children[_edge_source(view, k)].append(s)
    # children[] is keyed by... the edge source is the *parent* (edge
    # parent->s). Post-order from dest gives parents last; reverse for
    # children-first.
    order: List[int] = []
    stack = [dest]
    while stack:
        cur = stack.pop()
        order.append(cur)
        stack.extend(children[cur])
    order.reverse()
    return order
