"""DFSSSP routing (deadlock-free single-source shortest path).

Re-implementation of the engine of Domke, Hoefler and Nagel ("Deadlock-free
oblivious routing for arbitrary topologies", IPDPS 2011 — the paper's
reference [28]), the topology-agnostic algorithm timed in Fig. 7:

1. **SSSP phase** — destinations are processed one by one; for each, a
   Dijkstra run over the *weighted* switch graph yields the shortest-path
   in-tree, and the weight of every tree edge is increased by the number of
   sources whose path crosses it, so later destinations avoid loaded links
   (global balancing).
2. **Layering phase** — destination by destination, the channel dependencies
   induced by its in-tree are added to the current virtual layer's channel
   dependency graph; if a cycle would appear, the destination is moved to
   the next layer (escalating VL use instead of lengthening paths).

Per-destination Dijkstra plus incremental cycle checking is what makes
DFSSSP markedly slower than MinHop while staying far below LASH — the
ordering Fig. 7 shows.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.sm.deadlock import ChannelDependencyGraph
from repro.sm.routing.base import (
    RoutingAlgorithm,
    RoutingRequest,
    RoutingTables,
)

__all__ = ["DFSSSPRouting", "MANAGEMENT_VL"]

#: Virtual lane tag for switch-destined (management) traffic — IB's VL15.
MANAGEMENT_VL = 15


class DFSSSPRouting(RoutingAlgorithm):
    """Weighted-SSSP routing with virtual-layer deadlock avoidance."""

    name = "dfsssp"

    def __init__(self, max_vls: int = 8) -> None:
        if max_vls < 1:
            raise RoutingError("need at least one virtual lane")
        self.max_vls = max_vls

    def compute(self, request: RoutingRequest) -> RoutingTables:
        view = request.view
        n = request.num_switches
        ports = self._empty_tables(request)
        self._program_local_entries(ports, request)

        # Edge weights, aligned with the CSR edge arrays. Symmetric updates
        # use the reverse-edge index map.
        weights = np.ones(len(view.peer), dtype=np.float64)
        rev = _reverse_edge_index(view)

        # Destination order: every consumed LID, ascending (OpenSM order).
        # Switch self-LIDs carry only management traffic, which IB segregates
        # onto the dedicated management lane (VL15); like the production
        # implementation we keep data-VL layering to endpoint destinations
        # and tag switch LIDs with the management lane.
        terminal_lids = {t.lid for t in request.terminals}
        dests: List[Tuple[int, int]] = []  # (lid, dest switch)
        for t in request.terminals:
            dests.append((t.lid, t.switch_index))
        for lid, sw in request.switch_lids.items():
            dests.append((lid, sw))
        dests.sort()

        lid_to_vl: Dict[int, int] = {}
        layers = [ChannelDependencyGraph() for _ in range(self.max_vls)]
        num_vls_used = 1

        for lid, dest_sw in dests:
            parent_edge = self._dijkstra_tree(view, weights, dest_sw)
            self._apply_tree(request, view, ports, lid, dest_sw, parent_edge)
            self._update_weights(view, weights, rev, dest_sw, parent_edge)
            if lid in terminal_lids:
                vl = self._assign_layer(view, layers, dest_sw, parent_edge)
                lid_to_vl[lid] = vl
                num_vls_used = max(num_vls_used, vl + 1)
            else:
                lid_to_vl[lid] = MANAGEMENT_VL

        return RoutingTables(
            algorithm=self.name,
            ports=ports,
            num_vls=num_vls_used,
            metadata={"lid_to_vl": lid_to_vl, "edge_weights": weights},
        )

    # -- phase 1: weighted SSSP --------------------------------------------

    @staticmethod
    def _dijkstra_tree(
        view, weights: np.ndarray, dest: int
    ) -> np.ndarray:
        """Shortest-path in-tree toward *dest*.

        Returns ``parent_edge``: for each switch, the CSR index of the edge
        (next hop -> switch) on its shortest path to *dest* (-1 at *dest*).
        Run *from* the destination over the reversed graph — identical
        because the graph is symmetric.

        The metric is lexicographic (hop count, accumulated weight): paths
        stay *minimal in hops* and the balancing weights only break ties
        among minimal paths. This is what keeps per-destination trees
        up/down-shaped on fat-trees (few virtual layers) while still
        spreading load — longer detours would both lengthen paths and
        manufacture avoidable dependency cycles.
        """
        n = view.num_switches
        hops = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        dist = np.full(n, np.inf)
        parent_edge = np.full(n, -1, dtype=np.int64)
        hops[dest] = 0
        dist[dest] = 0.0
        heap: List[Tuple[int, float, int]] = [(0, 0.0, dest)]
        done = np.zeros(n, dtype=bool)
        while heap:
            h, d, cur = heapq.heappop(heap)
            if done[cur]:
                continue
            done[cur] = True
            lo, hi = view.indptr[cur], view.indptr[cur + 1]
            for k in range(lo, hi):
                nb = int(view.peer[k])
                if done[nb]:
                    continue
                # Relax the edge nb -> cur (the forward edge out of nb).
                nh, nd = h + 1, d + weights[k]
                if nh < hops[nb] or (nh == hops[nb] and nd < dist[nb]):
                    hops[nb] = nh
                    dist[nb] = nd
                    parent_edge[nb] = k
                    heapq.heappush(heap, (nh, nd, nb))
        if (~done).any():
            raise RoutingError("switch graph is disconnected")
        return parent_edge

    def _apply_tree(
        self,
        request: RoutingRequest,
        view,
        ports: np.ndarray,
        lid: int,
        dest_sw: int,
        parent_edge: np.ndarray,
    ) -> None:
        """Program next hops for *lid* from the in-tree."""
        n = view.num_switches
        for s in range(n):
            k = parent_edge[s]
            if k < 0:
                continue  # the destination switch itself
            # parent_edge stores the cur->s edge discovered during the
            # reverse Dijkstra; the out port at s for the forward hop is
            # that edge's in_port (the port on s).
            ports[s, lid] = view.in_port[k]

    @staticmethod
    def _update_weights(
        view, weights: np.ndarray, rev: np.ndarray, dest_sw: int,
        parent_edge: np.ndarray,
    ) -> None:
        """Add each tree edge's traffic share (its subtree size) to both
        directions of the cable."""
        n = view.num_switches
        # Subtree sizes via reverse topological accumulation: children count
        # into parents. Order switches by decreasing distance is implicit in
        # repeated passes; a simple child->parent accumulation works because
        # parent pointers form a DAG toward dest.
        size = np.ones(n, dtype=np.int64)
        order = _tree_order(view, parent_edge, dest_sw)
        for s in order:  # leaves of the tree first
            k = parent_edge[s]
            if k < 0:
                continue
            parent = int(view.peer[rev[k]])  # forward edge s->parent
            size[parent] += size[s]
            weights[rev[k]] += size[s]
            weights[k] += size[s]

    # -- phase 2: virtual-layer assignment ----------------------------------

    def _assign_layer(
        self,
        view,
        layers: List[ChannelDependencyGraph],
        dest_sw: int,
        parent_edge: np.ndarray,
    ) -> int:
        """First layer that stays acyclic with this destination's deps."""
        deps = self._tree_dependencies(view, parent_edge)
        for vl, cdg in enumerate(layers):
            if cdg.try_add_dependencies(deps):
                return vl
        raise RoutingError(
            f"DFSSSP exceeded {self.max_vls} virtual lanes; fabric too twisted"
        )

    @staticmethod
    def _tree_dependencies(
        view, parent_edge: np.ndarray
    ) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
        """Channel dependencies ((a,b) -> (b,c)) induced by the in-tree.

        ``parent_edge[s]`` encodes the edge parent->s discovered by the
        reverse Dijkstra, so the forward next hop of ``s`` is that edge's
        CSR source switch.
        """
        n = view.num_switches
        nxt = np.full(n, -1, dtype=np.int64)
        for s in range(n):
            k = parent_edge[s]
            if k >= 0:
                nxt[s] = _edge_source(view, k)
        out: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
        for s in range(n):
            b = int(nxt[s])
            if b < 0:
                continue
            c = int(nxt[b])
            if c < 0:
                continue
            out.append(((s, b), (b, c)))
        return out


def _edge_source(view, edge_idx: int) -> int:
    """The source switch of CSR edge *edge_idx* (binary search on indptr)."""
    return int(np.searchsorted(view.indptr, edge_idx, side="right") - 1)


def _reverse_edge_index(view) -> np.ndarray:
    """For each CSR edge a->b, the index of the matching b->a edge."""
    n = view.num_switches
    rev = np.full(len(view.peer), -1, dtype=np.int64)
    # Key each directed edge by (src, out_port); its reverse is
    # (peer, in_port).
    lookup: Dict[Tuple[int, int], int] = {}
    degrees = np.diff(view.indptr)
    edge_src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    for k in range(len(view.peer)):
        lookup[(int(edge_src[k]), int(view.out_port[k]))] = k
    for k in range(len(view.peer)):
        rev[k] = lookup[(int(view.peer[k]), int(view.in_port[k]))]
    return rev


def _tree_order(view, parent_edge: np.ndarray, dest: int) -> List[int]:
    """Switches ordered children-before-parents along the in-tree."""
    n = view.num_switches
    children: List[List[int]] = [[] for _ in range(n)]
    for s in range(n):
        k = parent_edge[s]
        if k >= 0:
            children[_edge_source(view, k)].append(s)
    # children[] is keyed by... the edge source is the *parent* (edge
    # parent->s). Post-order from dest gives parents last; reverse for
    # children-first.
    order: List[int] = []
    stack = [dest]
    while stack:
        cur = stack.pop()
        order.append(cur)
        stack.extend(children[cur])
    order.reverse()
    return order
