"""Routing engine registry — name-based lookup like OpenSM's ``routing_engine``
configuration option."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import RoutingError
from repro.sm.routing.base import RoutingAlgorithm
from repro.sm.routing.dfsssp import DFSSSPRouting
from repro.sm.routing.dor import DimensionOrderedRouting
from repro.sm.routing.fattree import FatTreeRouting
from repro.sm.routing.lash import LashRouting
from repro.sm.routing.minhop import MinHopRouting
from repro.sm.routing.updn import UpDownRouting

__all__ = ["available_engines", "create_engine", "register_engine"]

_FACTORIES: Dict[str, Callable[[], RoutingAlgorithm]] = {
    "minhop": MinHopRouting,
    "ftree": FatTreeRouting,
    "updn": UpDownRouting,
    "dfsssp": DFSSSPRouting,
    "dor": DimensionOrderedRouting,
    "lash": LashRouting,
}


def available_engines() -> List[str]:
    """Names accepted by :func:`create_engine`."""
    return sorted(_FACTORIES)


def create_engine(name: str, **kwargs) -> RoutingAlgorithm:
    """Instantiate a routing engine by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise RoutingError(
            f"unknown routing engine {name!r}; available: {available_engines()}"
        ) from None
    return factory(**kwargs)


def register_engine(name: str, factory: Callable[[], RoutingAlgorithm]) -> None:
    """Register a custom engine (used by tests and extensions)."""
    if name in _FACTORIES:
        raise RoutingError(f"engine {name!r} already registered")
    _FACTORIES[name] = factory
