"""Sharded all-pairs path computation.

The all-pairs distance matrix behind every engine's path computation is
``n`` independent single-source BFS sweeps — embarrassingly parallel by
source. :class:`ParallelRouter` shards the source range into contiguous
chunks and fans them out over a ``ProcessPoolExecutor``, with two hard
guarantees:

* **Determinism** — chunks are fixed contiguous slices of the source
  range, computed without any randomness, and merged back in chunk order
  (``Executor.map`` yields results in submission order regardless of
  completion order). Row ``s`` of the result is produced by the *same*
  :func:`repro.fabric.graph.bfs_distances` call the serial path would
  make, so the sharded matrix is byte-identical to the serial one — not
  just equal, the same dtype and values in the same places. The
  byte-identity tests assert this per preset.

* **Graceful fallback** — worker pools need ``fork``/pipes/semaphores the
  execution sandbox may deny. Any ``OSError``/``PermissionError`` (or a
  missing start method) during pool setup or execution silently drops to
  the serial loop, which is the identical computation.

Workers inherit the CSR arrays by fork where available; otherwise the
picklable :class:`~repro.fabric.topology.SwitchFabricView` dataclass is
shipped once per worker via the pool initializer, never per chunk.
"""

from __future__ import annotations

import os
from typing import List, Optional, Tuple

import numpy as np

from repro.fabric.graph import all_pairs_switch_distances, bfs_distances
from repro.fabric.topology import SwitchFabricView

__all__ = ["ParallelRouter", "resolve_workers"]

#: Chunks per worker: small enough to balance stragglers, large enough to
#: amortize the per-chunk dispatch cost.
_CHUNKS_PER_WORKER = 4

#: Below this switch count the pool spin-up costs more than it saves.
_MIN_PARALLEL_SWITCHES = 64

# Worker-process state, installed by the pool initializer.
_WORKER_VIEW: Optional[SwitchFabricView] = None


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` knob: ``None``/0 -> 1, negative -> cpu count."""
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return max(os.cpu_count() or 1, 1)
    return int(workers)


def _init_worker(view: SwitchFabricView) -> None:
    global _WORKER_VIEW
    _WORKER_VIEW = view


def _sweep_chunk(bounds: Tuple[int, int]) -> np.ndarray:
    """BFS rows for sources ``[lo, hi)`` against the installed view."""
    lo, hi = bounds
    view = _WORKER_VIEW
    assert view is not None
    out = np.empty((hi - lo, view.num_switches), dtype=np.int32)
    for i, s in enumerate(range(lo, hi)):
        out[i] = bfs_distances(view, s)
    return out


class ParallelRouter:
    """Deterministic sharded all-pairs BFS with a byte-identical serial path.

    ``workers <= 1`` (the default) never touches multiprocessing at all.
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = resolve_workers(workers)
        #: How the last :meth:`all_pairs` call actually ran — ``"serial"``
        #: or ``"sharded"``; surfaced as a span attribute by the SM.
        self.last_mode = "serial"

    def chunk_bounds(self, n: int) -> List[Tuple[int, int]]:
        """Contiguous source chunks ``[(lo, hi), ...]`` covering ``range(n)``.

        Pure arithmetic on ``(n, workers)`` — no randomness, no dependence
        on scheduling — so the shard layout itself is reproducible.
        """
        chunks = min(max(self.workers * _CHUNKS_PER_WORKER, 1), n)
        size = -(-n // chunks)  # ceil
        return [(lo, min(lo + size, n)) for lo in range(0, n, size)]

    def all_pairs(self, view: SwitchFabricView) -> np.ndarray:
        """The dense (n x n) hop-distance matrix of *view*."""
        n = view.num_switches
        if self.workers <= 1 or n < _MIN_PARALLEL_SWITCHES:
            self.last_mode = "serial"
            return all_pairs_switch_distances(view)
        try:
            return self._all_pairs_sharded(view)
        except (OSError, PermissionError, ValueError, RuntimeError):
            # Sandboxes without fork/pipes/semaphores land here; the serial
            # loop is the same computation, row for row.
            self.last_mode = "serial"
            return all_pairs_switch_distances(view)

    def _all_pairs_sharded(self, view: SwitchFabricView) -> np.ndarray:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        n = view.num_switches
        bounds = self.chunk_bounds(n)
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            ctx = multiprocessing.get_context()
        out = np.empty((n, n), dtype=np.int32)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(bounds)),
            mp_context=ctx,
            initializer=_init_worker,
            initargs=(view,),
        ) as pool:
            # Executor.map yields in submission order: the merge below is
            # position-stable no matter which worker finishes first.
            for (lo, hi), rows in zip(bounds, pool.map(_sweep_chunk, bounds)):
                out[lo:hi] = rows
        self.last_mode = "sharded"
        return out
