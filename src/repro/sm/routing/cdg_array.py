"""Array-backed channel-dependency graph for the vectorized engines.

:class:`~repro.sm.deadlock.ChannelDependencyGraph` keys channels by
``(switch, switch)`` tuples and re-runs a full DFS cycle check per inserted
dependency — fine for the protocol-level checker, hopeless inside LASH and
DFSSSP at paper scale where one Fig. 7 run ingests millions of
dependencies. :class:`ArrayCdg` keeps the *same acceptance semantics*
(``try_add`` commits a batch of dependencies iff the graph stays acyclic,
else leaves the layer untouched) on integer arrays:

* channels are dense integers from :func:`channel_table` (one id per
  directed switch pair that is an actual cable, deduplicated with
  ``np.unique`` — parallel cables share a channel, exactly like the tuple
  CDG);
* committed dependencies live in one sorted ``int64`` key array
  (``src * C + dst``), so batch dedupe is a ``searchsorted`` and commits
  are a vectorized sorted-merge ``np.insert``;
* two acyclicity detectors with the paper's two cost models.
  ``mode="levels"`` (DFSSSP) is *incremental*, mirroring the incremental
  cycle checking of Domke et al.: a longest-path level array keeps
  ``level[src] < level[dst]`` for every committed edge, batches that
  respect the levels are accepted in O(batch), and violations trigger a
  localized relabel of the affected cone (levels in an acyclic graph are
  bounded by the channel count, so a relabel pushing past ``C`` has proven
  a cycle and rolls every touched level back). ``mode="kahn"`` (LASH) runs
  a *full* frontier-vectorized Kahn toposort on every attempt — the
  published LASH performs a whole-CDG acyclicity test per switch pair,
  which is exactly what makes it the slowest engine of Fig. 7, so the
  LASH layer keeps that O(pairs x CDG) shape and only moves the test
  itself onto arrays.

Because acceptance depends only on acyclicity — a property of the
dependency *graph*, not of the detector — a layer fed the same batches in
the same order answers exactly like the tuple CDG, which is what the
byte-identity tests assert.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.fabric.graph import edge_sources
from repro.fabric.topology import SwitchFabricView

__all__ = ["ArrayCdg", "channel_table", "channel_ids"]


def channel_table(view: SwitchFabricView) -> np.ndarray:
    """Sorted unique channel keys (``src * n + peer``) of every cable."""
    n = view.num_switches
    keys = edge_sources(view) * np.int64(n) + view.peer.astype(np.int64)
    return np.unique(keys)


def channel_ids(
    table: np.ndarray, a: np.ndarray, b: np.ndarray, n: int
) -> np.ndarray:
    """Dense channel ids of the directed switch pairs ``a -> b``."""
    keys = np.asarray(a, dtype=np.int64) * np.int64(n) + np.asarray(
        b, dtype=np.int64
    )
    return np.searchsorted(table, keys)


class ArrayCdg:
    """One virtual layer's dependency graph over dense channel ids."""

    def __init__(self, num_channels: int, *, mode: str = "levels") -> None:
        if mode not in ("levels", "kahn"):
            raise ValueError(f"unknown ArrayCdg mode {mode!r}")
        self.num_channels = int(num_channels)
        self.mode = mode
        #: Sorted committed dependency keys ``src * C + dst``.
        self._keys = np.empty(0, dtype=np.int64)
        #: Small sorted overflow of recently committed keys ("levels" mode):
        #: merging into ``_keys`` costs O(total), so commits accumulate here
        #: and flush in bulk, keeping ingestion linear overall.
        self._tail = np.empty(0, dtype=np.int64)
        #: Longest-path level per channel ("levels" mode); invariant:
        #: ``level[src] < level[dst]`` for every committed dependency.
        self._levels = (
            np.zeros(self.num_channels, dtype=np.int64)
            if mode == "levels"
            else None
        )
        if mode == "kahn":
            # CSR out-adjacency and base in-degrees of the *committed*
            # graph over a compact "active channel" universe (channels
            # mentioned by some dependency — the reference CDG's DFS walks
            # exactly that set). Rebuilt on commit (rare after warm-up) so
            # the full per-attempt toposort reads O(1)-lookup arrays
            # instead of binary-searching the key array every round.
            self._num_active = 0
            self._csr_indptr = np.zeros(1, dtype=np.int64)
            self._csr_dst = np.empty(0, dtype=np.int64)
            self._indeg0 = np.empty(0, dtype=np.int64)
            self._zero0 = np.empty(0, dtype=np.int64)

    @property
    def num_dependencies(self) -> int:
        """Committed (deduplicated) dependency count."""
        return int(self._keys.size) + int(self._tail.size)

    @staticmethod
    def _missing_from(sorted_keys: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Mask of *keys* absent from the sorted array."""
        pos = np.searchsorted(sorted_keys, keys)
        known = np.zeros(keys.size, dtype=bool)
        inb = pos < sorted_keys.size
        known[inb] = sorted_keys[pos[inb]] == keys[inb]
        return ~known

    def _flush_tail(self) -> None:
        if self._tail.size:
            self._keys = np.insert(
                self._keys, np.searchsorted(self._keys, self._tail), self._tail
            )
            self._tail = np.empty(0, dtype=np.int64)

    def try_add(self, src: np.ndarray, dst: np.ndarray) -> bool:
        """Commit the dependency batch ``src[i] -> dst[i]`` iff the layer
        stays acyclic; an unchanged layer is left on rejection."""
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        c = np.int64(self.num_channels)
        if src.size:
            keys = np.unique(src * c + dst)
            fresh = self._missing_from(self._keys, keys)
            if self._tail.size:
                fresh &= self._missing_from(self._tail, keys)
            new = keys[fresh]
        else:
            new = np.empty(0, dtype=np.int64)
        if self.mode == "kahn":
            # Full whole-graph test per attempt, like the reference CDG
            # (and the published LASH): the committed graph alone is
            # acyclic by invariant, but the test still runs so the engine
            # keeps its O(pairs x CDG) cost profile.
            if new.size == 0:
                return self._kahn_committed()
            merged = np.insert(
                self._keys, np.searchsorted(self._keys, new), new
            )
            if not _kahn_acyclic(merged, self.num_channels):
                return False
            self._keys = merged
            self._rebuild_csr()
            return True
        if new.size == 0:
            return True
        nsrc = new // c
        ndst = new % c
        if (self._levels[nsrc] >= self._levels[ndst]).any():
            if not self._relabel(nsrc, ndst):
                return False
        self._tail = np.insert(
            self._tail, np.searchsorted(self._tail, new), new
        )
        if self._tail.size > 8192:
            self._flush_tail()
        return True

    # -- full toposort ("kahn" mode) ----------------------------------------

    def _rebuild_csr(self) -> None:
        c = np.int64(self.num_channels)
        src = self._keys // c
        dst = self._keys % c
        active = np.unique(np.concatenate([src, dst]))
        amap = np.full(self.num_channels, -1, dtype=np.int64)
        amap[active] = np.arange(active.size, dtype=np.int64)
        # Keys are sorted by (src, dst) and amap is monotone on active
        # channels, so the remapped dst stays grouped by remapped src.
        self._num_active = int(active.size)
        self._csr_dst = amap[dst]
        counts = np.bincount(amap[src], minlength=active.size)
        self._csr_indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts)]
        )
        self._indeg0 = np.bincount(self._csr_dst, minlength=active.size)
        self._zero0 = np.flatnonzero(self._indeg0 == 0)

    def _kahn_committed(self) -> bool:
        """Full Kahn toposort of the committed graph (always True by the
        acyclicity invariant — the *work* is the point, see class doc)."""
        if self._num_active == 0:
            return True
        indeg = self._indeg0.copy()
        frontier = self._zero0
        remaining = self._num_active - int(frontier.size)
        # Removed nodes are parked at -1: in a DAG no edge can point at an
        # already-removed node (its predecessors were removed first), so
        # they never return to zero; in a cyclic graph the cycle members
        # never reach zero at all and `remaining` stays positive.
        indeg[frontier] = -1
        while frontier.size and remaining:
            lo = self._csr_indptr[frontier]
            counts = self._csr_indptr[frontier + 1] - lo
            total = int(counts.sum())
            if total == 0:
                break
            offsets = np.repeat(np.cumsum(counts) - counts, counts)
            idx = np.repeat(lo, counts) + (np.arange(total) - offsets)
            indeg -= np.bincount(
                self._csr_dst[idx], minlength=self._num_active
            )
            frontier = np.flatnonzero(indeg == 0)
            indeg[frontier] = -1
            remaining -= int(frontier.size)
        return remaining == 0

    # -- incremental acyclicity ---------------------------------------------

    def _relabel(self, nsrc: np.ndarray, ndst: np.ndarray) -> bool:
        """Raise levels to absorb the pending edges; False (and a full
        rollback of every touched level) when that proves a cycle."""
        # The cone expansion below range-scans the committed keys; fold the
        # tail in first so no committed edge is missed.
        self._flush_tail()
        levels = self._levels
        c = np.int64(self.num_channels)
        saved: Dict[int, int] = {}
        frontier = ndst
        flevel = levels[nsrc] + 1
        while frontier.size:
            uniq, inv = np.unique(frontier, return_inverse=True)
            need = np.zeros(uniq.size, dtype=np.int64)
            np.maximum.at(need, inv, flevel)
            gain = need > levels[uniq]
            uniq = uniq[gain]
            need = need[gain]
            if uniq.size == 0:
                return True
            if int(need.max()) >= self.num_channels:
                # A longest path in an acyclic graph over C channels has
                # fewer than C edges: this relabel found a cycle.
                for node, old in saved.items():
                    levels[node] = old
                return False
            for node, old in zip(uniq.tolist(), levels[uniq].tolist()):
                saved.setdefault(node, old)
            levels[uniq] = need
            # Committed out-edges of the raised channels: key range
            # [u*C, (u+1)*C) in the sorted dependency array.
            lo = np.searchsorted(self._keys, uniq * c)
            hi = np.searchsorted(self._keys, (uniq + 1) * c)
            counts = hi - lo
            total = int(counts.sum())
            if total:
                offsets = np.repeat(np.cumsum(counts) - counts, counts)
                idx = np.repeat(lo, counts) + (np.arange(total) - offsets)
                ekeys = self._keys[idx]
                esrc = ekeys // c
                edst = ekeys % c
            else:
                esrc = np.empty(0, dtype=np.int64)
                edst = np.empty(0, dtype=np.int64)
            # Pending (uncommitted) edges constrain the fixpoint too.
            pending = np.isin(nsrc, uniq)
            if pending.any():
                esrc = np.concatenate([esrc, nsrc[pending]])
                edst = np.concatenate([edst, ndst[pending]])
            need_next = levels[esrc] + 1
            push = need_next > levels[edst]
            frontier = edst[push]
            flevel = need_next[push]
        return True


def _kahn_acyclic(keys: np.ndarray, num_channels: int) -> bool:
    """Frontier-vectorized Kahn toposort: True iff the edge set is acyclic.

    *keys* is the sorted dependency array (``src * C + dst``); channels
    without edges count as trivially sorted.
    """
    c = np.int64(num_channels)
    indeg = np.bincount(keys % c, minlength=num_channels)
    done = indeg == 0
    frontier = np.flatnonzero(done)
    remaining = num_channels - int(frontier.size)
    while frontier.size and remaining:
        lo = np.searchsorted(keys, frontier * c)
        hi = np.searchsorted(keys, (frontier + 1) * c)
        counts = hi - lo
        total = int(counts.sum())
        if total == 0:
            break
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        idx = np.repeat(lo, counts) + (np.arange(total) - offsets)
        indeg -= np.bincount(keys[idx] % c, minlength=num_channels)
        ready = (indeg == 0) & ~done
        frontier = np.flatnonzero(ready)
        done |= ready
        remaining -= int(frontier.size)
    return remaining == 0
