"""Performance management: querying PMA port counters.

The performance manager polls switches' PortCounters through the MAD
transport (so the polling itself is accounted like any other management
traffic) and derives fabric-level views: hot links, discard hotspots, and
the per-link utilization skew the balance experiments (E7b) reason about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ReproError
from repro.mad.smp import Smp, SmpKind, SmpMethod
from repro.sm.subnet_manager import SubnetManager

__all__ = ["LinkUtilization", "PerformanceManager"]


@dataclass(frozen=True)
class LinkUtilization:
    """One directed link's observed traffic."""

    switch: str
    port: int
    xmit_packets: int
    rcv_packets: int
    xmit_discards: int


class PerformanceManager:
    """Polls and aggregates PMA counters across the subnet."""

    def __init__(self, sm: SubnetManager) -> None:
        self.sm = sm
        self.sweeps = 0

    def sweep(self) -> List[LinkUtilization]:
        """Read every switch's counters (one PortInfo-class MAD each).

        A real PerfMgr sends one PortCounters GMP per (switch, port); we
        account one MAD per switch (the aggregate query) to keep the
        management-traffic model lightweight but present.
        """
        out: List[LinkUtilization] = []
        for sw in self.sm.topology.switches:
            self.sm.transport.send(
                Smp(
                    SmpMethod.GET,
                    SmpKind.PORT_INFO,
                    sw.name,
                    payload={"port": 0},
                )
            )
            for port_num, counters in sorted(sw.counters.items()):
                out.append(
                    LinkUtilization(
                        switch=sw.name,
                        port=port_num,
                        xmit_packets=counters.xmit_packets,
                        rcv_packets=counters.rcv_packets,
                        xmit_discards=counters.xmit_discards,
                    )
                )
        self.sweeps += 1
        return out

    def hot_links(self, *, top: int = 5) -> List[LinkUtilization]:
        """The *top* busiest egress ports by transmitted packets."""
        if top < 1:
            raise ReproError("top must be >= 1")
        return sorted(
            self.sweep(), key=lambda u: u.xmit_packets, reverse=True
        )[:top]

    def discard_hotspots(self) -> List[LinkUtilization]:
        """Every port that dropped traffic, busiest first."""
        return sorted(
            (u for u in self.sweep() if u.xmit_discards > 0),
            key=lambda u: u.xmit_discards,
            reverse=True,
        )

    def utilization_skew(self) -> float:
        """max/mean transmitted packets over used egress ports (1.0 = flat)."""
        xmits = [u.xmit_packets for u in self.sweep() if u.xmit_packets > 0]
        if not xmits:
            return 0.0
        mean = sum(xmits) / len(xmits)
        return max(xmits) / mean if mean else 0.0

    def reset_all(self) -> None:
        """Clear every switch's counters (a PerfMgr reset sweep)."""
        for sw in self.sm.topology.switches:
            for counters in sw.counters.values():
                counters.reset()
