"""Subnet manager (OpenSM-like): discovery, LIDs, routing, LFT distribution,
deadlock analysis."""

from repro.sm.deadlock import (
    ChannelDependencyGraph,
    find_cycle,
    is_deadlock_free,
    routing_dependencies,
    transition_is_deadlock_free,
)
from repro.sm.discovery import DiscoveryReport, discover_subnet
from repro.sm.handover import SmCandidate, SmRedundancyManager, SmState
from repro.sm.lft_distribution import DistributionReport, LftDistributor
from repro.sm.lid_manager import LidManager
from repro.sm.perfmgt import LinkUtilization, PerformanceManager
from repro.sm.subnet_manager import ConfigureReport, SubnetManager
from repro.sm.traps import FabricEventManager, TrapRecord, TrapType

__all__ = [
    "ChannelDependencyGraph",
    "routing_dependencies",
    "is_deadlock_free",
    "transition_is_deadlock_free",
    "find_cycle",
    "DiscoveryReport",
    "discover_subnet",
    "DistributionReport",
    "LftDistributor",
    "LidManager",
    "PerformanceManager",
    "LinkUtilization",
    "ConfigureReport",
    "SubnetManager",
    "SmCandidate",
    "SmRedundancyManager",
    "SmState",
    "FabricEventManager",
    "TrapRecord",
    "TrapType",
]
