"""Deadlock analysis via channel dependency graphs (CDGs).

A *channel* is a directed inter-switch link (a, b). Routing function R
induces a dependency (a,b) -> (b,c) whenever a packet may hold (a,b) while
requesting (b,c). R is deadlock free iff its CDG is acyclic (Duato's
condition for deterministic routing — the paper's reference [20]).

Section VI-C of the paper discusses why reconfiguration is dangerous even
between two individually deadlock-free routings: during the transition both
R_old and R_new are in effect, so the *union* CDG is what must be acyclic.
:func:`transition_is_deadlock_free` checks exactly that, and the tests use
it to reproduce the paper's observation that LID swapping may transiently
admit cycles (resolved in practice by IB timeouts).
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.constants import LFT_UNSET
from repro.errors import DeadlockError

__all__ = [
    "Channel",
    "Dependency",
    "ChannelDependencyGraph",
    "routing_dependencies",
    "is_deadlock_free",
    "transition_is_deadlock_free",
    "find_cycle",
]

#: A directed inter-switch channel.
Channel = Tuple[int, int]
#: A dependency between two consecutive channels.
Dependency = Tuple[Channel, Channel]


class ChannelDependencyGraph:
    """A mutable CDG with transactional (all-or-nothing) inserts."""

    def __init__(self) -> None:
        self._succ: Dict[Channel, Set[Channel]] = {}

    @property
    def num_channels(self) -> int:
        """Channels mentioned so far."""
        return len(self._succ)

    @property
    def num_dependencies(self) -> int:
        """Dependency edge count."""
        return sum(len(s) for s in self._succ.values())

    def add_dependency(self, dep: Dependency) -> None:
        """Insert one dependency (no cycle check)."""
        a, b = dep
        if a[1] != b[0]:
            raise DeadlockError(f"non-consecutive channels in dependency {dep}")
        self._succ.setdefault(a, set()).add(b)
        self._succ.setdefault(b, set())

    def try_add_dependencies(self, deps: Iterable[Dependency]) -> bool:
        """Insert *deps* if the graph stays acyclic; rollback otherwise."""
        added: List[Dependency] = []
        created: List[Channel] = []
        for dep in deps:
            a, b = dep
            for ch in (a, b):
                if ch not in self._succ:
                    self._succ[ch] = set()
                    created.append(ch)
            if b not in self._succ[a]:
                self._succ[a].add(b)
                added.append(dep)
        if self.is_acyclic():
            return True
        for a, b in added:
            self._succ[a].discard(b)
        for ch in created:
            if not self._succ[ch] and not any(
                ch in s for s in self._succ.values()
            ):
                del self._succ[ch]
        return False

    def is_acyclic(self) -> bool:
        """True iff no dependency cycle exists (iterative colour DFS)."""
        return self.find_cycle() is None

    def find_cycle(self) -> Optional[List[Channel]]:
        """Return one cycle as a channel list, or None if acyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[Channel, int] = {ch: WHITE for ch in self._succ}
        parent: Dict[Channel, Optional[Channel]] = {}
        for root in self._succ:
            if colour[root] != WHITE:
                continue
            stack: List[Tuple[Channel, Iterable[Channel]]] = [
                (root, iter(self._succ[root]))
            ]
            colour[root] = GREY
            parent[root] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if colour[nxt] == WHITE:
                        colour[nxt] = GREY
                        parent[nxt] = node
                        stack.append((nxt, iter(self._succ[nxt])))
                        advanced = True
                        break
                    if colour[nxt] == GREY:
                        # Reconstruct the cycle nxt -> ... -> node -> nxt.
                        cycle = [node]
                        cur = node
                        while cur != nxt:
                            cur = parent[cur]  # type: ignore[assignment]
                            cycle.append(cur)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None


#: Memoized (switch, out_port) -> peer maps, keyed by view identity. Views
#: are frozen snapshots (a topology mutation builds a new one), so a map
#: stays valid for the view's whole lifetime; the finalizer drops the entry
#: when the view is collected, keeping the cache from pinning dead fabrics.
_P2P_CACHE: Dict[int, Dict[Tuple[int, int], int]] = {}


def _port_to_peer(view) -> Dict[Tuple[int, int], int]:
    """(switch, out_port) -> neighbour switch, for inter-switch ports only.

    Rebuilding this E-sized dict per call dominated deadlock validation and
    path tracing at 11664 nodes (one rebuild per traced path); it is now
    built once per fabric view.
    """
    key = id(view)
    hit = _P2P_CACHE.get(key)
    if hit is not None:
        return hit
    degrees = np.diff(view.indptr)
    edge_src = np.repeat(np.arange(view.num_switches, dtype=np.int64), degrees)
    mapping = {
        (int(edge_src[k]), int(view.out_port[k])): int(view.peer[k])
        for k in range(len(view.peer))
    }
    _P2P_CACHE[key] = mapping
    weakref.finalize(view, _P2P_CACHE.pop, key, None)
    return mapping


def routing_dependencies(
    ports: np.ndarray,
    view,
    lids: Optional[Sequence[int]] = None,
) -> Set[Dependency]:
    """All channel dependencies induced by a routing table matrix.

    *ports* is the (num_switches x top_lid+1) matrix of
    :class:`~repro.sm.routing.base.RoutingTables`. Only hops between
    switches create dependencies; delivery ports (to HCAs) terminate chains.
    """
    p2p = _port_to_peer(view)
    n, width = ports.shape
    lid_list = (
        list(lids)
        if lids is not None
        else [l for l in range(width) if (ports[:, l] != LFT_UNSET).any()]
    )
    deps: Set[Dependency] = set()
    for lid in lid_list:
        col = ports[:, lid]
        for s in range(n):
            out = int(col[s])
            if out == LFT_UNSET:
                continue
            b = p2p.get((s, out))
            if b is None:
                continue  # delivered off-fabric (or port 0 self)
            out2 = int(col[b])
            if out2 == LFT_UNSET:
                continue
            c = p2p.get((b, out2))
            if c is None:
                continue
            deps.add(((s, b), (b, c)))
    return deps


def is_deadlock_free(
    ports: np.ndarray,
    view,
    *,
    lid_to_vl: Optional[Dict[int, int]] = None,
    lids: Optional[Sequence[int]] = None,
) -> bool:
    """Check Duato's acyclicity condition for one routing function.

    With ``lid_to_vl`` the check is per virtual layer: destinations on
    different VLs cannot block each other, so each layer's CDG is checked
    independently (this is how DFSSSP/LASH are deadlock free despite cyclic
    single-layer dependencies).
    """
    if lid_to_vl is None:
        cdg = ChannelDependencyGraph()
        for dep in routing_dependencies(ports, view, lids):
            cdg.add_dependency(dep)
        return cdg.is_acyclic()
    layers: Dict[int, List[int]] = {}
    width = ports.shape[1]
    universe = (
        list(lids)
        if lids is not None
        else [l for l in range(width) if (ports[:, l] != LFT_UNSET).any()]
    )
    for lid in universe:
        layers.setdefault(lid_to_vl.get(lid, 0), []).append(lid)
    for vl_lids in layers.values():
        cdg = ChannelDependencyGraph()
        for dep in routing_dependencies(ports, view, vl_lids):
            cdg.add_dependency(dep)
        if not cdg.is_acyclic():
            return False
    return True


def transition_is_deadlock_free(
    old_ports: np.ndarray,
    new_ports: np.ndarray,
    view,
    *,
    lids: Optional[Sequence[int]] = None,
) -> bool:
    """Check the reconfiguration-transition condition (paper section VI-C).

    While switches are updated asynchronously, some forward per R_old and
    some per R_new, so the union of both dependency sets must be acyclic for
    the transition to be provably deadlock free. The paper accepts that LID
    swapping may violate this and relies on IB timeouts; this function makes
    that risk measurable.
    """
    cdg = ChannelDependencyGraph()
    for dep in routing_dependencies(old_ports, view, lids):
        cdg.add_dependency(dep)
    for dep in routing_dependencies(new_ports, view, lids):
        cdg.add_dependency(dep)
    return cdg.is_acyclic()


def find_cycle(ports: np.ndarray, view) -> Optional[List[Channel]]:
    """Convenience: one dependency cycle of a routing, or None."""
    cdg = ChannelDependencyGraph()
    for dep in routing_dependencies(ports, view):
        cdg.add_dependency(dep)
    return cdg.find_cycle()
