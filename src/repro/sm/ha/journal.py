"""Hot-standby state replication: the journal and the standby replicas.

An OpenSM pair that fails over without a full heavy sweep must share
state: the master streams every change it makes — LID assignments, the
routing tables it is about to distribute, the LFT shadow blocks it has
programmed, vSwitch table updates — to its standbys as it goes. The
reproduction models that stream as a **sequence-numbered journal**:

* the master appends one :class:`JournalEntry` per state change;
* entries are batched into SubnSet(SMInfo) SMPs and sent to every alive
  standby through the normal (fault-injectable) transport — replication
  traffic costs real SMPs and can be lost like anything else;
* each standby's :class:`StandbyReplica` applies delivered batches in
  order and tracks ``applied_seq``; a lost batch leaves a gap, the
  replica refuses to apply past it, and the standby is *stale*.

At failover the elected successor compares its replica against the
journal head: **current** means it can run a light verify sweep and
finish the pending distribution from the journal; **stale** forces the
heavy sweep (full rediscovery + recompute) — the cost difference the
failover report surfaces.

The journal is bounded: entries older than the capacity are truncated,
so a standby that fell far enough behind can never catch up and is
permanently stale until the next failover re-seeds it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

import numpy as np

from repro.constants import LFT_BLOCK_SIZE, LFT_DROP_PORT, LFT_UNSET
from repro.fabric.lft import lft_block_of
from repro.sm.routing.base import RoutingTables

__all__ = ["JournalEntry", "ReplicationJournal", "StandbyReplica"]

#: Journal entry kinds the replication protocol understands.
ENTRY_KINDS = ("lid", "tables", "lft", "vswitch", "topology")


@dataclass(frozen=True)
class JournalEntry:
    """One replicated state change (seq numbers start at 1)."""

    seq: int
    kind: str
    payload: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        """Wire form carried inside a SubnSet(SMInfo) replication batch."""
        return {"seq": self.seq, "kind": self.kind, "payload": self.payload}


class ReplicationJournal:
    """Bounded, sequence-numbered log of the master's state changes."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("journal capacity must be >= 1")
        self.capacity = capacity
        self._entries: Deque[JournalEntry] = deque(maxlen=capacity)
        self._next_seq = 1

    def append(self, kind: str, payload: Dict[str, Any]) -> JournalEntry:
        """Record one state change and return its entry."""
        if kind not in ENTRY_KINDS:
            raise ValueError(f"unknown journal entry kind {kind!r}")
        entry = JournalEntry(self._next_seq, kind, payload)
        self._next_seq += 1
        self._entries.append(entry)
        return entry

    @property
    def head_seq(self) -> int:
        """Sequence number of the newest entry (0 when empty)."""
        return self._next_seq - 1

    @property
    def oldest_seq(self) -> int:
        """Oldest retained sequence number (0 when empty)."""
        return self._entries[0].seq if self._entries else 0

    def __len__(self) -> int:
        return len(self._entries)

    def entries_since(self, seq: int) -> Optional[List[JournalEntry]]:
        """Entries with sequence number > *seq*, oldest first.

        Returns ``None`` when the journal has truncated past *seq* — the
        requester can never catch up incrementally and must resync.
        """
        if seq >= self.head_seq:
            return []
        if self._entries and seq + 1 < self._entries[0].seq:
            return None
        return [e for e in self._entries if e.seq > seq]


class StandbyReplica:
    """One standby's view of the replicated SM state.

    Applies journal batches strictly in order: a gap (lost batch) stops
    application and leaves the replica stale from that point on.
    """

    def __init__(self, node_name: str) -> None:
        self.node_name = node_name
        self.applied_seq = 0
        self.applied_count = 0
        #: Entries refused because of a sequence gap.
        self.gaps = 0
        self.lids: Dict[str, int] = {}
        self.tables_payload: Optional[Dict[str, Any]] = None
        #: Per-switch block counts of the last distribution the master
        #: completed (the LFT shadow summary).
        self.lft_blocks: Dict[str, int] = {}
        self.vswitch: Optional[Dict[str, Any]] = None
        #: Live topology mutations replicated by the master, in order
        #: (``TopologyMutation.as_dict`` payloads). A successor elected on
        #: a rewired fabric replays these against its own topology model
        #: before trusting the replicated routing intent.
        self.topology_mutations: List[Dict[str, Any]] = []

    def apply(self, entries: List[Dict[str, Any]]) -> int:
        """Apply one delivered batch of serialized entries; return how
        many were applied (duplicates skipped, gaps refused)."""
        applied = 0
        for raw in entries:
            seq = int(raw["seq"])
            if seq <= self.applied_seq:
                continue  # duplicate delivery
            if seq != self.applied_seq + 1:
                self.gaps += 1
                break  # a batch was lost before this one: stale from here
            self._apply_one(raw["kind"], raw["payload"])
            self.applied_seq = seq
            self.applied_count += 1
            applied += 1
        return applied

    def _apply_one(self, kind: str, payload: Dict[str, Any]) -> None:
        if kind == "lid":
            self.lids.update(payload)
        elif kind == "tables":
            # Deep-copy: the journal entry (and every other replica)
            # shares this payload object; later vSwitch ops mutate our
            # private port array only.
            self.tables_payload = {
                "algorithm": payload["algorithm"],
                "ports": np.array(payload["ports"], dtype=np.int16),
            }
        elif kind == "lft":
            self.lft_blocks = dict(payload.get("blocks", {}))
        elif kind == "vswitch":
            self.vswitch = payload
            self._apply_vswitch(payload)
        elif kind == "topology":
            self.topology_mutations.append(dict(payload))

    def _apply_vswitch(self, payload: Dict[str, Any]) -> None:
        """Mirror a vSwitch table update onto the replicated tables.

        The master's reconfigurer keeps its live ``current_tables`` in
        sync after every LID migration; a replica that skipped this
        would hand the successor pre-migration routing and the light
        sweep would *revert* the moves.
        """
        if self.tables_payload is None:
            return
        ports = self.tables_payload["ports"]
        op = payload.get("op")
        switches = payload.get("switches")
        rows = slice(None) if switches is None else list(switches)
        if op == "swap":
            lid_a, lid_b = int(payload["lid_a"]), int(payload["lid_b"])
            if max(lid_a, lid_b) >= ports.shape[1]:
                return
            col_a = ports[rows, lid_a].copy()
            ports[rows, lid_a] = ports[rows, lid_b]
            ports[rows, lid_b] = col_a
        elif op == "copy":
            template, target = (
                int(payload["template_lid"]),
                int(payload["target_lid"]),
            )
            top = max(template, target)
            if top >= ports.shape[1]:
                width = (lft_block_of(top) + 1) * LFT_BLOCK_SIZE
                grown = np.full(
                    (ports.shape[0], width), LFT_UNSET, dtype=ports.dtype
                )
                grown[:, : ports.shape[1]] = ports
                ports = grown
                self.tables_payload["ports"] = ports
            ports[rows, target] = ports[rows, template]
        elif op == "invalidate":
            lid = int(payload["lid"])
            if lid < ports.shape[1]:
                ports[:, lid] = LFT_DROP_PORT

    def is_current(self, journal: ReplicationJournal) -> bool:
        """Whether this replica has applied everything the master logged."""
        return self.applied_seq == journal.head_seq

    def routing_tables(self) -> Optional[RoutingTables]:
        """Reconstruct the last replicated routing intent.

        ``compute_seconds`` is zero by construction: the successor
        *inherits* the paths instead of recomputing them — exactly the
        saving a light failover is about.
        """
        if self.tables_payload is None:
            return None
        return RoutingTables(
            algorithm=str(self.tables_payload["algorithm"]),
            ports=np.array(self.tables_payload["ports"], dtype=np.int16),
            compute_seconds=0.0,
            metadata={"replicated": True, "replica": self.node_name},
        )
