"""SMInfo state machine: per-candidate SM state and election rules.

Every SM-capable node carries an SMInfo attribute (IBA 14.2.5.13):
state, priority, GUID, an activity counter, and — in this reproduction's
vendor extension — the SM *generation* used for split-brain fencing.
The state machine is the IBA's, reduced to the transitions the HA
protocol exercises::

    DISCOVERING ──elect──▶ STANDBY ──takeover──▶ MASTER
                              ▲                    │
                              └──── demotion ──────┘
                    (HANDOVER received, or fenced out after a
                     partition heal and SMInfo comparison lost)

Election follows the IBA comparison: highest priority wins, ties broken
by lowest GUID. Liveness is lease-based: standbys poll the master with
SubnGet(SMInfo) heartbeats; ``missed_leases`` counts consecutive
unanswered polls, and crossing the configured threshold is what arms a
takeover (see :class:`repro.sm.ha.manager.HighAvailabilityManager`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict

from repro.fabric.addressing import GUID

__all__ = ["SmHaState", "SmParticipant"]


class SmHaState(enum.Enum):
    """SMInfo SM state (IBA 14.4.1, reduced)."""

    DISCOVERING = "discovering"
    STANDBY = "standby"
    MASTER = "master"
    NOT_ACTIVE = "not-active"


@dataclass
class SmParticipant:
    """One SM candidate taking part in the HA protocol.

    ``alive`` is ground truth about the SM *software* on the node (the
    node's port firmware keeps answering PortInfo/NodeInfo either way);
    peers only learn about a death through missed leases. ``state`` is
    the participant's **own belief** — during a partition a fenced-out
    master keeps believing ``MASTER`` until it is demoted, which is
    exactly the split-brain window the generation fence closes.
    """

    node_name: str
    guid: GUID
    priority: int = 0
    state: SmHaState = SmHaState.DISCOVERING
    alive: bool = True
    #: SM generation this participant last mastered with (0 = never).
    generation: int = 0
    #: IBA ActCount — bumped on every promotion to master.
    act_count: int = 0
    #: Consecutive heartbeat polls of the master this standby has lost.
    missed_leases: int = 0

    def election_key(self):
        """Higher priority wins; ties broken by lowest GUID."""
        return (-self.priority, self.guid)

    @property
    def is_master(self) -> bool:
        return self.state is SmHaState.MASTER

    def sminfo(self) -> Dict[str, Any]:
        """The SMInfo GetResp payload for this participant."""
        return {
            "node": self.node_name,
            "state": self.state.value,
            "priority": self.priority,
            "guid": self.guid,
            "generation": self.generation,
            "act_count": self.act_count,
        }
