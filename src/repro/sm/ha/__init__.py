"""SM high availability: replicated hot-standby failover with fencing.

The :class:`HighAvailabilityManager` replaces the stub redundancy manager
with a full HA protocol — SMInfo state machine and lease-based liveness
(:mod:`repro.sm.ha.sminfo`), sequence-numbered hot-standby replication
(:mod:`repro.sm.ha.journal`), split-brain fencing via the monotonic SM
generation checked in the transport, and light-vs-heavy failover sweeps
whose SMP cost the :class:`~repro.sm.subnet_manager.ConfigureReport`
surfaces. See ``docs/HIGH_AVAILABILITY.md``.
"""

from repro.sm.ha.journal import (
    JournalEntry,
    ReplicationJournal,
    StandbyReplica,
)
from repro.sm.ha.manager import HighAvailabilityManager
from repro.sm.ha.sminfo import SmHaState, SmParticipant

__all__ = [
    "HighAvailabilityManager",
    "JournalEntry",
    "ReplicationJournal",
    "SmHaState",
    "SmParticipant",
    "StandbyReplica",
]
