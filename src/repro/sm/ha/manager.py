"""The SM high-availability manager: leases, takeover, fencing, replication.

Replaces the stub redundancy manager with a full HA protocol in which
**every step consumes fault-injectable SMPs**:

* **Liveness** — standbys poll the master with SubnGet(SMInfo)
  heartbeats through a short-fused :class:`~repro.mad.reliable.ReliableSmpSender`;
  ``lease_misses`` consecutive unanswered polls declare the master dead.
* **Takeover** — the elected successor negotiates with SubnSet(SMInfo):
  HANDOVER to the previous master (a dead or partitioned master simply
  times out), STANDBY asserts to the remaining peers (answered with
  ACKNOWLEDGE), then a fenced PortInfo write arms the new generation on
  the fabric even when the routing diff turns out empty.
* **Replication** — the master journals every LID assignment, routing
  intent, distribution summary and vSwitch update, and streams the
  entries to standbys in batched SubnSet(SMInfo) MADs (see
  :mod:`repro.sm.ha.journal`). A successor whose replica is *current*
  pays only a **light** failover: verify sweep plus the pending
  transactional distribution completed from the journal. A stale replica
  forces the **heavy** sweep: full rediscovery and recompute. The
  returned :class:`~repro.sm.subnet_manager.ConfigureReport` carries the
  handshake SMP cost and which sweep was paid.
* **Split-brain fencing** — every promotion bumps a monotonic SM
  generation, stamped by the master's sender on all LFT/PortInfo writes
  and checked in :class:`~repro.mad.transport.SmpTransport`. A stale
  master re-emerging after a partition heal has its writes rejected
  (:class:`~repro.errors.StaleGenerationError`), loses the SMInfo
  comparison, and demotes itself to standby.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import (
    DistributionError,
    HighAvailabilityError,
    SmpTimeoutError,
    StaleGenerationError,
    TransportError,
    UnreachableTargetError,
)
from repro.fabric.addressing import GUID
from repro.mad.reliable import ReliableSmpSender, RetryPolicy
from repro.mad.smp import SmInfoAttrMod, Smp, SmpKind, SmpMethod
from repro.obs.hub import get_hub, span
from repro.sm.ha.journal import JournalEntry, ReplicationJournal, StandbyReplica
from repro.sm.ha.sminfo import SmHaState, SmParticipant
from repro.sm.subnet_manager import ConfigureReport, SubnetManager

__all__ = ["HighAvailabilityManager"]

#: Heartbeats are short-fused: one retransmission, tight timeouts — a
#: lease poll exists to *detect* loss quickly, not to survive it.
DEFAULT_HEARTBEAT_POLICY = RetryPolicy(
    retries=1, timeout_s=5e-4, backoff=2.0, max_timeout_s=1e-3
)


class HighAvailabilityManager:
    """Runs the SM HA protocol over one subnet manager's transport."""

    def __init__(
        self,
        sm: SubnetManager,
        *,
        lease_misses: int = 2,
        heartbeat_policy: Optional[RetryPolicy] = None,
        journal_capacity: int = 2048,
        replication_batch: int = 16,
    ) -> None:
        if lease_misses < 1:
            raise HighAvailabilityError("lease_misses must be >= 1")
        if replication_batch < 1:
            raise HighAvailabilityError("replication_batch must be >= 1")
        self.sm = sm
        self.transport = sm.transport
        self.lease_misses = lease_misses
        self.heartbeat_policy = heartbeat_policy or DEFAULT_HEARTBEAT_POLICY
        self.replication_batch = replication_batch
        self.journal = ReplicationJournal(journal_capacity)
        self._participants: Dict[str, SmParticipant] = {}
        self._replicas: Dict[str, StandbyReplica] = {}
        self._heartbeat_senders: Dict[str, ReliableSmpSender] = {}
        #: Monotonic SM generation; bumped on every promotion.
        self._generation = 0
        #: The master the standbys currently *believe* in — what lease
        #: polls are addressed to. Deliberately not ground truth: a dead
        #: or partitioned master stays believed until its lease expires.
        self._believed_master: Optional[str] = None
        self.failovers = 0
        #: Compat counter (mirrors the old redundancy manager's name).
        self.handovers = 0
        self.demotions = 0
        self.replication_failures = 0
        self.fence_arm_failures = 0
        self.last_failover_report: Optional[ConfigureReport] = None
        #: Light-failover acceptance bookkeeping: the diff the successor
        #: *had* pending vs the blocks it actually programmed.
        self.last_failover_pending_blocks = 0
        self.last_failover_distributed_blocks = 0

    # -- membership -----------------------------------------------------------

    def register(
        self, node_name: str, guid: GUID, *, priority: int = 0
    ) -> SmParticipant:
        """Add an SM candidate (a node with usable QP0 access)."""
        if node_name in self._participants:
            raise HighAvailabilityError(
                f"{node_name} already registered as SM candidate"
            )
        if node_name not in self.sm.topology:
            raise HighAvailabilityError(
                f"SM candidate {node_name!r} is not in the subnet"
            )
        part = SmParticipant(node_name=node_name, guid=guid, priority=priority)
        self._participants[node_name] = part
        return part

    def participants(self) -> List[SmParticipant]:
        """All registered participants, election order first."""
        return sorted(
            self._participants.values(), key=SmParticipant.election_key
        )

    def participant(self, node_name: str) -> SmParticipant:
        try:
            return self._participants[node_name]
        except KeyError:
            raise HighAvailabilityError(
                f"{node_name!r} is not an SM candidate"
            ) from None

    def masters(self) -> List[SmParticipant]:
        """Every participant currently *believing* it is master.

        More than one entry is a split brain (e.g. during a partition,
        before the stale master is fenced out and demoted).
        """
        return [p for p in self.participants() if p.is_master]

    @property
    def master(self) -> Optional[SmParticipant]:
        """The legitimate master: the claimant with the newest generation."""
        claimants = self.masters()
        if not claimants:
            return None
        return max(claimants, key=lambda p: p.generation)

    @property
    def has_master(self) -> bool:
        """Whether an alive master exists (the subnet is being managed)."""
        m = self.master
        return m is not None and m.alive

    @property
    def generation(self) -> int:
        """The newest SM generation handed out."""
        return self._generation

    def replica(self, node_name: str) -> Optional[StandbyReplica]:
        """The standby replica held on *node_name*, if any."""
        return self._replicas.get(node_name)

    # -- bootstrap ------------------------------------------------------------

    def bootstrap(self) -> SmParticipant:
        """Initial election: pick the master, arm the fence, seed replicas.

        Attaches this manager as the transport's SMInfo agent and as the
        subnet manager's replication hook, and makes sure the SM sends
        through a generation-stamping reliable sender.
        """
        if not self._participants:
            raise HighAvailabilityError("no SM candidates registered")
        alive = [p for p in self.participants() if p.alive]
        if not alive:
            raise HighAvailabilityError("no alive SM candidate")
        self.transport.set_sm_agent(self)
        self.sm.ha = self
        if not isinstance(self.sm.smp_sender, ReliableSmpSender):
            # The HA protocol needs MAD retransmission semantics: leases,
            # handshakes and replication are all loss-sensitive.
            self.sm.enable_resilience(
                transactional=self.sm.distributor.transactional
            )
        winner = min(alive, key=SmParticipant.election_key)
        self._promote(winner)
        for p in self.participants():
            if p is winner:
                continue
            p.state = SmHaState.STANDBY if p.alive else SmHaState.NOT_ACTIVE
            if p.alive:
                self._replicas[p.node_name] = StandbyReplica(p.node_name)
        self._arm_fence(winner)
        # Seed the journal with the state that already exists, so a
        # failover right after bootstrap can still be light.
        topo = self.sm.topology
        lids = {
            node.name: node.lid
            for node in (*topo.switches, *topo.hcas)
            if node.lid is not None
        }
        if lids:
            self.note_lids(lids)
        if self.sm.current_tables is not None:
            self.note_tables(self.sm.current_tables)
        return winner

    def _promote(self, part: SmParticipant) -> None:
        """Make *part* the master with a freshly bumped generation."""
        self._generation = (
            max(self._generation, self.transport.fabric_generation) + 1
        )
        part.state = SmHaState.MASTER
        part.generation = self._generation
        part.act_count += 1
        part.missed_leases = 0
        self._believed_master = part.node_name
        self.transport.set_sm_node(self.sm.topology.node(part.node_name))
        sender = self.sm.smp_sender
        if isinstance(sender, ReliableSmpSender):
            sender.generation = self._generation
        get_hub().metrics.gauge("repro_sm_generation").set(self._generation)

    def _arm_fence(self, master: SmParticipant) -> None:
        """Advance the fabric's generation with one fenced PortInfo write.

        Without this, a failover whose routing diff is empty would leave
        ``fabric_generation`` at the old master's value — and the stale
        master's writes would still be accepted after a partition heal.
        """
        try:
            self.sm.smp_sender.send(
                Smp(
                    SmpMethod.SET,
                    SmpKind.PORT_INFO,
                    master.node_name,
                    payload={},
                )
            )
        except (SmpTimeoutError, UnreachableTargetError):
            # The successor's first LFT write will arm the fence instead;
            # only an empty-diff failover is briefly unfenced.
            self.fence_arm_failures += 1

    # -- SMInfo agent (called by the transport on SMInfo MAD delivery) --------

    def sminfo(self, node_name: str) -> Dict[str, Any]:
        """Answer a SubnGet(SMInfo) addressed to *node_name*."""
        part = self._participants.get(node_name)
        if part is None:
            legit = self.master
            return {"sm": legit.node_name if legit else None}
        return part.sminfo()

    def handle_sminfo_set(
        self, node_name: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Apply a SubnSet(SMInfo) delivered to *node_name*.

        Two flavors: replication batches (``replicate`` key) feed the
        standby's replica; handshake messages (``attr_mod`` key) drive
        the receiving participant's state machine.
        """
        part = self._participants.get(node_name)
        if part is None:
            return {"ack": False}
        if "replicate" in payload:
            replica = self._replicas.setdefault(
                node_name, StandbyReplica(node_name)
            )
            applied = replica.apply(payload["replicate"])
            return {
                "ack": True,
                "applied": applied,
                "applied_seq": replica.applied_seq,
            }
        mod = payload.get("attr_mod")
        sender_generation = int(payload.get("generation", 0))
        if mod == int(SmInfoAttrMod.HANDOVER):
            # The successor asks this (previous) master to yield.
            if part.is_master and part.generation > sender_generation:
                return {"ack": False, "state": part.state.value}
            part.state = SmHaState.STANDBY
            part.missed_leases = 0
            return {
                "ack": True,
                "attr_mod": int(SmInfoAttrMod.ACKNOWLEDGE),
                "state": part.state.value,
            }
        if mod in (int(SmInfoAttrMod.STANDBY), int(SmInfoAttrMod.DISABLE)):
            # A master with a newer generation asserts itself.
            if part.is_master and part.generation > sender_generation:
                return {"ack": False, "state": part.state.value}
            if part.alive:
                part.state = SmHaState.STANDBY
            part.missed_leases = 0
            return {
                "ack": True,
                "attr_mod": int(SmInfoAttrMod.ACKNOWLEDGE),
                "state": part.state.value,
            }
        if mod == int(SmInfoAttrMod.DISCOVER):
            if part.alive:
                part.state = SmHaState.DISCOVERING
            return {"ack": True, "state": part.state.value}
        return {"ack": False}

    # -- replication hooks (called by the SubnetManager) ----------------------

    def note_lids(self, mapping: Dict[str, int]) -> None:
        """Journal + replicate a batch of LID assignments."""
        self._replicate(self.journal.append("lid", dict(mapping)))

    def note_tables(self, tables) -> None:
        """Journal + replicate a routing intent (tables about to be sent)."""
        self._replicate(
            self.journal.append(
                "tables",
                {
                    "algorithm": tables.algorithm,
                    "ports": tables.ports.copy(),
                    "compute_seconds": tables.compute_seconds,
                },
            )
        )

    def note_distribution(self, tables, dist_report) -> None:
        """Journal + replicate a completed distribution's LFT summary."""
        self._replicate(
            self.journal.append(
                "lft",
                {
                    "blocks": dict(dist_report.blocks_per_switch),
                    "smps": dist_report.smps_sent,
                },
            )
        )

    def note_vswitch(self, payload: Dict[str, Any]) -> None:
        """Journal + replicate a vSwitch table update."""
        self._replicate(self.journal.append("vswitch", dict(payload)))

    def note_topology(self, mutation: Dict[str, Any]) -> None:
        """Journal + replicate a live topology mutation.

        *mutation* is a :meth:`repro.fabric.topology.TopologyMutation.as_dict`
        payload. It is journaled *before* the routing recompute that
        follows it, so a replica replaying in order always rewires its
        topology model before adopting the tables routed on it.
        """
        self._replicate(self.journal.append("topology", dict(mutation)))

    def _replicate(self, entry: JournalEntry) -> None:
        """Stream one journal entry to every alive standby.

        Uses the master's sender, so replication MADs are retried,
        accounted and fault-injectable like all other control traffic. A
        batch lost after retries leaves that standby's replica stale —
        detected at failover, answered with the heavy sweep.
        """
        metrics = get_hub().metrics
        metrics.counter("repro_sm_journal_entries_total", kind=entry.kind).add(1)
        master = self.master
        master_name = master.node_name if master else None
        batch = [entry.as_dict()]
        for part in self.participants():
            if (
                not part.alive
                or part.is_master
                or part.node_name == master_name
            ):
                continue
            try:
                self.sm.smp_sender.send(
                    Smp(
                        SmpMethod.SET,
                        SmpKind.SM_INFO,
                        part.node_name,
                        payload={
                            "replicate": batch,
                            "from": master_name,
                            "generation": self._generation,
                        },
                    )
                )
                metrics.counter("repro_sm_replication_batches_total").add(1)
            except (SmpTimeoutError, UnreachableTargetError):
                self.replication_failures += 1
                metrics.counter("repro_sm_replication_failures_total").add(1)

    def resync_standby(self, node_name: str) -> int:
        """Stream the journal tail a standby is missing, in batches.

        Returns the number of entries sent. A standby the journal has
        truncated past cannot be resynced incrementally and keeps its
        (stale) replica until the next failover re-seeds it.
        """
        replica = self._replicas.setdefault(
            node_name, StandbyReplica(node_name)
        )
        missing = self.journal.entries_since(replica.applied_seq)
        if not missing:
            return 0
        sent = 0
        for start in range(0, len(missing), self.replication_batch):
            batch = [
                e.as_dict()
                for e in missing[start : start + self.replication_batch]
            ]
            try:
                self.sm.smp_sender.send(
                    Smp(
                        SmpMethod.SET,
                        SmpKind.SM_INFO,
                        node_name,
                        payload={
                            "replicate": batch,
                            "generation": self._generation,
                        },
                    )
                )
                sent += len(batch)
            except (SmpTimeoutError, UnreachableTargetError):
                self.replication_failures += 1
                break
        return sent

    # -- liveness -------------------------------------------------------------

    def _heartbeat_sender(self, node_name: str) -> ReliableSmpSender:
        sender = self._heartbeat_senders.get(node_name)
        if sender is None:
            sender = ReliableSmpSender(self.transport, self.heartbeat_policy)
            self._heartbeat_senders[node_name] = sender
        return sender

    @property
    def believed_master(self) -> Optional[SmParticipant]:
        """The master standbys are polling — possibly dead or stale."""
        if self._believed_master is None:
            return None
        return self._participants.get(self._believed_master)

    def poll_master(self, standby: SmParticipant) -> bool:
        """One lease poll: *standby* sends SubnGet(SMInfo) to the master
        it believes in.

        A timeout after retries and an unreachable master are the same
        verdict — the lease was missed. Both cost real sim time.
        """
        target = self.believed_master
        if target is None:
            return False
        sender = self._heartbeat_sender(standby.node_name)
        try:
            result = sender.send(
                Smp(SmpMethod.GET, SmpKind.SM_INFO, target.node_name)
            )
        except (SmpTimeoutError, UnreachableTargetError):
            return False
        return result.ok

    def tick(self) -> Optional[ConfigureReport]:
        """One HA protocol round: heartbeats, lease expiry, takeover.

        Standbys poll the master they *believe* in — never ground truth,
        so a dead master is only declared after ``lease_misses``
        consecutive unanswered polls. Returns the failover's
        :class:`ConfigureReport` when a takeover happened this round,
        else ``None``.
        """
        standbys = [
            p
            for p in self.participants()
            if p.alive and p.state is SmHaState.STANDBY
        ]
        believed = self.believed_master
        if believed is None:
            if standbys:
                return self.failover(None)
            return None
        metrics = get_hub().metrics
        for standby in standbys:
            if self.poll_master(standby):
                standby.missed_leases = 0
            else:
                standby.missed_leases += 1
                metrics.counter(
                    "repro_sm_lease_misses_total", standby=standby.node_name
                ).add(1)
        suspicious = [
            p for p in standbys if p.missed_leases >= self.lease_misses
        ]
        if not suspicious:
            return None
        initiator = min(suspicious, key=SmParticipant.election_key)
        return self.failover(believed, initiator=initiator)

    def kill_master(self) -> None:
        """The master's SM software dies (its node stays on the fabric)."""
        master = self.master
        if master is None:
            raise HighAvailabilityError("no master to kill")
        master.alive = False
        master.state = SmHaState.NOT_ACTIVE
        self.transport.mark_sm_dead(master.node_name)

    # -- takeover -------------------------------------------------------------

    def failover(
        self,
        old_master: Optional[SmParticipant],
        *,
        initiator: Optional[SmParticipant] = None,
    ) -> ConfigureReport:
        """A standby takes over as master.

        The handshake (HANDOVER to the previous master, STANDBY asserts
        to the peers, the fence-arming write) is accounted separately in
        the returned report; then the successor pays either the light or
        the heavy sweep depending on its replica's freshness.
        """
        candidates = [
            p
            for p in self.participants()
            if p.alive and p is not old_master and not p.is_master
        ]
        if not candidates:
            raise HighAvailabilityError("no alive SM standby to fail over to")
        winner = initiator if initiator is not None else min(
            candidates, key=SmParticipant.election_key
        )
        metrics = get_hub().metrics
        with span(
            "sm_failover",
            new_master=winner.node_name,
            old_master=old_master.node_name if old_master else None,
        ) as sp:
            before = self.transport.stats.snapshot()
            handshake_gen = self._generation + 1
            hs_sender = self._heartbeat_sender(winner.node_name)
            if old_master is not None:
                try:
                    hs_sender.send(
                        Smp(
                            SmpMethod.SET,
                            SmpKind.SM_INFO,
                            old_master.node_name,
                            payload={
                                "attr_mod": int(SmInfoAttrMod.HANDOVER),
                                "from": winner.node_name,
                                "generation": handshake_gen,
                            },
                        )
                    )
                except (SmpTimeoutError, UnreachableTargetError):
                    # Dead or partitioned: it never hears the HANDOVER and
                    # may keep believing MASTER — the fence handles it.
                    pass
            for peer in self.participants():
                if peer is winner or peer is old_master or not peer.alive:
                    continue
                try:
                    hs_sender.send(
                        Smp(
                            SmpMethod.SET,
                            SmpKind.SM_INFO,
                            peer.node_name,
                            payload={
                                "attr_mod": int(SmInfoAttrMod.STANDBY),
                                "from": winner.node_name,
                                "generation": handshake_gen,
                            },
                        )
                    )
                except (SmpTimeoutError, UnreachableTargetError):
                    pass
            self._promote(winner)
            self._arm_fence(winner)
            handshake = self.transport.stats.delta_since(before)
            self.failovers += 1
            self.handovers += 1
            metrics.counter("repro_sm_failovers_total").add(1)

            replica = self._replicas.get(winner.node_name)
            light = (
                replica is not None
                and replica.is_current(self.journal)
                and replica.tables_payload is not None
            )
            sp.set_attributes(
                sweep="light" if light else "heavy",
                handshake_smps=handshake.total_smps,
            )
            if light:
                report = self._light_sweep(replica)
            else:
                report = self._heavy_sweep()
            report.handshake_smps = handshake.total_smps
            report.handshake_seconds = handshake.serial_time
            report.journal_entries_replayed = (
                replica.applied_count if light else 0
            )
            metrics.counter(
                "repro_sm_failover_sweeps_total", mode=report.sweep_mode
            ).add(1)
            # The winner is master now; remaining standbys need replicas.
            self._replicas.pop(winner.node_name, None)
            for peer in self.participants():
                if peer.alive and peer.state is SmHaState.STANDBY:
                    self._replicas.setdefault(
                        peer.node_name, StandbyReplica(peer.node_name)
                    )
        self.last_failover_report = report
        return report

    def _light_sweep(self, replica: StandbyReplica) -> ConfigureReport:
        """Verify sweep + finish the pending distribution from the journal.

        The successor inherits LIDs and paths from its replica: zero path
        computation, and the diff distribution programs at most the
        blocks the dying master had left pending.
        """
        report = ConfigureReport()
        report.sweep_mode = "light"
        with span("ha_light_sweep", replica_seq=replica.applied_seq):
            report.discovery = self.sm.discover()
            tables = replica.routing_tables()
            if tables is not None:
                self.sm.current_tables = tables
                self.last_failover_pending_blocks = (
                    self.sm.distributor.pending_blocks(tables)
                )
                report.distribution = self.sm.distribute()
                self.last_failover_distributed_blocks = sum(
                    report.distribution.blocks_per_switch.values()
                )
        return report

    def _heavy_sweep(self) -> ConfigureReport:
        """Full rediscovery + recompute: the stale-replica fallback."""
        report = ConfigureReport()
        report.sweep_mode = "heavy"
        with span("ha_heavy_sweep"):
            report.discovery = self.sm.discover()
            tables = self.sm.compute_routing()
            report.path_compute_seconds = tables.compute_seconds
            self.last_failover_pending_blocks = (
                self.sm.distributor.pending_blocks(tables)
            )
            report.distribution = self.sm.distribute()
            self.last_failover_distributed_blocks = sum(
                report.distribution.blocks_per_switch.values()
            )
        return report

    # -- split-brain resolution ----------------------------------------------

    def reassert_stale_master(self, node_name: str) -> str:
        """A re-emerged master tries to act; the fence decides.

        Sends one fenced PortInfo write stamped with the participant's
        own (old) generation. ``"demoted"`` — the write was rejected as
        stale, the participant compared SMInfo with the legitimate master
        and stepped down. ``"still-master"`` — the write was accepted (no
        newer master exists). ``"unreachable"`` / ``"not-master"``
        otherwise.
        """
        part = self.participant(node_name)
        if not part.is_master:
            return "not-master"
        stale_sender = ReliableSmpSender(
            self.transport, self.heartbeat_policy, generation=part.generation
        )
        try:
            stale_sender.send(
                Smp(
                    SmpMethod.SET,
                    SmpKind.PORT_INFO,
                    part.node_name,
                    payload={},
                )
            )
        except StaleGenerationError:
            # Fenced out: a newer master exists. Run the SMInfo
            # comparison against it and yield.
            legit = self.master
            if legit is not None and legit is not part:
                try:
                    stale_sender.send(
                        Smp(
                            SmpMethod.GET,
                            SmpKind.SM_INFO,
                            legit.node_name,
                        )
                    )
                except (SmpTimeoutError, UnreachableTargetError):
                    pass
            part.state = SmHaState.STANDBY
            part.missed_leases = 0
            self.demotions += 1
            get_hub().metrics.counter("repro_sm_demotions_total").add(1)
            self._replicas.setdefault(
                part.node_name, StandbyReplica(part.node_name)
            )
            return "demoted"
        except (SmpTimeoutError, UnreachableTargetError):
            return "unreachable"
        return "still-master"

    # -- compatibility shims (the old SmRedundancyManager surface) ------------

    def elect(self) -> SmParticipant:
        """Compat: bootstrap if never elected, else return the master."""
        if self.master is None:
            return self.bootstrap()
        return self.master

    def handover(self, *, resweep: bool = False) -> ConfigureReport:
        """Compat: an explicit takeover (``resweep`` forces the heavy path)."""
        old = self.master
        if resweep:
            # Invalidate the successor's replica so the heavy sweep runs.
            for part in self.participants():
                if part is not old:
                    self._replicas.pop(part.node_name, None)
        return self.failover(old)

    def distribution_error_repair(self) -> None:
        """Re-drive a distribution after a transient failure (compat hook)."""
        try:
            self.sm.distribute()
        except (TransportError, DistributionError):
            pass
