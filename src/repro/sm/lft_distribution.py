"""LFT distribution: turning a routing function into SubnSet(LFT) SMPs.

Implements the ``LFTD_t`` half of the paper's cost model (equation (2)):
``LFTD_t = n * m * (k + r)`` for a full distribution of ``m`` blocks to each
of ``n`` switches, serially over directed-route SMPs. The distributor
supports three modes:

* **full** — send every used block to every switch (the traditional
  reconfiguration baseline of section VI-A; its SMP count is the
  "Min SMPs Full RC" column of Table I);
* **diff** — send only blocks that differ from what the switch already has
  (what OpenSM actually does on incremental changes);
* both modes report serial and pipelined times (section VI-B notes OpenSM
  pipelines LFT updates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.constants import LFT_BLOCK_SIZE, LFT_UNSET
from repro.errors import RoutingError
from repro.fabric.lft import lft_block_of
from repro.fabric.topology import Topology
from repro.mad.smp import make_set_lft_block
from repro.mad.transport import SmpTransport
from repro.obs.hub import get_hub, span
from repro.sm.routing.base import RoutingTables

__all__ = ["DistributionReport", "LftDistributor"]


@dataclass
class DistributionReport:
    """Cost accounting of one LFT distribution pass."""

    smps_sent: int = 0
    switches_updated: int = 0
    blocks_per_switch: Dict[str, int] = field(default_factory=dict)
    serial_time: float = 0.0
    pipelined_time: float = 0.0

    @property
    def max_blocks_on_one_switch(self) -> int:
        """The paper's ``m`` for this pass."""
        return max(self.blocks_per_switch.values(), default=0)


class LftDistributor:
    """Sends LFT blocks to switches through an SMP transport."""

    def __init__(
        self,
        topology: Topology,
        transport: SmpTransport,
        *,
        pipeline_window: int = 8,
        directed: bool = True,
    ) -> None:
        if pipeline_window < 1:
            raise RoutingError("pipeline window must be >= 1")
        self.topology = topology
        self.transport = transport
        self.pipeline_window = pipeline_window
        self.directed = directed

    def distribute(
        self,
        tables: RoutingTables,
        *,
        force_full: bool = False,
    ) -> DistributionReport:
        """Program every switch's LFT from *tables*.

        ``force_full`` resends every used block even if identical (the
        traditional full-reconfiguration baseline); the default diffs
        against the switches' current LFTs.
        """
        report = DistributionReport()
        before = self.transport.stats.snapshot()
        top_lid = tables.top_lid
        n_blocks = lft_block_of(top_lid) + 1
        width = n_blocks * LFT_BLOCK_SIZE

        with span(
            "lft_distribution",
            mode="full" if force_full else "diff",
            switches=self.topology.num_switches,
        ) as sp:
            self._distribute_blocks(tables, report, force_full, width)
            delta = self.transport.stats.delta_since(before)
            report.smps_sent = delta.total_smps
            report.serial_time = delta.serial_time
            report.pipelined_time = delta.pipelined_time(self.pipeline_window)
            sp.set_attributes(
                smps_sent=report.smps_sent,
                switches_updated=report.switches_updated,
                m=report.max_blocks_on_one_switch,
            )
        metrics = get_hub().metrics
        metrics.gauge("repro_lftd_smps").set(report.smps_sent)
        metrics.gauge("repro_lftd_serial_seconds").set(report.serial_time)
        metrics.gauge("repro_lftd_pipelined_seconds").set(
            report.pipelined_time
        )
        return report

    def _distribute_blocks(
        self,
        tables: RoutingTables,
        report: DistributionReport,
        force_full: bool,
        width: int,
    ) -> None:
        for sw in self.topology.switches:
            # Widen to whichever is larger: the new routing or the switch's
            # existing table — stale entries above the new top LID must be
            # cleared, not silently kept.
            current = sw.lft.as_array()
            full_width = max(width, len(current))
            desired = np.full(full_width, LFT_UNSET, dtype=np.int16)
            row = tables.ports[sw.index]
            desired[: len(row)] = row

            if force_full:
                blocks = self._used_blocks(desired)
            else:
                blocks = self._changed_blocks(current, desired)
            if not blocks:
                continue
            report.switches_updated += 1
            report.blocks_per_switch[sw.name] = len(blocks)
            for block in blocks:
                smp = make_set_lft_block(
                    sw.name,
                    block,
                    desired[block * LFT_BLOCK_SIZE : (block + 1) * LFT_BLOCK_SIZE],
                    directed=self.directed,
                )
                self.transport.send(smp)

    @staticmethod
    def _used_blocks(desired: np.ndarray) -> List[int]:
        mask = (desired != LFT_UNSET).reshape(-1, LFT_BLOCK_SIZE)
        return np.nonzero(mask.any(axis=1))[0].tolist()

    @staticmethod
    def _changed_blocks(current: np.ndarray, desired: np.ndarray) -> List[int]:
        cur = np.full(len(desired), LFT_UNSET, dtype=np.int16)
        cur[: len(current)] = current
        mask = (cur != desired).reshape(-1, LFT_BLOCK_SIZE)
        return np.nonzero(mask.any(axis=1))[0].tolist()
