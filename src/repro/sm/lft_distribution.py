"""LFT distribution: turning a routing function into SubnSet(LFT) SMPs.

Implements the ``LFTD_t`` half of the paper's cost model (equation (2)):
``LFTD_t = n * m * (k + r)`` for a full distribution of ``m`` blocks to each
of ``n`` switches, serially over directed-route SMPs. The distributor
supports three modes:

* **full** — send every used block to every switch (the traditional
  reconfiguration baseline of section VI-A; its SMP count is the
  "Min SMPs Full RC" column of Table I);
* **diff** — send only blocks that differ from what the switch already has
  (what OpenSM actually does on incremental changes);
* both modes report serial and pipelined times (section VI-B notes OpenSM
  pipelines LFT updates).

With :attr:`LftDistributor.transactional` set (normally via
:meth:`repro.sm.subnet_manager.SubnetManager.enable_resilience`), every
block write is *verified*: a SubnGet(LFT) read-back compares the switch's
actual block against the SM's shadow copy, silently corrupted or dropped
writes are re-synced from that shadow, and a distribution that cannot be
completed is rolled back block-by-block — the subnet ends in either the
new routing or the old one, never in between.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.constants import LFT_BLOCK_SIZE, LFT_UNSET
from repro.errors import DistributionError, RoutingError, TransportError
from repro.fabric.lft import lft_block_of
from repro.fabric.node import Switch
from repro.fabric.topology import Topology
from repro.mad.smp import Smp, SmpKind, SmpMethod, make_set_lft_block
from repro.mad.transport import SmpTransport
from repro.obs.hub import get_hub, span
from repro.sm.routing.base import RoutingTables

__all__ = ["DistributionReport", "LftDistributor"]


@dataclass
class DistributionReport:
    """Cost accounting of one LFT distribution pass."""

    smps_sent: int = 0
    switches_updated: int = 0
    blocks_per_switch: Dict[str, int] = field(default_factory=dict)
    serial_time: float = 0.0
    pipelined_time: float = 0.0
    #: Blocks whose read-back matched the shadow copy (transactional mode).
    verified_blocks: int = 0
    #: Block rewrites forced by a failed read-back (drop or corruption).
    resyncs: int = 0
    #: True when the pass failed and every applied block was restored.
    rolled_back: bool = False

    @property
    def max_blocks_on_one_switch(self) -> int:
        """The paper's ``m`` for this pass."""
        return max(self.blocks_per_switch.values(), default=0)


class LftDistributor:
    """Sends LFT blocks to switches through an SMP transport."""

    def __init__(
        self,
        topology: Topology,
        transport: SmpTransport,
        *,
        pipeline_window: int = 8,
        directed: bool = True,
    ) -> None:
        if pipeline_window < 1:
            raise RoutingError("pipeline window must be >= 1")
        self.topology = topology
        self.transport = transport
        #: What ``.send()`` actually goes through — the raw transport by
        #: default, a :class:`~repro.mad.reliable.ReliableSmpSender` once
        #: the SM enables resilience.
        self.sender = transport
        self.pipeline_window = pipeline_window
        self.directed = directed
        #: Verify every block write with a GetResp read-back, re-sync
        #: mismatches from the shadow copy, roll back on failure.
        self.transactional = False
        #: Write+read-back rounds per block before declaring the switch
        #: failed (each round's sends also retry internally when the
        #: sender is reliable).
        self.verify_attempts = 3

    def distribute(
        self,
        tables: RoutingTables,
        *,
        force_full: bool = False,
    ) -> DistributionReport:
        """Program every switch's LFT from *tables*.

        ``force_full`` resends every used block even if identical (the
        traditional full-reconfiguration baseline); the default diffs
        against the switches' current LFTs.
        """
        report = DistributionReport()
        before = self.transport.stats.snapshot()
        top_lid = tables.top_lid
        n_blocks = lft_block_of(top_lid) + 1
        width = n_blocks * LFT_BLOCK_SIZE

        with span(
            "lft_distribution",
            mode="full" if force_full else "diff",
            switches=self.topology.num_switches,
        ) as sp:
            self._distribute_blocks(tables, report, force_full, width)
            delta = self.transport.stats.delta_since(before)
            report.smps_sent = delta.total_smps
            report.serial_time = delta.serial_time
            report.pipelined_time = delta.pipelined_time(self.pipeline_window)
            sp.set_attributes(
                smps_sent=report.smps_sent,
                switches_updated=report.switches_updated,
                m=report.max_blocks_on_one_switch,
            )
        metrics = get_hub().metrics
        metrics.gauge("repro_lftd_smps").set(report.smps_sent)
        metrics.gauge("repro_lftd_serial_seconds").set(report.serial_time)
        metrics.gauge("repro_lftd_pipelined_seconds").set(
            report.pipelined_time
        )
        return report

    def _diff_plan(
        self, tables: RoutingTables, force_full: bool, width: int
    ) -> Tuple[List[Tuple[Switch, np.ndarray, int]], np.ndarray]:
        """Per-switch block send lists, from one stacked block compare.

        Returns ``(plan, desired)``: ``plan`` is ``[(switch, blocks, row)]``
        in switch order and ``desired`` the stacked (num_switches, width)
        target LFT matrix. The whole diff is three array ops — stack, block
        reshape, ``any`` reduction — instead of a per-switch/per-block
        Python loop. Computing the plan up front is equivalent to the old
        interleaved diff-while-sending: a switch's LFT is only mutated by
        its *own* sends, so the pre-send state each old diff read is
        exactly the state read here.
        """
        switches = self.topology.switches
        # Widen to whichever is larger: the new routing or the largest
        # existing table — stale entries above the new top LID must be
        # cleared, not silently kept.
        currents = [sw.lft.as_array() for sw in switches]
        full_width = max([width] + [len(c) for c in currents])
        n_blocks = full_width // LFT_BLOCK_SIZE
        s = len(switches)
        desired = np.full((s, full_width), LFT_UNSET, dtype=np.int16)
        idx = [sw.index for sw in switches]
        row_width = min(tables.ports.shape[1], full_width)
        desired[:, :row_width] = tables.ports[idx, :row_width]
        if force_full:
            send = (desired != LFT_UNSET).reshape(s, n_blocks, LFT_BLOCK_SIZE)
        else:
            cur = np.full((s, full_width), LFT_UNSET, dtype=np.int16)
            for i, c in enumerate(currents):
                cur[i, : len(c)] = c
            send = (cur != desired).reshape(s, n_blocks, LFT_BLOCK_SIZE)
        send_blocks = send.any(axis=2)  # (num_switches, n_blocks)
        plan: List[Tuple[Switch, np.ndarray, int]] = []
        for i, sw in enumerate(switches):
            blocks = np.flatnonzero(send_blocks[i])
            if blocks.size:
                plan.append((sw, blocks, i))
        return plan, desired

    def _distribute_blocks(
        self,
        tables: RoutingTables,
        report: DistributionReport,
        force_full: bool,
        width: int,
    ) -> None:
        #: (switch, block, pre-image) of every write actually applied, so
        #: a failed transactional pass can be unwound.
        undo: List[Tuple[Switch, int, np.ndarray]] = []
        plan, desired = self._diff_plan(tables, force_full, width)
        try:
            for sw, blocks, row in plan:
                report.switches_updated += 1
                report.blocks_per_switch[sw.name] = len(blocks)
                drow = desired[row]
                for block in blocks.tolist():
                    entries = drow[
                        block * LFT_BLOCK_SIZE : (block + 1) * LFT_BLOCK_SIZE
                    ]
                    if self.transactional:
                        self._write_block_verified(
                            sw, block, entries, report, undo
                        )
                    else:
                        self.sender.send(
                            make_set_lft_block(
                                sw.name, block, entries, directed=self.directed
                            )
                        )
        except (TransportError, DistributionError) as exc:
            self._rollback(undo)
            report.rolled_back = True
            raise DistributionError(
                f"LFT distribution aborted ({exc}); rolled back"
                f" {len(undo)} applied block writes"
            ) from exc

    def _write_block_verified(
        self,
        sw: Switch,
        block: int,
        entries: np.ndarray,
        report: DistributionReport,
        undo: List[Tuple[Switch, int, np.ndarray]],
    ) -> None:
        """Write one block and prove it landed intact.

        A SubnGet(LFT) read-back compares the switch's block against the
        shadow copy being distributed; a mismatch (dropped SET without a
        reliable sender, or silent in-flight corruption) re-syncs the block
        from the shadow, up to :attr:`verify_attempts` rounds.
        """
        pre = np.array(sw.lft.get_block(block), dtype=np.int16, copy=True)
        recorded = False
        for attempt in range(self.verify_attempts):
            if attempt:
                report.resyncs += 1
            result = self.sender.send(
                make_set_lft_block(
                    sw.name, block, entries, directed=self.directed
                )
            )
            if result.ok and not recorded:
                undo.append((sw, block, pre))
                recorded = True
            readback = self.sender.send(
                Smp(
                    SmpMethod.GET,
                    SmpKind.LFT_BLOCK,
                    sw.name,
                    payload={"block": block},
                    directed=self.directed,
                )
            )
            if (
                readback.ok
                and readback.data is not None
                and np.array_equal(
                    np.asarray(readback.data["entries"], dtype=np.int16),
                    np.asarray(entries, dtype=np.int16),
                )
            ):
                report.verified_blocks += 1
                return
        raise DistributionError(
            f"switch {sw.name!r} block {block} failed read-back"
            f" verification after {self.verify_attempts} attempts"
        )

    def _rollback(
        self, undo: List[Tuple[Switch, int, np.ndarray]]
    ) -> None:
        """Restore the pre-image of every applied write, newest first.

        In transactional mode the restores themselves are read-back
        verified — a rollback write silently corrupted in flight would
        otherwise leave a third state neither old nor new.
        """
        for sw, block, pre in reversed(undo):
            try:
                if self.transactional:
                    self._restore_block_verified(sw, block, pre)
                else:
                    self.sender.send(
                        make_set_lft_block(
                            sw.name, block, pre, directed=self.directed
                        )
                    )
            except TransportError as exc:
                raise DistributionError(
                    f"rollback of switch {sw.name!r} block {block} failed;"
                    " subnet may be inconsistent"
                ) from exc

    def _restore_block_verified(
        self, sw: Switch, block: int, pre: np.ndarray
    ) -> None:
        for _ in range(self.verify_attempts):
            self.sender.send(
                make_set_lft_block(
                    sw.name, block, pre, directed=self.directed
                )
            )
            readback = self.sender.send(
                Smp(
                    SmpMethod.GET,
                    SmpKind.LFT_BLOCK,
                    sw.name,
                    payload={"block": block},
                    directed=self.directed,
                )
            )
            if (
                readback.ok
                and readback.data is not None
                and np.array_equal(
                    np.asarray(readback.data["entries"], dtype=np.int16),
                    np.asarray(pre, dtype=np.int16),
                )
            ):
                return
        raise TransportError(
            f"restore of switch {sw.name!r} block {block} failed read-back"
            f" verification after {self.verify_attempts} attempts"
        )

    def pending_blocks(self, tables: RoutingTables) -> int:
        """Count the block writes a diff distribution of *tables* would
        send, without sending anything.

        The HA acceptance check compares a light failover sweep's actual
        block writes against this figure: a successor whose journal was
        current must never program more than the pending diff.
        """
        top_lid = tables.top_lid
        width = (lft_block_of(top_lid) + 1) * LFT_BLOCK_SIZE
        plan, _ = self._diff_plan(tables, False, width)
        return sum(len(blocks) for _, blocks, _ in plan)

    @staticmethod
    def _used_blocks(desired: np.ndarray) -> List[int]:
        mask = (desired != LFT_UNSET).reshape(-1, LFT_BLOCK_SIZE)
        return np.nonzero(mask.any(axis=1))[0].tolist()

    @staticmethod
    def _changed_blocks(current: np.ndarray, desired: np.ndarray) -> List[int]:
        cur = np.full(len(desired), LFT_UNSET, dtype=np.int16)
        cur[: len(current)] = current
        mask = (cur != desired).reshape(-1, LFT_BLOCK_SIZE)
        return np.nonzero(mask.any(axis=1))[0].tolist()
