"""The subnet manager: OpenSM's role in the reproduction.

Ties together discovery, LID assignment, routing and LFT distribution, and
offers the *traditional* full-reconfiguration baseline the paper compares
against (section VI-A): recompute all paths, redistribute all LFT blocks —
``RC_t = PC_t + LFTD_t`` (equation (1)/(3)).

The vSwitch-specific fast path (swap/copy single entries, equation (4)/(5))
deliberately does NOT live here: it is the paper's contribution and is
implemented in :mod:`repro.core.reconfig`, driving this SM's transport and
tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.errors import RoutingError, TopologyError
from repro.fabric.node import Switch
from repro.fabric.topology import Topology, TopologyMutation
from repro.mad.transport import SmpTransport
from repro.obs.hub import get_hub, span
from repro.sm.discovery import DiscoveryReport, discover_subnet
from repro.sm.lft_distribution import DistributionReport, LftDistributor
from repro.sm.lid_manager import LidManager
from repro.sm.routing.base import RoutingAlgorithm, RoutingRequest, RoutingTables
from repro.sm.routing.cache import RoutingState
from repro.sm.routing.registry import create_engine

__all__ = ["ConfigureReport", "SubnetManager"]


@dataclass
class ConfigureReport:
    """Cost breakdown of one (re)configuration — the paper's RC_t.

    A failover additionally accounts the SMInfo handshake traffic
    (heartbeat/HANDOVER/ACKNOWLEDGE exchanges) and tags which sweep the
    successor paid: ``"light"`` (journal current: verify sweep plus the
    pending diff) or ``"heavy"`` (stale journal: full rediscovery and
    recompute). Downtime figures must include this traffic — the
    companion work's SM restart pays it too.
    """

    path_compute_seconds: float = 0.0  # PC_t
    distribution: DistributionReport = field(default_factory=DistributionReport)
    discovery: Optional[DiscoveryReport] = None
    #: SMInfo handshake SMPs spent negotiating a failover (heartbeats,
    #: HANDOVER/ACKNOWLEDGE, fencing probe). Zero outside failovers.
    handshake_smps: int = 0
    handshake_seconds: float = 0.0
    #: ``""`` for ordinary reconfigurations, else ``"light"``/``"heavy"``.
    sweep_mode: str = ""
    #: Journal entries the successor replayed to reconstruct state.
    journal_entries_replayed: int = 0
    #: How the routing cache absorbed a topology change: ``"incremental"``
    #: (event-chain repair, only affected BFS trees reswept), ``"full"``
    #: (chain broken, complete recompute) or ``"warm"`` (switch graph
    #: untouched). ``""`` outside :meth:`SubnetManager.handle_topology_change`.
    repair_mode: str = ""
    #: BFS source trees the incremental repair actually reswept.
    sources_repaired: int = 0

    @property
    def lft_smps(self) -> int:
        """SubnSet(LFT) SMPs sent (the n*m term)."""
        return self.distribution.smps_sent

    @property
    def control_smps(self) -> int:
        """Every SMP this operation cost: distribution, discovery sweep,
        and SMInfo handshake — the honest failover-traffic figure."""
        discovered = self.discovery.smps_sent if self.discovery else 0
        return self.distribution.smps_sent + discovered + self.handshake_smps

    @property
    def total_seconds_serial(self) -> float:
        """RC_t with serial SMP issue (equation (3))."""
        return self.path_compute_seconds + self.distribution.serial_time

    @property
    def total_seconds_pipelined(self) -> float:
        """RC_t with the SM's LFT pipelining (section VI-B)."""
        return self.path_compute_seconds + self.distribution.pipelined_time

    @property
    def downtime_seconds_serial(self) -> float:
        """Serial RC_t plus discovery and handshake time — what the
        subnet actually went without a master for during a failover."""
        discovered = self.discovery.serial_time if self.discovery else 0.0
        return self.total_seconds_serial + discovered + self.handshake_seconds


class SubnetManager:
    """An OpenSM-like subnet manager bound to one topology."""

    def __init__(
        self,
        topology: Topology,
        *,
        engine: Union[str, RoutingAlgorithm] = "minhop",
        built: Optional[object] = None,
        transport: Optional[SmpTransport] = None,
        pipeline_window: int = 8,
        lft_smp_directed: bool = True,
        fallback_engine: Optional[str] = None,
        workers: int = 1,
    ) -> None:
        self.topology = topology
        self.built = built
        self.engine: RoutingAlgorithm = (
            create_engine(engine) if isinstance(engine, str) else engine
        )
        #: Engine to retry with when the primary cannot route the fabric —
        #: OpenSM's behaviour when e.g. ftree meets a degraded non-tree.
        self.fallback_engine: Optional[RoutingAlgorithm] = (
            create_engine(fallback_engine) if fallback_engine else None
        )
        self.transport = transport or SmpTransport(topology)
        #: What control-plane code actually sends through. Defaults to the
        #: raw transport (the exact pre-resilience behavior);
        #: :meth:`enable_resilience` swaps in a retransmitting
        #: :class:`~repro.mad.reliable.ReliableSmpSender`.
        self.smp_sender = self.transport
        #: Shared versioned routing cache: the engines' all-pairs distances
        #: and candidate arrays, the transport's SM-root BFS row, and the
        #: incremental post-failure repair state all live here.
        self.routing_state = RoutingState(topology, workers=workers)
        self.transport.set_distance_source(self.routing_state)
        self.lid_manager = LidManager(topology)
        self.distributor = LftDistributor(
            topology,
            self.transport,
            pipeline_window=pipeline_window,
            directed=lft_smp_directed,
        )
        self.current_tables: Optional[RoutingTables] = None
        self.last_request: Optional[RoutingRequest] = None
        #: High-availability manager, once attached (see
        #: :class:`repro.sm.ha.HighAvailabilityManager`). When set, the SM
        #: journals LID/routing/distribution changes for hot-standby
        #: replication.
        self.ha = None

    # -- resilience -----------------------------------------------------------

    def enable_resilience(self, policy=None, *, transactional: bool = True):
        """Turn on the lossy-fabric survival kit.

        Wraps the transport in a retransmitting
        :class:`~repro.mad.reliable.ReliableSmpSender` (MAD timeout +
        capped exponential backoff; *policy* is a
        :class:`~repro.mad.reliable.RetryPolicy`) and, unless
        ``transactional=False``, flips the distributor into
        read-back-verified, complete-or-rollback mode. Without faults
        injected the reliable path sends exactly the same SMPs as before
        (retries only ever trigger on a timeout), so enabling this on a
        healthy fabric changes no report. Returns the sender.
        """
        from repro.mad.reliable import ReliableSmpSender

        if not isinstance(self.smp_sender, ReliableSmpSender):
            self.smp_sender = ReliableSmpSender(self.transport, policy)
        elif policy is not None:
            self.smp_sender.policy = policy
        self.distributor.sender = self.smp_sender
        self.distributor.transactional = transactional
        return self.smp_sender

    # -- configuration steps -------------------------------------------------

    def discover(self) -> DiscoveryReport:
        """Directed-route sweep of the fabric."""
        return discover_subnet(self.topology, self.smp_sender)

    def assign_lids(self) -> Dict[str, int]:
        """Base LID assignment for switches and HCAs."""
        mapping = self.lid_manager.assign_base_lids()
        if self.ha is not None and mapping:
            self.ha.note_lids(mapping)
        return mapping

    def compute_routing(self) -> RoutingTables:
        """Run the engine; stores and returns the tables (PCt stamped).

        Falls back to :attr:`fallback_engine` (when configured) if the
        primary engine raises a :class:`~repro.errors.RoutingError`.
        """
        request = RoutingRequest.from_topology(
            self.topology, built=self.built, state=self.routing_state
        )
        cache_before = self.routing_state.stats.snapshot()
        with span("path_compute", engine=self.engine.name) as sp:
            try:
                tables = self.engine.timed_compute(request)
            except RoutingError:
                if self.fallback_engine is None:
                    raise
                tables = self.fallback_engine.timed_compute(request)
                tables.metadata["fallback_from"] = self.engine.name
                sp.set_attribute("fallback_to", self.fallback_engine.name)
            sp.set_attribute("seconds", tables.compute_seconds)
            delta = self.routing_state.stats.delta_since(cache_before)
            sp.set_attribute("cache_hit", delta["misses"] == 0)
            sp.set_attribute("bfs_sweeps", delta["bfs_sweeps"])
            sp.set_attribute("sources_repaired", delta["sources_repaired"])
            sp.set_attribute("workers", self.routing_state.router.workers)
            sp.set_attribute(
                "compute_mode", self.routing_state.router.last_mode
            )
        metrics = get_hub().metrics
        metrics.counter("repro_path_computations_total").add(1)
        metrics.gauge(
            "repro_path_compute_seconds", engine=self.engine.name
        ).set(tables.compute_seconds)
        metrics.counter("repro_routing_cache_hits_total").add(delta["hits"])
        metrics.counter("repro_routing_cache_misses_total").add(
            delta["misses"]
        )
        metrics.counter("repro_routing_cache_repairs_total").add(
            delta["repairs"]
        )
        metrics.counter("repro_routing_bfs_sweeps_total").add(
            delta["bfs_sweeps"]
        )
        metrics.counter("repro_routing_repair_sources_total").add(
            delta["sources_repaired"]
        )
        self.current_tables = tables
        self.last_request = request
        if self.ha is not None:
            self.ha.note_tables(tables)
        return tables

    def distribute(self, *, force_full: bool = False) -> DistributionReport:
        """Send the current tables to the switches."""
        if self.current_tables is None:
            raise RoutingError("no routing computed yet")
        report = self.distributor.distribute(
            self.current_tables, force_full=force_full
        )
        if self.ha is not None:
            self.ha.note_distribution(self.current_tables, report)
        return report

    # -- high-level flows -------------------------------------------------------

    def initial_configure(self, *, with_discovery: bool = True) -> ConfigureReport:
        """Bring a fresh subnet up: discover, assign LIDs, route, distribute."""
        report = ConfigureReport()
        with span("initial_configure", engine=self.engine.name):
            if with_discovery:
                report.discovery = self.discover()
            self.assign_lids()
            tables = self.compute_routing()
            report.path_compute_seconds = tables.compute_seconds
            report.distribution = self.distribute()
        self._expose(report, phase="initial_configure")
        return report

    def full_reconfigure(self) -> ConfigureReport:
        """The traditional baseline: recompute everything, resend every block.

        This is what a LID change would trigger without the paper's
        mechanism — the several-minutes path the vSwitch reconfiguration
        eliminates.
        """
        report = ConfigureReport()
        with span("full_reconfigure", engine=self.engine.name):
            tables = self.compute_routing()
            report.path_compute_seconds = tables.compute_seconds
            report.distribution = self.distribute(force_full=True)
        self._expose(report, phase="full_reconfigure")
        return report

    def incremental_reroute(self) -> ConfigureReport:
        """Recompute paths but send only changed blocks (diff distribution)."""
        report = ConfigureReport()
        with span("incremental_reroute", engine=self.engine.name):
            tables = self.compute_routing()
            report.path_compute_seconds = tables.compute_seconds
            report.distribution = self.distribute(force_full=False)
        self._expose(report, phase="incremental_reroute")
        return report

    def handle_link_failure(self, link) -> ConfigureReport:
        """React to a failed inter-switch cable.

        The SM unplugs the cable, re-sweeps (heavy-sweep style), recomputes
        paths and distributes only the changed LFT blocks. This is the
        *legitimate* use of reconfiguration the paper contrasts with VM
        migration: a topology change genuinely requires path recomputation,
        a moved LID does not.

        Raises :class:`~repro.errors.TopologyError` (from validation) if
        the failure partitions the switch fabric.
        """
        # Capture the endpoint switch indices before unplugging: the
        # routing cache repairs only the BFS trees whose shortest paths
        # could have crossed this cable.
        end_a, end_b = link.ends
        u = end_a.node.index if isinstance(end_a.node, Switch) else -1
        v = end_b.node.index if isinstance(end_b.node, Switch) else -1
        # remove_link bumps the version exactly once (sw-sw cables only),
        # so the note below completes an unbroken repair chain; an HCA
        # cable failure leaves the switch graph — and the cache — warm.
        self.topology.remove_link(link)
        self.transport.invalidate_distances()
        if u >= 0 and v >= 0:
            self.routing_state.note_link_failure(u, v)
        self.topology.validate()
        report = ConfigureReport()
        with span("link_failure_reroute"):
            report.discovery = self.discover()
            tables = self.compute_routing()
            report.path_compute_seconds = tables.compute_seconds
            report.distribution = self.distribute()
        self._expose(report, phase="link_failure")
        return report

    def handle_switch_failure(self, switch) -> ConfigureReport:
        """React to a dead (non-leaf) switch: remove it and reroute.

        The switch's LID is released, its cables unplugged, the remaining
        fabric validated (a partition aborts), and a fresh routing
        distributed. Raises :class:`~repro.errors.TopologyError` if the
        switch hosts HCAs (leaf failures strand hosts — a virtualization-
        layer problem, not a routing one).
        """
        if switch.lid is not None and self.topology.port_of_lid(switch.lid):
            self.lid_manager.release_lid(switch.lid)
            switch.lid = None
        failed_index = switch.index
        self.topology.remove_switch(switch)
        self.routing_state.note_switch_removal(failed_index)
        self.transport.invalidate_distances()
        self.topology.validate()
        report = ConfigureReport()
        with span("switch_failure_reroute", switch=switch.name):
            report.discovery = self.discover()
            tables = self.compute_routing()
            report.path_compute_seconds = tables.compute_seconds
            report.distribution = self.distribute()
        self._expose(report, phase="switch_failure")
        return report

    # -- live topology mutation --------------------------------------------------

    def apply_topology_mutation(self, mutation: TopologyMutation):
        """Apply one planned topology change to the subnet state.

        Mutates the topology, records the matching routing-cache repair
        event(s), assigns LIDs to new elements, keeps the builder's level
        metadata total, journals the mutation for hot standbys and counts
        it in ``repro_topology_mutations_total``. Returns the affected
        :class:`~repro.fabric.link.Link` or
        :class:`~repro.fabric.node.Switch`.

        This is the *state* half only — no SMPs are sent. Use
        :meth:`handle_topology_change` for the full converge-and-verify
        flow, or call this from a deferred trap pipeline and reroute in a
        batch later.
        """
        topology = self.topology
        result: object
        if mutation.kind in ("add_link", "restore_link"):
            node_a = topology.node(mutation.a)
            node_b = topology.node(mutation.b)
            result = topology.add_link(
                node_a,
                mutation.port_a,
                node_b,
                mutation.port_b,
                latency=mutation.latency,
            )
            if isinstance(node_a, Switch) and isinstance(node_b, Switch):
                if mutation.kind == "restore_link":
                    self.routing_state.note_link_restored(
                        node_a.index, node_b.index
                    )
                else:
                    self.routing_state.note_link_addition(
                        node_a.index, node_b.index
                    )
        elif mutation.kind == "remove_link":
            port = topology.node(mutation.a).port(mutation.port_a)
            link = port.link
            if link is None:
                raise TopologyError(
                    f"no cable at {mutation.a}:{mutation.port_a} to remove"
                )
            end_a, end_b = link.ends
            u = end_a.node.index if isinstance(end_a.node, Switch) else -1
            v = end_b.node.index if isinstance(end_b.node, Switch) else -1
            result = topology.remove_link(link)
            if u >= 0 and v >= 0:
                self.routing_state.note_link_failure(u, v)
        elif mutation.kind == "add_switch":
            sw = topology.add_switch(mutation.a, mutation.num_ports)
            self.routing_state.note_switch_addition(sw.index)
            for local_port, peer_name, peer_port in mutation.cables:
                peer = topology.node(peer_name)
                topology.add_link(sw, local_port, peer, peer_port)
                if isinstance(peer, Switch):
                    self.routing_state.note_link_addition(
                        sw.index, peer.index
                    )
            level = getattr(self.built, "level", None)
            if mutation.level >= 0 and isinstance(level, dict):
                level[sw.name] = mutation.level
            self.assign_lids()
            result = sw
        elif mutation.kind == "remove_switch":
            sw = topology.node(mutation.a)
            if not isinstance(sw, Switch):
                raise TopologyError(f"{mutation.a!r} is not a switch")
            if sw.attached_hcas():
                raise TopologyError(
                    f"{sw.name!r} still has HCAs attached;"
                    " evacuate them first"
                )
            if sw.lid is not None and topology.port_of_lid(sw.lid):
                self.lid_manager.release_lid(sw.lid)
                sw.lid = None
            removed_index = sw.index
            topology.remove_switch(sw)
            self.routing_state.note_switch_removal(removed_index)
            level = getattr(self.built, "level", None)
            if isinstance(level, dict):
                level.pop(sw.name, None)
            result = sw
        else:  # pragma: no cover - TopologyMutation validates kinds
            raise TopologyError(f"unknown mutation kind {mutation.kind!r}")
        get_hub().metrics.counter(
            "repro_topology_mutations_total", kind=mutation.kind
        ).add(1)
        if self.ha is not None:
            self.ha.note_topology(mutation.as_dict())
        return result

    def handle_topology_change(
        self, mutation: TopologyMutation, *, verify: bool = True
    ) -> ConfigureReport:
        """Apply a mutation and converge the subnet on it.

        The runtime analogue of :meth:`initial_configure` for a living
        fabric: apply the change, re-sweep, recompute paths (repaired
        incrementally whenever the event chain allows) and distribute
        only the changed LFT blocks. With ``verify=True`` (the default) a
        full :func:`~repro.analysis.verification.verify_subnet` audit
        runs afterwards and raises on any delivery or consistency fault —
        every mutation is followed by proof of convergence.
        """
        # Snapshot BEFORE applying: journal-replication SMPs sent while
        # the mutation is applied already pull repaired distances.
        before = self.routing_state.stats.snapshot()
        self.apply_topology_mutation(mutation)
        self.transport.invalidate_distances()
        self.topology.validate()
        report = ConfigureReport()
        with span("topology_change", kind=mutation.kind) as sp:
            report.discovery = self.discover()
            tables = self.compute_routing()
            report.path_compute_seconds = tables.compute_seconds
            report.distribution = self.distribute()
            delta = self.routing_state.stats.delta_since(before)
            if delta["full_recomputes"]:
                report.repair_mode = "full"
            elif delta["repairs"]:
                report.repair_mode = "incremental"
            else:
                report.repair_mode = "warm"
            report.sources_repaired = delta["sources_repaired"]
            sp.set_attribute("repair_mode", report.repair_mode)
            sp.set_attribute("sources_repaired", report.sources_repaired)
        get_hub().metrics.counter(
            "repro_routing_repair_mode_total", mode=report.repair_mode
        ).add(1)
        self._expose(report, phase="topology_change")
        if verify:
            # Function-local import: analysis.verification imports this
            # module at load time.
            from repro.analysis.verification import verify_subnet

            verify_subnet(self).raise_if_failed()
        return report

    def _expose(self, report: ConfigureReport, *, phase: str) -> None:
        """Publish one reconfiguration's cost breakdown as labeled gauges."""
        metrics = get_hub().metrics
        metrics.gauge("repro_reconfig_lft_smps", phase=phase).set(
            report.lft_smps
        )
        metrics.gauge("repro_reconfig_switches_updated", phase=phase).set(
            report.distribution.switches_updated
        )
        metrics.gauge(
            "repro_reconfig_path_compute_seconds", phase=phase
        ).set(report.path_compute_seconds)
        metrics.gauge("repro_reconfig_serial_seconds", phase=phase).set(
            report.total_seconds_serial
        )
        metrics.gauge("repro_reconfig_pipelined_seconds", phase=phase).set(
            report.total_seconds_pipelined
        )

    # -- introspection ------------------------------------------------------------

    @property
    def num_switches(self) -> int:
        """The paper's ``n``."""
        return self.topology.num_switches

    @property
    def lids_consumed(self) -> int:
        """Currently assigned LIDs."""
        return self.lid_manager.lids_consumed
