"""Fabric event traps: how the SM learns that something broke.

Switches report port-state changes to the master SM with Trap MADs (IBA
traps 128/129-style). The event manager records the traps, debounces the
two reports a single cable failure produces (one from each end), and
triggers the SM's reaction — the *legitimate* heavy reconfiguration the
paper contrasts with migration-triggered ones.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import List

from repro.errors import ReproError
from repro.fabric.link import Link
from repro.fabric.node import Switch
from repro.sm.subnet_manager import ConfigureReport, SubnetManager

__all__ = ["TrapType", "TrapRecord", "FabricEventManager"]


class TrapType(enum.Enum):
    """Modelled trap numbers (IBA 13.4.9)."""

    LINK_STATE_DOWN = 128
    LINK_STATE_UP = 129


@dataclass(frozen=True)
class TrapRecord:
    """One trap notice received by the SM."""

    seq: int
    trap: TrapType
    reporter: str  # switch that noticed
    port: int


class FabricEventManager:
    """Receives fabric traps and drives the SM's reaction."""

    def __init__(self, sm: SubnetManager) -> None:
        self.sm = sm
        self.traps: List[TrapRecord] = []
        self._seq = itertools.count(1)
        #: Reconfigurations performed in reaction to traps.
        self.reactions: List[ConfigureReport] = []

    # -- trap ingestion -------------------------------------------------------

    def _record(self, trap: TrapType, reporter: str, port: int) -> TrapRecord:
        rec = TrapRecord(
            seq=next(self._seq), trap=trap, reporter=reporter, port=port
        )
        self.traps.append(rec)
        return rec

    def traps_of(self, trap: TrapType) -> List[TrapRecord]:
        """All received traps of one type, in arrival order."""
        return [t for t in self.traps if t.trap is trap]

    # -- events ------------------------------------------------------------------

    def link_down(self, link: Link) -> ConfigureReport:
        """A cable died: both switch ends trap, the SM reroutes once.

        Raises :class:`~repro.errors.TopologyError` if the failure would
        partition the switch fabric (the SM refuses and the cable must be
        fixed instead).
        """
        ends = [p for p in link.ends if isinstance(p.node, Switch)]
        if not ends:
            raise ReproError("link_down models inter-switch cables only")
        for port in ends:
            self._record(TrapType.LINK_STATE_DOWN, port.node.name, port.num)
        report = self.sm.handle_link_failure(link)
        self.reactions.append(report)
        return report

    def link_up(self, a, port_a: int, b, port_b: int) -> ConfigureReport:
        """A cable was (re)connected: traps, then re-sweep and reroute."""
        link = self.sm.topology.connect(a, port_a, b, port_b)
        for port in link.ends:
            if isinstance(port.node, Switch):
                self._record(
                    TrapType.LINK_STATE_UP, port.node.name, port.num
                )
        self.sm.transport.invalidate_distances()
        report = ConfigureReport()
        report.discovery = self.sm.discover()
        tables = self.sm.compute_routing()
        report.path_compute_seconds = tables.compute_seconds
        report.distribution = self.sm.distribute()
        self.reactions.append(report)
        return report

    @property
    def reaction_count(self) -> int:
        """How many reconfigurations traps have triggered."""
        return len(self.reactions)
