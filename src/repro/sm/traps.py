"""Fabric event traps: how the SM learns that something broke.

Switches report port-state changes to the master SM with Trap MADs (IBA
traps 128/129-style). The event manager records the traps, debounces the
two reports a single cable failure produces (one from each end), and
triggers the SM's reaction — the *legitimate* heavy reconfiguration the
paper contrasts with migration-triggered ones.

Two ingestion paths exist:

* the **legacy synchronous** path (:meth:`FabricEventManager.link_down` /
  :meth:`~FabricEventManager.link_up`) reroutes once per event, exactly
  as before;
* the **hardened deferred** path (:meth:`~FabricEventManager.report_link_down`
  / :meth:`~FabricEventManager.report_link_up` +
  :meth:`~FabricEventManager.pump`) models the VL15 trap pipeline of a
  production SM: trap notices ride a **bounded queue** (VL15 is
  unacknowledged — overflow loses notices and forces a full sweep),
  repeated flaps of the same link **coalesce** (a down immediately
  followed by an up cancels out — no reroute at all), links flapping
  above the storm threshold are **throttled** for one pump, and
  everything still pending at pump time is batched into **one**
  incremental reroute instead of one per event.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError, TopologyError
from repro.fabric.link import Link
from repro.fabric.node import Switch
from repro.fabric.topology import TopologyMutation
from repro.mad.smp import Smp, SmpKind, SmpMethod
from repro.obs.hub import get_hub, span
from repro.sm.subnet_manager import ConfigureReport, SubnetManager

__all__ = ["TrapType", "TrapRecord", "PendingEvent", "FabricEventManager"]


class TrapType(enum.Enum):
    """Modelled trap numbers (IBA 13.4.9).

    ``IN_SERVICE``/``OUT_OF_SERVICE`` are the IBA 64/65 pair: an element
    joined or left the subnet — raised by the deferred ingestion of
    *planned* topology mutations (:meth:`FabricEventManager.\
report_topology_change`), as opposed to the 128/129 port-state pair a
    failing cable raises on its own. ``CONGESTION`` is not a wire trap:
    it is the PerfManager's threshold event (OpenSM's perfmgr raises the
    analogous internal event when a swept counter crosses its configured
    threshold), routed through the same event manager so chaos runs see
    congestion next to link state.
    """

    IN_SERVICE = 64
    OUT_OF_SERVICE = 65
    LINK_STATE_DOWN = 128
    LINK_STATE_UP = 129
    CONGESTION = 144


@dataclass(frozen=True)
class TrapRecord:
    """One trap notice received by the SM."""

    seq: int
    trap: TrapType
    reporter: str  # switch that noticed
    port: int
    #: Event-specific magnitude (congestion: xmit-wait seconds observed
    #: in the window that tripped the threshold). 0.0 for wire traps.
    severity: float = 0.0


@dataclass
class PendingEvent:
    """One coalesced fabric event waiting in the VL15 trap queue."""

    key: Tuple[str, str]
    kind: TrapType
    #: How many raw traps folded into this entry.
    merged: int = 1
    #: Throttled once already — eligible at the next pump regardless.
    deferred: bool = False
    #: Reconnect coordinates, kept for LINK_STATE_UP events.
    endpoints: Optional[Tuple[str, int, str, int]] = None


class FabricEventManager:
    """Receives fabric traps and drives the SM's reaction."""

    def __init__(
        self,
        sm: SubnetManager,
        *,
        queue_capacity: int = 64,
        storm_threshold: int = 3,
    ) -> None:
        if queue_capacity < 1:
            raise ReproError("trap queue capacity must be >= 1")
        if storm_threshold < 1:
            raise ReproError("storm threshold must be >= 1")
        self.sm = sm
        self.traps: List[TrapRecord] = []
        #: Congestion threshold events (TrapType.CONGESTION), arrival order.
        self.congestion_events: List[TrapRecord] = []
        self._seq = itertools.count(1)
        #: Reconfigurations performed in reaction to traps.
        self.reactions: List[ConfigureReport] = []
        #: Bounded VL15 trap queue, keyed by normalized link endpoints.
        #: Dict order (insertion) keeps draining deterministic.
        self.queue_capacity = queue_capacity
        self.storm_threshold = storm_threshold
        self._queue: Dict[Tuple[str, str], PendingEvent] = {}
        #: Raw flap count per link key since the last pump — the storm
        #: detector's signal.
        self._flap_counts: Dict[Tuple[str, str], int] = {}
        #: Queue overflow lost a notice: the next pump cannot trust the
        #: queue to be complete and must sweep regardless.
        self.needs_full_sweep = False
        self.overflows = 0
        #: Down/up pairs that cancelled before any reroute was paid.
        self.traps_coalesced = 0
        #: Events pushed past a pump by the storm throttle.
        self.traps_throttled = 0
        #: Trap notices lost on the (unacknowledged) VL15 path.
        self.traps_lost = 0
        self.pumps = 0

    # -- trap ingestion -------------------------------------------------------

    def _record(
        self,
        trap: TrapType,
        reporter: str,
        port: int,
        *,
        severity: float = 0.0,
    ) -> TrapRecord:
        rec = TrapRecord(
            seq=next(self._seq),
            trap=trap,
            reporter=reporter,
            port=port,
            severity=severity,
        )
        self.traps.append(rec)
        return rec

    def traps_of(self, trap: TrapType) -> List[TrapRecord]:
        """All received traps of one type, in arrival order."""
        return [t for t in self.traps if t.trap is trap]

    # -- telemetry threshold events -------------------------------------------

    def report_congestion(
        self, reporter: str, port: int, *, severity: float = 0.0
    ) -> TrapRecord:
        """A PerfManager threshold event: one port's counters crossed the
        congestion threshold (xmit-wait growth, discards, or saturation).

        Unlike link-state traps this is SM-internal — no Notice MAD rides
        VL15 and no reroute is queued; the event is recorded so operators
        (and chaos reports) see congestion alongside link state.
        """
        rec = self._record(
            TrapType.CONGESTION, reporter, port, severity=severity
        )
        self.congestion_events.append(rec)
        get_hub().metrics.counter(
            "repro_telemetry_congestion_events_total"
        ).add(1)
        return rec

    # -- legacy synchronous events --------------------------------------------

    def link_down(self, link: Link) -> ConfigureReport:
        """A cable died: both switch ends trap, the SM reroutes once.

        Raises :class:`~repro.errors.TopologyError` if the failure would
        partition the switch fabric (the SM refuses and the cable must be
        fixed instead).
        """
        ends = [p for p in link.ends if isinstance(p.node, Switch)]
        if not ends:
            raise ReproError("link_down models inter-switch cables only")
        for port in ends:
            self._record(TrapType.LINK_STATE_DOWN, port.node.name, port.num)
        report = self.sm.handle_link_failure(link)
        self.reactions.append(report)
        return report

    def link_up(self, a, port_a: int, b, port_b: int) -> ConfigureReport:
        """A cable was (re)connected: traps, then re-sweep and reroute."""
        link = self.sm.topology.connect(a, port_a, b, port_b)
        for port in link.ends:
            if isinstance(port.node, Switch):
                self._record(
                    TrapType.LINK_STATE_UP, port.node.name, port.num
                )
        end_a, end_b = link.ends
        if isinstance(end_a.node, Switch) and isinstance(end_b.node, Switch):
            # The connect bumped the version once; this note completes
            # the repair chain so a heal costs an incremental repair, not
            # a full recompute.
            self.sm.routing_state.note_link_restored(
                end_a.node.index, end_b.node.index
            )
        self.sm.transport.invalidate_distances()
        report = ConfigureReport()
        report.discovery = self.sm.discover()
        tables = self.sm.compute_routing()
        report.path_compute_seconds = tables.compute_seconds
        report.distribution = self.sm.distribute()
        self.reactions.append(report)
        return report

    # -- hardened deferred pipeline -------------------------------------------

    @staticmethod
    def _link_key(name_a: str, name_b: str) -> Tuple[str, str]:
        return (name_a, name_b) if name_a <= name_b else (name_b, name_a)

    def _notice(self, trap: TrapType, reporter: str, port: int) -> None:
        """Deliver one trap notice to the SM over VL15.

        Notices are unacknowledged: a lost SMP is only counted — the
        reporting port keeps resending until the SM represses the notice,
        so the *event* still lands in the queue either way.
        """
        self._record(trap, reporter, port)
        result = self.sm.transport.send(
            Smp(
                SmpMethod.SET,
                SmpKind.NOTICE,
                self.sm.transport.sm_node.name,
                payload={
                    "trap": trap.value,
                    "reporter": reporter,
                    "port": port,
                },
            )
        )
        if not result.ok:
            self.traps_lost += 1
            get_hub().metrics.counter("repro_traps_lost_total").add(1)

    def _enqueue(self, event: PendingEvent) -> None:
        """Queue one event, coalescing and bounding.

        An opposite-kind event already pending for the same link cancels
        both out (the flap never surfaced to the routing layer); queueing
        past capacity drops the notice and forces a full sweep at the
        next pump.
        """
        metrics = get_hub().metrics
        self._flap_counts[event.key] = self._flap_counts.get(event.key, 0) + 1
        pending = self._queue.get(event.key)
        if pending is not None:
            if pending.kind is event.kind:
                pending.merged += event.merged
                metrics.counter("repro_traps_coalesced_total").add(1)
                self.traps_coalesced += 1
            else:
                # down + up (or up + down) — net no-op, drop both.
                del self._queue[event.key]
                metrics.counter("repro_traps_coalesced_total").add(1)
                self.traps_coalesced += 1
            return
        if len(self._queue) >= self.queue_capacity:
            self.overflows += 1
            self.needs_full_sweep = True
            metrics.counter("repro_trap_queue_overflows_total").add(1)
            return
        self._queue[event.key] = event

    def report_link_down(self, link: Link) -> None:
        """Deferred link failure: the cable dies *now*, the reroute waits.

        The topology change is immediate (packets blackhole until the
        next :meth:`pump`, like on a real fabric); the trap notices ride
        VL15 into the bounded queue. Raises
        :class:`~repro.errors.TopologyError` — with the cable replugged —
        if the cut would partition the switch fabric.
        """
        ends = [p for p in link.ends if isinstance(p.node, Switch)]
        if not ends:
            raise ReproError(
                "report_link_down models inter-switch cables only"
            )
        end_a, end_b = link.ends
        a, pa = end_a.node, end_a.num
        b, pb = end_b.node, end_b.num
        u = a.index if isinstance(a, Switch) else -1
        v = b.index if isinstance(b, Switch) else -1
        self.sm.topology.remove_link(link)
        self.sm.transport.invalidate_distances()
        if u >= 0 and v >= 0:
            self.sm.routing_state.note_link_failure(u, v)
        try:
            self.sm.topology.validate()
        except TopologyError:
            # The cut would partition the fabric: refuse, replug. The
            # restore note pairs with the failure note above, so the two
            # events chain into a (cheap) no-op repair.
            self.sm.topology.connect(a, pa, b, pb)
            self.sm.transport.invalidate_distances()
            if u >= 0 and v >= 0:
                self.sm.routing_state.note_link_restored(u, v)
            raise
        for port in ends:
            self._notice(TrapType.LINK_STATE_DOWN, port.node.name, port.num)
        self._enqueue(
            PendingEvent(
                key=self._link_key(a.name, b.name),
                kind=TrapType.LINK_STATE_DOWN,
            )
        )

    def report_link_up(self, a, port_a: int, b, port_b: int) -> Link:
        """Deferred link recovery: reconnect *now*, reroute at the pump.

        Returns the new :class:`~repro.fabric.link.Link`. If the same
        link's DOWN event is still pending, the pair coalesces away — the
        flap costs zero reroutes, only the trap traffic.
        """
        link = self.sm.topology.connect(a, port_a, b, port_b)
        self.sm.transport.invalidate_distances()
        end_a, end_b = link.ends
        if isinstance(end_a.node, Switch) and isinstance(end_b.node, Switch):
            self.sm.routing_state.note_link_restored(
                end_a.node.index, end_b.node.index
            )
        for port in link.ends:
            if isinstance(port.node, Switch):
                self._notice(
                    TrapType.LINK_STATE_UP, port.node.name, port.num
                )
        name_a = a if isinstance(a, str) else a.name
        name_b = b if isinstance(b, str) else b.name
        self._enqueue(
            PendingEvent(
                key=self._link_key(name_a, name_b),
                kind=TrapType.LINK_STATE_UP,
                endpoints=(name_a, port_a, name_b, port_b),
            )
        )
        return link

    def report_topology_change(self, mutation: "TopologyMutation"):
        """Deferred ingestion of a *planned* topology mutation.

        The subnet state changes now (cables plugged/pulled, switches
        registered, LIDs assigned, cache repair events recorded,
        mutation journaled); the reroute waits for the next :meth:`pump`.
        IN_SERVICE/OUT_OF_SERVICE notices (IBA traps 64/65) ride VL15
        into the queue and an add/remove pair for the same element
        coalesces away like a link flap. A removal that would partition
        the switch fabric is refused: the inverse mutation is applied
        (element re-added with its original cables) and the
        :class:`~repro.errors.TopologyError` re-raised. Returns the
        affected :class:`~repro.fabric.link.Link` or
        :class:`~repro.fabric.node.Switch`.
        """
        inverse: Optional[TopologyMutation] = None
        if mutation.kind == "remove_link":
            inverse = TopologyMutation(
                kind="restore_link",
                a=mutation.a,
                port_a=mutation.port_a,
                b=mutation.b,
                port_b=mutation.port_b,
            )
        elif mutation.kind == "remove_switch":
            sw = self.sm.topology.node(mutation.a)
            level = getattr(self.sm.built, "level", None)
            inverse = TopologyMutation(
                kind="add_switch",
                a=sw.name,
                num_ports=sw.num_ports,
                level=(
                    level.get(sw.name, -1) if isinstance(level, dict) else -1
                ),
                cables=tuple(
                    (p.num, p.remote.node.name, p.remote.num)
                    for p in sw.connected_ports()
                    if p.remote is not None
                ),
            )
        result = self.sm.apply_topology_mutation(mutation)
        self.sm.transport.invalidate_distances()
        if inverse is not None:
            try:
                self.sm.topology.validate()
            except TopologyError:
                self.sm.apply_topology_mutation(inverse)
                self.sm.transport.invalidate_distances()
                raise
        joined = mutation.kind in ("add_link", "restore_link", "add_switch")
        trap = TrapType.IN_SERVICE if joined else TrapType.OUT_OF_SERVICE
        if mutation.kind in ("add_link", "remove_link", "restore_link"):
            key = self._link_key(mutation.a, mutation.b)
            self._notice(trap, mutation.a, mutation.port_a)
            self._notice(trap, mutation.b, mutation.port_b)
        else:
            # Switch events key on ("", name): link keys always carry two
            # non-empty node names, so the spaces cannot collide.
            key = ("", mutation.a)
            self._notice(trap, mutation.a, 0)
        self._enqueue(PendingEvent(key=key, kind=trap))
        return result

    @property
    def pending_events(self) -> int:
        """Events currently waiting in the trap queue."""
        return len(self._queue)

    def pump(self, *, force: bool = False) -> Optional[ConfigureReport]:
        """Drain the trap queue into (at most) one batched reroute.

        Links that flapped more than ``storm_threshold`` times since the
        last pump are throttled: their events stay queued for one extra
        pump (unless ``force``), so a storm settles before the SM pays a
        reroute for it. Returns the reaction report, or ``None`` when
        nothing needed rerouting.
        """
        self.pumps += 1
        ready: List[PendingEvent] = []
        for key in list(self._queue):
            event = self._queue[key]
            flaps = self._flap_counts.get(key, 0)
            if (
                not force
                and flaps > self.storm_threshold
                and not event.deferred
            ):
                event.deferred = True
                self.traps_throttled += 1
                get_hub().metrics.counter(
                    "repro_traps_throttled_total"
                ).add(1)
                continue
            ready.append(event)
            del self._queue[key]
        self._flap_counts = {
            key: 0 for key in self._queue
        }  # surviving (throttled) keys restart their storm window
        if not ready and not self.needs_full_sweep:
            return None
        sweep = self.needs_full_sweep
        self.needs_full_sweep = False
        report = ConfigureReport()
        with span(
            "trap_pump",
            events=len(ready),
            full_sweep=sweep,
            forced=force,
        ):
            report.discovery = self.sm.discover()
            tables = self.sm.compute_routing()
            report.path_compute_seconds = tables.compute_seconds
            report.distribution = self.sm.distribute(force_full=sweep)
        self.reactions.append(report)
        get_hub().metrics.counter("repro_trap_pumps_total").add(1)
        return report

    @property
    def reaction_count(self) -> int:
        """How many reconfigurations traps have triggered."""
        return len(self.reactions)
