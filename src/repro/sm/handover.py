"""Subnet manager redundancy: SMInfo-based master election and handover.

IB subnets run one *master* SM plus standbys. Election follows the SMInfo
attribute: highest priority wins, ties broken by lowest GUID; standbys poll
the master and take over when it disappears. The companion work the paper
builds on (reference [10]) restarts the SM to trigger reconfiguration, so
modelling handover lets the reproduction show why the vSwitch method is
better: a handover inherits the routing state and costs only the polling
SMPs, while a naive restart pays a full traditional reconfiguration.

The vSwitch architecture also removes a Shared Port limitation here: with a
real per-VF QP0, an SM (including a standby) can run *inside a VM*
(section IV-B), which :meth:`SmRedundancyManager.can_host` checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import (
    ReproError,
    SmpTimeoutError,
    TransportError,
    UnreachableTargetError,
)
from repro.fabric.addressing import GUID
from repro.mad.smp import Smp, SmpKind, SmpMethod
from repro.sm.subnet_manager import ConfigureReport, SubnetManager

__all__ = ["SmState", "SmCandidate", "SmRedundancyManager"]


class SmState(enum.Enum):
    """SMInfo states (a subset of the IBA's)."""

    MASTER = "master"
    STANDBY = "standby"
    NOT_ACTIVE = "not-active"


@dataclass
class SmCandidate:
    """One node capable of running a subnet manager."""

    node_name: str
    guid: GUID
    priority: int = 0
    state: SmState = SmState.NOT_ACTIVE
    alive: bool = True

    def election_key(self):
        """Higher priority wins; ties broken by lowest GUID."""
        return (-self.priority, self.guid)


class SmRedundancyManager:
    """Tracks SM candidates, elects masters and performs handovers."""

    def __init__(self, sm: SubnetManager) -> None:
        self.sm = sm
        self._candidates: Dict[str, SmCandidate] = {}
        self.handovers = 0

    # -- membership ---------------------------------------------------------

    def register(
        self, node_name: str, guid: GUID, *, priority: int = 0
    ) -> SmCandidate:
        """Add an SM candidate (a node with usable QP0 access)."""
        if node_name in self._candidates:
            raise ReproError(f"{node_name} already registered as SM candidate")
        cand = SmCandidate(node_name=node_name, guid=guid, priority=priority)
        self._candidates[node_name] = cand
        return cand

    @staticmethod
    def can_host(function) -> bool:
        """Whether an SM may run behind this PF/VF.

        True for any vSwitch function (real QP0), False for Shared Port
        VFs whose QP0 discards SMPs (section IV-A).
        """
        return bool(function.can_run_sm)

    def candidates(self) -> List[SmCandidate]:
        """All registered candidates, election order first."""
        return sorted(self._candidates.values(), key=SmCandidate.election_key)

    @property
    def master(self) -> Optional[SmCandidate]:
        """The current master, if any."""
        for cand in self._candidates.values():
            if cand.state is SmState.MASTER:
                return cand
        return None

    # -- election ------------------------------------------------------------

    def elect(self) -> SmCandidate:
        """(Re-)run the election among alive candidates."""
        alive = [c for c in self._candidates.values() if c.alive]
        if not alive:
            raise ReproError("no alive SM candidate")
        winner = min(alive, key=SmCandidate.election_key)
        for cand in self._candidates.values():
            if not cand.alive:
                cand.state = SmState.NOT_ACTIVE
            elif cand is winner:
                cand.state = SmState.MASTER
            else:
                cand.state = SmState.STANDBY
        self.sm.transport.set_sm_node(self.sm.topology.node(winner.node_name))
        return winner

    def poll_master(self) -> bool:
        """One standby polling round: SubnGet(SMInfo) to the master.

        The poll is a real SMP through the SM's (possibly resilient)
        sender: a dead master is detected because its SMInfo agent stops
        answering — not by peeking at ground truth. A poll lost after
        retries and an unreachable master are the same verdict: the lease
        was missed. Returns True iff the master answered; False triggers
        no action by itself — call :meth:`handover`.
        """
        master = self.master
        if master is None:
            return False
        try:
            result = self.sm.smp_sender.send(
                Smp(SmpMethod.GET, SmpKind.SM_INFO, master.node_name)
            )
        except (SmpTimeoutError, UnreachableTargetError):
            return False
        return result.ok

    def kill_master(self) -> None:
        """Simulate the master's SM software dying.

        The node's port firmware keeps answering PortInfo/NodeInfo — only
        the SMInfo agent goes silent, which is what standby polls detect.
        """
        master = self.master
        if master is None:
            raise ReproError("no master to kill")
        master.alive = False
        master.state = SmState.NOT_ACTIVE
        self.sm.transport.mark_sm_dead(master.node_name)

    def handover(self, *, resweep: bool = False) -> ConfigureReport:
        """Standby takes over as master.

        With ``resweep=False`` (what a state-sharing OpenSM pair does) the
        new master adopts the existing LID assignments and LFTs: the
        report carries zero path computation and zero LFT SMPs — but NOT
        zero cost. The SMInfo handshake (confirming the peers' states)
        and the verification discovery sweep are real SMPs, accounted in
        ``handshake_smps``/``handshake_seconds`` and ``discovery``; the
        honest total is :attr:`ConfigureReport.control_smps`. With
        ``resweep=True`` it behaves like the naive restart of the
        reference-[10] prototype: full discovery, recompute, and a diff
        distribution (usually still zero changed blocks, but the PCt is
        paid again).
        """
        winner = self.elect()
        self.handovers += 1
        before = self.sm.transport.stats.snapshot()
        # SMInfo handshake: the new master confirms every peer's state
        # (the dead previous master simply times out — that timeout is
        # part of the real takeover cost).
        for cand in self.candidates():
            if cand is winner:
                continue
            try:
                self.sm.smp_sender.send(
                    Smp(SmpMethod.GET, SmpKind.SM_INFO, cand.node_name)
                )
            except TransportError:
                pass
        handshake = self.sm.transport.stats.delta_since(before)
        if not resweep:
            report = ConfigureReport()
            report.sweep_mode = "light"
            report.discovery = self.sm.discover()
        else:
            report = ConfigureReport()
            report.sweep_mode = "heavy"
            report.discovery = self.sm.discover()
            tables = self.sm.compute_routing()
            report.path_compute_seconds = tables.compute_seconds
            report.distribution = self.sm.distribute()
        report.handshake_smps = handshake.total_smps
        report.handshake_seconds = handshake.serial_time
        return report
