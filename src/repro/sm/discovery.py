"""Subnet discovery: the directed-route sweep OpenSM performs at startup.

Before any LFT exists, the SM can only reach nodes with directed-route SMPs
(paper section VI-A). Discovery walks the fabric breadth-first from the SM
node, issuing SubnGet(NodeInfo) per node and SubnGet(PortInfo) per connected
port, and reports what it found plus the SMP cost of finding it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Set

from repro.fabric.node import Node, Switch
from repro.fabric.topology import Topology
from repro.mad.smp import Smp, SmpKind, SmpMethod
from repro.mad.transport import SmpTransport

__all__ = ["DiscoveryReport", "discover_subnet"]


@dataclass
class DiscoveryReport:
    """Outcome of one discovery sweep."""

    switches: List[str] = field(default_factory=list)
    hcas: List[str] = field(default_factory=list)
    smps_sent: int = 0
    serial_time: float = 0.0

    @property
    def num_nodes(self) -> int:
        """Total nodes discovered."""
        return len(self.switches) + len(self.hcas)


def discover_subnet(
    topology: Topology, transport: SmpTransport
) -> DiscoveryReport:
    """Breadth-first directed-route sweep from the SM node."""
    report = DiscoveryReport()
    before = transport.stats.snapshot()
    start: Node = transport.sm_node

    seen: Set[str] = {start.name}
    queue: deque = deque([start])
    while queue:
        node = queue.popleft()
        transport.send(
            Smp(SmpMethod.GET, SmpKind.NODE_INFO, node.name, directed=True)
        )
        if isinstance(node, Switch):
            report.switches.append(node.name)
        else:
            report.hcas.append(node.name)
        for port in node.connected_ports():
            transport.send(
                Smp(
                    SmpMethod.GET,
                    SmpKind.PORT_INFO,
                    node.name,
                    payload={"port": port.num},
                    directed=True,
                )
            )
            peer = port.remote
            assert peer is not None
            if peer.node.name not in seen:
                seen.add(peer.node.name)
                queue.append(peer.node)

    delta = transport.stats.delta_since(before)
    report.smps_sent = delta.total_smps
    report.serial_time = delta.serial_time
    report.switches.sort()
    report.hcas.sort()
    return report
