"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressingError(ReproError):
    """Invalid or exhausted IB address (LID/GUID/GID) operation."""


class LidExhaustedError(AddressingError):
    """The unicast LID space (49151 addresses) has been exhausted."""


class LidInUseError(AddressingError):
    """Attempt to assign a LID that is already held by another port."""


class TopologyError(ReproError):
    """Ill-formed topology operation (bad port, duplicate link, ...)."""


class RoutingError(ReproError):
    """A routing engine could not produce valid forwarding tables."""


class UnreachableLidError(RoutingError):
    """A LID has no path from some switch under the computed routing."""


class DeadlockError(ReproError):
    """A routing function (or transition) admits a channel-dependency cycle."""


class SriovError(ReproError):
    """Invalid SR-IOV function operation (VF exhaustion, bad detach, ...)."""


class VirtError(ReproError):
    """Cloud/virtualization layer error (placement, migration, lifecycle)."""


class CapacityError(VirtError):
    """No free VF anywhere the scheduler may place a VM.

    Retryable from the control plane's point of view: capacity frees up
    when other tenants stop or evacuations complete, so the service layer
    answers these with retry-after rather than a permanent rejection.
    """


class UnknownResourceError(VirtError):
    """A named VM or hypervisor does not exist.

    Permanent as far as retrying the same request goes — the service
    layer fails these immediately instead of burning retry budget.
    """


class DuplicateResourceError(VirtError):
    """A VM with the requested name already exists."""


class MigrationError(VirtError):
    """A live migration could not be carried out."""


class ReconfigError(ReproError):
    """Dynamic reconfiguration failure (unknown LID, no destination VF...)."""


class SimulationError(ReproError):
    """Discrete-event engine misuse (time travel, stopped engine, ...)."""


class TransportError(ReproError):
    """SMP transport failure (unreachable target, exhausted retries, ...)."""


class UnreachableTargetError(TransportError, TopologyError):
    """The SMP's target node does not exist or has no live path/LID.

    Also a :class:`TopologyError` so pre-existing callers that treated a
    send to a dead node as a topology problem keep working.
    """


class SmpTimeoutError(TransportError):
    """An SMP (or its whole retry budget) timed out without a response."""


class StaleGenerationError(TransportError):
    """A fenced write carried an SM generation older than the fabric's.

    Raised by :class:`~repro.mad.reliable.ReliableSmpSender` when the
    transport rejects a SubnSet(LFT/PortInfo) whose generation number is
    behind the fabric's — the split-brain fence stopping a stale master
    (re-emerged after a partition heal) from corrupting routing state.
    Retrying is pointless: the sender must re-run the SMInfo comparison
    and, on losing, demote itself to STANDBY.
    """


class HighAvailabilityError(ReproError):
    """SM high-availability protocol misuse or an unrecoverable HA state
    (no electable standby, replica applied out of order, ...)."""


class FaultInjectionError(ReproError):
    """Invalid fault plan or misuse of the fault-injection layer."""


class DistributionError(ReproError):
    """A transactional LFT distribution could not complete nor roll back."""


class ReconfigRollbackError(ReconfigError):
    """An LFT reconfiguration failed AND its rollback could not restore the
    pre-operation state — the fabric may be inconsistent."""


class StaticAnalysisError(ReproError):
    """A static fabric invariant (loop/deadlock/reachability) is violated."""


class ServiceError(ReproError):
    """Control-plane service misuse or an unrecoverable service state."""


class AdmissionError(ServiceError):
    """A request could not even be formed (bad op, bad parameters)."""


class RecoveryError(ServiceError):
    """A journal replay or reconciliation found state it cannot explain
    (an effect with no intent, a double-applied record, ...)."""


class ServiceKilled(ServiceError):
    """The service worker was killed (chaos ``kill-service`` knob).

    Raised at an armed crash point inside the intent journal; everything
    in the worker's memory is gone, the journal and the fabric survive.
    Callers (the chaos runner, the crash/replay property tests) catch it
    and drive recovery.
    """
