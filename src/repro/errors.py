"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressingError(ReproError):
    """Invalid or exhausted IB address (LID/GUID/GID) operation."""


class LidExhaustedError(AddressingError):
    """The unicast LID space (49151 addresses) has been exhausted."""


class LidInUseError(AddressingError):
    """Attempt to assign a LID that is already held by another port."""


class TopologyError(ReproError):
    """Ill-formed topology operation (bad port, duplicate link, ...)."""


class RoutingError(ReproError):
    """A routing engine could not produce valid forwarding tables."""


class UnreachableLidError(RoutingError):
    """A LID has no path from some switch under the computed routing."""


class DeadlockError(ReproError):
    """A routing function (or transition) admits a channel-dependency cycle."""


class SriovError(ReproError):
    """Invalid SR-IOV function operation (VF exhaustion, bad detach, ...)."""


class VirtError(ReproError):
    """Cloud/virtualization layer error (placement, migration, lifecycle)."""


class MigrationError(VirtError):
    """A live migration could not be carried out."""


class ReconfigError(ReproError):
    """Dynamic reconfiguration failure (unknown LID, no destination VF...)."""


class SimulationError(ReproError):
    """Discrete-event engine misuse (time travel, stopped engine, ...)."""


class TransportError(ReproError):
    """SMP transport failure (unreachable target, exhausted retries, ...)."""


class UnreachableTargetError(TransportError, TopologyError):
    """The SMP's target node does not exist or has no live path/LID.

    Also a :class:`TopologyError` so pre-existing callers that treated a
    send to a dead node as a topology problem keep working.
    """


class SmpTimeoutError(TransportError):
    """An SMP (or its whole retry budget) timed out without a response."""


class StaleGenerationError(TransportError):
    """A fenced write carried an SM generation older than the fabric's.

    Raised by :class:`~repro.mad.reliable.ReliableSmpSender` when the
    transport rejects a SubnSet(LFT/PortInfo) whose generation number is
    behind the fabric's — the split-brain fence stopping a stale master
    (re-emerged after a partition heal) from corrupting routing state.
    Retrying is pointless: the sender must re-run the SMInfo comparison
    and, on losing, demote itself to STANDBY.
    """


class HighAvailabilityError(ReproError):
    """SM high-availability protocol misuse or an unrecoverable HA state
    (no electable standby, replica applied out of order, ...)."""


class FaultInjectionError(ReproError):
    """Invalid fault plan or misuse of the fault-injection layer."""


class DistributionError(ReproError):
    """A transactional LFT distribution could not complete nor roll back."""


class ReconfigRollbackError(ReconfigError):
    """An LFT reconfiguration failed AND its rollback could not restore the
    pre-operation state — the fabric may be inconsistent."""


class StaticAnalysisError(ReproError):
    """A static fabric invariant (loop/deadlock/reachability) is violated."""
