"""Run export and replay: JSONL timelines and span-tree rendering.

``export_run`` persists everything a hub observed — the span forest, the
flight-recorder SMP events and a metrics snapshot reference — as one JSON
Lines file; ``load_run`` reads it back, and ``render_span_tree`` turns a
span forest (live or loaded) into the indented tree the CLI prints.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.obs.flight import SmpFlightEvent
from repro.obs.hub import ObsHub
from repro.obs.spans import Span, SpanEvent

__all__ = [
    "export_run",
    "load_run",
    "LoadedRun",
    "render_span_tree",
    "render_timeline",
]


def export_run(hub: ObsHub, path: Union[str, Path]) -> int:
    """Write the hub's full timeline to *path* as JSONL; returns line count.

    Line types: one ``run`` header, ``span`` lines (depth-first, events
    embedded), and ``smp`` lines from the flight recorder.
    """
    path = Path(path)
    lines = 0
    with path.open("w", encoding="utf-8") as fp:
        header = {
            "type": "run",
            "sim_time": hub.now(),
            "spans": sum(1 for _ in hub.all_spans()),
            "smp_events": len(hub.flight),
            "smp_events_dropped": hub.flight.dropped,
        }
        fp.write(json.dumps(header, default=str))
        fp.write("\n")
        lines += 1
        for sp in hub.all_spans():
            fp.write(json.dumps(sp.to_dict(), default=str))
            fp.write("\n")
            lines += 1
        for event in hub.flight:
            fp.write(json.dumps({"type": "smp", **event.__dict__}))
            fp.write("\n")
            lines += 1
    return lines


class LoadedRun:
    """A run read back from a JSONL export."""

    def __init__(
        self,
        header: Dict[str, Any],
        roots: List[Span],
        smp_events: List[SmpFlightEvent],
    ) -> None:
        self.header = header
        self.roots = roots
        self.smp_events = smp_events

    def find_root(self, name: str) -> Optional[Span]:
        """Most recent root span named *name*."""
        for sp in reversed(self.roots):
            if sp.name == name:
                return sp
        return None


def load_run(path: Union[str, Path]) -> LoadedRun:
    """Read a JSONL run file back into spans and SMP events."""
    path = Path(path)
    header: Dict[str, Any] = {}
    spans: Dict[int, Span] = {}
    order: List[Tuple[Optional[int], Span]] = []
    smp_events: List[SmpFlightEvent] = []
    with path.open("r", encoding="utf-8") as fp:
        for lineno, line in enumerate(fp, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from exc
            kind = obj.get("type")
            if kind == "run":
                header = obj
            elif kind == "span":
                sp = _span_from_dict(obj)
                spans[sp.span_id] = sp
                order.append((obj.get("parent"), sp))
            elif kind == "smp":
                obj.pop("type")
                smp_events.append(SmpFlightEvent(**obj))
            # Unknown line types are skipped for forward compatibility.
    roots: List[Span] = []
    for parent_id, sp in order:
        if parent_id is not None and parent_id in spans:
            spans[parent_id].children.append(sp)
        else:
            roots.append(sp)
    return LoadedRun(header=header, roots=roots, smp_events=smp_events)


def _span_from_dict(obj: Dict[str, Any]) -> Span:
    sp = Span(
        name=obj["name"],
        span_id=int(obj["id"]),
        parent_id=obj.get("parent"),
        start_time=float(obj["start"]),
        end_time=None if obj.get("end") is None else float(obj["end"]),
        attributes=dict(obj.get("attributes") or {}),
        smp_count=int(obj.get("smp_count", 0)),
        lft_smp_count=int(obj.get("lft_smp_count", 0)),
        events_dropped=int(obj.get("events_dropped", 0)),
    )
    for ev in obj.get("events") or []:
        sp.events.append(
            SpanEvent(
                time=float(ev["time"]),
                name=ev["name"],
                attributes=dict(ev.get("attributes") or {}),
            )
        )
    return sp


def render_span_tree(roots: List[Span], *, indent: str = "  ") -> str:
    """An indented, human-readable rendering of a span forest."""
    lines: List[str] = []

    def fmt_attrs(sp: Span) -> str:
        parts = [f"{k}={v}" for k, v in sp.attributes.items()]
        if sp.smp_count:
            parts.append(f"smps={sp.smp_count}")
        if sp.lft_smp_count:
            parts.append(f"lft_smps={sp.lft_smp_count}")
        return f" [{', '.join(parts)}]" if parts else ""

    def walk(sp: Span, depth: int) -> None:
        window = (
            f"{sp.start_time * 1e6:.3f}us"
            + (
                f" +{sp.duration * 1e6:.3f}us"
                if sp.end_time is not None
                else " (open)"
            )
        )
        lines.append(f"{indent * depth}{sp.name} @ {window}{fmt_attrs(sp)}")
        for child in sp.children:
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def render_timeline(
    roots: List[Span],
    smp_events: List[SmpFlightEvent],
    *,
    max_smp_lines: int = 50,
) -> str:
    """A chronological replay: span boundaries and SMPs merged by time."""
    entries: List[Tuple[float, int, str]] = []
    for root in roots:
        for sp in root.iter_tree():
            entries.append((sp.start_time, 0, f"> start {sp.name}"))
            if sp.end_time is not None:
                entries.append((sp.end_time, 2, f"< end   {sp.name}"))
    shown = smp_events[:max_smp_lines]
    for ev in shown:
        tag = "lft" if ev.lft_update else ev.kind
        route = "DR" if ev.directed else "LID"
        entries.append(
            (
                ev.time,
                1,
                f"| smp   {tag} -> {ev.target} ({ev.hops} hops, {route},"
                f" {ev.latency * 1e6:.3f}us)",
            )
        )
    entries.sort(key=lambda e: (e[0], e[1]))
    lines = [f"{t * 1e6:12.3f}us  {text}" for t, _, text in entries]
    hidden = len(smp_events) - len(shown)
    if hidden > 0:
        lines.append(f"... {hidden} more SMP events (pass --smps to raise the cap)")
    return "\n".join(lines)
