"""The observability hub: one process-wide home for spans, SMPs, metrics.

Every instrumented layer reaches the hub through :func:`get_hub` instead
of threading handles through constructors. The hub owns:

* the span forest (roots plus the context-local current span),
* the SMP :class:`~repro.obs.flight.FlightRecorder`,
* a :class:`~repro.sim.metrics.MetricRegistry` for exposition,
* the **sim clock** — cumulative serial SMP time, advanced by the
  transport on every delivery, which timestamps spans and events.

:func:`reset_hub` starts a fresh run (the CLI calls it per command; tests
call it per case).
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import count
from typing import Any, Iterator, List, Optional

from repro.obs.flight import DEFAULT_FLIGHT_CAPACITY, FlightRecorder
from repro.obs.spans import Span, _current
from repro.sim.metrics import MetricRegistry

__all__ = ["ObsHub", "get_hub", "reset_hub", "span"]


class ObsHub:
    """All observability state of one run."""

    def __init__(self, *, flight_capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        self.metrics = MetricRegistry()
        self.flight = FlightRecorder(capacity=flight_capacity)
        self.roots: List[Span] = []
        self._time = 0.0
        self._ids = count(1)

    # -- sim clock -----------------------------------------------------------

    def now(self) -> float:
        """Current sim time (cumulative serial SMP seconds)."""
        return self._time

    def advance(self, dt: float) -> float:
        """Move the sim clock forward; returns the new time."""
        if dt > 0:
            self._time += dt
        return self._time

    # -- spans ---------------------------------------------------------------

    def start_span(self, name: str, **attributes: Any) -> Span:
        """Open a span as a child of the context's current span.

        Prefer the :meth:`span` context manager; use this only when the
        operation's start and end live in different call frames (remember
        to call :meth:`end_span`).
        """
        parent = _current.get()
        sp = Span(
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent else None,
            start_time=self.now(),
            attributes=dict(attributes),
        )
        if parent is not None:
            parent.children.append(sp)
        else:
            self.roots.append(sp)
        sp._token = _current.set(sp)  # type: ignore[attr-defined]
        return sp

    def end_span(self, sp: Span) -> None:
        """Close a span opened with :meth:`start_span`."""
        sp.end(self.now())
        token = getattr(sp, "_token", None)
        if token is not None:
            _current.reset(token)

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Bracket a block in a span; exceptions are recorded and re-raised."""
        sp = self.start_span(name, **attributes)
        try:
            yield sp
        except BaseException as exc:
            sp.set_attribute("error", type(exc).__name__)
            raise
        finally:
            self.end_span(sp)

    def find_root(self, name: str) -> Optional[Span]:
        """Most recent root span named *name*."""
        for sp in reversed(self.roots):
            if sp.name == name:
                return sp
        return None

    def all_spans(self) -> List[Span]:
        """Every recorded span, depth-first across the root forest."""
        out: List[Span] = []
        for root in self.roots:
            out.extend(root.iter_tree())
        return out

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Forget all spans, SMP events and metrics; rewind the clock."""
        self.metrics.reset()
        self.flight.clear()
        self.roots.clear()
        self._time = 0.0
        self._ids = count(1)


_hub = ObsHub()


def get_hub() -> ObsHub:
    """The process-wide hub."""
    return _hub


def reset_hub(*, flight_capacity: Optional[int] = None) -> ObsHub:
    """Start a fresh observability run (optionally resizing the ring)."""
    global _hub
    if flight_capacity is None:
        _hub.reset()
    else:
        _hub = ObsHub(flight_capacity=flight_capacity)
    _current.set(None)
    return _hub


@contextmanager
def span(name: str, **attributes: Any) -> Iterator[Span]:
    """Module-level shorthand for ``get_hub().span(...)``."""
    with get_hub().span(name, **attributes) as sp:
        yield sp
