"""repro.obs — the fabric-wide observability layer.

Three pillars, all reachable from one process-wide hub:

* **Spans** (:mod:`repro.obs.spans`) — hierarchical, sim-timed records of
  control-plane operations, nested via a context-local current span so a
  ``span("migration")`` automatically contains the ``lft_swap`` below it
  and every per-SMP event below that.
* **SMP flight recorder** (:mod:`repro.obs.flight`) — a bounded ring of
  structured per-SMP events (kind, target, hops, directed flag, latency)
  fed by :class:`repro.mad.transport.SmpTransport`.
* **Metrics exposition** (:class:`repro.sim.metrics.MetricRegistry`) —
  labeled counters and gauges rendered as Prometheus text or JSON.

Typical use::

    from repro.obs import get_hub, reset_hub, span

    reset_hub()
    with span("experiment", profile="2l-small"):
        cloud.live_migrate(vm, dest)
    hub = get_hub()
    print(hub.metrics.render_prometheus())

Runs persist as JSONL via :func:`repro.obs.export.export_run` and replay
with ``repro trace <run>``.
"""

from repro.obs.export import (
    LoadedRun,
    export_run,
    load_run,
    render_span_tree,
    render_timeline,
)
from repro.obs.flight import (
    DEFAULT_FLIGHT_CAPACITY,
    FlightRecorder,
    SmpFlightEvent,
)
from repro.obs.hub import ObsHub, get_hub, reset_hub, span
from repro.obs.spans import MAX_EVENTS_PER_SPAN, Span, SpanEvent, current_span

__all__ = [
    "ObsHub",
    "get_hub",
    "reset_hub",
    "span",
    "current_span",
    "Span",
    "SpanEvent",
    "MAX_EVENTS_PER_SPAN",
    "FlightRecorder",
    "SmpFlightEvent",
    "DEFAULT_FLIGHT_CAPACITY",
    "export_run",
    "load_run",
    "LoadedRun",
    "render_span_tree",
    "render_timeline",
]
