"""The SMP flight recorder: one structured event per SMP, ring-buffered.

Every SMP the transport delivers lands here as an :class:`SmpFlightEvent`
(kind, target, hops, directed-route flag, latency — the raw ``k``/``r``
material of the paper's cost model). The buffer is bounded: million-SMP
runs keep the most recent ``capacity`` events and count the rest as
dropped, so the recorder is safe to leave on permanently.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Deque, Iterator, List, Optional, Union

__all__ = ["SmpFlightEvent", "FlightRecorder", "DEFAULT_FLIGHT_CAPACITY"]

#: Default ring size. At ~100 bytes/event this is a few MiB — enough for
#: every SMP of a paper-scale bring-up while staying bounded.
DEFAULT_FLIGHT_CAPACITY = 65_536


@dataclass(frozen=True)
class SmpFlightEvent:
    """One delivered SMP, as the flight recorder saw it."""

    time: float
    kind: str
    method: str
    target: str
    hops: int
    directed: bool
    latency: float
    lft_update: bool
    #: Wire outcome: ``delivered`` | ``dropped`` | ``corrupt`` | ``delayed``
    #: (non-default values only appear with fault injection enabled; the
    #: default keeps pre-fault-layer JSONL files loadable).
    status: str = "delivered"


class FlightRecorder:
    """A bounded ring buffer of :class:`SmpFlightEvent`.

    ``capacity=0`` disables recording entirely (events are neither stored
    nor counted as dropped — the recorder becomes a no-op).
    """

    def __init__(self, capacity: int = DEFAULT_FLIGHT_CAPACITY) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._ring: Optional[Deque[SmpFlightEvent]] = (
            deque(maxlen=capacity) if capacity else None
        )
        self.seen = 0

    @property
    def enabled(self) -> bool:
        """Whether events are being kept."""
        return self._ring is not None

    @property
    def dropped(self) -> int:
        """Events evicted from the ring so far."""
        if self._ring is None:
            return 0
        return self.seen - len(self._ring)

    def record(self, event: SmpFlightEvent) -> None:
        """Append one event (evicting the oldest when full)."""
        if self._ring is None:
            return
        self.seen += 1
        self._ring.append(event)

    def clear(self) -> None:
        """Forget everything recorded so far."""
        if self._ring is not None:
            self._ring.clear()
        self.seen = 0

    def __len__(self) -> int:
        return len(self._ring) if self._ring is not None else 0

    def __iter__(self) -> Iterator[SmpFlightEvent]:
        return iter(self._ring or ())

    def events(self) -> List[SmpFlightEvent]:
        """The retained events, oldest first."""
        return list(self._ring or ())

    def of_kind(self, kind: str) -> List[SmpFlightEvent]:
        """Retained events of one SMP kind."""
        return [e for e in self if e.kind == kind]

    def lft_updates(self) -> List[SmpFlightEvent]:
        """Retained SubnSet(LFT) events."""
        return [e for e in self if e.lft_update]

    def by_kind(self) -> Counter:
        """Retained event counts per kind."""
        return Counter(e.kind for e in self)

    # -- persistence ---------------------------------------------------------

    def to_jsonl(self, path: Union[str, Path]) -> int:
        """Write the retained events as JSON Lines; returns the count."""
        path = Path(path)
        count = 0
        with path.open("w", encoding="utf-8") as fp:
            for event in self:
                fp.write(json.dumps({"type": "smp", **asdict(event)}))
                fp.write("\n")
                count += 1
        return count

    @classmethod
    def from_jsonl(
        cls, path: Union[str, Path], *, capacity: int = DEFAULT_FLIGHT_CAPACITY
    ) -> "FlightRecorder":
        """Rebuild a recorder from a JSONL file written by :meth:`to_jsonl`.

        Lines whose ``type`` is not ``smp`` are skipped, so the combined
        run files written by :func:`repro.obs.export.export_run` load too.
        """
        rec = cls(capacity=capacity)
        with Path(path).open("r", encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                obj = json.loads(line)
                if obj.get("type") not in (None, "smp"):
                    continue
                obj.pop("type", None)
                rec.record(SmpFlightEvent(**obj))
        return rec
