"""Hierarchical spans: the run-wide record of what the control plane did.

A span brackets one logical operation (a migration, an LFT distribution,
a path computation) with sim-time start/end, free-form attributes and
timestamped events. Spans nest: the *current* span is carried in a
context variable, so deeply nested callees (ultimately
:meth:`repro.mad.transport.SmpTransport.send`) can attach per-SMP events
to whatever operation is in flight without any parameter plumbing.
"""

from __future__ import annotations

from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["SpanEvent", "Span", "current_span", "MAX_EVENTS_PER_SPAN"]

#: Safety valve: a span keeps at most this many discrete events (further
#: ones are counted in ``events_dropped`` but not stored), so a span around
#: a full paper-scale LFT distribution cannot grow without bound. The
#: aggregate SMP counters (``smp_count``/``lft_smp_count``) are exact
#: regardless.
MAX_EVENTS_PER_SPAN = 10_000

_current: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass(frozen=True)
class SpanEvent:
    """One timestamped event inside a span."""

    time: float
    name: str
    attributes: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One bracketed operation in the observability timeline."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_time: float
    end_time: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    events: List[SpanEvent] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)
    #: Exact per-span SMP tallies, maintained even when the discrete event
    #: list is capped.
    smp_count: int = 0
    lft_smp_count: int = 0
    events_dropped: int = 0

    # -- mutation ------------------------------------------------------------

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def set_attributes(self, **attrs: Any) -> None:
        """Attach several attributes at once."""
        self.attributes.update(attrs)

    def add_event(self, name: str, time: float, **attrs: Any) -> None:
        """Record one timestamped event (bounded per span)."""
        if len(self.events) >= MAX_EVENTS_PER_SPAN:
            self.events_dropped += 1
            return
        self.events.append(SpanEvent(time=time, name=name, attributes=attrs))

    def record_smp(self, time: float, **attrs: Any) -> None:
        """Record one SMP delivery under this span.

        The exact counters are bumped unconditionally; the discrete event
        obeys the per-span cap.
        """
        self.smp_count += 1
        if attrs.get("lft_update"):
            self.lft_smp_count += 1
        self.add_event("smp", time, **attrs)

    def end(self, time: float) -> None:
        """Close the span at *time*."""
        self.end_time = time

    # -- queries -------------------------------------------------------------

    @property
    def is_open(self) -> bool:
        """Whether the span has not ended yet."""
        return self.end_time is None

    @property
    def duration(self) -> float:
        """Sim-time extent (0 while still open)."""
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def iter_tree(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_tree()

    def find(self, name: str) -> Optional["Span"]:
        """First span named *name* in this subtree (depth-first)."""
        for sp in self.iter_tree():
            if sp.name == name:
                return sp
        return None

    def find_all(self, name: str) -> List["Span"]:
        """Every span named *name* in this subtree."""
        return [sp for sp in self.iter_tree() if sp.name == name]

    def total_smp_count(self) -> int:
        """SMPs recorded in this subtree."""
        return sum(sp.smp_count for sp in self.iter_tree())

    def total_lft_smp_count(self) -> int:
        """LFT-update SMPs recorded in this subtree — the n'·m' witness."""
        return sum(sp.lft_smp_count for sp in self.iter_tree())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable view (children referenced by parent links)."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start_time,
            "end": self.end_time,
            "attributes": dict(self.attributes),
            "smp_count": self.smp_count,
            "lft_smp_count": self.lft_smp_count,
            "events_dropped": self.events_dropped,
            "events": [
                {"time": e.time, "name": e.name, "attributes": dict(e.attributes)}
                for e in self.events
            ],
        }


def current_span() -> Optional[Span]:
    """The innermost open span of this context (None outside any span)."""
    return _current.get()
